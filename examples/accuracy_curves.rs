//! Accuracy evaluation walk-through (paper §VI-B): run a detector over a
//! synthetic mug-shot corpus, group detections with the `S_eyes` metric,
//! assign them to ground truth with the Hungarian algorithm and print a
//! TPR/FP curve.
//!
//! ```text
//! cargo run --release --example accuracy_curves -- [n_faces] [n_backgrounds]
//! ```

use facedet::boost::synthdata::{synth_faces, NegativeSource};
use facedet::boost::trainer::{train_cascade, StageGoals, TrainerConfig};
use facedet::boost::GentleBoost;
use facedet::eval::roc::{match_frame, roc_curve};
use facedet::eval::scface::MugshotDataset;
use facedet::haar::{enumerate_features, EnumerationRule};
use facedet::prelude::*;

fn main() {
    let n_faces: usize =
        std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(60);
    let n_bg: usize =
        std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(80);

    println!("training a cascade (small budget)...");
    let features: Vec<_> = enumerate_features(24, EnumerationRule::Icpp2012)
        .into_iter()
        .step_by(89)
        .collect();
    let faces = synth_faces(200, 42);
    let mut negatives = NegativeSource::new(7);
    let config = TrainerConfig {
        goals: StageGoals {
            min_detection_rate: 0.99,
            max_false_positive_rate: 0.45,
            max_stumps_per_stage: 25,
            min_stumps_per_stage: 1,
        },
        max_stages: 8,
        negatives_per_stage: 250,
        ..TrainerConfig::default()
    };
    let learner = GentleBoost::new(features);
    let cascade =
        train_cascade(&learner, "accuracy-demo", &faces, &mut negatives, &config).cascade;
    println!("  {} stages / {} stumps", cascade.depth(), cascade.total_stumps());

    println!("generating {n_faces} mug shots + {n_bg} backgrounds...");
    let ds = MugshotDataset::generate(n_faces, n_bg, 96, 0x50FA);

    let mut detector = FaceDetector::new(
        &cascade,
        DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() },
    );
    let evals: Vec<_> = ds
        .images
        .iter()
        .map(|img| {
            let r = detector.detect(&img.image).expect("detect");
            let truths: Vec<_> = img.truth.iter().cloned().collect();
            match_frame(&r.detections, &truths)
        })
        .collect();

    let curve = roc_curve(&evals, 10);
    println!("\n  score threshold |   FP | TPR");
    println!("  ----------------+------+------");
    for p in &curve {
        println!("  {:>15.3} | {:>4} | {:.3}", p.threshold, p.fp, p.tpr);
    }
    let best = curve.last().unwrap();
    println!(
        "\nat the loosest operating point: {:.1}% of {} faces detected with {} false positives over {} images",
        100.0 * best.tpr,
        ds.total_faces(),
        best.fp,
        ds.images.len()
    );
}
