//! Cascade training walk-through (paper §IV): train GentleBoost and
//! discrete AdaBoost cascades on the same synthetic corpus, compare their
//! weak-classifier counts (the paper's 1446-vs-2913 effect), inspect the
//! compressed constant-memory encoding, and save/load the result in the
//! text format.
//!
//! ```text
//! cargo run --release --example train_cascade -- [n_faces]
//! ```

use facedet::boost::smp::{IterationWork, MachineProfile};
use facedet::boost::synthdata::{synth_faces, NegativeSource};
use facedet::boost::trainer::{train_cascade, StageGoals, TrainerConfig};
use facedet::boost::{AdaBoost, GentleBoost};
use facedet::haar::encode::{encode_cascade, packed_bytes, quantize_cascade};
use facedet::haar::{enumerate_features, io, EnumerationRule};

fn main() {
    let n_faces: usize =
        std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(150);

    // Feature pool: a subsample of the full 103 607-combination space.
    let features: Vec<_> = enumerate_features(24, EnumerationRule::Icpp2012)
        .into_iter()
        .step_by(131)
        .collect();
    println!("feature pool: {} of 103 607 combinations", features.len());

    let faces = synth_faces(n_faces, 2024);
    let config = TrainerConfig {
        goals: StageGoals {
            min_detection_rate: 0.99,
            max_false_positive_rate: 0.45,
            max_stumps_per_stage: 20,
            min_stumps_per_stage: 1,
        },
        max_stages: 6,
        negatives_per_stage: 200,
        verbose: true,
        ..TrainerConfig::default()
    };

    println!("\n--- GentleBoost (the paper's algorithm) ---");
    let gentle = GentleBoost::new(features.clone());
    let mut negs = NegativeSource::new(3);
    let g = train_cascade(&gentle, "example-gentle", &faces, &mut negs, &config);

    println!("\n--- discrete AdaBoost (OpenCV-style baseline) ---");
    let ada = AdaBoost::new(features);
    let mut negs = NegativeSource::new(3);
    let a = train_cascade(&ada, "example-ada", &faces, &mut negs, &config);

    println!("\n=== comparison ===");
    println!(
        "GentleBoost: {} stages, {} stumps ({} boosting rounds)",
        g.cascade.depth(),
        g.cascade.total_stumps(),
        g.rounds
    );
    println!(
        "AdaBoost:    {} stages, {} stumps ({} boosting rounds)",
        a.cascade.depth(),
        a.cascade.total_stumps(),
        a.rounds
    );
    println!(
        "stump ratio: {:.2}x (the paper's cascades: 2913 / 1446 = 2.01x)",
        a.cascade.total_stumps() as f64 / g.cascade.total_stumps().max(1) as f64
    );

    // Constant-memory compression (§III-C).
    let q = quantize_cascade(&g.cascade);
    let words = encode_cascade(&q);
    println!(
        "\ncompressed encoding: {} stumps -> {} bytes ({} B/stump) — fits 64 KiB constant memory: {}",
        q.total_stumps(),
        packed_bytes(&q),
        packed_bytes(&q) / q.total_stumps().max(1),
        packed_bytes(&q) <= 64 * 1024
    );
    assert_eq!(words.len() * 4, packed_bytes(&q));

    // Persist and reload.
    std::fs::create_dir_all("results").ok();
    let path = "results/example-gentle.cascade";
    io::save(&g.cascade, path).expect("save cascade");
    let back = io::load(path).expect("load cascade");
    assert_eq!(back, g.cascade);
    println!("cascade saved to {path} and reloaded identically");

    // What would one full-corpus training iteration cost on the paper's
    // machines? (Fig. 8's workload, via the SMP model.)
    let work = IterationWork::paper_workload();
    for m in [MachineProfile::dual_xeon_e5472(), MachineProfile::core_i7_2600k()] {
        println!(
            "{}: full-corpus iteration {:.0} s at 1 thread, {:.0} s at 8 ({:.2}x)",
            m.name,
            m.predict_seconds(&work, 1),
            m.predict_seconds(&work, 8),
            m.predict_speedup(&work, 8)
        );
    }
}
