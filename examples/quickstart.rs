//! Quickstart: train a small cascade on synthetic faces, detect faces in
//! a synthetic snapshot on the simulated GPU, and write an annotated PPM.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use facedet::boost::synthdata::{synth_faces, NegativeSource};
use facedet::boost::trainer::{train_cascade, StageGoals, TrainerConfig};
use facedet::boost::GentleBoost;
use facedet::haar::{enumerate_features, EnumerationRule};
use facedet::imgproc::synth::{render_random_background, FaceParams};
use facedet::imgproc::{pnm, RgbImage};
use facedet::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Train a compact GentleBoost cascade on procedural faces.
    //    (Small budget so the example runs in ~a minute; the benchmark
    //    harness trains the full pair and caches it.)
    println!("training a small GentleBoost cascade...");
    let features: Vec<_> = enumerate_features(24, EnumerationRule::Icpp2012)
        .into_iter()
        .step_by(89)
        .collect();
    let faces = synth_faces(200, 42);
    let mut negatives = NegativeSource::new(7);
    let config = TrainerConfig {
        goals: StageGoals {
            min_detection_rate: 0.99,
            max_false_positive_rate: 0.45,
            max_stumps_per_stage: 25,
            min_stumps_per_stage: 1,
        },
        max_stages: 8,
        negatives_per_stage: 250,
        ..TrainerConfig::default()
    };
    let learner = GentleBoost::new(features);
    let trained = train_cascade(&learner, "quickstart", &faces, &mut negatives, &config);
    println!(
        "  cascade: {} stages, {} weak classifiers",
        trained.cascade.depth(),
        trained.cascade.total_stumps()
    );

    // 2. Compose a test scene: two faces over a textured background.
    let mut rng = StdRng::seed_from_u64(1234);
    let mut scene = render_random_background(&mut rng, 480, 270);
    let mut truth = Vec::new();
    for (x, y, size) in [(60i32, 40i32, 96usize), (300, 120, 72)] {
        let face = FaceParams::sample(&mut rng);
        scene.blit(&face.render(size), x, y);
        truth.push(Rect::new(x, y, size as u32, size as u32));
    }

    // 3. Detect on the simulated GTX470 with concurrent kernel execution.
    let mut detector = FaceDetector::new(
        &trained.cascade,
        DetectorConfig { min_neighbors: 2, ..DetectorConfig::default() },
    );
    let result = detector.detect(&scene).expect("detect");
    println!(
        "detected {} face(s) from {} raw windows in {:.2} simulated ms (SM occupancy {:.0}%)",
        result.detections.len(),
        result.raw.len(),
        result.detect_ms,
        100.0 * result.timeline.sm_utilization()
    );
    for d in &result.detections {
        let hit = truth.iter().any(|t| t.iou(&d.rect) > 0.3);
        println!(
            "  {:?} score {:.2} neighbors {}  {}",
            d.rect,
            d.score,
            d.neighbors,
            if hit { "[matches ground truth]" } else { "" }
        );
    }

    // 4. Draw and save.
    let mut rgb = RgbImage::from_gray(&scene);
    for t in &truth {
        rgb.draw_rect(*t, [0, 255, 0], 1);
    }
    for d in &result.detections {
        rgb.draw_rect(d.rect, [255, 0, 0], 2);
    }
    let out = "results/quickstart.ppm";
    std::fs::create_dir_all("results").ok();
    pnm::write_ppm(out, &rgb).expect("write ppm");
    println!("annotated frame written to {out} (green = truth, red = detections)");
}
