//! Real-time HD video face detection (the paper's headline scenario):
//! stream a synthetic 1080p movie trailer through the simulated hardware
//! decoder and the GPU detection pipeline, overlapping decode with
//! compute, and report per-frame latency and end-to-end fps for serial
//! vs concurrent kernel execution.
//!
//! ```text
//! cargo run --release --example trailer_detection -- [frames]
//! ```

use facedet::boost::synthdata::{synth_faces, NegativeSource};
use facedet::boost::trainer::{train_cascade, StageGoals, TrainerConfig};
use facedet::boost::GentleBoost;
use facedet::haar::{enumerate_features, EnumerationRule};
use facedet::prelude::*;
use facedet::video::decoder::pipelined_fps;
use facedet::video::{movie_trailers, HwDecoder};

fn main() {
    let frames: usize =
        std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("training a detection cascade (small budget)...");
    let features: Vec<_> = enumerate_features(24, EnumerationRule::Icpp2012)
        .into_iter()
        .step_by(89)
        .collect();
    let faces = synth_faces(200, 42);
    let mut negatives = NegativeSource::new(7);
    let config = TrainerConfig {
        goals: StageGoals {
            min_detection_rate: 0.99,
            max_false_positive_rate: 0.45,
            max_stumps_per_stage: 25,
            min_stumps_per_stage: 1,
        },
        max_stages: 8,
        negatives_per_stage: 250,
        ..TrainerConfig::default()
    };
    let learner = GentleBoost::new(features);
    let cascade = train_cascade(&learner, "trailer-demo", &faces, &mut negatives, &config).cascade;
    println!("  {} stages / {} stumps\n", cascade.depth(), cascade.total_stumps());

    let info = movie_trailers().into_iter().find(|t| t.title == "50/50").unwrap();
    println!("streaming {frames} frames of '{}' (1920x1080, 24 fps source)...", info.title);

    for mode in [ExecMode::Concurrent, ExecMode::Serial] {
        let decoder = HwDecoder::new(info.generate(frames));
        let truth_source = info.generate(frames);
        let mut detector = FaceDetector::new(
            &cascade,
            DetectorConfig { exec_mode: mode, ..DetectorConfig::default() },
        );
        let mut detect_ms = Vec::new();
        let mut decode_ms = Vec::new();
        let mut found = 0usize;
        let mut matched = 0usize;
        let mut truths = 0usize;
        for frame in decoder {
            let r = detector.detect(&frame.luma).expect("detect");
            let gt = truth_source.faces_at(frame.index);
            truths += gt.len();
            found += r.detections.len();
            matched += r
                .detections
                .iter()
                .filter(|d| gt.iter().any(|t| t.rect.iou(&d.rect) > 0.3))
                .count();
            println!(
                "  [{mode:?}] frame {:>3}: decode {:.1} ms | detect {:.2} ms | {} detection(s), {} truth",
                frame.index,
                frame.decode_ms,
                r.detect_ms,
                r.detections.len(),
                gt.len()
            );
            detect_ms.push(r.detect_ms);
            decode_ms.push(frame.decode_ms);
        }
        let mean = detect_ms.iter().sum::<f64>() / detect_ms.len() as f64;
        println!(
            "{mode:?}: mean detect {:.2} ms/frame, pipelined throughput {:.0} fps; {} detections ({} matched / {} annotated)\n",
            mean,
            pipelined_fps(&decode_ms, &detect_ms),
            found,
            matched,
            truths
        );
    }
}
