#!/usr/bin/env bash
# Repo verification: build, test, lint. Offline-friendly — every external
# dependency is vendored (see vendor/README.md), so no network fetches.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test -q =="
cargo test -q --offline --workspace

echo "== simulator test matrix across host thread counts =="
# The functional phase must be bit-identical whether the worker pool is
# disabled (1) or draining chunks in parallel (4).
for t in 1 4; do
  echo "-- FD_SIM_THREADS=$t --"
  FD_SIM_THREADS=$t cargo test -q --offline -p fd-gpu -p fd-detector
done

echo "== async host execution (asserts >= 1.3x frame throughput vs the sync engine and bit-identical outputs) =="
# Scratch results dir: the committed results/BENCH_async_exec.json stays
# the full-length run.
FD_RESULTS_DIR="$(mktemp -d)" \
  cargo run --release --offline -q -p fd-bench --bin async_exec -- --assert-min-speedup-pct 130

echo "== kernel fusion (asserts >= 1.2x end-to-end speedup, >= 1.15x batched, bit-identical detections) =="
# The bench's identity check sweeps both host engines and thread counts
# via DetectorConfig (the FD_SIM_THREADS matrix above additionally runs
# the fusion_identity proptests under both env settings). Scratch results
# dir: the committed results/BENCH_fusion.json stays the reference run.
FD_RESULTS_DIR="$(mktemp -d)" \
  cargo run --release --offline -q -p fd-bench --bin fusion -- --assert-min-speedup-pct 120 --assert-min-batched-pct 115

echo "== occupancy autotune (asserts >= 1.1x autotuned batched speedup, byte-identical detections, live limiting-factor counters) =="
# Scratch results dir: the committed results/BENCH_occupancy.json stays
# the reference run. The bench itself asserts the detection byte-identity
# across {autotune} x {fusion} x host engines/threads and fails on
# degenerate occupancy accounting.
FD_RESULTS_DIR="$(mktemp -d)" \
  cargo run --release --offline -q -p fd-bench --bin occupancy -- --assert-min-batched-pct 110

echo "== fault matrix (every fault kind x pipeline stage) =="
cargo test -q --offline -p fd-detector --test fault_matrix

echo "== supervisor soak (breakers must recover; asserts zero stuck in Quarantined) =="
# Scratch results dir: the soak step validates invariants, it must not
# clobber the committed full-length results/BENCH_supervisor_soak.json.
FD_RESULTS_DIR="$(mktemp -d)" \
  cargo run --release --offline -q -p fd-bench --bin supervisor_soak -- --sessions 3 --frames 120

echo "== serve load (asserts batched p99 <= unbatched p99 and >= 1.5x throughput at saturation) =="
# Scratch results dir, same reasoning as the soak step: the committed
# results/BENCH_serve_load.json stays the full-length run.
FD_RESULTS_DIR="$(mktemp -d)" \
  cargo run --release --offline -q -p fd-bench --bin serve_load -- --requests 150

echo "== serve faults (asserts zero-fault byte-identity, goodput >= 0.9 and p99 <= 1.5x fault-free under chaos) =="
# Scratch results dir: the committed results/BENCH_serve_faults.json
# stays the full-length run.
FD_RESULTS_DIR="$(mktemp -d)" \
  cargo run --release --offline -q -p fd-bench --bin serve_faults -- --requests 150

echo "== serve fleet (asserts >= 3x throughput at 4 devices, kill-one goodput >= 0.70 with p99 <= 1.5x baseline, fleet-of-1 byte-identity) =="
# Scratch results dir: the committed results/BENCH_serve_fleet.json
# stays the full-length run.
FD_RESULTS_DIR="$(mktemp -d)" \
  cargo run --release --offline -q -p fd-bench --bin serve_fleet -- --requests 200

echo "== serve mixed (asserts haar-tier throughput >= 0.9x haar-only under CNN co-tenancy, cnn-tier p99 <= 10ms budget, fleet-of-1 byte-identity to the pre-trait server) =="
# Scratch results dir: the committed results/BENCH_serve_mixed.json
# stays the full-length run.
FD_RESULTS_DIR="$(mktemp -d)" \
  cargo run --release --offline -q -p fd-bench --bin serve_mixed -- --requests 120

echo "== cnn eval (asserts cnn pre-final rejection >= 0.90, cnn TPR >= 0.90, and a real accuracy/latency front vs haar) =="
# Scratch results dir: the committed results/BENCH_cnn_eval.json stays
# the full-length run.
FD_RESULTS_DIR="$(mktemp -d)" \
  cargo run --release --offline -q -p fd-bench --bin cnn_eval -- --faces 24 --backgrounds 96

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets --offline -- -D warnings

echo "verify: OK"
