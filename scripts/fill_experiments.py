#!/usr/bin/env python3
"""Regenerate the measured sections of EXPERIMENTS.md from results/*.csv.

Run after `cargo run -p fd-bench --release --bin repro_all`.
"""
import csv, io, math, os, re, sys

R = os.path.join(os.path.dirname(__file__), "..", "results")

def rows(name):
    with open(os.path.join(R, name)) as f:
        return list(csv.DictReader(f))

out = []

# Table II
t2 = rows("table2.csv")
out.append("### Table II (measured)\n")
out.append("| trailer | ours conc | ours serial | cv conc | cv serial | combined |")
out.append("|---|---|---|---|---|---|")
for r in t2:
    out.append("| {} | {:.2f} | {:.2f} | {:.2f} | {:.2f} | {:.2f}x |".format(
        r["trailer"], float(r["ours_concurrent_ms"]), float(r["ours_serial_ms"]),
        float(r["cv_concurrent_ms"]), float(r["cv_serial_ms"]), float(r["combined_speedup"])))
geo = lambda f: math.exp(sum(math.log(f(r)) for r in t2) / len(t2))
conc = geo(lambda r: float(r["ours_serial_ms"]) / float(r["ours_concurrent_ms"]))
casc = geo(lambda r: float(r["cv_concurrent_ms"]) / float(r["ours_concurrent_ms"]))
comb = geo(lambda r: float(r["combined_speedup"]))
fps = sum(float(r["fps_ours_concurrent"]) for r in t2) / len(t2)
out.append("")
out.append(f"geomean speedups: concurrency {conc:.2f}x (paper ~2x), cascade swap {casc:.2f}x"
           f" (paper ~2.5x), combined {comb:.2f}x (paper ~5x); mean pipelined fps {fps:.0f}"
           f" (paper ~70).")
print("\n".join(out))
