//! # facedet — boosting-based face detection on a simulated GPU
//!
//! A full reproduction of Oro, Fernández, Segura, Martorell & Hernando,
//! *Accelerating Boosting-based Face Detection on GPUs* (ICPP 2012),
//! built from scratch in Rust. See `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! This crate is the facade: it re-exports the workspace's crates and the
//! most common entry points. The subsystems are:
//!
//! * [`gpu`] (`fd-gpu`) — a deterministic SIMT GPU simulator with
//!   streams, concurrent kernel execution and profiling;
//! * [`imgproc`] (`fd-imgproc`) — images, pyramids, integral images and
//!   the procedural face/background synthesis;
//! * [`haar`] (`fd-haar`) — Haar features, cascades and the compressed
//!   constant-memory encoding;
//! * [`boost`] (`fd-boost`) — GentleBoost/AdaBoost cascade training and
//!   the SMP scaling model;
//! * [`video`] (`fd-video`) — synthetic 1080p trailers and the hardware
//!   H.264 decoder model;
//! * [`detector`] (`fd-detector`) — the paper's pipeline, the public
//!   [`prelude::FaceDetector`] API, and the [`prelude::Detector`] trait
//!   every backend serves behind;
//! * [`cnn`] (`fd-cnn`) — the second backend: a 3-stage fixed-point CNN
//!   cascade on the same simulated-GPU kernels and pyramid;
//! * [`serve`] (`fd-serve`) — a deterministic request-serving frontend
//!   with dynamic cross-request batching, SLO-aware (EDF + shedding)
//!   scheduling on a virtual clock, fault-tolerant serving
//!   (batch-poisoning isolation, deadline-aware retries, brown-out
//!   admission) under injected device faults, and an N-device fleet
//!   front door (geometry-affine routing, breaker-open failover,
//!   drain/kill/rejoin, deterministic work stealing);
//! * [`eval`] (`fd-eval`) — Hungarian-matched TPR/FP accuracy evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use facedet::prelude::*;
//!
//! // A tiny hand-built cascade that accepts strong left-dark/right-bright
//! // edges (real cascades come from facedet::boost::train_cascade).
//! let feature = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
//! let mut cascade = Cascade::new("edges", 24);
//! cascade.stages.push(Stage {
//!     stumps: vec![Stump { feature, threshold: 8192, left: -1.0, right: 1.0 }],
//!     threshold: 0.5,
//! });
//!
//! // A frame with one matching pattern.
//! let frame = GrayImage::from_fn(96, 72, |x, y| {
//!     if (24..34).contains(&x) && (20..44).contains(&y) { 10.0 }
//!     else if (34..44).contains(&x) && (20..44).contains(&y) { 250.0 }
//!     else { 120.0 }
//! });
//!
//! let mut detector = FaceDetector::new(&cascade, DetectorConfig {
//!     min_neighbors: 1,
//!     ..DetectorConfig::default()
//! });
//! let result = detector.detect(&frame).expect("detect");
//! assert!(!result.detections.is_empty());
//! assert!(result.detect_ms > 0.0); // simulated GTX470 time
//! ```

pub use fd_boost as boost;
pub use fd_cnn as cnn;
pub use fd_detector as detector;
pub use fd_eval as eval;
pub use fd_gpu as gpu;
pub use fd_haar as haar;
pub use fd_imgproc as imgproc;
pub use fd_serve as serve;
pub use fd_video as video;

/// The most common imports in one place.
pub mod prelude {
    pub use fd_cnn::{CnnDetector, CnnModel};
    pub use fd_detector::{
        Backend, Detector, DetectorConfig, FaceDetector, FrameResult, GroupedDetection,
        RecoveryPolicy,
    };
    pub use fd_gpu::{DeviceSpec, ExecMode};
    pub use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
    pub use fd_imgproc::{GrayImage, IntegralImage, Rect, RgbImage};
    pub use fd_serve::{
        BatchPolicy, DetectionServer, FleetConfig, FleetServer, HealthPolicy, Priority,
        RetryPolicy, RoutePolicy, ServeConfig, ServeStats, ServerHealth, StealPolicy,
    };
}
