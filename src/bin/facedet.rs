//! `facedet` — command-line front end for the library.
//!
//! ```text
//! facedet detect <image.pgm> [--cascade FILE] [--serial] [--min-neighbors N] [--out FILE.ppm]
//! facedet train [--faces N] [--stages N] [--stride K] [--out FILE]
//! facedet info <cascade-file>
//! facedet trailer [--title NAME] [--frames N] [--cascade FILE] [--serial]
//! ```
//!
//! `detect` reads binary PGM (P5) luma images; annotated output is PPM.
//! Without `--cascade`, the pre-trained GentleBoost cascade from
//! `assets/` is used when present.

use facedet::boost::synthdata::{synth_faces, NegativeSource};
use facedet::boost::trainer::{train_cascade, StageGoals, TrainerConfig};
use facedet::boost::GentleBoost;
use facedet::haar::encode::packed_bytes;
use facedet::haar::{enumerate_features, io, EnumerationRule};
use facedet::imgproc::{pnm, RgbImage};
use facedet::prelude::*;
use facedet::video::{movie_trailers, HwDecoder};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    arg_value(args, flag).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_cascade(args: &[String]) -> Cascade {
    if let Some(path) = arg_value(args, "--cascade") {
        return io::load(&path).unwrap_or_else(|e| fatal(&format!("loading {path}: {e}")));
    }
    for candidate in ["assets/ours-gentle.cascade", "../assets/ours-gentle.cascade"] {
        if let Ok(c) = io::load(candidate) {
            eprintln!("using pre-trained cascade {candidate}");
            return c;
        }
    }
    fatal("no --cascade given and assets/ours-gentle.cascade not found; run `facedet train` first")
}

fn fatal(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("detect") => cmd_detect(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("trailer") => cmd_trailer(&args[1..]),
        _ => {
            eprintln!(
                "usage: facedet <detect|train|info|trailer> [options]\n\
                 see the module docs of src/bin/facedet.rs for details"
            );
            std::process::exit(2);
        }
    }
}

fn detector_config(args: &[String]) -> DetectorConfig {
    DetectorConfig {
        exec_mode: if arg_flag(args, "--serial") { ExecMode::Serial } else { ExecMode::Concurrent },
        min_neighbors: arg_usize(args, "--min-neighbors", 2),
        ..DetectorConfig::default()
    }
}

fn cmd_detect(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        fatal("detect: missing input image (binary PGM)");
    };
    let image = pnm::read_pgm(path).unwrap_or_else(|e| fatal(&format!("reading {path}: {e}")));
    let cascade = load_cascade(args);
    let mut detector = FaceDetector::new(&cascade, detector_config(args));
    let result = detector.detect(&image).expect("detect");
    println!(
        "{}x{}: {} detection(s) from {} raw windows in {:.3} simulated ms ({:?} mode)",
        image.width(),
        image.height(),
        result.detections.len(),
        result.raw.len(),
        result.detect_ms,
        detector.config().exec_mode,
    );
    for d in &result.detections {
        println!(
            "  x={} y={} size={} score={:.2} neighbors={}",
            d.rect.x, d.rect.y, d.rect.w, d.score, d.neighbors
        );
    }
    if let Some(out) = arg_value(args, "--out") {
        let mut rgb = RgbImage::from_gray(&image);
        for d in &result.detections {
            rgb.draw_rect(d.rect, [255, 0, 0], 2);
        }
        pnm::write_ppm(&out, &rgb).unwrap_or_else(|e| fatal(&format!("writing {out}: {e}")));
        println!("annotated image written to {out}");
    }
}

fn cmd_train(args: &[String]) {
    let n_faces = arg_usize(args, "--faces", 300);
    let stages = arg_usize(args, "--stages", 10);
    let stride = arg_usize(args, "--stride", 89);
    let out = arg_value(args, "--out").unwrap_or_else(|| "results/trained.cascade".into());

    println!("training GentleBoost cascade: {n_faces} faces, {stages} stages, feature stride {stride}");
    let features: Vec<_> = enumerate_features(24, EnumerationRule::Icpp2012)
        .into_iter()
        .step_by(stride.max(1))
        .collect();
    let faces = synth_faces(n_faces, 0xC11);
    let mut negs = NegativeSource::new(0xC12);
    let config = TrainerConfig {
        goals: StageGoals {
            min_detection_rate: 0.997,
            max_false_positive_rate: 0.45,
            max_stumps_per_stage: 40,
            min_stumps_per_stage: 3,
        },
        max_stages: stages,
        negatives_per_stage: 300,
        verbose: true,
        ..TrainerConfig::default()
    };
    let learner = GentleBoost::new(features);
    let trained = train_cascade(&learner, "cli-gentle", &faces, &mut negs, &config);
    println!(
        "trained {} stages / {} stumps in {} boosting rounds",
        trained.cascade.depth(),
        trained.cascade.total_stumps(),
        trained.rounds
    );
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    io::save(&trained.cascade, &out).unwrap_or_else(|e| fatal(&format!("writing {out}: {e}")));
    println!("saved to {out}");
}

fn cmd_info(args: &[String]) {
    let Some(path) = args.first() else {
        fatal("info: missing cascade file");
    };
    let c = io::load(path).unwrap_or_else(|e| fatal(&format!("reading {path}: {e}")));
    println!("cascade '{}': window {}x{}", c.name, c.window, c.window);
    println!(
        "{} stages, {} weak classifiers, {} bytes packed ({}% of 64 KiB constant memory)",
        c.depth(),
        c.total_stumps(),
        packed_bytes(&c),
        100 * packed_bytes(&c) / (64 * 1024)
    );
    for (i, st) in c.stages.iter().enumerate() {
        println!("  stage {i:>2}: {:>3} stumps, threshold {:+.3}", st.stumps.len(), st.threshold);
    }
}

fn cmd_trailer(args: &[String]) {
    let frames = arg_usize(args, "--frames", 4);
    let title = arg_value(args, "--title").unwrap_or_else(|| "50/50".into());
    let cascade = load_cascade(args);
    let Some(info) = movie_trailers().into_iter().find(|t| t.title == title) else {
        let titles: Vec<_> = movie_trailers().iter().map(|t| t.title).collect();
        fatal(&format!("unknown trailer {title:?}; available: {titles:?}"));
    };
    println!("streaming {frames} frames of '{title}' (1920x1080)...");
    let decoder = HwDecoder::new(info.generate(frames));
    let mut vd = facedet::detector::VideoDetector::new(&cascade, detector_config(args), 24.0)
        .expect("video detector");
    for frame in decoder {
        let r = vd.process(&frame.luma, frame.decode_ms).expect("process");
        println!(
            "  frame {:>3}: decode {:.1} ms | detect {:6.2} ms | {} face(s)",
            frame.index,
            frame.decode_ms,
            r.detect_ms,
            r.detections.len()
        );
    }
    let s = vd.stats();
    println!(
        "mean detect {:.2} ms, pipelined {:.0} fps, {} of {} frames missed the {:.1} ms deadline",
        s.mean_detect_ms(),
        s.pipelined_fps(),
        vd.missed_deadlines(),
        s.frames,
        vd.deadline_ms()
    );
}
