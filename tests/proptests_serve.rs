//! Property-based tests for the serving layer's headline guarantee:
//! with batching effectively off (disabled, or capped at batch size 1),
//! a [`facedet::serve::DetectionServer`] run is *bit-identical* to
//! calling [`FaceDetector::detect`] per request in arrival order — same
//! raw windows, same grouped detections, same simulated latency bits —
//! and the whole run is invariant to the functional phase's host thread
//! count.

use proptest::prelude::*;

use facedet::prelude::*;
use facedet::serve::{RequestOutcome, ServeConfig};

fn edge_cascade() -> Cascade {
    let feature = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut cascade = Cascade::new("edges", 24);
    cascade.stages.push(Stage {
        stumps: vec![Stump { feature, threshold: 8192, left: -1.0, right: 1.0 }],
        threshold: 0.5,
    });
    cascade
}

/// A 48x36 frame with a dark/bright edge pair at a variant-dependent
/// shift, so different variants produce different detection sets.
fn frame(variant: u8) -> GrayImage {
    let shift = (variant % 6) as usize;
    GrayImage::from_fn(48, 36, |x, y| {
        let x = x + shift;
        if (14..22).contains(&x) && (6..30).contains(&y) {
            10.0
        } else if (22..30).contains(&x) && (6..30).contains(&y) {
            245.0
        } else {
            120.0
        }
    })
}

fn detector_config(host_threads: usize) -> DetectorConfig {
    DetectorConfig {
        min_neighbors: 1,
        host_threads: Some(host_threads),
        ..DetectorConfig::default()
    }
}

/// Fingerprint of one served request: everything observable, bitwise.
type Served = (u64, Vec<facedet::detector::Detection>, Vec<GroupedDetection>, u64);

/// Run a server over the arrival pattern and fingerprint every
/// completion in completion order. All requests share one SLO, so EDF
/// order equals arrival order and nothing is ever late.
fn run_server(
    batch: facedet::serve::BatchPolicy,
    host_threads: usize,
    pattern: &[(u32, u8)],
) -> Vec<Served> {
    let mut server = facedet::serve::DetectionServer::new(
        &edge_cascade(),
        detector_config(host_threads),
        ServeConfig { batch, ..ServeConfig::default() },
    )
    .expect("server construction");
    let mut t = 0.0f64;
    for &(gap_us, variant) in pattern {
        t += gap_us as f64;
        server
            .submit(frame(variant), Priority::Standard, t, 1e9)
            .expect("valid submission");
    }
    server.run();
    server
        .completed()
        .iter()
        .map(|c| {
            let RequestOutcome::Served { ref result, .. } = c.outcome else {
                panic!("nothing sheds or fails in this pattern, got {:?}", c.outcome);
            };
            (
                c.id.0,
                result.raw.clone(),
                result.detections.clone(),
                result.detect_ms.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batching disabled == per-request detector calls in arrival order,
    /// bit for bit; max-batch-size 1 == batching disabled; and the whole
    /// run is host-thread invariant.
    #[test]
    fn unbatched_serving_is_bitwise_per_request_detection(
        pattern in proptest::collection::vec((0u32..4000, 0u8..6), 1..6),
        threads in 1usize..4,
    ) {
        // Baseline: one detector, one detect() per request, arrival order.
        let mut detector =
            FaceDetector::try_new(&edge_cascade(), detector_config(1)).expect("detector");
        let baseline: Vec<Served> = pattern
            .iter()
            .enumerate()
            .map(|(i, &(_, variant))| {
                let r = detector.detect(&frame(variant)).expect("detect");
                (i as u64, r.raw, r.detections, r.detect_ms.to_bits())
            })
            .collect();

        let disabled = facedet::serve::BatchPolicy {
            enabled: false,
            ..facedet::serve::BatchPolicy::default()
        };
        let size_one = facedet::serve::BatchPolicy {
            enabled: true,
            max_batch_size: 1,
            ..facedet::serve::BatchPolicy::default()
        };

        let served_disabled = run_server(disabled.clone(), 1, &pattern);
        prop_assert_eq!(&served_disabled, &baseline, "disabled == per-request detect");

        let served_size_one = run_server(size_one, 1, &pattern);
        prop_assert_eq!(&served_size_one, &baseline, "max_batch_size 1 == disabled");

        let served_threaded = run_server(disabled, threads, &pattern);
        prop_assert_eq!(&served_threaded, &baseline, "host-thread invariant");
    }
}
