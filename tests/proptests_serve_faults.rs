//! Property-based tests for the fault-tolerance layer's zero-cost
//! guarantee: when no fault can fire, the retry/health machinery is
//! *inert* — a server with the full fault-tolerance stack enabled (and
//! an inert seeded `FaultPlan` attached) completes bit-identically to
//! one with retries and health tracking disabled and no plan at all,
//! across host thread counts and both host execution engines.

use proptest::prelude::*;

use facedet::gpu::HostExec;
use facedet::prelude::*;
use facedet::serve::RequestOutcome;

fn edge_cascade() -> Cascade {
    let feature = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut cascade = Cascade::new("edges", 24);
    cascade.stages.push(Stage {
        stumps: vec![Stump { feature, threshold: 8192, left: -1.0, right: 1.0 }],
        threshold: 0.5,
    });
    cascade
}

/// A 48x36 frame with a dark/bright edge pair at a variant-dependent
/// shift, so different variants produce different detection sets.
fn frame(variant: u8) -> GrayImage {
    let shift = (variant % 6) as usize;
    GrayImage::from_fn(48, 36, |x, y| {
        let x = x + shift;
        if (14..22).contains(&x) && (6..30).contains(&y) {
            10.0
        } else if (22..30).contains(&x) && (6..30).contains(&y) {
            245.0
        } else {
            120.0
        }
    })
}

/// Everything observable about one completion, bitwise.
type Fingerprint = (u64, u8, Vec<GroupedDetection>, u64, u64);

fn run_server(
    fault_tolerant: bool,
    plan_seed: Option<u64>,
    host_threads: usize,
    host_exec: HostExec,
    batched: bool,
    pattern: &[(u32, u8)],
) -> Vec<Fingerprint> {
    let det = DetectorConfig {
        min_neighbors: 1,
        host_threads: Some(host_threads),
        host_exec: Some(host_exec),
        fault_plan: plan_seed.map(facedet::gpu::FaultPlan::seeded),
        ..DetectorConfig::default()
    };
    let cfg = ServeConfig {
        batch: facedet::serve::BatchPolicy {
            enabled: batched,
            ..facedet::serve::BatchPolicy::default()
        },
        retry: if fault_tolerant { RetryPolicy::default() } else { RetryPolicy::disabled() },
        health: if fault_tolerant { HealthPolicy::default() } else { HealthPolicy::disabled() },
        ..ServeConfig::default()
    };
    let mut server =
        DetectionServer::new(&edge_cascade(), det, cfg).expect("server construction");
    let mut t = 0.0f64;
    for &(gap_us, variant) in pattern {
        t += gap_us as f64;
        server
            .submit(frame(variant), Priority::Standard, t, 1e9)
            .expect("valid submission");
    }
    server.run();
    server
        .completed()
        .iter()
        .map(|c| {
            let RequestOutcome::Served { completed_us, ref result, .. } = c.outcome else {
                panic!("nothing faults in this pattern, got {:?}", c.outcome);
            };
            (
                c.id.0,
                0u8,
                result.detections.clone(),
                result.detect_ms.to_bits(),
                completed_us.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// With an inert fault plan, the fault-tolerance stack adds nothing:
    /// retries+health enabled completes bit-identically to both layers
    /// disabled with no plan attached — at 1 and 4 host threads, under
    /// both host execution engines, batching on and off.
    #[test]
    fn inert_fault_plans_leave_serving_byte_identical(
        pattern in proptest::collection::vec((0u32..4000, 0u8..6), 1..6),
        plan_seed in 0u64..1_000_000,
        batched in any::<bool>(),
    ) {
        let baseline = run_server(false, None, 1, HostExec::Sync, batched, &pattern);
        for threads in [1usize, 4] {
            for exec in [HostExec::Sync, HostExec::Async] {
                let ft = run_server(true, Some(plan_seed), threads, exec, batched, &pattern);
                prop_assert_eq!(
                    &ft, &baseline,
                    "inert plan + fault tolerance must be invisible \
                     (threads={}, exec={:?}, batched={})",
                    threads, exec, batched
                );
            }
        }
    }
}
