//! Property-based tests for the fleet layer's reduction guarantee: a
//! `FleetServer` with a single device — even with the full
//! fault-tolerance stack on and an inert seeded `FaultPlan` attached —
//! completes bit-identically to a plain `DetectionServer`, across host
//! thread counts and both host execution engines. The fleet machinery
//! (routing, admission ledger, failover, stealing, eviction) must be
//! pure overhead-free bookkeeping until there is a second device or a
//! lifecycle command.

use proptest::prelude::*;

use facedet::gpu::HostExec;
use facedet::prelude::*;
use facedet::serve::RequestOutcome;

fn edge_cascade() -> Cascade {
    let feature = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut cascade = Cascade::new("edges", 24);
    cascade.stages.push(Stage {
        stumps: vec![Stump { feature, threshold: 8192, left: -1.0, right: 1.0 }],
        threshold: 0.5,
    });
    cascade
}

/// A 48x36 frame with a dark/bright edge pair at a variant-dependent
/// shift, so different variants produce different detection sets.
fn frame(variant: u8) -> GrayImage {
    let shift = (variant % 6) as usize;
    GrayImage::from_fn(48, 36, |x, y| {
        let x = x + shift;
        if (14..22).contains(&x) && (6..30).contains(&y) {
            10.0
        } else if (22..30).contains(&x) && (6..30).contains(&y) {
            245.0
        } else {
            120.0
        }
    })
}

/// Everything observable about one completion, bitwise.
type Fingerprint = (u64, u8, Vec<GroupedDetection>, u64, u64);

fn fingerprints(completed: &[facedet::serve::CompletedRequest]) -> Vec<Fingerprint> {
    completed
        .iter()
        .map(|c| {
            let RequestOutcome::Served { completed_us, ref result, .. } = c.outcome else {
                panic!("nothing faults in this pattern, got {:?}", c.outcome);
            };
            (
                c.id.0,
                0u8,
                result.detections.clone(),
                result.detect_ms.to_bits(),
                completed_us.to_bits(),
            )
        })
        .collect()
}

fn detector_config(plan_seed: u64, host_threads: usize, host_exec: HostExec) -> DetectorConfig {
    DetectorConfig {
        min_neighbors: 1,
        host_threads: Some(host_threads),
        host_exec: Some(host_exec),
        fault_plan: Some(facedet::gpu::FaultPlan::seeded(plan_seed)),
        ..DetectorConfig::default()
    }
}

fn serve_config(batched: bool) -> ServeConfig {
    ServeConfig {
        batch: BatchPolicy { enabled: batched, ..BatchPolicy::default() },
        ..ServeConfig::default()
    }
}

fn run_single(
    plan_seed: u64,
    host_threads: usize,
    host_exec: HostExec,
    batched: bool,
    pattern: &[(u32, u8)],
) -> (Vec<Fingerprint>, ServeStats) {
    let mut server = DetectionServer::new(
        &edge_cascade(),
        detector_config(plan_seed, host_threads, host_exec),
        serve_config(batched),
    )
    .expect("server construction");
    let mut t = 0.0f64;
    for &(gap_us, variant) in pattern {
        t += gap_us as f64;
        server.submit(frame(variant), Priority::Standard, t, 1e9).expect("valid submission");
    }
    server.run();
    (fingerprints(server.completed()), server.stats().clone())
}

fn run_fleet(
    plan_seed: u64,
    host_threads: usize,
    host_exec: HostExec,
    batched: bool,
    pattern: &[(u32, u8)],
) -> (Vec<Fingerprint>, ServeStats) {
    let mut fleet = FleetServer::new(
        &edge_cascade(),
        detector_config(plan_seed, host_threads, host_exec),
        1,
        FleetConfig { serve: serve_config(batched), ..FleetConfig::default() },
    )
    .expect("fleet construction");
    let mut t = 0.0f64;
    for &(gap_us, variant) in pattern {
        t += gap_us as f64;
        fleet.submit(frame(variant), Priority::Standard, t, 1e9).expect("valid submission");
    }
    fleet.run();
    (fingerprints(fleet.completed()), fleet.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A fleet of one with an inert fault plan is the single server:
    /// identical completion log (ids, outcomes, detections, instants)
    /// and identical merged statistics — at 1 and 4 host threads, under
    /// both host execution engines, batching on and off.
    #[test]
    fn fleet_of_one_is_byte_identical_to_the_single_server(
        pattern in proptest::collection::vec((0u32..4000, 0u8..6), 1..6),
        plan_seed in 0u64..1_000_000,
        batched in any::<bool>(),
    ) {
        let reference = run_single(0, 1, HostExec::Sync, batched, &pattern);
        for threads in [1usize, 4] {
            for exec in [HostExec::Sync, HostExec::Async] {
                let single = run_single(plan_seed, threads, exec, batched, &pattern);
                let fleet = run_fleet(plan_seed, threads, exec, batched, &pattern);
                prop_assert_eq!(
                    &fleet, &single,
                    "fleet-of-1 must reduce to the single server \
                     (threads={}, exec={:?}, batched={})",
                    threads, exec, batched
                );
                // And the plan seed / threads / engine are themselves
                // inert: one reference run pins them all.
                prop_assert_eq!(&single, &reference);
            }
        }
    }
}
