//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use facedet::gpu::{CostModel, DeviceSpec, ExecMode, Gpu};
use facedet::haar::encode::{
    decode_stump, encode_stump, quantize_leaf, quantize_threshold, LEAF_SCALE, THR_STEP,
};
use facedet::haar::{enumerate_features, EnumerationRule, FeatureKind, HaarFeature, Stump};
use facedet::imgproc::scan::{integral_via_scan, scan_rows_inclusive, transpose};
use facedet::imgproc::{GrayImage, IntegralImage};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Integral image equals the naive double loop for any 8-bit image.
    #[test]
    fn integral_matches_naive(
        w in 1usize..32,
        h in 1usize..32,
        seed in any::<u32>(),
    ) {
        let pix: Vec<u8> = (0..w * h)
            .map(|i| ((i as u32).wrapping_mul(seed | 1) >> 13) as u8)
            .collect();
        let ii = IntegralImage::from_u8(w, h, &pix);
        // Check a handful of rectangles per case.
        let rects = [(0, 0, w, h), (0, 0, 1, 1), (w / 2, h / 2, w - w / 2, h - h / 2)];
        for &(x, y, rw, rh) in &rects {
            if rw == 0 || rh == 0 { continue; }
            let mut acc = 0i64;
            for yy in y..y + rh {
                for xx in x..x + rw {
                    acc += pix[yy * w + xx] as i64;
                }
            }
            prop_assert_eq!(ii.rect_sum(x, y, rw, rh), acc);
        }
    }

    /// The scan/transpose construction equals the sequential recurrence.
    #[test]
    fn scan_formulation_equals_sequential(
        w in 1usize..48,
        h in 1usize..48,
        seed in any::<u32>(),
    ) {
        let img = GrayImage::from_fn(w, h, |x, y| {
            (((x as u32 * 7 + y as u32 * 13).wrapping_mul(seed | 1)) >> 24) as f32
        });
        prop_assert_eq!(integral_via_scan(&img), IntegralImage::from_gray(&img));
    }

    /// Transposition is an involution and scan_rows is per-row monotone.
    #[test]
    fn transpose_involution_and_scan_monotone(
        w in 1usize..24,
        h in 1usize..24,
        data in proptest::collection::vec(0u32..255, 1..576),
    ) {
        let mut m = data;
        m.resize(w * h, 0);
        let back = transpose(&transpose(&m, w, h), h, w);
        prop_assert_eq!(&back, &m);
        scan_rows_inclusive(&mut m, w, h);
        for row in m.chunks(w) {
            for pair in row.windows(2) {
                prop_assert!(pair[1] >= pair[0]);
            }
        }
    }

    /// Every enumerated feature is zero-DC: it cancels on constant images.
    #[test]
    fn features_cancel_on_flat_images(level in 0u8..=255, pick in any::<prop::sample::Index>()) {
        let ii = IntegralImage::from_u8(24, 24, &[level; 576]);
        let feats = enumerate_features(24, EnumerationRule::Icpp2012);
        let f = feats[pick.index(feats.len())];
        prop_assert_eq!(f.eval(&ii, 0, 0), 0);
    }

    /// Stump encode/decode round-trips within the documented quantization.
    #[test]
    fn stump_encoding_quantization_is_bounded(
        kind_id in 0u8..6,
        x in 0u8..20,
        y in 0u8..20,
        w in 1u8..8,
        h in 1u8..8,
        thr in -200_000i32..200_000,
        left in -8.0f32..8.0,
        right in -8.0f32..8.0,
    ) {
        let kind = FeatureKind::from_id(kind_id).unwrap();
        let s = Stump {
            feature: HaarFeature::from_params(kind, x, y, w, h),
            threshold: thr,
            left,
            right,
        };
        let d = decode_stump(&encode_stump(&s));
        prop_assert_eq!(d.feature, s.feature);
        prop_assert!((d.threshold - thr).abs() <= THR_STEP / 2);
        prop_assert!((d.left - left).abs() <= 0.5 / LEAF_SCALE + 1e-6);
        prop_assert!((d.right - right).abs() <= 0.5 / LEAF_SCALE + 1e-6);
        // Quantizers are idempotent.
        prop_assert_eq!(quantize_threshold(d.threshold), d.threshold);
        prop_assert_eq!(quantize_leaf(d.left), d.left);
    }

    /// Scheduler invariants on random launch sets: same-stream launches
    /// never overlap; both modes execute everything; concurrent execution
    /// is never *catastrophically* worse than serial. (Strict
    /// "concurrency always helps" is false on real hardware and in the
    /// model: co-scheduling subjects a kernel's blocks to issue-pipeline
    /// contention from its neighbours, which can outweigh the overlap
    /// gain for adversarial mixes of tiny and huge blocks.)
    #[test]
    fn scheduler_orders_and_concurrency_helps(
        kernels in proptest::collection::vec((1u32..4, 1usize..30, 100f64..50_000.0), 1..12),
    ) {
        use facedet::gpu::{BlockCost, KernelCounters, LaunchRecord, StreamId};
        let launches: Vec<LaunchRecord> = kernels
            .iter()
            .enumerate()
            .map(|(i, &(stream, blocks, cycles))| LaunchRecord {
                launch_idx: i,
                kernel_name: "k",
                stream: StreamId::from_raw(stream),
                shared_mem_bytes: 0,
                threads_per_block: 256,
                warps_per_block: 8,
                registers_per_thread: 16,
                block_costs: vec![
                    BlockCost { issue_cycles: cycles, mem_latency_cycles: 0.0, mem_bytes: 0 };
                    blocks
                ],
                counters: KernelCounters::default(),
                wait_events: vec![],
                record_events: vec![],
            })
            .collect();
        let spec = DeviceSpec::gtx470();
        let cm = CostModel::default();
        let serial = facedet::gpu::sched::simulate(&spec, &cm, ExecMode::Serial, &launches);
        let conc = facedet::gpu::sched::simulate(&spec, &cm, ExecMode::Concurrent, &launches);
        prop_assert_eq!(serial.events.len(), launches.len());
        // Allow contention-model slack: frozen-at-placement contention can
        // overcharge a block co-resident with short-lived neighbours.
        prop_assert!(
            conc.span_us() <= serial.span_us() * 1.5 + 1.0,
            "concurrent {} vs serial {}",
            conc.span_us(),
            serial.span_us()
        );
        for t in [&serial, &conc] {
            for (i, a) in t.events.iter().enumerate() {
                prop_assert!(a.t_end_us >= a.t_start_us);
                for b in &t.events[i + 1..] {
                    if a.stream == b.stream {
                        prop_assert!(
                            b.t_start_us >= a.t_end_us - 1e-9,
                            "same-stream overlap: {:?} vs {:?}", a.launch_idx, b.launch_idx
                        );
                    }
                }
            }
        }
    }

    /// GPU memory: upload/download round-trips arbitrary data.
    #[test]
    fn device_memory_roundtrip(data in proptest::collection::vec(any::<u32>(), 0..512)) {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let buf = gpu.mem.upload(&data);
        prop_assert_eq!(gpu.mem.download(buf), data);
    }

    /// The parallel functional phase is bit-identical to the sequential
    /// one: for random frames and cascades, a multi-threaded run produces
    /// the same per-level outputs, the same timeline and the same
    /// profiler counters (including branch efficiency) as one host
    /// thread.
    #[test]
    fn parallel_functional_phase_is_deterministic(
        w in 48usize..144,
        h in 48usize..144,
        stages in 1usize..4,
        thr in 2_000i32..20_000,
        seed in any::<u32>(),
        threads in 2usize..8,
    ) {
        use facedet::detector::FramePipeline;
        use facedet::haar::{Cascade, Stage as CStage, Stump as CStump};

        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut cascade = Cascade::new("prop", 24);
        for s in 0..stages {
            cascade.stages.push(CStage {
                stumps: vec![CStump {
                    feature: f,
                    threshold: thr + s as i32 * 512,
                    left: -1.0,
                    right: 1.0,
                }],
                threshold: 0.5,
            });
        }
        let frame = GrayImage::from_fn(w, h, |x, y| {
            (((x as u32 * 31 + y as u32 * 17).wrapping_mul(seed | 1)) >> 24) as f32
        });

        let run = |host_threads: usize| {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            gpu.set_host_threads(Some(host_threads));
            let mut p = FramePipeline::new(gpu, &cascade, 1.25);
            let (outputs, timeline) = p.run_frame(&frame).expect("run_frame");
            let counters = p.gpu.profiler().kernels().clone();
            let eff = p.gpu.profiler().branch_efficiency();
            (outputs, timeline, counters, eff)
        };
        let (seq_out, seq_tl, seq_prof, seq_eff) = run(1);
        let (par_out, par_tl, par_prof, par_eff) = run(threads);

        prop_assert_eq!(seq_out.len(), par_out.len());
        for (a, b) in seq_out.iter().zip(&par_out) {
            prop_assert_eq!(&a.depth, &b.depth);
            prop_assert_eq!(&a.hits, &b.hits);
            let score_bits =
                |v: &[f32]| v.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(score_bits(&a.score), score_bits(&b.score));
        }
        prop_assert_eq!(seq_tl.span_us().to_bits(), par_tl.span_us().to_bits());
        prop_assert_eq!(seq_tl.events.len(), par_tl.events.len());
        for (a, b) in seq_tl.events.iter().zip(&par_tl.events) {
            prop_assert_eq!(a.t_start_us.to_bits(), b.t_start_us.to_bits());
            prop_assert_eq!(a.t_end_us.to_bits(), b.t_end_us.to_bits());
            prop_assert_eq!(&a.counters, &b.counters);
        }
        for (name, sp) in &seq_prof {
            let pp = &par_prof[name];
            prop_assert_eq!(sp.blocks, pp.blocks);
            prop_assert_eq!(&sp.counters, &pp.counters);
            prop_assert_eq!(sp.total_time_us.to_bits(), pp.total_time_us.to_bits());
        }
        prop_assert_eq!(seq_eff.to_bits(), par_eff.to_bits());
    }
}
