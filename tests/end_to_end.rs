//! End-to-end integration: train -> save/load -> detect -> group ->
//! evaluate, across every crate in the workspace.

use facedet::boost::synthdata::{synth_faces, NegativeSource};
use facedet::boost::trainer::{train_cascade, StageGoals, TrainerConfig};
use facedet::boost::GentleBoost;
use facedet::eval::roc::{match_frame, roc_curve};
use facedet::eval::scface::MugshotDataset;
use facedet::haar::{enumerate_features, io, EnumerationRule};
use facedet::prelude::*;
use facedet::video::{HwDecoder, Trailer, TrailerSpec};

fn quick_training_config() -> TrainerConfig {
    TrainerConfig {
        goals: StageGoals {
            min_detection_rate: 0.985,
            max_false_positive_rate: 0.5,
            max_stumps_per_stage: 15,
            min_stumps_per_stage: 1,
        },
        max_stages: 5,
        negatives_per_stage: 150,
        bootstrap_budget: 60_000,
        seed: 99,
        verbose: false,
    }
}

fn train_quick_cascade() -> Cascade {
    // Trained once per test binary: several tests share it.
    static CASCADE: std::sync::OnceLock<Cascade> = std::sync::OnceLock::new();
    CASCADE
        .get_or_init(|| {
            let features: Vec<_> = enumerate_features(24, EnumerationRule::Icpp2012)
                .into_iter()
                .step_by(211)
                .collect();
            let faces = synth_faces(120, 1);
            let mut negs = NegativeSource::new(2);
            let learner = GentleBoost::new(features);
            train_cascade(&learner, "e2e", &faces, &mut negs, &quick_training_config()).cascade
        })
        .clone()
}

#[test]
fn train_save_load_detect_roundtrip() {
    let cascade = train_quick_cascade();
    assert!(cascade.depth() >= 2, "training must produce multiple stages");

    // Text-format round trip.
    let text = io::to_text(&cascade);
    let reloaded = io::from_text(&text).expect("parse");
    assert_eq!(reloaded, cascade);

    // The reloaded cascade detects synthetic mug shots.
    let ds = MugshotDataset::generate(25, 25, 96, 7);
    let mut det = FaceDetector::new(
        &reloaded,
        DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() },
    );
    let mut hits = 0usize;
    let mut fp_images = 0usize;
    for img in &ds.images {
        let r = det.detect(&img.image).expect("detect");
        match &img.truth {
            Some(t) => {
                if r.detections.iter().any(|d| {
                    facedet::detector::group::s_eyes_to_truth(
                        &d.as_detection(),
                        t.eyes,
                        t.eye_distance,
                    ) < 1.0
                }) {
                    hits += 1;
                }
            }
            None => {
                if !r.detections.is_empty() {
                    fp_images += 1;
                }
            }
        }
    }
    // A 5-stage cascade is weak, but it must be far better than chance.
    assert!(hits >= 15, "only {hits}/25 mug shots detected");
    assert!(fp_images <= 20, "false positives on {fp_images}/25 background images");
}

#[test]
fn trailer_stream_is_deterministic_and_detectable() {
    let cascade = train_quick_cascade();
    let spec = TrailerSpec {
        width: 480,
        height: 270,
        n_frames: 6,
        seed: 0xAB,
        face_size: (40.0, 120.0),
        face_count_weights: vec![0.0, 0.5, 0.5],
        ..TrailerSpec::default()
    };
    let run = || {
        let decoder = HwDecoder::new(Trailer::generate(spec.clone()));
        let mut det = FaceDetector::new(
            &cascade,
            DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() },
        );
        let mut all = Vec::new();
        for frame in decoder {
            let r = det.detect(&frame.luma).expect("detect");
            all.push((frame.index, r.raw.len(), r.detect_ms));
        }
        all
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same stream, same detections and timing");
    assert_eq!(a.len(), 6);
}

#[test]
fn roc_evaluation_pipeline_works_end_to_end() {
    let cascade = train_quick_cascade();
    let ds = MugshotDataset::generate(20, 30, 96, 77);
    let mut det = FaceDetector::new(
        &cascade,
        DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() },
    );
    let evals: Vec<_> = ds
        .images
        .iter()
        .map(|img| {
            let r = det.detect(&img.image).expect("detect");
            let truths: Vec<_> = img.truth.iter().cloned().collect();
            match_frame(&r.detections, &truths)
        })
        .collect();
    let curve = roc_curve(&evals, 8);
    assert!(curve.len() >= 2);
    // Monotone in threshold, and the loosest point detects something.
    for w in curve.windows(2) {
        assert!(w[1].tp >= w[0].tp && w[1].fp >= w[0].fp);
    }
    assert!(curve.last().unwrap().tp > 0, "no face detected at all");
}

#[test]
fn truncating_stages_trades_false_positives_for_speed() {
    let cascade = train_quick_cascade();
    if cascade.depth() < 3 {
        return; // not enough stages to compare
    }
    let ds = MugshotDataset::generate(0, 40, 96, 5);
    let count_fps = |c: &Cascade| {
        let mut det =
            FaceDetector::new(c, DetectorConfig { min_neighbors: 1, ..Default::default() });
        ds.images.iter().map(|i| det.detect(&i.image).expect("detect").raw.len()).sum::<usize>()
    };
    let shallow = count_fps(&cascade.truncated(1));
    let deep = count_fps(&cascade);
    assert!(
        shallow >= deep,
        "1-stage cascade ({shallow}) must fire at least as often as the full one ({deep})"
    );
    assert!(shallow > 0, "stage-1 alone should fire on textured backgrounds");
}

#[test]
fn rejection_statistics_decay_with_stage() {
    let cascade = train_quick_cascade();
    let ds = MugshotDataset::generate(0, 10, 96, 11);
    let mut det = FaceDetector::new(
        &cascade,
        DetectorConfig { collect_rejection_stats: true, ..DetectorConfig::default() },
    );
    let mut total = vec![0u64; cascade.depth() as usize + 1];
    let mut windows = 0u64;
    for img in &ds.images {
        let r = det.detect(&img.image).expect("detect");
        let h = r.rejection.unwrap();
        for counts in &h.counts {
            for (d, c) in counts.iter().enumerate() {
                total[d] += c;
            }
        }
        windows += h.windows_per_level.iter().sum::<u64>();
    }
    // Stage 1 rejects the majority of background windows.
    let stage1_rate = total[0] as f64 / windows as f64;
    assert!(stage1_rate > 0.5, "stage-1 rejection rate only {stage1_rate:.3}");
    // Counts decay: deeper depths see fewer windows.
    let deep: u64 = total[2..].iter().sum();
    assert!(deep < total[0], "deep evaluations ({deep}) exceed stage-1 rejections");
}
