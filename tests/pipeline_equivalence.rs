//! Cross-crate integration: the simulated-GPU pipeline must match the
//! pure-CPU reference detector window for window, and its timing must be
//! consistent across execution modes.

use facedet::detector::cpu_ref::{depth_maps_cpu, detect_cpu};
use facedet::detector::pipeline::FramePipeline;
use facedet::prelude::*;
use facedet::imgproc::synth::FaceParams;

/// A small multi-stage cascade exercising several feature kinds.
fn test_cascade() -> Cascade {
    let mut c = Cascade::new("integration", 24);
    let feats = [
        HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8),
        HaarFeature::from_params(FeatureKind::EdgeV, 4, 6, 8, 6),
        HaarFeature::from_params(FeatureKind::LineH, 3, 9, 5, 7),
        HaarFeature::from_params(FeatureKind::CenterSurround, 5, 5, 4, 4),
        HaarFeature::from_params(FeatureKind::Diagonal, 4, 4, 8, 8),
    ];
    for (i, f) in feats.iter().enumerate() {
        c.stages.push(Stage {
            stumps: vec![Stump {
                feature: *f,
                threshold: -5000 + 2000 * i as i32,
                left: -0.6,
                right: 0.8,
            }],
            threshold: -0.1,
        });
    }
    c
}

/// A busy frame: textured background with two synthetic faces.
fn busy_frame() -> GrayImage {
    let mut img = GrayImage::from_fn(160, 120, |x, y| {
        (96.0 + 64.0 * ((x as f32 / 17.0).sin() * (y as f32 / 11.0).cos())).clamp(0.0, 255.0)
    });
    let f1 = FaceParams::nominal();
    img.blit(&f1.render(32), 20, 30);
    let mut f2 = FaceParams::nominal();
    f2.feat_scale = 1.05;
    img.blit(&f2.render(48), 90, 50);
    img
}

#[test]
fn gpu_pipeline_matches_cpu_reference_depth_maps() {
    let cascade = test_cascade();
    let frame = busy_frame();
    let gpu = facedet::gpu::Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
    let mut pipeline = FramePipeline::new(gpu, &cascade, 1.25);
    let (outputs, _) = pipeline.run_frame(&frame).expect("run_frame");
    let cpu_maps = depth_maps_cpu(&cascade, &frame, 1.25);

    assert_eq!(outputs.len(), cpu_maps.len(), "level count");
    for (out, (w, h, cpu_depth)) in outputs.iter().zip(&cpu_maps) {
        assert_eq!((out.width, out.height), (*w, *h));
        for oy in 0..h - 24 {
            for ox in 0..w - 24 {
                assert_eq!(
                    out.depth[oy * w + ox],
                    cpu_depth[oy * w + ox],
                    "level {} window ({ox},{oy})",
                    out.level
                );
            }
        }
    }
}

#[test]
fn gpu_raw_detections_equal_cpu_detections() {
    let cascade = test_cascade();
    let frame = busy_frame();
    let mut det = FaceDetector::new(
        &cascade,
        DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() },
    );
    let gpu_result = det.detect(&frame).expect("detect");
    let cpu = detect_cpu(&cascade, &frame, 1.25);

    assert_eq!(gpu_result.raw.len(), cpu.len(), "raw window count");
    for (g, c) in gpu_result.raw.iter().zip(&cpu) {
        assert_eq!(g.rect, c.rect);
        assert_eq!(g.scale, c.scale);
        assert!((g.score - c.score).abs() < 1e-3, "{} vs {}", g.score, c.score);
    }
}

#[test]
fn serial_and_concurrent_modes_are_bit_identical_functionally() {
    let cascade = test_cascade();
    let frame = busy_frame();
    let run = |mode| {
        let mut det =
            FaceDetector::new(&cascade, DetectorConfig { exec_mode: mode, ..Default::default() });
        det.detect(&frame).expect("detect")
    };
    let a = run(ExecMode::Serial);
    let b = run(ExecMode::Concurrent);
    assert_eq!(a.raw, b.raw);
    assert_eq!(a.detections.len(), b.detections.len());
    assert!(
        a.detect_ms >= b.detect_ms,
        "serial ({}) must not beat concurrent ({})",
        a.detect_ms,
        b.detect_ms
    );
}

#[test]
fn timeline_accounts_all_pipeline_kernels() {
    let cascade = test_cascade();
    let frame = busy_frame();
    let mut det = FaceDetector::new(&cascade, DetectorConfig::default());
    let r = det.detect(&frame).expect("detect");
    let names: std::collections::BTreeSet<&str> =
        r.timeline.events.iter().map(|e| e.kernel_name).collect();
    for expected in ["scale", "filter", "scan_rows", "transpose", "cascade_eval", "display"] {
        assert!(names.contains(expected), "missing kernel {expected}");
    }
    // 8 launches per pyramid level.
    let levels = facedet::imgproc::Pyramid::plan(160, 120, 1.25, 24).len();
    assert_eq!(r.timeline.events.len(), 8 * levels);
}
