//! Property-based tests over the data-generation and evaluation layers.

use proptest::prelude::*;

use facedet::detector::group::{group_detections, Detection};
use facedet::eval::roc::{roc_curve, FrameEval};
use facedet::haar::soft::SoftCascade;
use facedet::haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use facedet::imgproc::{IntegralImage, Rect};
use facedet::video::{Trailer, TrailerSpec};

fn toy_cascade(stages: usize) -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut c = Cascade::new("prop", 24);
    for i in 0..stages {
        c.stages.push(Stage {
            stumps: vec![Stump {
                feature: f,
                threshold: 500 * (i as i32 + 1),
                left: -0.5,
                right: 0.5,
            }],
            threshold: 0.0,
        });
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trailer ground truth stays inside sane bounds and every frame
    /// renders at spec dimensions, for arbitrary seeds.
    #[test]
    fn trailer_ground_truth_is_well_formed(seed in any::<u64>()) {
        let spec = TrailerSpec {
            width: 160,
            height: 96,
            n_frames: 10,
            seed,
            scene_len: (3, 6),
            face_size: (24.0, 48.0),
            ..TrailerSpec::default()
        };
        let t = Trailer::generate(spec);
        for frame in [0usize, 5, 9] {
            let img = t.render_frame(frame);
            prop_assert_eq!((img.width(), img.height()), (160, 96));
            for f in t.faces_at(frame) {
                // Eyes inside the face box.
                for eye in [f.eyes.0, f.eyes.1] {
                    prop_assert!(eye.x >= f.rect.x as f64 - 1.0);
                    prop_assert!(eye.x <= f.rect.right() as f64 + 1.0);
                }
                // Face box overlaps the frame.
                prop_assert!(f.rect.x < 160 && f.rect.y < 96);
            }
        }
    }

    /// Grouping never increases the detection count, keeps scores within
    /// the input range, and respects the neighbour floor.
    #[test]
    fn grouping_is_contractive(
        dets in proptest::collection::vec(
            (0i32..300, 0i32..200, 24u32..80, -5.0f32..5.0),
            1..40
        ),
        min_neighbors in 1usize..4,
    ) {
        let input: Vec<Detection> = dets
            .iter()
            .map(|&(x, y, s, score)| Detection { rect: Rect::new(x, y, s, s), score, scale: 0 })
            .collect();
        let groups = group_detections(&input, 0.5, min_neighbors);
        prop_assert!(groups.len() <= input.len());
        let max_in = input.iter().map(|d| d.score).fold(f32::MIN, f32::max);
        for g in &groups {
            prop_assert!(g.neighbors >= min_neighbors);
            prop_assert!(g.score <= max_in + 1e-6);
            // Scores are sorted descending.
        }
        for w in groups.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// ROC curves are monotone and bounded for arbitrary score sets.
    #[test]
    fn roc_curves_are_monotone(
        hits in proptest::collection::vec(-10.0f32..10.0, 0..30),
        fps in proptest::collection::vec(-10.0f32..10.0, 0..30),
        extra_truth in 0usize..20,
    ) {
        // Invariant of match_frame: at most one hit per annotation.
        let n_truth = (hits.len() + extra_truth).max(1);
        let eval = FrameEval { hit_scores: hits, fp_scores: fps, n_truth };
        let curve = roc_curve(&[eval], 6);
        for w in curve.windows(2) {
            prop_assert!(w[1].tp >= w[0].tp);
            prop_assert!(w[1].fp >= w[0].fp);
        }
        for p in &curve {
            prop_assert!(p.tpr >= 0.0 && p.tpr <= 1.0 + 1e-12);
        }
    }

    /// Soft-cascade evaluation depth is bounded by its length and its
    /// score is finite, over random window content.
    #[test]
    fn soft_cascade_depth_is_bounded(seed in any::<u32>(), stages in 1usize..5) {
        let staged = toy_cascade(stages);
        let positives: Vec<IntegralImage> = (0..10)
            .map(|k| {
                let img = facedet::imgproc::GrayImage::from_fn(24, 24, |x, _| {
                    if x < 12 { 10.0 } else { 200.0 + (k % 7) as f32 }
                });
                IntegralImage::from_gray(&img)
            })
            .collect();
        let soft = SoftCascade::calibrate(&staged, &positives, 0.1);
        let img = facedet::imgproc::GrayImage::from_fn(24, 24, |x, y| {
            (((x as u32 * 31 + y as u32 * 17).wrapping_mul(seed | 1)) >> 24) as f32
        });
        let ii = IntegralImage::from_gray(&img);
        let e = soft.eval_window(&ii, 0, 0);
        prop_assert!(e.depth as usize <= soft.len());
        prop_assert!(e.score.is_finite());
    }

    /// Cascade truncation monotonicity: a deeper cascade never accepts a
    /// window the shallower prefix rejected.
    #[test]
    fn truncation_is_monotone(seed in any::<u32>()) {
        let c = toy_cascade(4);
        let img = facedet::imgproc::GrayImage::from_fn(24, 24, |x, y| {
            (((x as u32 * 13 + y as u32 * 29).wrapping_mul(seed | 1)) >> 24) as f32
        });
        let ii = IntegralImage::from_gray(&img);
        let mut prev_accept = true;
        for n in 1..=4 {
            let accept = c.truncated(n).classify(&ii, 0, 0);
            if !prev_accept {
                prop_assert!(!accept, "stage {n} resurrected a rejected window");
            }
            prev_accept = accept;
        }
    }
}
