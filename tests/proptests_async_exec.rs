//! Property-based determinism tests for the asynchronous host execution
//! engine: any pyramid-shaped multi-stream workload — shared buffers,
//! declared and opaque kernels, cross-stream events, mid-queue sync and
//! flush points, optional fault injection — must be **bitwise** identical
//! under the deferred dependency-graph drain at any worker count to the
//! `host_threads = 1` serial issue order, and to the legacy synchronous
//! (execute-at-launch) engine.

use proptest::prelude::*;

use facedet::gpu::{
    AccessSet, BlockCtx, DevBuf, DeviceSpec, ExecMode, FaultPlan, Gpu, HostExec, Kernel,
    LaunchConfig, StreamId,
};

/// Read-modify-write with a non-commutative update, so any hazard the
/// graph fails to order shows up as a different final value.
#[derive(Clone, Copy)]
struct MulAdd {
    buf: DevBuf<u32>,
    c: u32,
}

impl Kernel for MulAdd {
    fn name(&self) -> &'static str {
        "muladd"
    }
    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let tpb = ctx.block_dim.count() as usize;
        let base = ctx.block_idx.x as usize * tpb;
        let mut data = ctx.mem.write(self.buf);
        if base >= data.len() {
            return;
        }
        let end = (base + tpb).min(data.len());
        for v in &mut data[base..end] {
            *v = v.wrapping_mul(3).wrapping_add(self.c);
        }
        ctx.meter.alu(ctx.warps_in_block());
        ctx.meter.global_load(((end - base) * 4) as u64);
        ctx.meter.global_store(((end - base) * 4) as u64);
    }
    fn access(&self, set: &mut AccessSet) {
        set.reads(self.buf).writes(self.buf);
    }
}

/// Cross-buffer copy: a declared RAW/WAR hazard pair.
#[derive(Clone, Copy)]
struct CopyShift {
    src: DevBuf<u32>,
    dst: DevBuf<u32>,
}

impl Kernel for CopyShift {
    fn name(&self) -> &'static str {
        "copyshift"
    }
    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let tpb = ctx.block_dim.count() as usize;
        let base = ctx.block_idx.x as usize * tpb;
        let src = ctx.mem.read(self.src);
        let mut dst = ctx.mem.write(self.dst);
        let end = (base + tpb).min(dst.len().min(src.len()));
        if base >= end {
            return;
        }
        for i in base..end {
            dst[i] = src[i].rotate_left(1) ^ i as u32;
        }
        ctx.meter.alu(2 * ctx.warps_in_block());
        ctx.meter.global_load(((end.saturating_sub(base)) * 4) as u64);
        ctx.meter.global_store(((end.saturating_sub(base)) * 4) as u64);
    }
    fn access(&self, set: &mut AccessSet) {
        set.reads(self.src).writes(self.dst);
    }
}

/// Undeclared accesses: must act as a full barrier in the graph.
#[derive(Clone, Copy)]
struct OpaqueXor {
    buf: DevBuf<u32>,
    m: u32,
}

impl Kernel for OpaqueXor {
    fn name(&self) -> &'static str {
        "opaquexor"
    }
    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let tpb = ctx.block_dim.count() as usize;
        let base = ctx.block_idx.x as usize * tpb;
        let mut data = ctx.mem.write(self.buf);
        if base >= data.len() {
            return;
        }
        let end = (base + tpb).min(data.len());
        for v in &mut data[base..end] {
            *v = v.rotate_right(3) ^ self.m;
        }
        ctx.meter.alu(ctx.warps_in_block());
        ctx.meter.global_store(((end - base) * 4) as u64);
    }
    // No access(): default marks the launch opaque.
}

#[derive(Debug, Clone)]
enum Op {
    /// kind 0: MulAdd on buffer `a`; 1: CopyShift `a -> b`; 2: OpaqueXor on `a`.
    Launch { kind: u8, a: usize, b: usize, stream: usize, blocks: u32 },
    RecordEvent { stream: usize },
    /// Wait on the `which`-th recorded event (no-op when none recorded).
    WaitEvent { stream: usize, which: usize },
    Sync,
    Flush,
}

/// One tuple strategy with a weighted discriminant: launches dominate
/// (6/10) so workloads are mostly kernel traffic, with events, waits,
/// syncs and flushes mixed in.
fn op_strategy() -> impl Strategy<Value = Op> {
    struct OpStrategy;
    impl Strategy for OpStrategy {
        type Value = Op;
        fn generate(&self, rng: &mut proptest::test_runner::TestRng) -> Op {
            let disc = (0u8..10).generate(rng);
            match disc {
                0..=5 => Op::Launch {
                    kind: (0u8..3).generate(rng),
                    a: (0usize..4).generate(rng),
                    b: (0usize..4).generate(rng),
                    stream: (0usize..3).generate(rng),
                    blocks: (1u32..96).generate(rng),
                },
                6 => Op::RecordEvent { stream: (0usize..3).generate(rng) },
                7 => Op::WaitEvent {
                    stream: (0usize..3).generate(rng),
                    which: (0usize..4).generate(rng),
                },
                8 => Op::Sync,
                _ => Op::Flush,
            }
        }
    }
    OpStrategy
}

/// Execute one generated workload and return its full observable
/// fingerprint: buffer contents, per-sync timeline span bits, the trace
/// rows, the per-kernel profile, and fault statistics.
fn run(
    ops: &[Op],
    exec: HostExec,
    threads: usize,
    fault_seed: Option<u64>,
) -> (Vec<Vec<u32>>, Vec<u64>, String, String, String) {
    let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent)
        .with_host_exec(exec)
        .with_host_threads(threads);
    if let Some(seed) = fault_seed {
        gpu.set_fault_plan(Some(FaultPlan::seeded(seed).with_stream_stalls(0.2, 700.0)));
    }
    let bufs: Vec<DevBuf<u32>> = (0..4)
        .map(|b| {
            gpu.mem.upload(
                &(0..512u32).map(|i| i.wrapping_mul(2654435761).wrapping_add(b)).collect::<Vec<_>>(),
            )
        })
        .collect();
    let streams: Vec<StreamId> = (0..3).map(|_| gpu.create_stream()).collect();
    let mut events = Vec::new();
    let mut span_bits = Vec::new();

    for op in ops {
        match *op {
            Op::Launch { kind, a, b, stream, blocks } => {
                let cfg = LaunchConfig::new(blocks, 64u32);
                let s = streams[stream];
                let r = match kind {
                    0 => gpu.launch(MulAdd { buf: bufs[a], c: a as u32 + 1 }, cfg, s),
                    // Remap an aliased copy (src == dst would be a
                    // genuine in-kernel read/write race, not a hazard
                    // the graph is expected to legalise).
                    1 => {
                        let b = if b == a { (a + 1) % 4 } else { b };
                        gpu.launch(CopyShift { src: bufs[a], dst: bufs[b] }, cfg, s)
                    }
                    _ => gpu.launch(OpaqueXor { buf: bufs[a], m: 0x9e3779b9 }, cfg, s),
                };
                r.expect("launch");
            }
            Op::RecordEvent { stream } => events.push(gpu.record_event(streams[stream])),
            Op::WaitEvent { stream, which } => {
                if !events.is_empty() {
                    let e = events[which % events.len()];
                    gpu.stream_wait_event(streams[stream], e);
                }
            }
            Op::Sync => span_bits.push(gpu.synchronize().span_us().to_bits()),
            Op::Flush => gpu.flush(),
        }
    }
    span_bits.push(gpu.synchronize().span_us().to_bits());

    let data: Vec<Vec<u32>> = bufs.iter().map(|&b| gpu.mem.download(b)).collect();
    let traces: String = gpu
        .profiler()
        .traces()
        .iter()
        .map(|e| {
            format!(
                "{}:{}:{:?}:{}:{};",
                e.kernel_name,
                e.blocks,
                e.stream,
                e.t_start_us.to_bits(),
                e.t_end_us.to_bits()
            )
        })
        .collect();
    let profile = format!("{:?}", gpu.profiler().kernels());
    let faults = format!("{:?}", gpu.fault_stats());
    (data, span_bits, traces, profile, faults)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The asynchronous drain at any thread count reproduces serial issue
    /// order bit-for-bit, as does the legacy synchronous engine.
    #[test]
    fn async_drain_is_bitwise_serial(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        threads in 2usize..8,
        faulted in any::<bool>(),
    ) {
        let seed = if faulted { Some(77u64) } else { None };
        let reference = run(&ops, HostExec::Async, 1, seed);
        let parallel = run(&ops, HostExec::Async, threads, seed);
        let sync_engine = run(&ops, HostExec::Sync, 1, seed);
        prop_assert_eq!(&parallel, &reference, "async@{} diverged from async@1", threads);
        prop_assert_eq!(&sync_engine, &reference, "sync engine diverged from async@1");
    }
}
