//! Grayscale image container.
//!
//! Pixels are `f32` in the nominal range `0.0..=255.0` (luma). Floating
//! point is used throughout the pre-integral pipeline (scaling and
//! filtering interpolate); quantization back to 8 bits happens when the
//! integral image is built, matching the GPU pipeline where `tex2D` returns
//! filtered floats and the scan kernel consumes integer luma.

use crate::geom::Rect;

/// A single-channel (luma) image, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Create a zero-filled image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Self { width, height, data: vec![0.0; width * height] }
    }

    /// Create an image from existing row-major data.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "data length mismatch");
        assert!(width > 0 && height > 0, "image must be non-empty");
        Self { width, height, data }
    }

    /// Create an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self::from_vec(width, height, data)
    }

    /// Create an image from 8-bit luma samples.
    pub fn from_u8(width: usize, height: usize, data: &[u8]) -> Self {
        assert_eq!(data.len(), width * height, "data length mismatch");
        Self::from_vec(width, height, data.iter().map(|&v| v as f32).collect())
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw row-major pixel data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Clamped fetch: coordinates outside the image read the nearest edge
    /// pixel (texture clamp addressing).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let xc = x.clamp(0, self.width as isize - 1) as usize;
        let yc = y.clamp(0, self.height as isize - 1) as usize;
        self.data[yc * self.width + xc]
    }

    /// One image row.
    pub fn row(&self, y: usize) -> &[f32] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Quantize to 8-bit luma with rounding and clamping.
    pub fn to_u8(&self) -> Vec<u8> {
        self.data.iter().map(|&v| v.round().clamp(0.0, 255.0) as u8).collect()
    }

    /// Copy a sub-rectangle (must lie inside the image).
    pub fn crop(&self, r: Rect) -> GrayImage {
        assert!(
            r.x >= 0
                && r.y >= 0
                && r.right() <= self.width as i32
                && r.bottom() <= self.height as i32,
            "crop {r:?} outside {}x{}",
            self.width,
            self.height
        );
        GrayImage::from_fn(r.w as usize, r.h as usize, |x, y| {
            self.get(r.x as usize + x, r.y as usize + y)
        })
    }

    /// Paste `src` with its top-left corner at `(x, y)`; parts that fall
    /// outside the destination are clipped.
    pub fn blit(&mut self, src: &GrayImage, x: i32, y: i32) {
        for sy in 0..src.height {
            let dy = y + sy as i32;
            if dy < 0 || dy >= self.height as i32 {
                continue;
            }
            for sx in 0..src.width {
                let dx = x + sx as i32;
                if dx < 0 || dx >= self.width as i32 {
                    continue;
                }
                self.set(dx as usize, dy as usize, src.get(sx, sy));
            }
        }
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Population standard deviation of pixel values.
    pub fn stddev(&self) -> f64 {
        let m = self.mean();
        let var = self
            .data
            .iter()
            .map(|&v| {
                let d = v as f64 - m;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_fills_row_major() {
        let img = GrayImage::from_fn(3, 2, |x, y| (y * 10 + x) as f32);
        assert_eq!(img.get(2, 1), 12.0);
        assert_eq!(img.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn clamped_fetch_extends_edges() {
        let img = GrayImage::from_fn(2, 2, |x, y| (y * 2 + x) as f32);
        assert_eq!(img.get_clamped(-3, -3), 0.0);
        assert_eq!(img.get_clamped(5, 5), 3.0);
        assert_eq!(img.get_clamped(5, 0), 1.0);
    }

    #[test]
    fn quantization_rounds_and_clamps() {
        let img = GrayImage::from_vec(4, 1, vec![-5.0, 0.4, 0.6, 300.0]);
        assert_eq!(img.to_u8(), vec![0, 0, 1, 255]);
    }

    #[test]
    fn crop_extracts_subimage() {
        let img = GrayImage::from_fn(4, 4, |x, y| (y * 4 + x) as f32);
        let c = img.crop(Rect::new(1, 2, 2, 2));
        assert_eq!(c.get(0, 0), 9.0);
        assert_eq!(c.get(1, 1), 14.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn crop_out_of_bounds_panics() {
        let img = GrayImage::new(4, 4);
        let _ = img.crop(Rect::new(2, 2, 4, 4));
    }

    #[test]
    fn blit_clips_at_borders() {
        let mut dst = GrayImage::new(4, 4);
        let src = GrayImage::from_fn(2, 2, |_, _| 9.0);
        dst.blit(&src, 3, 3); // only (3,3) lands inside
        assert_eq!(dst.get(3, 3), 9.0);
        assert_eq!(dst.get(2, 2), 0.0);
        dst.blit(&src, -1, -1); // only (0,0) lands inside
        assert_eq!(dst.get(0, 0), 9.0);
    }

    #[test]
    fn mean_and_stddev() {
        let img = GrayImage::from_vec(2, 2, vec![1.0, 1.0, 3.0, 3.0]);
        assert!((img.mean() - 2.0).abs() < 1e-12);
        assert!((img.stddev() - 1.0).abs() < 1e-12);
    }
}
