//! Low-pass filters for the anti-aliasing stage of the pipeline.
//!
//! The pipeline filters each pyramid level after scaling to suppress the
//! aliasing the bilinear subsampling introduces (paper §III-A). Filters are
//! separable; the GPU filter kernel applies the same coefficients.

use crate::image::GrayImage;

/// Build normalized 1D Gaussian taps for standard deviation `sigma`,
/// truncated at `radius = ceil(3 sigma)`.
pub fn gaussian_taps(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as i32;
    let mut taps = Vec::with_capacity((2 * radius + 1) as usize);
    let denom = 2.0 * sigma * sigma;
    for i in -radius..=radius {
        taps.push((-(i * i) as f32 / denom).exp());
    }
    let sum: f32 = taps.iter().sum();
    for t in &mut taps {
        *t /= sum;
    }
    taps
}

/// Convolve rows with symmetric taps (odd length), clamping at borders.
pub fn convolve_rows(img: &GrayImage, taps: &[f32]) -> GrayImage {
    assert!(taps.len() % 2 == 1, "taps must have odd length");
    let radius = (taps.len() / 2) as isize;
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for (k, &t) in taps.iter().enumerate() {
            let sx = x as isize + k as isize - radius;
            acc += t * img.get_clamped(sx, y as isize);
        }
        acc
    })
}

/// Convolve columns with symmetric taps (odd length), clamping at borders.
pub fn convolve_cols(img: &GrayImage, taps: &[f32]) -> GrayImage {
    assert!(taps.len() % 2 == 1, "taps must have odd length");
    let radius = (taps.len() / 2) as isize;
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for (k, &t) in taps.iter().enumerate() {
            let sy = y as isize + k as isize - radius;
            acc += t * img.get_clamped(x as isize, sy);
        }
        acc
    })
}

/// Separable Gaussian blur.
pub fn gaussian_blur(img: &GrayImage, sigma: f32) -> GrayImage {
    let taps = gaussian_taps(sigma);
    convolve_cols(&convolve_rows(img, &taps), &taps)
}

/// The pipeline's cheap anti-alias filter: a separable 3-tap binomial
/// (1/4, 1/2, 1/4) smoothing, matching the GPU filter kernel.
pub fn antialias_3tap(img: &GrayImage) -> GrayImage {
    const TAPS: [f32; 3] = [0.25, 0.5, 0.25];
    convolve_cols(&convolve_rows(img, &TAPS), &TAPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_taps_normalized_and_symmetric() {
        let t = gaussian_taps(1.0);
        assert_eq!(t.len(), 7);
        let sum: f32 = t.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        for i in 0..t.len() / 2 {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-7);
        }
        // Peak at center.
        assert!(t[3] > t[2] && t[2] > t[1]);
    }

    #[test]
    fn constant_image_invariant_under_blur() {
        let img = GrayImage::from_fn(9, 9, |_, _| 77.0);
        for out in [gaussian_blur(&img, 1.2), antialias_3tap(&img)] {
            for &v in out.as_slice() {
                assert!((v - 77.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn blur_attenuates_an_impulse() {
        let mut img = GrayImage::new(9, 9);
        img.set(4, 4, 100.0);
        let out = antialias_3tap(&img);
        assert!((out.get(4, 4) - 25.0).abs() < 1e-5); // 0.5 * 0.5 * 100
        assert!((out.get(3, 4) - 12.5).abs() < 1e-5);
        assert!((out.get(3, 3) - 6.25).abs() < 1e-5);
        // Energy is conserved away from borders.
        let total: f32 = out.as_slice().iter().sum();
        assert!((total - 100.0).abs() < 1e-3);
    }

    #[test]
    fn separable_equals_two_pass() {
        let img = GrayImage::from_fn(12, 10, |x, y| ((x * 13 + y * 7) % 64) as f32);
        let taps = gaussian_taps(0.8);
        let a = convolve_cols(&convolve_rows(&img, &taps), &taps);
        let b = convolve_rows(&convolve_cols(&img, &taps), &taps);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 1e-3);
        }
    }
}
