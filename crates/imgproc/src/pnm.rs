//! Minimal PGM/PPM (netpbm) writers so the examples can emit viewable
//! images without an image-codec dependency.

use std::io::{self, Write};
use std::path::Path;

use crate::draw::RgbImage;
use crate::image::GrayImage;

/// Write an 8-bit binary PGM (P5).
pub fn write_pgm(path: impl AsRef<Path>, img: &GrayImage) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "P5\n{} {}\n255\n", img.width(), img.height())?;
    f.write_all(&img.to_u8())?;
    f.flush()
}

/// Write an 8-bit binary PPM (P6).
pub fn write_ppm(path: impl AsRef<Path>, img: &RgbImage) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "P6\n{} {}\n255\n", img.width(), img.height())?;
    f.write_all(img.as_slice())?;
    f.flush()
}

/// Read back a binary PGM written by [`write_pgm`] (round-trip testing).
pub fn read_pgm(path: impl AsRef<Path>) -> io::Result<GrayImage> {
    let bytes = std::fs::read(path)?;
    parse_pgm(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn parse_pgm(bytes: &[u8]) -> Result<GrayImage, String> {
    let mut pos = 0usize;
    let mut token = || -> Result<String, String> {
        while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if pos < bytes.len() && bytes[pos] == b'#' {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err("unexpected end of header".into());
        }
        Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
    };
    if token()? != "P5" {
        return Err("not a binary PGM".into());
    }
    let w: usize = token()?.parse().map_err(|e| format!("bad width: {e}"))?;
    let h: usize = token()?.parse().map_err(|e| format!("bad height: {e}"))?;
    let maxval: usize = token()?.parse().map_err(|e| format!("bad maxval: {e}"))?;
    if maxval != 255 {
        return Err(format!("unsupported maxval {maxval}"));
    }
    pos += 1; // single whitespace after maxval
    if bytes.len() < pos + w * h {
        return Err("truncated pixel data".into());
    }
    Ok(GrayImage::from_u8(w, h, &bytes[pos..pos + w * h]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_roundtrip() {
        let img = GrayImage::from_fn(5, 3, |x, y| (x * 50 + y * 10) as f32);
        let dir = std::env::temp_dir().join("fd_imgproc_pnm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pgm");
        write_pgm(&path, &img).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.to_u8(), img.to_u8());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ppm_writes_header_and_payload() {
        let rgb = RgbImage::new(2, 2);
        let dir = std::env::temp_dir().join("fd_imgproc_pnm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.ppm");
        write_ppm(&path, &rgb).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(bytes.len(), b"P6\n2 2\n255\n".len() + 12);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_pgm(b"P4\n1 1\n255\nx").is_err());
        assert!(parse_pgm(b"P5\n10 10\n255\nshort").is_err());
    }
}
