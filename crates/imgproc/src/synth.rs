//! Procedural face and background synthesis.
//!
//! Stands in for the paper's training corpus (11 742 frontal 24x24 faces +
//! 3 500 backgrounds) and its accuracy corpus (SCFace mug shots + 3 000
//! backgrounds), which are not redistributable. Haar cascades consume only
//! gray-level *contrast structure* over rectangles, so a generator that
//! plants the canonical frontal-face contrasts — eye sockets darker than
//! forehead/cheeks, nose ridge brighter than its flanks, mouth band darker
//! than chin — with realistic intra-class variation (position jitter,
//! scale, illumination gradients, contrast, noise) exercises exactly the
//! code paths and statistics the paper measures (stage-wise rejection,
//! ROC shape). See DESIGN.md §2.
//!
//! The face is modelled as a continuous intensity field over normalized
//! coordinates and can be rendered at any resolution, which the video
//! substrate uses to composite faces of arbitrary sizes into frames.

use rand::Rng;

use crate::geom::PointF;
use crate::image::GrayImage;

/// Canonical normalized eye centers of the face model (fractions of the
/// window). Shared convention: training, ground truth and the detector's
/// predicted-eye estimate all use these.
pub const EYE_LEFT: (f64, f64) = (0.30, 0.38);
/// See [`EYE_LEFT`].
pub const EYE_RIGHT: (f64, f64) = (0.70, 0.38);

/// Parameters of one sampled face instance.
#[derive(Debug, Clone)]
pub struct FaceParams {
    /// Base skin intensity (mid gray).
    pub skin: f32,
    /// Intensity of the region outside the head oval (hair/backdrop).
    pub surround: f32,
    /// Eye darkness (subtracted from skin).
    pub eye_depth: f32,
    /// Brow darkness.
    pub brow_depth: f32,
    /// Mouth darkness.
    pub mouth_depth: f32,
    /// Nose-ridge brightness (added to skin).
    pub nose_gain: f32,
    /// Cheek brightness.
    pub cheek_gain: f32,
    /// Horizontal/vertical illumination gradient, intensity per unit uv.
    pub grad: (f32, f32),
    /// Feature-position jitter in uv units.
    pub jitter: (f64, f64),
    /// Overall feature scale multiplier (~1.0).
    pub feat_scale: f64,
    /// Relative strength of the left eye (natural asymmetry ~1.0; decoys
    /// may zero it out).
    pub left_eye_scale: f32,
    /// Additive Gaussian noise sigma.
    pub noise_sigma: f32,
    /// RNG stream for the pixel noise.
    pub noise_seed: u64,
}

impl FaceParams {
    /// Draw a random face instance. Ranges are deliberately wide (weak
    /// contrasts, strong noise, illumination gradients) so that a single
    /// Haar feature cannot separate faces from hard negatives — the
    /// property that forces multi-stump stages during cascade training.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            skin: rng.random_range(110.0..185.0),
            surround: rng.random_range(30.0..130.0),
            eye_depth: rng.random_range(30.0..95.0),
            brow_depth: rng.random_range(12.0..55.0),
            mouth_depth: rng.random_range(15.0..60.0),
            nose_gain: rng.random_range(5.0..30.0),
            cheek_gain: rng.random_range(3.0..20.0),
            grad: (rng.random_range(-35.0..35.0), rng.random_range(-25.0..25.0)),
            jitter: (rng.random_range(-0.06..0.06), rng.random_range(-0.06..0.06)),
            feat_scale: rng.random_range(0.84..1.19),
            left_eye_scale: rng.random_range(0.85..1.15),
            noise_sigma: rng.random_range(3.0..13.0),
            noise_seed: rng.random(),
        }
    }

    /// Draw a *decoy*: a corrupted face used as a hard negative. Decoys
    /// keep much of the frontal-face contrast budget but violate at least
    /// one defining property (inverted polarity, missing parts, wrong
    /// framing), so early cascade stages cannot reject them and training
    /// is forced to grow deep, multi-feature stages — standing in for the
    /// hard backgrounds a real bootstrap mines from photographs.
    pub fn decoy<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut p = Self::sample(rng);
        match rng.random_range(0..9u32) {
            // Inverted polarity: bright "eyes" / dark cheeks.
            0 => {
                p.eye_depth = -p.eye_depth;
                p.cheek_gain = -p.cheek_gain;
            }
            // Missing eyes (the most discriminative part).
            1 => {
                p.eye_depth *= rng.random_range(0.0..0.2);
                p.brow_depth *= rng.random_range(0.0..0.3);
            }
            // Missing lower face.
            2 => {
                p.mouth_depth *= rng.random_range(0.0..0.2);
                p.nose_gain *= rng.random_range(0.0..0.3);
            }
            // Badly framed: face much too small or large for the window.
            3 => {
                p.feat_scale =
                    if rng.random() { rng.random_range(0.45..0.65) } else { rng.random_range(1.5..2.0) };
            }
            // Badly centered: half the face outside the window.
            4 => {
                p.jitter = (
                    rng.random_range(0.18..0.35) * if rng.random() { 1.0 } else { -1.0 },
                    rng.random_range(-0.25..0.25),
                );
            }
            // --- subtle decoys: close to the face manifold, they keep
            // --- deep cascade stages supplied with hard negatives.
            // Mildly mis-scaled.
            5 => {
                p.feat_scale = if rng.random() {
                    rng.random_range(0.62..0.78)
                } else {
                    rng.random_range(1.28..1.48)
                };
            }
            // One eye missing (cyclops-adjacent clutter).
            6 => {
                p.left_eye_scale = rng.random_range(-0.2..0.15);
            }
            // Washed-out eyes: socket contrast strictly below the
            // weakest genuine face (samples draw eye_depth >= 30).
            7 => {
                p.eye_depth = rng.random_range(8.0..22.0);
            }
            // Mildly off-center.
            _ => {
                p.jitter = (
                    rng.random_range(0.10..0.17) * if rng.random() { 1.0 } else { -1.0 },
                    rng.random_range(0.08..0.15) * if rng.random() { 1.0 } else { -1.0 },
                );
            }
        }
        p
    }

    /// The "average" face with no jitter or noise; useful in tests.
    pub fn nominal() -> Self {
        Self {
            skin: 150.0,
            surround: 75.0,
            eye_depth: 75.0,
            brow_depth: 40.0,
            mouth_depth: 45.0,
            nose_gain: 20.0,
            cheek_gain: 12.0,
            grad: (0.0, 0.0),
            jitter: (0.0, 0.0),
            feat_scale: 1.0,
            left_eye_scale: 1.0,
            noise_sigma: 0.0,
            noise_seed: 0,
        }
    }

    /// The face intensity field at normalized coordinates `(u, v)` in
    /// `[0, 1]^2` (noise excluded).
    pub fn field(&self, u: f64, v: f64) -> f32 {
        let (ju, jv) = self.jitter;
        let s = self.feat_scale;
        // Re-center feature coordinates around the jittered face center.
        let fu = 0.5 + (u - 0.5 - ju) / s;
        let fv = 0.5 + (v - 0.5 - jv) / s;

        let mut val = self.skin + self.grad.0 * (u as f32 - 0.5) + self.grad.1 * (v as f32 - 0.5);

        // Head oval; outside is surround (hair / backdrop).
        let eu = (fu - 0.5) / 0.47;
        let ev = (fv - 0.52) / 0.50;
        if eu * eu + ev * ev > 1.0 {
            return self.surround + self.grad.0 * (u as f32 - 0.5);
        }

        // Eye sockets (left eye modulated by the asymmetry factor).
        for &((ex, ey), strength) in
            &[(EYE_LEFT, self.left_eye_scale), (EYE_RIGHT, 1.0)]
        {
            let du = (fu - ex) / 0.085;
            let dv = (fv - ey) / 0.055;
            let d2 = du * du + dv * dv;
            if d2 < 1.0 {
                val -= strength * self.eye_depth * (1.0 - d2 as f32);
            }
        }
        // Brows.
        for &bx in &[0.30, 0.70] {
            if (fv - 0.28).abs() < 0.025 && (fu - bx).abs() < 0.12 {
                val -= self.brow_depth;
            }
        }
        // Nose ridge and nostril shadow.
        if (fu - 0.5).abs() < 0.035 && (0.36..0.60).contains(&fv) {
            val += self.nose_gain;
        }
        if (fu - 0.5).abs() < 0.08 && (fv - 0.63).abs() < 0.02 {
            val -= 0.6 * self.brow_depth;
        }
        // Mouth band.
        if (fu - 0.5).abs() < 0.17 && (fv - 0.75).abs() < 0.03 {
            val -= self.mouth_depth;
        }
        // Cheek highlights.
        for &cx in &[0.28, 0.72] {
            let du = (fu - cx) / 0.12;
            let dv = (fv - 0.58) / 0.10;
            let d2 = du * du + dv * dv;
            if d2 < 1.0 {
                val += self.cheek_gain * (1.0 - d2 as f32);
            }
        }
        val
    }

    /// Render to a `size x size` window with 2x supersampling and noise.
    pub fn render(&self, size: usize) -> GrayImage {
        let mut noise = SplitMix64::new(self.noise_seed);
        let inv = 1.0 / size as f64;
        GrayImage::from_fn(size, size, |x, y| {
            // 2x2 supersample.
            let mut acc = 0.0f32;
            for (du, dv) in [(0.25, 0.25), (0.75, 0.25), (0.25, 0.75), (0.75, 0.75)] {
                acc += self.field((x as f64 + du) * inv, (y as f64 + dv) * inv);
            }
            let mut v = acc / 4.0;
            if self.noise_sigma > 0.0 {
                v += self.noise_sigma * noise.next_gaussian() as f32;
            }
            v.clamp(0.0, 255.0)
        })
    }

    /// Ground-truth eye centers for a face rendered at `size`, offset by
    /// `(ox, oy)` (composite position).
    pub fn eye_centers(&self, size: f64, ox: f64, oy: f64) -> (PointF, PointF) {
        let map = |(ex, ey): (f64, f64)| PointF {
            x: ox + (0.5 + (ex - 0.5) * self.feat_scale + self.jitter.0) * size,
            y: oy + (0.5 + (ey - 0.5) * self.feat_scale + self.jitter.1) * size,
        };
        (map(EYE_LEFT), map(EYE_RIGHT))
    }
}

/// Background texture families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackgroundKind {
    /// Smooth value noise (clouds, walls, foliage at a distance).
    ValueNoise,
    /// Linear illumination gradient.
    Gradient,
    /// Periodic stripes (fences, blinds).
    Stripes,
    /// Random axis-aligned rectangles (buildings, posters) — the family
    /// most likely to contain face-like contrast, keeping training honest.
    Blocks,
    /// Dark elliptical blobs on a lighter ground (foliage, crowds,
    /// bokeh): pairs of blobs at eye-like spacings are the classic source
    /// of Haar-cascade false positives.
    BlobField,
}

/// Render a random background of the given kind.
pub fn render_background<R: Rng + ?Sized>(
    rng: &mut R,
    width: usize,
    height: usize,
    kind: BackgroundKind,
) -> GrayImage {
    match kind {
        BackgroundKind::ValueNoise => {
            let cell = rng.random_range(6..24usize);
            value_noise(rng, width, height, cell)
        }
        BackgroundKind::Gradient => {
            let base = rng.random_range(40.0..200.0f32);
            let gx = rng.random_range(-60.0..60.0f32);
            let gy = rng.random_range(-60.0..60.0f32);
            GrayImage::from_fn(width, height, |x, y| {
                (base + gx * x as f32 / width as f32 + gy * y as f32 / height as f32)
                    .clamp(0.0, 255.0)
            })
        }
        BackgroundKind::Stripes => {
            let period = rng.random_range(4.0..32.0f32);
            let phase = rng.random_range(0.0..std::f32::consts::TAU);
            let vertical = rng.random::<bool>();
            let lo = rng.random_range(30.0..100.0f32);
            let hi = rng.random_range(140.0..230.0f32);
            GrayImage::from_fn(width, height, |x, y| {
                let t = if vertical { x } else { y } as f32;
                let s = ((t / period * std::f32::consts::TAU + phase).sin() + 1.0) / 2.0;
                lo + (hi - lo) * s
            })
        }
        BackgroundKind::Blocks => {
            let base = rng.random_range(60.0..180.0f32);
            let mut img = GrayImage::from_fn(width, height, |_, _| base);
            let n = rng.random_range(6..30usize);
            for _ in 0..n {
                let bw = rng.random_range(1..=width.max(2) / 2);
                let bh = rng.random_range(1..=height.max(2) / 2);
                let bx = rng.random_range(0..width);
                let by = rng.random_range(0..height);
                let v = rng.random_range(20.0..235.0f32);
                for y in by..(by + bh).min(height) {
                    for x in bx..(bx + bw).min(width) {
                        img.set(x, y, v);
                    }
                }
            }
            img
        }
        BackgroundKind::BlobField => {
            let base = rng.random_range(110.0..190.0f32);
            let mut img = GrayImage::from_fn(width, height, |_, _| base);
            let n = rng.random_range(4..16usize).max(width * height / 900);
            for _ in 0..n {
                let cx = rng.random_range(0.0..width as f32);
                let cy = rng.random_range(0.0..height as f32);
                let rx = rng.random_range(1.5..6.0f32);
                let ry = rng.random_range(1.0..4.5f32);
                let depth = rng.random_range(40.0..130.0f32);
                let x0 = (cx - rx).floor().max(0.0) as usize;
                let x1 = ((cx + rx).ceil() as usize).min(width.saturating_sub(1));
                let y0 = (cy - ry).floor().max(0.0) as usize;
                let y1 = ((cy + ry).ceil() as usize).min(height.saturating_sub(1));
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        let du = (x as f32 - cx) / rx;
                        let dv = (y as f32 - cy) / ry;
                        let d2 = du * du + dv * dv;
                        if d2 < 1.0 {
                            let v = img.get(x, y) - depth * (1.0 - d2);
                            img.set(x, y, v.max(0.0));
                        }
                    }
                }
            }
            img
        }
    }
}

/// Render a random background of a random kind.
pub fn render_random_background<R: Rng + ?Sized>(
    rng: &mut R,
    width: usize,
    height: usize,
) -> GrayImage {
    let kind = match rng.random_range(0..5u32) {
        0 => BackgroundKind::ValueNoise,
        1 => BackgroundKind::Gradient,
        2 => BackgroundKind::Stripes,
        3 => BackgroundKind::Blocks,
        _ => BackgroundKind::BlobField,
    };
    render_background(rng, width, height, kind)
}

/// Smooth value noise: a coarse random lattice sampled bilinearly.
pub fn value_noise<R: Rng + ?Sized>(
    rng: &mut R,
    width: usize,
    height: usize,
    cell: usize,
) -> GrayImage {
    let cell = cell.max(2);
    let gw = width / cell + 2;
    let gh = height / cell + 2;
    let grid: Vec<f32> = (0..gw * gh).map(|_| rng.random_range(20.0..235.0)).collect();
    GrayImage::from_fn(width, height, |x, y| {
        let fx = x as f32 / cell as f32;
        let fy = y as f32 / cell as f32;
        let x0 = fx.floor() as usize;
        let y0 = fy.floor() as usize;
        let tx = fx - x0 as f32;
        let ty = fy - y0 as f32;
        let g = |gx: usize, gy: usize| grid[gy.min(gh - 1) * gw + gx.min(gw - 1)];
        let top = g(x0, y0) * (1.0 - tx) + g(x0 + 1, y0) * tx;
        let bot = g(x0, y0 + 1) * (1.0 - tx) + g(x0 + 1, y0 + 1) * tx;
        top * (1.0 - ty) + bot * ty
    })
}

/// Small deterministic RNG for pixel noise (SplitMix64), independent of the
/// `rand` crate's stream ordering so renders are stable across rand
/// versions.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
    spare: Option<f64>,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed, spare: None }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        let (mut u1, u2) = (self.next_f64(), self.next_f64());
        if u1 < 1e-300 {
            u1 = 1e-300;
        }
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_face_has_canonical_contrasts() {
        let f = FaceParams::nominal();
        let img = f.render(24);
        // Eye regions darker than forehead and cheeks.
        let eye_l = img.get(7, 9);
        let forehead = img.get(12, 3);
        let cheek = img.get(7, 14);
        assert!(eye_l < forehead - 20.0, "eye {eye_l} vs forehead {forehead}");
        assert!(eye_l < cheek - 20.0, "eye {eye_l} vs cheek {cheek}");
        // Nose ridge brighter than its flanks.
        let nose = img.get(12, 11);
        let flank = img.get(9, 12);
        assert!(nose > flank + 5.0, "nose {nose} vs flank {flank}");
        // Mouth darker than chin.
        let mouth = img.get(12, 18);
        let chin = img.get(12, 21);
        assert!(mouth < chin - 15.0, "mouth {mouth} vs chin {chin}");
    }

    #[test]
    fn sampled_faces_vary_but_keep_structure() {
        let mut rng = StdRng::seed_from_u64(7);
        // 3x3 neighbourhood mean, robust to the per-pixel noise.
        let patch = |img: &GrayImage, cx: usize, cy: usize| -> f32 {
            let mut acc = 0.0;
            for dy in 0..3 {
                for dx in 0..3 {
                    acc += img.get(cx + dx - 1, cy + dy - 1);
                }
            }
            acc / 9.0
        };
        let mut eye_vals = Vec::new();
        let mut darker = 0;
        for _ in 0..20 {
            let f = FaceParams::sample(&mut rng);
            let img = f.render(24);
            let eye = (patch(&img, 7, 9) + patch(&img, 17, 9)) / 2.0;
            let cheeks = (patch(&img, 7, 14) + patch(&img, 17, 14)) / 2.0;
            if eye < cheeks {
                darker += 1;
            }
            eye_vals.push(eye);
        }
        // Weak-contrast instances exist, but the canonical structure must
        // dominate.
        assert!(darker >= 17, "eyes darker than cheeks in only {darker}/20 faces");
        let min = eye_vals.iter().cloned().fold(f32::MAX, f32::min);
        let max = eye_vals.iter().cloned().fold(f32::MIN, f32::max);
        assert!(max - min > 5.0, "instances must differ ({min}..{max})");
    }

    #[test]
    fn decoys_break_at_least_one_face_property() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut differs = 0;
        for _ in 0..30 {
            let d = FaceParams::decoy(&mut rng);
            // Sampled faces have eye_depth >= 30, mouth_depth >= 15,
            // feat_scale in 0.88..1.12, |jitter| <= 0.035 and
            // left_eye_scale in 0.85..1.15 — each clause below is
            // unreachable for a genuine face.
            let violates = d.eye_depth < 25.0      // missing/inverted/washed eyes
                || d.mouth_depth < 13.0            // missing mouth
                || !(0.84..=1.19).contains(&d.feat_scale) // mis-scaled
                || d.left_eye_scale < 0.5          // one-eyed
                || d.jitter.0.abs() > 0.09         // off-center
                || d.jitter.1.abs() > 0.07;
            if violates {
                differs += 1;
            }
            // Decoys must still render without panicking at any size.
            let img = d.render(24);
            assert_eq!(img.width(), 24);
        }
        assert_eq!(differs, 30, "every decoy must violate a face property");
    }

    #[test]
    fn eye_centers_track_jitter_and_offset() {
        let mut f = FaceParams::nominal();
        f.jitter = (0.1, 0.0);
        let (l, r) = f.eye_centers(100.0, 10.0, 20.0);
        assert!((l.x - (10.0 + 40.0)).abs() < 1e-9); // 0.30 + 0.1 jitter
        assert!((r.x - (10.0 + 80.0)).abs() < 1e-9);
        assert!((l.y - (20.0 + 38.0)).abs() < 1e-9);
    }

    #[test]
    fn renders_at_any_resolution() {
        let f = FaceParams::nominal();
        for size in [24, 48, 96] {
            let img = f.render(size);
            assert_eq!(img.width(), size);
            // The structure scales: eyes dark relative to image mean.
            let e = img.get(size * 3 / 10, size * 38 / 100);
            assert!((e as f64) < img.mean());
        }
    }

    #[test]
    fn backgrounds_cover_all_kinds_and_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for kind in [
            BackgroundKind::ValueNoise,
            BackgroundKind::Gradient,
            BackgroundKind::Stripes,
            BackgroundKind::Blocks,
            BackgroundKind::BlobField,
        ] {
            let img = render_background(&mut rng, 64, 48, kind);
            assert_eq!((img.width(), img.height()), (64, 48));
            for &v in img.as_slice() {
                assert!((0.0..=255.0).contains(&v), "{kind:?} out of range: {v}");
            }
        }
    }

    #[test]
    fn value_noise_is_smooth() {
        let mut rng = StdRng::seed_from_u64(11);
        let img = value_noise(&mut rng, 64, 64, 16);
        let mut max_step = 0.0f32;
        for y in 0..64 {
            for x in 1..64 {
                max_step = max_step.max((img.get(x, y) - img.get(x - 1, y)).abs());
            }
        }
        // Neighbouring pixels differ by at most the lattice range / cell.
        assert!(max_step < 30.0, "max step {max_step}");
    }

    #[test]
    fn splitmix_gaussian_has_sane_moments() {
        let mut g = SplitMix64::new(42);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let v = g.next_gaussian();
            sum += v;
            sum2 += v * v;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
