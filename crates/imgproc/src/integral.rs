//! Integral images (summed-area tables).
//!
//! The table has `(w + 1) x (h + 1)` entries with a zero top row and left
//! column, so any rectangle sum is four lookups with no edge cases — the
//! layout the cascade-evaluation kernel tiles into shared memory.
//!
//! Pixels are quantized to 8 bits before summation; with `u32` accumulators
//! the construction is exact up to 16.8-megapixel images
//! (`255 * 16_843_009 < u32::MAX`), comfortably covering 1080p.

use crate::geom::Rect;
use crate::image::GrayImage;

/// Summed-area table of an 8-bit luma image.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralImage {
    /// Source image width (table is one wider).
    width: usize,
    /// Source image height (table is one taller).
    height: usize,
    data: Vec<u32>,
}

impl IntegralImage {
    /// Build from a float image (quantizing to 8 bits first).
    pub fn from_gray(img: &GrayImage) -> Self {
        Self::from_u8(img.width(), img.height(), &img.to_u8())
    }

    /// Build from 8-bit luma data with the sequential O(w*h) recurrence.
    pub fn from_u8(width: usize, height: usize, pixels: &[u8]) -> Self {
        assert_eq!(pixels.len(), width * height);
        assert!(
            width as u64 * height as u64 <= 16_843_009,
            "image too large for exact u32 integral"
        );
        let tw = width + 1;
        let mut data = vec![0u32; tw * (height + 1)];
        for y in 0..height {
            let mut row_sum = 0u32;
            for x in 0..width {
                row_sum += pixels[y * width + x] as u32;
                data[(y + 1) * tw + (x + 1)] = data[y * tw + (x + 1)] + row_sum;
            }
        }
        Self { width, height, data }
    }

    /// Construct from a raw `(w+1) x (h+1)` table (used by the GPU scan
    /// formulation). Panics if the table's zero border is malformed.
    pub fn from_table(width: usize, height: usize, data: Vec<u32>) -> Self {
        let tw = width + 1;
        assert_eq!(data.len(), tw * (height + 1));
        assert!(data[..tw].iter().all(|&v| v == 0), "top border must be zero");
        assert!(
            (0..=height).all(|y| data[y * tw] == 0),
            "left border must be zero"
        );
        Self { width, height, data }
    }

    /// Source image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Table width (`width + 1`).
    pub fn table_width(&self) -> usize {
        self.width + 1
    }

    /// Table height (`height + 1`).
    pub fn table_height(&self) -> usize {
        self.height + 1
    }

    /// Raw table data.
    pub fn table(&self) -> &[u32] {
        &self.data
    }

    /// Table entry: sum of all pixels strictly above and left of `(x, y)`.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> u32 {
        debug_assert!(x <= self.width && y <= self.height);
        self.data[y * (self.width + 1) + x]
    }

    /// Sum of pixels in the half-open rectangle `[x, x+w) x [y, y+h)`.
    ///
    /// The rectangle must lie inside the image.
    #[inline]
    pub fn rect_sum(&self, x: usize, y: usize, w: usize, h: usize) -> i64 {
        debug_assert!(x + w <= self.width && y + h <= self.height);
        let tw = self.width + 1;
        let a = self.data[y * tw + x] as i64;
        let b = self.data[y * tw + (x + w)] as i64;
        let c = self.data[(y + h) * tw + x] as i64;
        let d = self.data[(y + h) * tw + (x + w)] as i64;
        d - b - c + a
    }

    /// Rectangle sum via [`Rect`] (must be inside the image).
    pub fn rect(&self, r: Rect) -> i64 {
        assert!(r.x >= 0 && r.y >= 0);
        self.rect_sum(r.x as usize, r.y as usize, r.w as usize, r.h as usize)
    }

    /// Mean pixel value over a rectangle.
    pub fn rect_mean(&self, r: Rect) -> f64 {
        self.rect(r) as f64 / r.area() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sum(pix: &[u8], w: usize, x: usize, y: usize, rw: usize, rh: usize) -> i64 {
        let mut s = 0i64;
        for yy in y..y + rh {
            for xx in x..x + rw {
                s += pix[yy * w + xx] as i64;
            }
        }
        s
    }

    #[test]
    fn matches_naive_double_loop() {
        let (w, h) = (7, 5);
        let pix: Vec<u8> = (0..w * h).map(|i| (i * 37 % 251) as u8).collect();
        let ii = IntegralImage::from_u8(w, h, &pix);
        for y in 0..h {
            for x in 0..w {
                for rh in 1..=h - y {
                    for rw in 1..=w - x {
                        assert_eq!(
                            ii.rect_sum(x, y, rw, rh),
                            naive_sum(&pix, w, x, y, rw, rh),
                            "rect ({x},{y},{rw},{rh})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_image_sum_equals_last_entry() {
        let pix = vec![3u8; 12];
        let ii = IntegralImage::from_u8(4, 3, &pix);
        assert_eq!(ii.at(4, 3), 36);
        assert_eq!(ii.rect_sum(0, 0, 4, 3), 36);
    }

    #[test]
    fn borders_are_zero() {
        let pix = vec![200u8; 9];
        let ii = IntegralImage::from_u8(3, 3, &pix);
        for x in 0..=3 {
            assert_eq!(ii.at(x, 0), 0);
        }
        for y in 0..=3 {
            assert_eq!(ii.at(0, y), 0);
        }
    }

    #[test]
    fn from_gray_quantizes_first() {
        let img = GrayImage::from_vec(2, 1, vec![0.4, 0.6]);
        let ii = IntegralImage::from_gray(&img);
        assert_eq!(ii.rect_sum(0, 0, 2, 1), 1); // 0 + 1
    }

    #[test]
    fn from_table_validates_borders() {
        // 1x1 image with pixel 5.
        let ok = IntegralImage::from_table(1, 1, vec![0, 0, 0, 5]);
        assert_eq!(ok.rect_sum(0, 0, 1, 1), 5);
        let r = std::panic::catch_unwind(|| {
            IntegralImage::from_table(1, 1, vec![0, 1, 0, 5]);
        });
        assert!(r.is_err());
    }

    #[test]
    fn rect_helpers_agree() {
        let pix: Vec<u8> = (0..24).map(|i| i as u8).collect();
        let ii = IntegralImage::from_u8(6, 4, &pix);
        let r = Rect::new(1, 1, 3, 2);
        assert_eq!(ii.rect(r), naive_sum(&pix, 6, 1, 1, 3, 2));
        assert!((ii.rect_mean(r) - ii.rect(r) as f64 / 6.0).abs() < 1e-12);
    }
}
