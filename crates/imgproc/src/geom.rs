//! Basic geometry shared across the workspace.

/// Axis-aligned rectangle in pixel coordinates (integer grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    pub x: i32,
    pub y: i32,
    pub w: u32,
    pub h: u32,
}

impl Rect {
    pub const fn new(x: i32, y: i32, w: u32, h: u32) -> Self {
        Self { x, y, w, h }
    }

    pub fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    pub fn right(&self) -> i32 {
        self.x + self.w as i32
    }

    pub fn bottom(&self) -> i32 {
        self.y + self.h as i32
    }

    /// Center of the rectangle.
    pub fn center(&self) -> PointF {
        PointF {
            x: self.x as f64 + self.w as f64 / 2.0,
            y: self.y as f64 + self.h as f64 / 2.0,
        }
    }

    /// Intersection; `None` when disjoint or degenerate.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        if x1 > x0 && y1 > y0 {
            Some(Rect::new(x0, y0, (x1 - x0) as u32, (y1 - y0) as u32))
        } else {
            None
        }
    }

    /// Intersection-over-union, the `S_square` score of the paper (Eq. 5).
    pub fn iou(&self, other: &Rect) -> f64 {
        match self.intersect(other) {
            None => 0.0,
            Some(i) => {
                let inter = i.area() as f64;
                let union = (self.area() + other.area()) as f64 - inter;
                inter / union
            }
        }
    }

    /// Whether `other` lies entirely within `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        other.x >= self.x
            && other.y >= self.y
            && other.right() <= self.right()
            && other.bottom() <= self.bottom()
    }

    /// Scale position and size by `s`, rounding to the pixel grid.
    pub fn scaled(&self, s: f64) -> Rect {
        Rect::new(
            (self.x as f64 * s).round() as i32,
            (self.y as f64 * s).round() as i32,
            (self.w as f64 * s).round().max(1.0) as u32,
            (self.h as f64 * s).round().max(1.0) as u32,
        )
    }
}

/// A point with sub-pixel precision (used for eye locations).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PointF {
    pub x: f64,
    pub y: f64,
}

impl PointF {
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    pub fn distance(&self, other: &PointF) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_and_iou() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Rect::new(5, 5, 5, 5));
        // 25 / (100 + 100 - 25)
        assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_rects_have_zero_iou() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(10, 10, 4, 4);
        assert!(a.intersect(&b).is_none());
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn identical_rects_have_unit_iou() {
        let a = Rect::new(3, -2, 7, 9);
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contains_checks_all_edges() {
        let outer = Rect::new(0, 0, 10, 10);
        assert!(outer.contains(&Rect::new(2, 2, 5, 5)));
        assert!(outer.contains(&outer));
        assert!(!outer.contains(&Rect::new(8, 8, 5, 5)));
    }

    #[test]
    fn scaled_rounds_and_keeps_min_size() {
        let r = Rect::new(2, 3, 4, 5).scaled(2.5);
        assert_eq!(r, Rect::new(5, 8, 10, 13));
        let tiny = Rect::new(0, 0, 1, 1).scaled(0.1);
        assert_eq!(tiny.w, 1);
        assert_eq!(tiny.h, 1);
    }

    #[test]
    fn point_distance_is_euclidean() {
        let a = PointF::new(0.0, 0.0);
        let b = PointF::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }
}
