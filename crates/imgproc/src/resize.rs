//! Bilinear resizing matching the GPU texture convention.
//!
//! The scaling stage of the pipeline maps each destination pixel center
//! back into the source and performs a bilinear fetch with texel centers at
//! integer + 0.5 — exactly [`fd_gpu` texture] semantics (`tex2D` with
//! linear filtering). The host implementation here is the reference the GPU
//! scaling kernel is verified against.

use crate::image::GrayImage;

/// Bilinear sample of `img` at continuous coordinates with texel centers at
/// integer + 0.5 and clamp addressing.
#[inline]
pub fn sample_bilinear(img: &GrayImage, x: f32, y: f32) -> f32 {
    let xb = x - 0.5;
    let yb = y - 0.5;
    let x0 = xb.floor();
    let y0 = yb.floor();
    let fx = xb - x0;
    let fy = yb - y0;
    let x0 = x0 as isize;
    let y0 = y0 as isize;
    let t00 = img.get_clamped(x0, y0);
    let t10 = img.get_clamped(x0 + 1, y0);
    let t01 = img.get_clamped(x0, y0 + 1);
    let t11 = img.get_clamped(x0 + 1, y0 + 1);
    let top = t00 + (t10 - t00) * fx;
    let bot = t01 + (t11 - t01) * fx;
    top + (bot - top) * fy
}

/// Resize to `(nw, nh)` with bilinear interpolation.
pub fn resize_bilinear(img: &GrayImage, nw: usize, nh: usize) -> GrayImage {
    assert!(nw > 0 && nh > 0);
    let sx = img.width() as f32 / nw as f32;
    let sy = img.height() as f32 / nh as f32;
    GrayImage::from_fn(nw, nh, |x, y| {
        sample_bilinear(img, (x as f32 + 0.5) * sx, (y as f32 + 0.5) * sy)
    })
}

/// Downscale by an integral factor with box averaging (exact anti-aliased
/// reference used in tests).
pub fn downscale_box(img: &GrayImage, factor: usize) -> GrayImage {
    assert!(factor >= 1);
    let nw = img.width() / factor;
    let nh = img.height() / factor;
    assert!(nw > 0 && nh > 0, "factor too large");
    GrayImage::from_fn(nw, nh, |x, y| {
        let mut acc = 0.0f32;
        for dy in 0..factor {
            for dx in 0..factor {
                acc += img.get(x * factor + dx, y * factor + dy);
            }
        }
        acc / (factor * factor) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resize_is_exact() {
        let img = GrayImage::from_fn(8, 6, |x, y| (x * 7 + y * 3) as f32);
        let out = resize_bilinear(&img, 8, 6);
        for (a, b) in img.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_image_stays_constant() {
        let img = GrayImage::from_fn(17, 13, |_, _| 93.0);
        let out = resize_bilinear(&img, 5, 9);
        for &v in out.as_slice() {
            assert!((v - 93.0).abs() < 1e-4);
        }
    }

    #[test]
    fn halving_a_gradient_preserves_linearity() {
        // f(x) = x: downscaled 2x, pixel i should read ~ (2i + 0.5).
        let img = GrayImage::from_fn(16, 4, |x, _| x as f32);
        let out = resize_bilinear(&img, 8, 4);
        for x in 1..7 {
            let expect = 2.0 * x as f32 + 0.5;
            assert!(
                (out.get(x, 1) - expect).abs() < 1e-3,
                "x={x}: {} vs {expect}",
                out.get(x, 1)
            );
        }
    }

    #[test]
    fn box_downscale_averages() {
        let img = GrayImage::from_vec(4, 2, vec![0.0, 4.0, 8.0, 12.0, 2.0, 6.0, 10.0, 14.0]);
        let out = downscale_box(&img, 2);
        assert_eq!(out.width(), 2);
        assert_eq!(out.get(0, 0), 3.0);
        assert_eq!(out.get(1, 0), 11.0);
    }

    #[test]
    fn matches_gpu_texture_fetch() {
        // sample_bilinear must agree with fd-gpu's Texture2D at many points;
        // replicated here structurally (no dependency) via a tiny oracle.
        let img = GrayImage::from_fn(5, 5, |x, y| (x * 5 + y) as f32);
        // At texel centers the sample equals the pixel.
        for y in 0..5 {
            for x in 0..5 {
                let s = sample_bilinear(&img, x as f32 + 0.5, y as f32 + 0.5);
                assert!((s - img.get(x, y)).abs() < 1e-5);
            }
        }
        // Midway between two texels: average.
        let s = sample_bilinear(&img, 1.0, 0.5);
        assert!((s - (img.get(0, 0) + img.get(1, 0)) / 2.0).abs() < 1e-5);
    }
}
