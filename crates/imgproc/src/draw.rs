//! RGB images and rectangle drawing — the pipeline's display stage output.

use crate::geom::Rect;
use crate::image::GrayImage;

/// An 8-bit RGB image, row-major, interleaved.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl RgbImage {
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        Self { width, height, data: vec![0; width * height * 3] }
    }

    /// Replicate a gray image into all three channels.
    pub fn from_gray(img: &GrayImage) -> Self {
        let mut out = Self::new(img.width(), img.height());
        for (i, v) in img.to_u8().into_iter().enumerate() {
            out.data[i * 3] = v;
            out.data[i * 3 + 1] = v;
            out.data[i * 3 + 2] = v;
        }
        out
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let i = (y * self.width + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        if x < self.width && y < self.height {
            let i = (y * self.width + x) * 3;
            self.data[i..i + 3].copy_from_slice(&rgb);
        }
    }

    /// Draw a rectangle outline of the given `thickness`, clipped to the
    /// image (what the display kernel does for confirmed detections).
    pub fn draw_rect(&mut self, r: Rect, rgb: [u8; 3], thickness: u32) {
        let t = thickness as i32;
        for dy in 0..t {
            for x in r.x..r.right() {
                self.set_clipped(x, r.y + dy, rgb);
                self.set_clipped(x, r.bottom() - 1 - dy, rgb);
            }
        }
        for dx in 0..t {
            for y in r.y..r.bottom() {
                self.set_clipped(r.x + dx, y, rgb);
                self.set_clipped(r.right() - 1 - dx, y, rgb);
            }
        }
    }

    #[inline]
    fn set_clipped(&mut self, x: i32, y: i32, rgb: [u8; 3]) {
        if x >= 0 && y >= 0 {
            self.set(x as usize, y as usize, rgb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_gray_replicates_channels() {
        let g = GrayImage::from_vec(2, 1, vec![10.0, 250.0]);
        let rgb = RgbImage::from_gray(&g);
        assert_eq!(rgb.get(0, 0), [10, 10, 10]);
        assert_eq!(rgb.get(1, 0), [250, 250, 250]);
    }

    #[test]
    fn draw_rect_outlines_without_filling() {
        let mut img = RgbImage::new(10, 10);
        img.draw_rect(Rect::new(2, 2, 6, 6), [255, 0, 0], 1);
        assert_eq!(img.get(2, 2), [255, 0, 0]);
        assert_eq!(img.get(7, 7), [255, 0, 0]);
        assert_eq!(img.get(4, 2), [255, 0, 0]);
        // Interior untouched.
        assert_eq!(img.get(4, 4), [0, 0, 0]);
    }

    #[test]
    fn draw_rect_clips_at_borders() {
        let mut img = RgbImage::new(4, 4);
        img.draw_rect(Rect::new(-2, -2, 10, 10), [0, 255, 0], 1);
        // No panic; nothing inside is colored except the clipped outline.
        assert_eq!(img.get(1, 1), [0, 0, 0]);
    }

    #[test]
    fn thickness_widens_the_border() {
        let mut img = RgbImage::new(12, 12);
        img.draw_rect(Rect::new(1, 1, 10, 10), [9, 9, 9], 2);
        assert_eq!(img.get(2, 2), [9, 9, 9]);
        assert_eq!(img.get(3, 3), [0, 0, 0]);
    }
}
