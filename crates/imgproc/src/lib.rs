//! # fd-imgproc — image substrate for the face-detection reproduction
//!
//! Host-side image processing used by every other crate:
//!
//! * [`GrayImage`] / [`RgbImage`] containers ([`image`], [`draw`]);
//! * bilinear resizing that matches the GPU texture interpolation
//!   convention exactly ([`resize`]), so the CPU reference pipeline and the
//!   simulated-GPU pipeline are bit-comparable;
//! * separable low-pass filters for the anti-aliasing stage ([`filter`]);
//! * image pyramids with a configurable scale factor ([`pyramid`]);
//! * integral images with both the sequential reference construction and
//!   the paper's parallel formulation — row-wise prefix sums composed with
//!   matrix transpositions ([`integral`], [`scan`]);
//! * procedural face and background synthesis ([`synth`]) standing in for
//!   the paper's face databases (see DESIGN.md, substitutions);
//! * PGM/PPM output for the examples ([`pnm`]).

pub mod draw;
pub mod filter;
pub mod geom;
pub mod image;
pub mod integral;
pub mod pnm;
pub mod pyramid;
pub mod resize;
pub mod scan;
pub mod synth;

pub use draw::RgbImage;
pub use geom::{PointF, Rect};
pub use image::GrayImage;
pub use integral::IntegralImage;
pub use pyramid::Pyramid;
