//! Image pyramids for fixed-window multi-scale detection.
//!
//! The detector keeps the sliding window constant (24x24) and downscales
//! the frame (paper §III-A, Fig. 2 right): level `i` has dimensions
//! `frame / factor^i`, down to the smallest level still containing one
//! window. Detections found at level `i` map back to the original frame by
//! multiplying by `factor^i`.

use crate::image::GrayImage;
use crate::resize::resize_bilinear;

/// A multi-scale image pyramid. Level 0 is the original image.
#[derive(Debug, Clone)]
pub struct Pyramid {
    /// Per-level images, largest first.
    pub levels: Vec<GrayImage>,
    /// Geometric scale factor between consecutive levels (> 1).
    pub factor: f64,
}

impl Pyramid {
    /// Build a pyramid with the given per-level `factor` (> 1), stopping
    /// when a level would no longer contain a `min_size` square.
    pub fn build(base: &GrayImage, factor: f64, min_size: usize) -> Self {
        assert!(factor > 1.0, "scale factor must exceed 1");
        assert!(min_size >= 1);
        let mut levels = vec![base.clone()];
        let mut scale = factor;
        loop {
            let nw = (base.width() as f64 / scale).round() as usize;
            let nh = (base.height() as f64 / scale).round() as usize;
            if nw < min_size || nh < min_size {
                break;
            }
            levels.push(resize_bilinear(base, nw, nh));
            scale *= factor;
        }
        Self { levels, factor }
    }

    /// Plan the level dimensions without building images (used to size GPU
    /// allocations and by the benchmarks to report work per scale).
    pub fn plan(width: usize, height: usize, factor: f64, min_size: usize) -> Vec<(usize, usize)> {
        assert!(factor > 1.0);
        let mut out = vec![(width, height)];
        let mut scale = factor;
        loop {
            let nw = (width as f64 / scale).round() as usize;
            let nh = (height as f64 / scale).round() as usize;
            if nw < min_size || nh < min_size {
                break;
            }
            out.push((nw, nh));
            scale *= factor;
        }
        out
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The scale of level `i` relative to the original image
    /// (original = level coordinates x this value).
    pub fn scale_of(&self, level: usize) -> f64 {
        self.factor.powi(level as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pyramid_levels_shrink_geometrically() {
        let img = GrayImage::new(192, 108);
        let p = Pyramid::build(&img, 1.25, 24);
        assert!(p.len() > 3);
        for i in 1..p.len() {
            assert!(p.levels[i].width() < p.levels[i - 1].width());
            let expect = (192.0 / 1.25f64.powi(i as i32)).round() as usize;
            assert_eq!(p.levels[i].width(), expect);
        }
        // Smallest level still fits a 24x24 window.
        let last = p.levels.last().unwrap();
        assert!(last.width() >= 24 && last.height() >= 24);
    }

    #[test]
    fn plan_matches_build() {
        let img = GrayImage::new(160, 90);
        let p = Pyramid::build(&img, 1.3, 24);
        let plan = Pyramid::plan(160, 90, 1.3, 24);
        assert_eq!(plan.len(), p.len());
        for (lvl, (w, h)) in p.levels.iter().zip(&plan) {
            assert_eq!((lvl.width(), lvl.height()), (*w, *h));
        }
    }

    #[test]
    fn scale_of_is_factor_power() {
        let img = GrayImage::new(100, 100);
        let p = Pyramid::build(&img, 2.0, 10);
        assert_eq!(p.scale_of(0), 1.0);
        assert_eq!(p.scale_of(2), 4.0);
    }

    #[test]
    fn hd_1080p_plan_has_realistic_depth() {
        // With factor 1.25 and a 24px window, 1080p yields ~17 scales
        // (1080/24 = 45 = 1.25^k -> k ~ 17). This is the per-frame kernel
        // count driving the concurrency experiment.
        let plan = Pyramid::plan(1920, 1080, 1.25, 24);
        assert!(plan.len() >= 15 && plan.len() <= 20, "got {}", plan.len());
    }
}
