//! The paper's parallel integral-image formulation: row-wise inclusive
//! prefix sums composed with matrix transpositions (§III-B, after Messom &
//! Barczak and Bilgic et al.).
//!
//! `integral = transpose(scan_rows(transpose(scan_rows(I))))`
//!
//! These host functions are the reference the GPU kernels in `fd-detector`
//! are tested against; [`integral_via_scan`] is itself tested for
//! equivalence with the sequential recurrence in [`crate::integral`].

use crate::image::GrayImage;
use crate::integral::IntegralImage;

/// In-place inclusive prefix sum along each row of a `w x h` row-major
/// matrix.
pub fn scan_rows_inclusive(data: &mut [u32], w: usize, h: usize) {
    assert_eq!(data.len(), w * h);
    for row in data.chunks_exact_mut(w) {
        let mut acc = 0u32;
        for v in row {
            acc += *v;
            *v = acc;
        }
    }
}

/// Exclusive prefix sum of one sequence (used by block-level scan kernels).
pub fn scan_exclusive(data: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(data.len());
    let mut acc = 0u32;
    for &v in data {
        out.push(acc);
        acc += v;
    }
    out
}

/// Out-of-place transpose of a `w x h` row-major matrix into `h x w`.
pub fn transpose(data: &[u32], w: usize, h: usize) -> Vec<u32> {
    assert_eq!(data.len(), w * h);
    let mut out = vec![0u32; w * h];
    for y in 0..h {
        for x in 0..w {
            out[x * h + y] = data[y * w + x];
        }
    }
    out
}

/// Build an integral image using the scan/transpose composition.
///
/// The input is quantized to 8 bits exactly as
/// [`IntegralImage::from_gray`] does, so the two constructions agree
/// bit-for-bit.
pub fn integral_via_scan(img: &GrayImage) -> IntegralImage {
    let w = img.width();
    let h = img.height();
    let pixels = img.to_u8();

    // Row-wise scan of the raw pixels.
    let mut m: Vec<u32> = pixels.iter().map(|&v| v as u32).collect();
    scan_rows_inclusive(&mut m, w, h);
    // Transpose to h x w, scan rows (former columns), transpose back.
    let mut t = transpose(&m, w, h);
    scan_rows_inclusive(&mut t, h, w);
    let m = transpose(&t, h, w);

    // Embed into the (w+1) x (h+1) bordered table.
    let tw = w + 1;
    let mut table = vec![0u32; tw * (h + 1)];
    for y in 0..h {
        for x in 0..w {
            table[(y + 1) * tw + (x + 1)] = m[y * w + x];
        }
    }
    IntegralImage::from_table(w, h, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_rows_is_per_row_cumulative() {
        let mut m = vec![1, 2, 3, 10, 20, 30];
        scan_rows_inclusive(&mut m, 3, 2);
        assert_eq!(m, vec![1, 3, 6, 10, 30, 60]);
    }

    #[test]
    fn exclusive_scan_shifts_inclusive() {
        assert_eq!(scan_exclusive(&[3, 1, 4, 1]), vec![0, 3, 4, 8]);
        assert_eq!(scan_exclusive(&[]), Vec::<u32>::new());
    }

    #[test]
    fn transpose_involutes() {
        let m: Vec<u32> = (0..12).collect();
        let t = transpose(&m, 4, 3);
        assert_eq!(t[0], 0);
        assert_eq!(t[1], 4); // (x=1 in 3x4) was (y=1,x=0)
        let back = transpose(&t, 3, 4);
        assert_eq!(back, m);
    }

    #[test]
    fn scan_formulation_matches_sequential() {
        let img = GrayImage::from_fn(13, 9, |x, y| ((x * 31 + y * 17) % 256) as f32);
        let a = IntegralImage::from_gray(&img);
        let b = integral_via_scan(&img);
        assert_eq!(a, b);
    }

    #[test]
    fn scan_formulation_on_single_pixel() {
        let img = GrayImage::from_vec(1, 1, vec![42.0]);
        let ii = integral_via_scan(&img);
        assert_eq!(ii.rect_sum(0, 0, 1, 1), 42);
    }
}
