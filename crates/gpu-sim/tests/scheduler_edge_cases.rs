//! Integration tests for scheduler corner cases that unit tests don't
//! reach: the concurrent-kernel cap, cross-stream event chains through
//! the high-level API, and mode switching mid-session.

use fd_gpu::{
    BlockCtx, DevBuf, DeviceSpec, ExecMode, Gpu, Kernel, LaunchConfig,
};

/// Adds `value` to every element; meters a fixed issue cost.
struct AddKernel {
    buf: DevBuf<u32>,
    value: u32,
    cycles: u64,
}

impl Kernel for AddKernel {
    fn name(&self) -> &'static str {
        "add"
    }
    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        if ctx.block_idx.x == 0 {
            for v in ctx.mem.write(self.buf).iter_mut() {
                *v += self.value;
            }
        }
        ctx.meter.alu(self.cycles);
    }
}

#[test]
fn concurrent_kernel_cap_limits_simultaneous_launches() {
    // 32 single-block kernels in 32 distinct streams on a device capped
    // at 16 concurrent kernels: the span must be at least two kernel
    // durations (two waves), yet far below full serialization.
    let mut spec = DeviceSpec::gtx470();
    spec.launch_overhead_us = 0.0;
    let mut gpu = Gpu::new(spec, ExecMode::Concurrent);
    let buf = gpu.mem.alloc::<u32>(4);
    let kernel_cycles = 1_215_000; // ~1 ms each
    for _ in 0..32 {
        let s = gpu.create_stream();
        gpu.launch(AddKernel { buf, value: 0, cycles: kernel_cycles }, LaunchConfig::linear(256, 256), s)
            .unwrap();
    }
    let t = gpu.synchronize();
    let ms = t.span_us() / 1000.0;
    assert!(ms >= 1.9, "16-way cap forces at least two waves, got {ms:.2} ms");
    assert!(ms <= 8.0, "far better than 32 serial milliseconds, got {ms:.2} ms");
}

#[test]
fn event_chain_across_three_streams_orders_work() {
    let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
    let buf = gpu.mem.upload(&[0u32]);
    let (s1, s2, s3) = (gpu.create_stream(), gpu.create_stream(), gpu.create_stream());

    // s1: +1, record e1; s2 waits e1: *observe via timing*; s3 waits e2.
    gpu.launch(AddKernel { buf, value: 1, cycles: 500_000 }, LaunchConfig::linear(1, 32), s1)
        .unwrap();
    let e1 = gpu.record_event(s1);
    gpu.stream_wait_event(s2, e1);
    gpu.launch(AddKernel { buf, value: 10, cycles: 500_000 }, LaunchConfig::linear(1, 32), s2)
        .unwrap();
    let e2 = gpu.record_event(s2);
    gpu.stream_wait_event(s3, e2);
    gpu.launch(AddKernel { buf, value: 100, cycles: 500_000 }, LaunchConfig::linear(1, 32), s3)
        .unwrap();

    let t = gpu.synchronize();
    assert_eq!(gpu.mem.read(buf)[0], 111);
    // Timing respects the chain even in concurrent mode.
    assert!(t.events[1].t_start_us >= t.events[0].t_end_us);
    assert!(t.events[2].t_start_us >= t.events[1].t_end_us);
}

#[test]
fn mode_switch_between_syncs_changes_timing_only() {
    let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
    let buf = gpu.mem.alloc::<u32>(8);
    let launch_pair = |gpu: &mut Gpu| {
        let a = gpu.create_stream();
        let b = gpu.create_stream();
        gpu.launch(AddKernel { buf, value: 1, cycles: 600_000 }, LaunchConfig::linear(8, 32), a)
            .unwrap();
        gpu.launch(AddKernel { buf, value: 1, cycles: 600_000 }, LaunchConfig::linear(8, 32), b)
            .unwrap();
    };
    launch_pair(&mut gpu);
    let conc = gpu.synchronize();
    gpu.set_mode(ExecMode::Serial);
    launch_pair(&mut gpu);
    let serial = gpu.synchronize();
    assert_eq!(gpu.mem.read(buf)[0], 4, "both rounds executed functionally");
    assert!(serial.span_us() > conc.span_us());
}

#[test]
fn timeline_origin_resets_each_sync_scope() {
    let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
    let buf = gpu.mem.alloc::<u32>(8);
    gpu.launch_default(AddKernel { buf, value: 1, cycles: 1000 }, LaunchConfig::linear(8, 32))
        .unwrap();
    let t1 = gpu.synchronize();
    gpu.launch_default(AddKernel { buf, value: 1, cycles: 1000 }, LaunchConfig::linear(8, 32))
        .unwrap();
    let t2 = gpu.synchronize();
    // Each scope starts at t = 0 (timestamps are scope-relative).
    assert!(t1.events[0].t_start_us < t1.span_us());
    assert!(t2.events[0].t_start_us < t2.span_us());
    assert!((t1.span_us() - t2.span_us()).abs() < 1e-6, "identical work, identical span");
}

#[test]
fn empty_sync_returns_empty_timeline() {
    let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
    let t = gpu.synchronize();
    assert!(t.events.is_empty());
    assert_eq!(t.span_us(), 0.0);
    assert_eq!(t.sm_utilization(), 0.0);
}
