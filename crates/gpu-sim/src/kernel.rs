//! Kernel trait, launch configuration and the per-block execution context.

use crate::dim::{div_ceil, Dim3};
use crate::fuse::FusionTraits;
use crate::memory::{ConstBank, DevBuf, DeviceMemory, DeviceScalar, TexId, Texture2D};
use crate::meter::Meter;

/// Grid/block geometry and shared-memory request for a launch, mirroring the
/// CUDA `<<<grid, block, sharedMem>>>` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    pub grid: Dim3,
    pub block: Dim3,
    /// Dynamic shared memory requested per block, in bytes.
    pub shared_mem_bytes: u32,
}

impl LaunchConfig {
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        Self { grid: grid.into(), block: block.into(), shared_mem_bytes: 0 }
    }

    /// 1D launch covering `n` elements with `threads_per_block` threads.
    pub fn linear(n: usize, threads_per_block: u32) -> Self {
        let blocks = div_ceil(n.max(1) as u32, threads_per_block);
        Self::new(Dim3::d1(blocks), Dim3::d1(threads_per_block))
    }

    /// 2D launch tiling a `width x height` domain with `bx x by` blocks.
    pub fn tile2d(width: usize, height: usize, bx: u32, by: u32) -> Self {
        let gx = div_ceil(width.max(1) as u32, bx);
        let gy = div_ceil(height.max(1) as u32, by);
        Self::new(Dim3::d2(gx, gy), Dim3::d2(bx, by))
    }

    /// Request dynamic shared memory.
    pub fn with_shared_mem(mut self, bytes: u32) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.count() as u32
    }

    /// Warps per block at a given warp size (rounded up, as hardware does).
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        div_ceil(self.threads_per_block(), warp_size)
    }

    /// Total blocks in the grid.
    pub fn total_blocks(&self) -> u64 {
        self.grid.count()
    }
}

/// A device kernel. Implementations execute *one thread block at a time* and
/// meter the SIMT work they represent.
///
/// Blocks of one launch may execute concurrently on host worker threads
/// (hence the `Sync` bound), yet results are deterministic: per-block
/// costs and counters are collected by linear block id and reduced in
/// that order, so output is bit-identical at any host thread count. Per
/// the CUDA programming model, a correct kernel must not depend on
/// inter-block execution order and must follow the memory arena's
/// disjoint-write contract ([`crate::memory`]); buffer-level read/write
/// races panic via the arena's debug checker.
pub trait Kernel: Send + Sync {
    /// Kernel name for profiling and traces.
    fn name(&self) -> &'static str;

    /// Execute one block.
    fn run_block(&self, ctx: &mut BlockCtx<'_>);

    /// Declare which device buffers this launch reads and writes so the
    /// asynchronous engine can order it against other launches (see
    /// [`crate::AccessSet`]). The default marks the launch *opaque*: a
    /// full barrier against every other pending launch, which is always
    /// correct but forbids overlap. Kernels that want to run concurrently
    /// with independent work override this and declare their access set;
    /// the declared set must cover every buffer `run_block` touches.
    fn access(&self, set: &mut crate::memory::AccessSet) {
        set.mark_opaque();
    }

    /// Describe this kernel's producer/consumer shape for kernel fusion
    /// (see [`crate::fuse`]). The default declares the kernel unfusable,
    /// which is always safe; kernels with a regular element-wise or
    /// tile-local structure override this to opt in.
    fn fusion_traits(&self) -> Option<FusionTraits> {
        None
    }

    /// Linear block offsets at which execution must not interleave with
    /// earlier blocks of the same launch. Plain kernels have none (blocks
    /// are independent by construction); a fused chain reports its stage
    /// starts so the engines insert intra-launch barriers between the
    /// producer and consumer phases.
    fn phase_boundaries(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Number of independent batch parts this launch carries. Plain
    /// kernels are a single part; [`crate::BatchedKernel`] overrides this
    /// with its part count so injected launch faults can be attributed to
    /// one slot of the batch (see [`crate::LaunchError::batch_slot`]).
    fn batch_parts(&self) -> usize {
        1
    }

    /// Registers each thread of this kernel holds for its block's
    /// lifetime — the per-kernel resource pressure the block scheduler
    /// admits against the SM's register file (see
    /// [`crate::sched::launch_occupancy`]). The default of 16 is a
    /// modest compiled-kernel footprint that never bounds residency
    /// before the warp/thread caps do on the sm_20 budget, so kernels
    /// that do not override this keep their pre-register-model timing.
    /// Declared values above
    /// [`crate::DeviceSpec::max_registers_per_thread`] are clamped at
    /// launch (the `-maxrregcount` spill behaviour, not an error).
    fn registers_per_thread(&self) -> u32 {
        16
    }

    /// The functionally-equivalent launch shapes this kernel supports
    /// for its current geometry (see [`crate::tune`]). `None` — the
    /// default — marks the shape fixed: the autotuner leaves the kernel
    /// alone. Kernels returning a family guarantee byte-identical
    /// outputs across every candidate; only timing may differ.
    fn shape_family(&self) -> Option<crate::tune::ShapeFamily> {
        None
    }
}

/// Execution context for one thread block: geometry, memory spaces and the
/// work meter.
pub struct BlockCtx<'a> {
    /// Index of this block within the grid.
    pub block_idx: Dim3,
    /// Grid extent.
    pub grid_dim: Dim3,
    /// Block extent (threads).
    pub block_dim: Dim3,
    /// Global memory arena.
    pub mem: &'a DeviceMemory,
    /// Work meter for this block.
    pub meter: &'a Meter,
    constants: &'a ConstBank,
    textures: &'a [Texture2D],
    warp_size: u32,
    shared_limit_bytes: u32,
    shared_used_bytes: u32,
    /// Arena ids of buffers that are fusion-local in the current launch:
    /// traffic on them is metered as on-chip, not global (see
    /// [`crate::fuse`]). Empty for plain launches.
    fusion_local: Vec<usize>,
}

impl<'a> BlockCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        block_idx: Dim3,
        grid_dim: Dim3,
        block_dim: Dim3,
        mem: &'a DeviceMemory,
        meter: &'a Meter,
        constants: &'a ConstBank,
        textures: &'a [Texture2D],
        warp_size: u32,
        shared_limit_bytes: u32,
    ) -> Self {
        Self {
            block_idx,
            grid_dim,
            block_dim,
            mem,
            meter,
            constants,
            textures,
            warp_size,
            shared_limit_bytes,
            shared_used_bytes: 0,
            fusion_local: Vec::new(),
        }
    }

    /// Mark buffers as fusion-local for the remainder of this block.
    /// Called by [`crate::FusedKernel`] before delegating to a stage.
    pub(crate) fn set_fusion_local(&mut self, ids: &[usize]) {
        self.fusion_local.clear();
        self.fusion_local.extend_from_slice(ids);
    }

    /// SIMT width of the device.
    pub fn warp_size(&self) -> u32 {
        self.warp_size
    }

    /// Number of warps this block occupies (rounded up).
    pub fn warps_in_block(&self) -> u64 {
        div_ceil(self.block_dim.count() as u32, self.warp_size) as u64
    }

    /// Allocate a block-local shared-memory array of `len` `u32` words.
    ///
    /// The returned vector models the block's shared-memory scratchpad: it
    /// lives for the duration of the block, and its size is charged against
    /// the launch's shared-memory request. Exceeding the per-block limit
    /// panics, like a CUDA launch failure would.
    pub fn shared_alloc_u32(&mut self, len: usize) -> Vec<u32> {
        self.charge_shared(len * 4);
        vec![0u32; len]
    }

    /// Allocate a block-local shared-memory array of `len` `f32` values.
    pub fn shared_alloc_f32(&mut self, len: usize) -> Vec<f32> {
        self.charge_shared(len * 4);
        vec![0f32; len]
    }

    /// Allocate a block-local shared-memory array of `len` `i32` values.
    pub fn shared_alloc_i32(&mut self, len: usize) -> Vec<i32> {
        self.charge_shared(len * 4);
        vec![0i32; len]
    }

    fn charge_shared(&mut self, bytes: usize) {
        self.shared_used_bytes += bytes as u32;
        assert!(
            self.shared_used_bytes <= self.shared_limit_bytes,
            "kernel allocated {} B of shared memory but the launch requested only {} B",
            self.shared_used_bytes,
            self.shared_limit_bytes
        );
    }

    /// Shared-memory bytes allocated so far by this block.
    pub fn shared_used_bytes(&self) -> u32 {
        self.shared_used_bytes
    }

    /// Read access to a staged constant-memory region.
    pub fn constant(&self, ptr: crate::memory::ConstPtr) -> &[u32] {
        self.constants.slice(ptr)
    }

    /// Bilinear texture fetch; meters one texture transaction.
    #[inline]
    pub fn tex2d(&self, tex: TexId, x: f32, y: f32) -> f32 {
        self.meter.tex(1);
        self.textures[tex.0].fetch_bilinear(x, y)
    }

    /// Point-filtered texture fetch; meters one texture transaction.
    #[inline]
    pub fn tex2d_point(&self, tex: TexId, x: f32, y: f32) -> f32 {
        self.meter.tex(1);
        self.textures[tex.0].fetch_point(x, y)
    }

    /// Record a `__syncthreads()` executed by all warps of the block.
    pub fn syncthreads(&self) {
        self.meter.barrier(self.warps_in_block());
    }

    /// Meter a global-memory read of `bytes` bytes from `buf`, routed to
    /// the fused-traffic counters when `buf` is fusion-local in this
    /// launch. Kernels that can participate in fusion use this instead of
    /// calling [`Meter::global_load`] directly so their intermediates are
    /// credited when a chain keeps them on-chip.
    #[inline]
    pub fn global_load_buf<T: DeviceScalar>(&self, buf: DevBuf<T>, bytes: u64) {
        if self.fusion_local.contains(&buf.raw_id()) {
            self.meter.fused_load(bytes);
        } else {
            self.meter.global_load(bytes);
        }
    }

    /// Meter a global-memory write of `bytes` bytes to `buf`; see
    /// [`Self::global_load_buf`].
    #[inline]
    pub fn global_store_buf<T: DeviceScalar>(&self, buf: DevBuf<T>, bytes: u64) {
        if self.fusion_local.contains(&buf.raw_id()) {
            self.meter.fused_store(bytes);
        } else {
            self.meter.global_store(bytes);
        }
    }

    /// Iterate the block's threads in warp order, invoking `f(lane_set)` for
    /// each warp with the linear thread ids of its lanes. Convenience for
    /// kernels whose metering is warp-structured.
    pub fn for_each_warp(&self, mut f: impl FnMut(u32, std::ops::Range<u32>)) {
        let threads = self.block_dim.count() as u32;
        let mut warp = 0;
        let mut start = 0;
        while start < threads {
            let end = (start + self.warp_size).min(threads);
            f(warp, start..end);
            warp += 1;
            start = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_launch_covers_domain() {
        let cfg = LaunchConfig::linear(1000, 256);
        assert_eq!(cfg.grid.x, 4);
        assert_eq!(cfg.threads_per_block(), 256);
        assert_eq!(cfg.warps_per_block(32), 8);
        assert_eq!(cfg.total_blocks(), 4);
    }

    #[test]
    fn tile2d_rounds_up() {
        let cfg = LaunchConfig::tile2d(1920, 1080, 24, 24);
        assert_eq!(cfg.grid.x, 80);
        assert_eq!(cfg.grid.y, 45);
        assert_eq!(cfg.threads_per_block(), 576);
    }

    #[test]
    fn shared_alloc_enforces_launch_request() {
        let mem = DeviceMemory::new();
        let meter = Meter::new();
        let bank = ConstBank::new(1024);
        let mut ctx = BlockCtx::new(
            Dim3::d1(0),
            Dim3::d1(1),
            Dim3::d1(64),
            &mem,
            &meter,
            &bank,
            &[],
            32,
            16, // only 16 bytes allowed
        );
        let _ok = ctx.shared_alloc_u32(4);
        assert_eq!(ctx.shared_used_bytes(), 16);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.shared_alloc_u32(1);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn warp_iteration_partitions_threads() {
        let mem = DeviceMemory::new();
        let meter = Meter::new();
        let bank = ConstBank::new(0);
        let ctx = BlockCtx::new(
            Dim3::d1(0),
            Dim3::d1(1),
            Dim3::d2(24, 3), // 72 threads -> 3 warps: 32, 32, 8
            &mem,
            &meter,
            &bank,
            &[],
            32,
            0,
        );
        let mut sizes = Vec::new();
        ctx.for_each_warp(|_, lanes| sizes.push(lanes.len()));
        assert_eq!(sizes, vec![32, 32, 8]);
        assert_eq!(ctx.warps_in_block(), 3);
    }

    #[test]
    fn syncthreads_meters_per_warp() {
        let mem = DeviceMemory::new();
        let meter = Meter::new();
        let bank = ConstBank::new(0);
        let ctx = BlockCtx::new(
            Dim3::d1(0),
            Dim3::d1(1),
            Dim3::d1(128),
            &mem,
            &meter,
            &bank,
            &[],
            32,
            0,
        );
        ctx.syncthreads();
        assert_eq!(meter.snapshot().barriers, 4);
    }
}
