//! CUDA-style streams and events.
//!
//! A stream is an in-order queue of kernel launches. Launches in different
//! streams have no ordering constraint unless linked by an event
//! (`cudaStreamWaitEvent`). The scheduler ([`crate::sched`]) enforces these
//! dependencies; this module only provides the identifiers.

/// Identifier of a stream. `StreamId::DEFAULT` is the legacy default stream,
/// which on the simulated device behaves like any other stream except that
/// [`crate::ExecMode::Serial`] already serializes everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub(crate) u32);

impl StreamId {
    /// The default stream (stream 0).
    pub const DEFAULT: StreamId = StreamId(0);

    /// Raw index, useful for labelling trace rows.
    pub fn index(&self) -> u32 {
        self.0
    }

    /// Construct a stream id from a raw index. Streams used with a live
    /// [`crate::Gpu`] should come from `Gpu::create_stream`; this
    /// constructor exists for building [`crate::LaunchRecord`]s directly
    /// against the scheduler (tests, benchmarks, external harnesses).
    pub fn from_raw(index: u32) -> Self {
        StreamId(index)
    }
}

/// Identifier of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stream_is_zero() {
        assert_eq!(StreamId::DEFAULT.index(), 0);
    }
}
