//! The device front-end: launch kernels, manage streams/events, synchronize.

use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;
use std::time::Instant;

use crate::cost::CostModel;
use crate::device::DeviceSpec;
use crate::exec;
use crate::fault::{fault_draw, FaultCursor, FaultDomain, FaultPlan, FaultStats};
use crate::graph::DepTracker;
use crate::kernel::{Kernel, LaunchConfig};
use crate::memory::{
    AccessSet, ConstBank, ConstPtr, DevBuf, DeviceMemory, DeviceScalar, MemoryError, TexId,
    Texture2D,
};
use crate::meter::KernelCounters;
use crate::pool::{Node, WorkerPool};
use crate::profiler::Profiler;
use crate::sched::{simulate, ExecMode, LaunchRecord, Timeline};
use crate::stream::{EventId, StreamId};

/// Most blocks a single launch may execute functionally. Far beyond any
/// realistic pyramid (a 1080p frame tiles to ~32 K blocks); grids past
/// this would exhaust host memory on per-block cost records, so they are
/// rejected as a launch error instead of aborting on allocation.
pub const MAX_FUNCTIONAL_BLOCKS: u64 = 1 << 24;

/// Reasons a kernel launch can be rejected, mirroring CUDA launch errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Block exceeds `max_threads_per_block`.
    TooManyThreads { requested: u32, limit: u32 },
    /// Requested dynamic shared memory exceeds the per-block limit.
    SharedMemExceeded { requested: u32, limit: u32 },
    /// Grid or block has a zero extent.
    EmptyLaunch,
    /// Grid exceeds [`MAX_FUNCTIONAL_BLOCKS`] (`requested` saturates at
    /// `u64::MAX` when the block count itself overflows).
    GridTooLarge { requested: u64, limit: u64 },
    /// Injected fault: the launch timed out on the device. Unrecoverable
    /// for this launch — retrying draws the same verdict class on real
    /// hardware (the engine is wedged), so callers should skip the work.
    /// `batch_slot` attributes the fault to one part of a batched launch
    /// (`None` for plain launches, where the whole launch is the unit).
    InjectedTimeout { kernel: &'static str, batch_slot: Option<usize> },
    /// Injected fault: a transient launch failure (spurious
    /// `cudaErrorLaunchFailure` under engine contention). A retry is a
    /// fresh draw and typically succeeds. `batch_slot` as for
    /// [`LaunchError::InjectedTimeout`].
    InjectedTransient { kernel: &'static str, batch_slot: Option<usize> },
    /// A batched launch's per-part grid must be flat (`grid.z == 1`):
    /// the batch dimension itself is stacked on `z`.
    BatchedGridDepth { z: u32 },
    /// A fused chain failed legality validation (see [`crate::fuse`]).
    FusionRejected(crate::fuse::FusionError),
}

impl LaunchError {
    /// Whether a bounded retry of the same launch can reasonably succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, LaunchError::InjectedTransient { .. })
    }

    /// For injected faults on a batched launch, the part index the fault
    /// is attributed to. `None` for non-injected errors and for faults on
    /// plain (single-part) launches.
    pub fn batch_slot(&self) -> Option<usize> {
        match self {
            LaunchError::InjectedTimeout { batch_slot, .. }
            | LaunchError::InjectedTransient { batch_slot, .. } => *batch_slot,
            _ => None,
        }
    }
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::TooManyThreads { requested, limit } => {
                write!(f, "block of {requested} threads exceeds device limit {limit}")
            }
            LaunchError::SharedMemExceeded { requested, limit } => {
                write!(f, "{requested} B shared memory exceeds per-block limit {limit} B")
            }
            LaunchError::EmptyLaunch => write!(f, "grid and block extents must be non-zero"),
            LaunchError::GridTooLarge { requested, limit } => {
                write!(f, "grid of {requested} blocks exceeds functional-simulation limit {limit}")
            }
            LaunchError::InjectedTimeout { kernel, batch_slot } => {
                write!(f, "injected fault: launch of `{kernel}` timed out")?;
                if let Some(slot) = batch_slot {
                    write!(f, " (batch slot {slot})")?;
                }
                Ok(())
            }
            LaunchError::InjectedTransient { kernel, batch_slot } => {
                write!(f, "injected fault: transient launch failure for `{kernel}`")?;
                if let Some(slot) = batch_slot {
                    write!(f, " (batch slot {slot})")?;
                }
                Ok(())
            }
            LaunchError::BatchedGridDepth { z } => {
                write!(f, "batched launch requires a flat per-part grid, got depth {z}")
            }
            LaunchError::FusionRejected(e) => write!(f, "fusion rejected: {e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// How the host executes the functional phase of kernel launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HostExec {
    /// Execute every launch to completion inside [`Gpu::launch`], one
    /// launch at a time (the legacy engine). Small grids can never use
    /// more than one host core and every parallel launch pays a fresh
    /// thread spawn/join.
    Sync,
    /// Defer launches into a dependency graph and drain them on the
    /// persistent worker pool at the next sync point, overlapping
    /// block-chunks of *independent* launches. Every observable output
    /// is byte-identical to [`HostExec::Sync`] (see [`crate::graph`]).
    #[default]
    Async,
}

/// Environment variable selecting the host execution engine (`sync` or
/// `async`); an explicit [`Gpu::set_host_exec`] override wins.
pub const HOST_EXEC_ENV_VAR: &str = "FD_SIM_HOST_EXEC";

fn env_host_exec() -> Option<HostExec> {
    static ENV: OnceLock<Option<HostExec>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var(HOST_EXEC_ENV_VAR).ok().and_then(|v| {
            match v.trim().to_ascii_lowercase().as_str() {
                "sync" => Some(HostExec::Sync),
                "async" => Some(HostExec::Async),
                _ => None,
            }
        })
    })
}

/// A launch accepted into the queue. Under [`HostExec::Async`] the
/// functional phase has not necessarily run yet: `kernel` is retained
/// until a flush executes it and fills in the record's costs/counters.
struct PendingLaunch {
    record: LaunchRecord,
    kernel: Option<Box<dyn Kernel>>,
    cfg: LaunchConfig,
    total_blocks: u64,
    /// Injected stream-stall penalty, applied to the first block's issue
    /// cycles once the launch has executed (drawn at enqueue so fault
    /// verdicts keep their launch-attempt order).
    stall_cycles: f64,
    /// Dependency edges (queue positions) from [`DepTracker`].
    deps: Vec<usize>,
    executed: bool,
}

/// A simulated GPU: memory spaces, streams, a launch queue and a profiler.
///
/// See the crate-level documentation for the execution model. The typical
/// per-frame cycle is: upload inputs, stage constants/textures, launch the
/// pipeline's kernels into per-scale streams, then [`Gpu::synchronize`] to
/// obtain the frame's [`Timeline`].
pub struct Gpu {
    pub spec: DeviceSpec,
    pub cost: CostModel,
    /// Global-memory arena (public: host code uploads/downloads directly).
    pub mem: DeviceMemory,
    constants: ConstBank,
    textures: Vec<Texture2D>,
    mode: ExecMode,
    /// Host worker threads for the functional phase; `None` defers to
    /// `FD_SIM_THREADS` / host parallelism (see [`crate::exec`]).
    host_threads: Option<usize>,
    /// Host execution engine override; `None` defers to
    /// [`HOST_EXEC_ENV_VAR`], then to [`HostExec::Async`].
    host_exec: Option<HostExec>,
    next_stream: u32,
    next_event: u32,
    pending: Vec<PendingLaunch>,
    launch_counter: usize,
    pending_waits: HashMap<StreamId, Vec<EventId>>,
    fired_events: HashSet<EventId>,
    /// Dependency graph over the pending queue (async engine).
    tracker: DepTracker,
    /// Persistent workers draining the queue; spawned lazily, reused for
    /// the device's lifetime.
    pool: WorkerPool,
    /// Wall-clock origin for host-execution spans.
    host_epoch: Instant,
    profiler: Profiler,
    fault: Option<FaultState>,
}

/// Split a launch's linear block range into `(first, count)` phase
/// segments from the kernel's [`Kernel::phase_boundaries`] (ascending
/// stage starts, 0 excluded). Plain kernels yield one segment.
fn phase_segments(boundaries: Vec<u64>, total_blocks: u64) -> Vec<(u64, u64)> {
    let mut starts = Vec::with_capacity(boundaries.len() + 1);
    starts.push(0u64);
    starts.extend(boundaries.into_iter().filter(|&b| b > 0 && b < total_blocks));
    let mut segments = Vec::with_capacity(starts.len());
    for (i, &first) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(total_blocks);
        debug_assert!(end > first, "phase boundaries must be ascending");
        segments.push((first, end - first));
    }
    segments
}

/// Per-device fault-injection state: the plan plus the monotone attempt
/// counter the draws are keyed on.
struct FaultState {
    plan: FaultPlan,
    /// Incremented on every launch attempt (including rejected ones), so
    /// a retry of a failed launch draws a fresh verdict.
    attempts: u64,
    stats: FaultStats,
}

impl Gpu {
    /// Create a device with the default cost model.
    pub fn new(spec: DeviceSpec, mode: ExecMode) -> Self {
        let constants = ConstBank::new(spec.const_mem_bytes);
        Self {
            spec,
            cost: CostModel::default(),
            mem: DeviceMemory::new(),
            constants,
            textures: Vec::new(),
            mode,
            host_threads: None,
            host_exec: None,
            next_stream: 1,
            next_event: 0,
            pending: Vec::new(),
            launch_counter: 0,
            pending_waits: HashMap::new(),
            fired_events: HashSet::new(),
            tracker: DepTracker::new(),
            pool: WorkerPool::new(),
            host_epoch: Instant::now(),
            profiler: Profiler::new(),
            fault: None,
        }
    }

    /// Attach (or detach, with `None`) a fault-injection plan. Launch and
    /// stall faults are drawn by this device; copy-corruption faults are
    /// wired into [`Gpu::mem`]. Attaching a plan resets [`Gpu::fault_stats`].
    /// An [inert](FaultPlan::is_inert) plan leaves every result
    /// bit-identical to a device without one.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.flush_functional();
        match &plan {
            Some(p) if p.copy_corruption_rate > 0.0 => self.mem.set_copy_faults(Some(
                crate::memory::CopyFaultConfig {
                    seed: p.seed,
                    rate: p.copy_corruption_rate,
                    region_len: p.corrupt_region_len.max(1),
                },
            )),
            _ => self.mem.set_copy_faults(None),
        }
        self.fault = plan.map(|plan| FaultState {
            plan,
            attempts: 0,
            stats: FaultStats::default(),
        });
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Faults injected by this device since the plan was attached.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Position in the attached plan's deterministic draw sequences
    /// (zero when no plan is attached). Capture this alongside a stream
    /// checkpoint: a fresh device seeked to the same cursor replays the
    /// remaining fault sequence exactly.
    pub fn fault_cursor(&self) -> FaultCursor {
        FaultCursor {
            launch_attempts: self.fault.as_ref().map_or(0, |f| f.attempts),
            copy_draws: self.mem.copy_fault_draws(),
        }
    }

    /// Fast-forward the attached plan's draw counters to `cursor` (a
    /// checkpoint restore). Fault *statistics* restart at zero — they
    /// count injections on this device, not on the stream. No-op when no
    /// plan is attached.
    pub fn seek_fault_cursor(&mut self, cursor: FaultCursor) {
        self.flush_functional();
        if let Some(f) = &mut self.fault {
            f.attempts = cursor.launch_attempts;
        }
        self.mem.seek_copy_fault_draws(cursor.copy_draws);
    }

    /// Quarantine hook for a stream supervisor's circuit breaker: discard
    /// everything queued on the sick device (launches, pending waits) and
    /// drop stale, unattributed copy-fault records. The fault cursor is
    /// deliberately *not* touched — cooling down must not shift the
    /// deterministic fault sequence of subsequent work. Returns the
    /// number of launches discarded.
    pub fn cool_down(&mut self) -> usize {
        let discarded = self.pending.len();
        self.cancel_pending();
        self.mem.drain_copy_faults();
        discarded
    }

    /// Device memory currently in use: global-memory arena bytes plus the
    /// staged constant-memory words. The admission-control measure a
    /// multi-session supervisor charges against its device budget.
    pub fn device_bytes_in_use(&self) -> usize {
        self.mem.live_bytes() + self.constants.used_words() * 4
    }

    /// Current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Pin the functional phase to `threads` host workers (builder form).
    /// `1` selects the sequential path; overrides `FD_SIM_THREADS`.
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.set_host_threads(Some(threads));
        self
    }

    /// Set or clear the host-thread override for the functional phase.
    /// `None` defers to `FD_SIM_THREADS`, then to host parallelism.
    /// Flushes queued launches first so every span in a drain is
    /// attributed to one thread-count regime.
    pub fn set_host_threads(&mut self, threads: Option<usize>) {
        self.flush_functional();
        self.host_threads = threads.map(|n| n.max(1));
    }

    /// Effective host worker threads the next launch will use.
    pub fn host_threads(&self) -> usize {
        exec::resolve_host_threads(self.host_threads)
    }

    /// Select the host execution engine (builder form).
    pub fn with_host_exec(mut self, exec: HostExec) -> Self {
        self.set_host_exec(Some(exec));
        self
    }

    /// Set or clear the host-execution override. `None` defers to
    /// [`HOST_EXEC_ENV_VAR`], then to [`HostExec::Async`]. Flushes queued
    /// launches first — the engines must not interleave within a drain.
    pub fn set_host_exec(&mut self, exec: Option<HostExec>) {
        self.flush_functional();
        self.host_exec = exec;
    }

    /// The engine the next launch will use.
    pub fn host_exec(&self) -> HostExec {
        self.host_exec.or_else(env_host_exec).unwrap_or_default()
    }

    /// Switch between serial and concurrent kernel execution. Takes effect
    /// at the next [`Gpu::synchronize`]; pending launches are simulated
    /// under the mode active when synchronize is called.
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// Create a new stream.
    pub fn create_stream(&mut self) -> StreamId {
        let s = StreamId(self.next_stream);
        self.next_stream += 1;
        s
    }

    /// Record an event capturing all work currently queued in `stream`.
    pub fn record_event(&mut self, stream: StreamId) -> EventId {
        let e = EventId(self.next_event);
        self.next_event += 1;
        if let Some(idx) = self.pending.iter().rposition(|l| l.record.stream == stream) {
            self.pending[idx].record.record_events.push(e);
            self.tracker.note_event_source(e, idx);
        } else {
            // Nothing queued in the stream: the event is already complete.
            self.fired_events.insert(e);
        }
        e
    }

    /// Make the *next* launch in `stream` wait for `event`.
    pub fn stream_wait_event(&mut self, stream: StreamId, event: EventId) {
        if self.fired_events.contains(&event) {
            return;
        }
        self.pending_waits.entry(stream).or_default().push(event);
    }

    /// Stage data into constant memory. Panics on bank overflow; use
    /// [`Gpu::try_const_upload`] for a typed error.
    pub fn const_upload(&mut self, words: &[u32]) -> ConstPtr {
        self.constants.upload(words)
    }

    /// Stage data into constant memory, reporting overflow as a typed
    /// error (user-supplied cascades can exceed the 64 KiB bank).
    pub fn try_const_upload(&mut self, words: &[u32]) -> Result<ConstPtr, MemoryError> {
        self.constants.try_upload(words)
    }

    /// Reset constant memory. Flushes queued launches first: staged
    /// constants are append-only while launches are deferred (appends
    /// cannot disturb earlier [`ConstPtr`]s), but a reset would yank data
    /// out from under them.
    pub fn const_clear(&mut self) {
        self.flush_functional();
        self.constants.clear();
    }

    /// Constant-memory words currently staged.
    pub fn const_used_words(&self) -> usize {
        self.constants.used_words()
    }

    /// Bind a 2D single-channel texture; returns its handle.
    pub fn bind_texture(&mut self, tex: Texture2D) -> TexId {
        self.textures.push(tex);
        TexId(self.textures.len() - 1)
    }

    /// Unbind all textures (handles become invalid). Flushes queued
    /// launches first — binding is append-only (safe under deferral), but
    /// unbinding invalidates handles deferred kernels may still hold.
    pub fn clear_textures(&mut self) {
        self.flush_functional();
        self.textures.clear();
    }

    /// Launch `kernel` with `cfg` into `stream`.
    ///
    /// Validation and fault verdicts happen here, in launch-attempt
    /// order. Under [`HostExec::Async`] (the default) the functional
    /// phase is *deferred*: the launch joins the dependency graph and
    /// executes at the next sync point ([`Gpu::synchronize`],
    /// [`Gpu::flush`], [`Gpu::download`] …), where the worker pool
    /// overlaps block-chunks of independent launches. Under
    /// [`HostExec::Sync`] every block executes before this returns.
    /// Either way the metered work becomes per-block timing costs in
    /// linear block order, and all observable results are identical.
    pub fn launch<K: Kernel + 'static>(
        &mut self,
        kernel: K,
        cfg: LaunchConfig,
        stream: StreamId,
    ) -> Result<(), LaunchError> {
        let threads = cfg.threads_per_block();
        // Compute the block count with saturation: `Dim3::count` can wrap
        // for adversarial grids (u32³ exceeds u64), and `Vec::with_capacity`
        // on an absurd count would abort the process rather than error.
        let total_blocks = (cfg.grid.x as u64)
            .saturating_mul(cfg.grid.y as u64)
            .saturating_mul(cfg.grid.z as u64);
        if threads == 0 || total_blocks == 0 {
            return Err(LaunchError::EmptyLaunch);
        }
        if total_blocks > MAX_FUNCTIONAL_BLOCKS {
            return Err(LaunchError::GridTooLarge {
                requested: total_blocks,
                limit: MAX_FUNCTIONAL_BLOCKS,
            });
        }
        if threads > self.spec.max_threads_per_block {
            return Err(LaunchError::TooManyThreads {
                requested: threads,
                limit: self.spec.max_threads_per_block,
            });
        }
        if cfg.shared_mem_bytes > self.spec.max_shared_mem_per_block {
            return Err(LaunchError::SharedMemExceeded {
                requested: cfg.shared_mem_bytes,
                limit: self.spec.max_shared_mem_per_block,
            });
        }

        // Fault injection: each attempt draws an independent verdict per
        // fault domain, keyed on the monotone attempt counter (so a retry
        // of a rejected launch draws afresh). A zero rate never draws a
        // positive verdict, keeping inert plans bit-identical to none.
        let mut stall_cycles = 0.0f64;
        if let Some(f) = &mut self.fault {
            let attempt = f.attempts;
            f.attempts += 1;
            f.stats.launch_attempts += 1;
            let p = &f.plan;
            // Attribute an injected fault to one part of a batched launch:
            // a sub-draw in its own domain, keyed on the same attempt
            // counter, made only when a fault actually fires — so it never
            // shifts the other domains' sequences and an inert plan never
            // draws it at all.
            let batch_slot = |seed: u64| {
                let parts = kernel.batch_parts();
                (parts > 1)
                    .then(|| (crate::fault::fault_bits(seed, FaultDomain::BatchAttribution, attempt)
                        % parts as u64) as usize)
            };
            if p.launch_timeout_rate > 0.0
                && fault_draw(p.seed, FaultDomain::LaunchTimeout, attempt) < p.launch_timeout_rate
            {
                f.stats.launch_timeouts += 1;
                return Err(LaunchError::InjectedTimeout {
                    kernel: kernel.name(),
                    batch_slot: batch_slot(p.seed),
                });
            }
            if p.transient_launch_rate > 0.0
                && fault_draw(p.seed, FaultDomain::LaunchTransient, attempt)
                    < p.transient_launch_rate
            {
                f.stats.transient_launch_failures += 1;
                return Err(LaunchError::InjectedTransient {
                    kernel: kernel.name(),
                    batch_slot: batch_slot(p.seed),
                });
            }
            if p.stall_rate > 0.0
                && fault_draw(p.seed, FaultDomain::StreamStall, attempt) < p.stall_rate
            {
                f.stats.stream_stalls += 1;
                stall_cycles = p.stall_cycles(self.spec.clock_ghz);
            }
        }

        let wait_events = self.pending_waits.remove(&stream).unwrap_or_default();
        let mut access = AccessSet::new();
        kernel.access(&mut access);
        let deps = self.tracker.on_enqueue(stream, &access, &wait_events);
        let mut record = LaunchRecord {
            launch_idx: self.launch_counter,
            kernel_name: kernel.name(),
            stream,
            shared_mem_bytes: cfg.shared_mem_bytes,
            threads_per_block: threads,
            warps_per_block: cfg.warps_per_block(self.spec.warp_size),
            // Clamp the declaration like `-maxrregcount` would: above-cap
            // usage spills rather than failing the launch.
            registers_per_thread: kernel
                .registers_per_thread()
                .min(self.spec.max_registers_per_thread),
            block_costs: Vec::new(),
            counters: KernelCounters::default(),
            wait_events,
            record_events: Vec::new(),
        };

        if self.host_exec() == HostExec::Sync {
            // Legacy engine: run the whole launch inline, one fresh
            // thread scope per launch. A fused launch reports its stage
            // starts as phase boundaries; each phase runs to completion
            // before the next so consumers observe their producers.
            let env = exec::LaunchEnv {
                mem: &self.mem,
                constants: &self.constants,
                textures: &self.textures,
                cost: &self.cost,
                warp_size: self.spec.warp_size,
            };
            let host_threads = exec::resolve_host_threads(self.host_threads);
            let segments = phase_segments(kernel.phase_boundaries(), total_blocks);
            let exec::FunctionalResult { mut block_costs, totals } =
                if segments.len() <= 1 {
                    exec::run_functional(&kernel, &cfg, &env, host_threads, total_blocks)
                } else {
                    let mut block_costs = Vec::with_capacity(total_blocks as usize);
                    let mut totals = KernelCounters::default();
                    for &(first, count) in &segments {
                        let r = exec::run_functional_range(
                            &kernel,
                            &cfg,
                            &env,
                            host_threads,
                            first,
                            count,
                        );
                        block_costs.extend(r.block_costs);
                        totals.add(&r.totals);
                    }
                    exec::FunctionalResult { block_costs, totals }
                };
            if stall_cycles > 0.0 {
                // A stream stall pins the launch's first block for the
                // stall duration. Charged as issue cycles so warp
                // residency cannot hide it (the engine is stalled, not
                // waiting on DRAM); the timing phase stretches the
                // launch's span while functional results stay untouched.
                block_costs[0].issue_cycles += stall_cycles;
            }
            record.block_costs = block_costs;
            record.counters = totals;
            self.pending.push(PendingLaunch {
                record,
                kernel: None,
                cfg,
                total_blocks,
                stall_cycles: 0.0,
                deps,
                executed: true,
            });
        } else {
            self.pending.push(PendingLaunch {
                record,
                kernel: Some(Box::new(kernel)),
                cfg,
                total_blocks,
                stall_cycles,
                deps,
                executed: false,
            });
            let deferred = self.pending.iter().filter(|p| !p.executed).count() as u32;
            self.mem.set_deferred_launches(deferred);
        }
        self.launch_counter += 1;
        Ok(())
    }

    /// Execute the functional phase of every deferred launch (the
    /// dependency-graph drain). Called by every sync point; a no-op when
    /// nothing is deferred.
    fn flush_functional(&mut self) {
        let Some(base) = self.pending.iter().position(|p| !p.executed) else {
            return;
        };
        let threads = exec::resolve_host_threads(self.host_threads);
        let env = exec::LaunchEnv {
            mem: &self.mem,
            constants: &self.constants,
            textures: &self.textures,
            cost: &self.cost,
            warp_size: self.spec.warp_size,
        };
        // The unexecuted launches form a suffix (every flush drains the
        // whole queue). Dependencies on already-executed launches are
        // satisfied by definition and drop out of the node graph.
        //
        // Fused launches expand into one node per phase, chained by
        // deps, so the pool never interleaves a consumer stage's blocks
        // with its producer's. External deps attach to the first phase;
        // downstream launches depending on the fused launch point at its
        // last phase.
        let mut segments: Vec<Vec<(u64, u64)>> = Vec::with_capacity(self.pending.len() - base);
        let mut node_span: Vec<(usize, usize)> = Vec::with_capacity(self.pending.len() - base);
        let mut next_node = 0usize;
        for p in &self.pending[base..] {
            let kernel = p.kernel.as_ref().expect("unexecuted launch retains its kernel");
            let segs = phase_segments(kernel.phase_boundaries(), p.total_blocks);
            node_span.push((next_node, next_node + segs.len() - 1));
            next_node += segs.len();
            segments.push(segs);
        }
        let mut nodes: Vec<Node<'_>> = Vec::with_capacity(next_node);
        for (k, p) in self.pending[base..].iter().enumerate() {
            let kernel = &**p.kernel.as_ref().expect("unexecuted launch retains its kernel");
            for (si, &(block_offset, count)) in segments[k].iter().enumerate() {
                let deps = if si == 0 {
                    p.deps
                        .iter()
                        .filter(|&&d| d >= base)
                        .map(|&d| node_span[d - base].1)
                        .collect()
                } else {
                    vec![node_span[k].0 + si - 1]
                };
                nodes.push(Node {
                    kernel,
                    cfg: &p.cfg,
                    total_blocks: count,
                    block_offset,
                    deps,
                    launch_idx: p.record.launch_idx as u64,
                    name: p.record.kernel_name,
                });
            }
        }
        let (results, spans) = self.pool.drain(&env, &nodes, threads, self.host_epoch);
        drop(nodes);
        let mut results = results.into_iter();
        for (k, p) in self.pending[base..].iter_mut().enumerate() {
            let mut block_costs = Vec::with_capacity(p.total_blocks as usize);
            let mut totals = KernelCounters::default();
            for _ in &segments[k] {
                let r = results.next().expect("one functional result per node");
                block_costs.extend(r.block_costs);
                totals.add(&r.totals);
            }
            if p.stall_cycles > 0.0 {
                // See the inline-execution comment in `launch`: the stall
                // pins the first block as issue cycles.
                block_costs[0].issue_cycles += p.stall_cycles;
            }
            p.record.block_costs = block_costs;
            p.record.counters = totals;
            p.executed = true;
            p.kernel = None;
        }
        self.mem.set_deferred_launches(0);
        self.profiler.absorb_host_spans(spans);
    }

    /// Force the functional phase of every queued launch without running
    /// the timing simulation: after `flush`, host-side reads of device
    /// memory observe all queued writes, while the launch records still
    /// await [`Gpu::synchronize`] for their timeline.
    pub fn flush(&mut self) {
        self.flush_functional();
    }

    /// Flush queued launches, then copy a buffer out (the safe way to
    /// read results mid-scope; [`DeviceMemory::download`] on [`Gpu::mem`]
    /// panics while launches are deferred).
    pub fn download<T: DeviceScalar>(&mut self, buf: DevBuf<T>) -> Vec<T> {
        self.flush_functional();
        self.mem.download(buf)
    }

    /// Launch N homogeneous kernels as **one** device launch (see
    /// [`crate::batch`]): the parts share `part_cfg`'s geometry and the
    /// batch dimension is stacked on `grid.z`. One launch overhead is
    /// paid for the whole batch and the scheduler sees a single large
    /// grid, so small per-request kernels fill the device instead of
    /// serializing behind each other in a stream.
    ///
    /// A batch of one is bit-identical to [`Gpu::launch`] of the single
    /// part — results, counters and timeline (asserted by tests). The
    /// parts must be mutually independent (disjoint output buffers), as
    /// concurrent blocks of one launch always must.
    pub fn launch_batched<K: Kernel + 'static>(
        &mut self,
        parts: Vec<K>,
        part_cfg: LaunchConfig,
        stream: StreamId,
    ) -> Result<(), LaunchError> {
        if parts.is_empty() {
            return Err(LaunchError::EmptyLaunch);
        }
        if part_cfg.grid.z != 1 {
            return Err(LaunchError::BatchedGridDepth { z: part_cfg.grid.z });
        }
        let batched = crate::batch::BatchedKernel::new(parts, part_cfg);
        let cfg = batched.stacked_config(part_cfg);
        self.launch(batched, cfg, stream)
    }

    /// Validate a fused chain and launch it as **one** kernel (see
    /// [`crate::fuse`]): one launch overhead for the whole chain, and
    /// traffic on intermediates consumed inside the chain is credited to
    /// on-chip rates. Legality failures surface as
    /// [`LaunchError::FusionRejected`]; callers typically fall back to
    /// launching the stages separately.
    pub fn launch_fused(
        &mut self,
        chain: crate::fuse::FusedChain,
        stream: StreamId,
    ) -> Result<(), LaunchError> {
        let fused = chain.validate().map_err(LaunchError::FusionRejected)?;
        let cfg = fused.config();
        self.launch(fused, cfg, stream)
    }

    /// Launch into the default stream.
    pub fn launch_default<K: Kernel + 'static>(
        &mut self,
        kernel: K,
        cfg: LaunchConfig,
    ) -> Result<(), LaunchError> {
        self.launch(kernel, cfg, StreamId::DEFAULT)
    }

    /// Number of launches queued since the last synchronize.
    pub fn pending_launches(&self) -> usize {
        self.pending.len()
    }

    /// Discard all queued launches and pending waits without simulating
    /// them (the recovery path after a failed launch mid-frame: the frame
    /// is abandoned or retried from scratch, so its partial queue must not
    /// leak into the next synchronization scope or the profiler).
    /// Functional memory effects of already-queued launches remain, as on
    /// a real device (deferred launches are flushed first to honor this);
    /// callers that retry must fully overwrite outputs.
    pub fn cancel_pending(&mut self) {
        self.flush_functional();
        self.pending.clear();
        self.pending_waits.clear();
        self.tracker.reset();
    }

    /// Run the timing simulation over all queued launches, feed the
    /// profiler, clear the queue and return the timeline. The timeline's
    /// origin (t = 0) is this synchronization scope's start.
    pub fn synchronize(&mut self) -> Timeline {
        self.flush_functional();
        let launches: Vec<LaunchRecord> =
            self.pending.drain(..).map(|p| p.record).collect();
        // Harvest the opaque-launch count before the tracker forgets it:
        // undeclared access sets silently forbid both overlap and fusion,
        // so the profiler surfaces how many launches fell back to a full
        // barrier in this scope.
        self.profiler.add_opaque_launches(self.tracker.take_opaque_launches());
        self.tracker.reset();
        // Waits registered but never attached to a launch are dropped, like
        // a cudaStreamWaitEvent on a stream that never launches again.
        self.pending_waits.clear();
        // All recorded events fire within this scope.
        for l in &launches {
            for &e in &l.record_events {
                self.fired_events.insert(e);
            }
        }
        let timeline = simulate(&self.spec, &self.cost, self.mode, &launches);
        self.profiler.absorb(&timeline.events);
        timeline
    }

    /// Accumulated profiling data across all synchronization scopes.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Clear profiling data.
    pub fn reset_profiler(&mut self) {
        self.profiler.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::BlockCtx;
    use crate::memory::DevBuf;

    /// Doubles every element; meters one load+store and one ALU op per warp.
    #[derive(Clone, Copy)]
    struct DoubleKernel {
        buf: DevBuf<u32>,
    }

    impl Kernel for DoubleKernel {
        fn name(&self) -> &'static str {
            "double"
        }
        fn run_block(&self, ctx: &mut BlockCtx<'_>) {
            let tpb = ctx.block_dim.count() as usize;
            let base = ctx.block_idx.x as usize * tpb;
            let mut data = ctx.mem.write(self.buf);
            let end = (base + tpb).min(data.len());
            for v in &mut data[base..end] {
                *v *= 2;
            }
            ctx.meter.alu(ctx.warps_in_block());
            ctx.meter.global_load(((end - base) * 4) as u64);
            ctx.meter.global_store(((end - base) * 4) as u64);
        }
        fn access(&self, set: &mut AccessSet) {
            // Read-modify-write: both sides declared, so consecutive
            // launches on the same buffer chain RAW/WAR/WAW edges.
            set.reads(self.buf).writes(self.buf);
        }
    }

    #[test]
    fn launch_executes_functionally_and_times() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let buf = gpu.mem.upload(&(0u32..1024).collect::<Vec<_>>());
        gpu.launch_default(DoubleKernel { buf }, LaunchConfig::linear(1024, 256)).unwrap();
        let t = gpu.synchronize();
        assert_eq!(gpu.mem.read(buf)[10], 20);
        assert_eq!(t.events.len(), 1);
        assert!(t.span_us() > 0.0);
        assert_eq!(t.events[0].blocks, 4);
    }

    #[test]
    fn launch_validation_rejects_bad_configs() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let buf = gpu.mem.alloc::<u32>(16);
        let k = DoubleKernel { buf };
        assert!(matches!(
            gpu.launch_default(k, LaunchConfig::new(1u32, 2048u32)),
            Err(LaunchError::TooManyThreads { .. })
        ));
        assert!(matches!(
            gpu.launch_default(k, LaunchConfig::new(1u32, 32u32).with_shared_mem(1 << 20)),
            Err(LaunchError::SharedMemExceeded { .. })
        ));
        assert!(matches!(
            gpu.launch_default(k, LaunchConfig::new(0u32, 32u32)),
            Err(LaunchError::EmptyLaunch)
        ));
    }

    #[test]
    fn functional_results_identical_across_modes() {
        let run = |mode| {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), mode);
            let buf = gpu.mem.upload(&(0u32..4096).collect::<Vec<_>>());
            let s1 = gpu.create_stream();
            let s2 = gpu.create_stream();
            gpu.launch(DoubleKernel { buf }, LaunchConfig::linear(4096, 256), s1).unwrap();
            gpu.launch(DoubleKernel { buf }, LaunchConfig::linear(4096, 256), s2).unwrap();
            gpu.synchronize();
            gpu.mem.download(buf)
        };
        assert_eq!(run(ExecMode::Serial), run(ExecMode::Concurrent));
    }

    #[test]
    fn record_event_on_idle_stream_is_prefired() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let s1 = gpu.create_stream();
        let s2 = gpu.create_stream();
        let e = gpu.record_event(s1); // nothing queued in s1
        gpu.stream_wait_event(s2, e); // must be a no-op
        let buf = gpu.mem.alloc::<u32>(32);
        gpu.launch(DoubleKernel { buf }, LaunchConfig::linear(32, 32), s2).unwrap();
        let t = gpu.synchronize();
        assert_eq!(t.events.len(), 1);
    }

    #[test]
    fn profiler_accumulates_across_scopes() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let buf = gpu.mem.alloc::<u32>(256);
        gpu.launch_default(DoubleKernel { buf }, LaunchConfig::linear(256, 128)).unwrap();
        gpu.synchronize();
        gpu.launch_default(DoubleKernel { buf }, LaunchConfig::linear(256, 128)).unwrap();
        gpu.synchronize();
        assert_eq!(gpu.profiler().kernels()["double"].launches, 2);
        assert_eq!(gpu.profiler().traces().len(), 2);
    }

    fn launch_until_verdict(gpu: &mut Gpu, buf: DevBuf<u32>) -> Result<(), LaunchError> {
        gpu.launch_default(DoubleKernel { buf }, LaunchConfig::linear(256, 128))
    }

    #[test]
    fn inert_fault_plan_is_bit_identical_to_none() {
        let run = |plan: Option<FaultPlan>| {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            gpu.set_fault_plan(plan);
            let buf = gpu.mem.upload(&(0u32..4096).collect::<Vec<_>>());
            let s = gpu.create_stream();
            gpu.launch(DoubleKernel { buf }, LaunchConfig::linear(4096, 256), s).unwrap();
            let t = gpu.synchronize();
            (gpu.mem.download(buf), t.span_us().to_bits(), gpu.profiler().kernels()["double"].clone())
        };
        let a = run(None);
        let b = run(Some(FaultPlan::seeded(99)));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "timeline must be bit-identical under an inert plan");
        assert_eq!(format!("{:?}", a.2), format!("{:?}", b.2));
    }

    #[test]
    fn injected_launch_failures_are_deterministic_and_typed() {
        let collect = || {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
            gpu.set_fault_plan(Some(
                FaultPlan::seeded(7)
                    .with_transient_launch_failures(0.2)
                    .with_launch_timeouts(0.05),
            ));
            let buf = gpu.mem.alloc::<u32>(256);
            let verdicts: Vec<_> = (0..100)
                .map(|_| match launch_until_verdict(&mut gpu, buf) {
                    Ok(()) => 0u8,
                    Err(LaunchError::InjectedTransient { kernel, batch_slot }) => {
                        assert_eq!(kernel, "double");
                        assert_eq!(batch_slot, None, "plain launches carry no slot");
                        1
                    }
                    Err(LaunchError::InjectedTimeout { kernel, batch_slot }) => {
                        assert_eq!(kernel, "double");
                        assert_eq!(batch_slot, None, "plain launches carry no slot");
                        2
                    }
                    Err(e) => panic!("unexpected error {e}"),
                })
                .collect();
            (verdicts, gpu.fault_stats())
        };
        let (va, sa) = collect();
        let (vb, sb) = collect();
        assert_eq!(va, vb, "fault sequence must be reproducible");
        assert_eq!(sa, sb);
        assert!(sa.transient_launch_failures > 0, "20% over 100 attempts must fire");
        assert!(sa.launch_timeouts > 0);
        assert_eq!(sa.launch_attempts, 100);
        assert!(LaunchError::InjectedTransient { kernel: "k", batch_slot: None }.is_transient());
        assert!(!LaunchError::InjectedTimeout { kernel: "k", batch_slot: None }.is_transient());
    }

    #[test]
    fn batched_launch_faults_attribute_a_slot() {
        // A faulted batched launch must name one in-range part; the
        // attribution must be reproducible across identical runs.
        let collect = || {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
            gpu.set_fault_plan(Some(FaultPlan::seeded(11).with_transient_launch_failures(0.3)));
            let parts = 6usize;
            let bufs: Vec<_> = (0..parts).map(|_| gpu.mem.alloc::<u32>(128)).collect();
            let mut slots = Vec::new();
            for _ in 0..60 {
                let kernels: Vec<_> =
                    bufs.iter().map(|&buf| DoubleKernel { buf }).collect();
                let s = gpu.create_stream();
                match gpu.launch_batched(kernels, LaunchConfig::linear(128, 64), s) {
                    Ok(()) => slots.push(None),
                    Err(e) => {
                        let slot = e.batch_slot().expect("batched fault must carry a slot");
                        assert!(slot < parts, "slot {slot} out of range");
                        slots.push(Some(slot));
                    }
                }
                gpu.synchronize();
            }
            slots
        };
        let a = collect();
        assert_eq!(a, collect(), "slot attribution must be deterministic");
        let faulted: Vec<_> = a.iter().filter_map(|s| *s).collect();
        assert!(faulted.len() > 5, "30% over 60 attempts must fire");
        assert!(
            faulted.iter().collect::<std::collections::HashSet<_>>().len() > 1,
            "attribution must spread across slots, got {faulted:?}"
        );
    }

    #[test]
    fn stream_stall_stretches_the_timeline_not_the_results() {
        let run = |stall_rate| {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
            gpu.set_fault_plan(Some(FaultPlan::seeded(3).with_stream_stalls(stall_rate, 2000.0)));
            let buf = gpu.mem.upload(&(0u32..1024).collect::<Vec<_>>());
            gpu.launch_default(DoubleKernel { buf }, LaunchConfig::linear(1024, 256)).unwrap();
            let t = gpu.synchronize();
            (gpu.mem.download(buf), t.span_us(), gpu.fault_stats().stream_stalls)
        };
        let (data_clean, span_clean, stalls_clean) = run(0.0);
        let (data_stalled, span_stalled, stalls) = run(1.0);
        assert_eq!(stalls_clean, 0);
        assert_eq!(stalls, 1);
        assert_eq!(data_clean, data_stalled, "stalls are timing-only");
        assert!(
            span_stalled > span_clean + 1500.0,
            "a 2000us stall must dominate: {span_stalled} vs {span_clean}"
        );
    }

    #[test]
    fn cancel_pending_discards_the_queue() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let buf = gpu.mem.alloc::<u32>(64);
        gpu.launch_default(DoubleKernel { buf }, LaunchConfig::linear(64, 64)).unwrap();
        assert_eq!(gpu.pending_launches(), 1);
        gpu.cancel_pending();
        assert_eq!(gpu.pending_launches(), 0);
        let t = gpu.synchronize();
        assert!(t.events.is_empty(), "cancelled launches must not be simulated");
        assert!(gpu.profiler().kernels().is_empty(), "or profiled");
    }

    #[test]
    fn copy_corruption_fires_and_drains() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        gpu.set_fault_plan(Some(FaultPlan::seeded(11).with_copy_corruption(1.0)));
        let buf = gpu.mem.upload(&vec![7u32; 512]);
        let out = gpu.mem.download(buf);
        let zeroed = out.iter().filter(|&&v| v == 0).count();
        assert!(zeroed > 0 && zeroed <= 64, "poisoned region zeroed: {zeroed}");
        let faults = gpu.mem.drain_copy_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].buf_id, buf.raw_id());
        assert_eq!(faults[0].len, zeroed);
        assert!(gpu.mem.drain_copy_faults().is_empty(), "drain empties the log");
        // The device copy itself is intact on download corruption.
        gpu.set_fault_plan(None);
        assert!(gpu.mem.download(buf).iter().all(|&v| v == 7));
    }

    #[test]
    fn pending_clears_on_sync() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let buf = gpu.mem.alloc::<u32>(64);
        gpu.launch_default(DoubleKernel { buf }, LaunchConfig::linear(64, 64)).unwrap();
        assert_eq!(gpu.pending_launches(), 1);
        gpu.synchronize();
        assert_eq!(gpu.pending_launches(), 0);
    }

    #[test]
    #[should_panic(expected = "deferred")]
    fn host_read_while_deferred_panics() {
        let mut gpu =
            Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial).with_host_exec(HostExec::Async);
        let buf = gpu.mem.upload(&vec![1u32; 64]);
        gpu.launch_default(DoubleKernel { buf }, LaunchConfig::linear(64, 64)).unwrap();
        // The launch has not run yet; reading now would observe stale data.
        let _ = gpu.mem.read(buf);
    }

    #[test]
    fn flush_runs_functional_phase_without_timing() {
        let mut gpu =
            Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent).with_host_exec(HostExec::Async);
        let buf = gpu.mem.upload(&(0u32..256).collect::<Vec<_>>());
        gpu.launch_default(DoubleKernel { buf }, LaunchConfig::linear(256, 128)).unwrap();
        gpu.flush();
        // Memory effects land at flush; the launch still awaits its timeline.
        assert_eq!(gpu.mem.read(buf)[3], 6);
        assert_eq!(gpu.pending_launches(), 1);
        let t = gpu.synchronize();
        assert_eq!(t.events.len(), 1);
        assert!(t.span_us() > 0.0);
    }

    #[test]
    fn gpu_download_flushes_implicitly() {
        let mut gpu =
            Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial).with_host_exec(HostExec::Async);
        let buf = gpu.mem.upload(&vec![21u32; 128]);
        gpu.launch_default(DoubleKernel { buf }, LaunchConfig::linear(128, 64)).unwrap();
        assert!(gpu.download(buf).iter().all(|&v| v == 42));
    }

    #[test]
    fn engines_are_bit_identical() {
        let run = |exec| {
            let mut gpu =
                Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent).with_host_exec(exec);
            let a = gpu.mem.upload(&(0u32..4096).collect::<Vec<_>>());
            let b = gpu.mem.upload(&(0u32..4096).rev().collect::<Vec<_>>());
            let s1 = gpu.create_stream();
            let s2 = gpu.create_stream();
            gpu.launch(DoubleKernel { buf: a }, LaunchConfig::linear(4096, 256), s1).unwrap();
            gpu.launch(DoubleKernel { buf: b }, LaunchConfig::linear(4096, 256), s2).unwrap();
            gpu.launch(DoubleKernel { buf: a }, LaunchConfig::linear(4096, 256), s1).unwrap();
            let t = gpu.synchronize();
            let trace: Vec<_> = gpu
                .profiler()
                .traces()
                .iter()
                .map(|e| (e.kernel_name, e.blocks, e.t_start_us.to_bits(), e.t_end_us.to_bits()))
                .collect();
            (gpu.mem.download(a), gpu.mem.download(b), t.span_us().to_bits(), trace)
        };
        assert_eq!(run(HostExec::Sync), run(HostExec::Async));
    }

    /// Doubles `buf` like [`DoubleKernel`] but burns extra host time per
    /// block, so drains are long enough for wall-clock spans to overlap.
    #[derive(Clone, Copy)]
    struct SlowDoubleKernel {
        buf: DevBuf<u32>,
    }

    impl Kernel for SlowDoubleKernel {
        fn name(&self) -> &'static str {
            "slow_double"
        }
        fn run_block(&self, ctx: &mut BlockCtx<'_>) {
            let tpb = ctx.block_dim.count() as usize;
            let base = ctx.block_idx.x as usize * tpb;
            let mut data = ctx.mem.write(self.buf);
            let end = (base + tpb).min(data.len());
            // Block-seeded LCG kept alive by black_box: real host time per
            // block, so one drain spans several scheduler quanta and the
            // workers genuinely interleave even on a single core.
            let mut burn = ctx.block_idx.x.wrapping_add(1);
            for _ in 0..200_000 {
                burn = burn.wrapping_mul(1664525).wrapping_add(1013904223);
            }
            std::hint::black_box(burn);
            for v in &mut data[base..end] {
                *v = v.wrapping_mul(2);
            }
            ctx.meter.alu(ctx.warps_in_block());
        }
        fn access(&self, set: &mut AccessSet) {
            set.reads(self.buf).writes(self.buf);
        }
    }

    #[test]
    fn independent_streams_overlap_on_the_host_lane() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent)
            .with_host_exec(HostExec::Async)
            .with_host_threads(2);
        let n = 32 * 1024usize;
        let a = gpu.mem.upload(&vec![1u32; n]);
        let b = gpu.mem.upload(&vec![3u32; n]);
        let s1 = gpu.create_stream();
        let s2 = gpu.create_stream();
        let cfg = LaunchConfig::linear(n, 128);
        gpu.launch(SlowDoubleKernel { buf: a }, cfg, s1).unwrap();
        gpu.launch(SlowDoubleKernel { buf: b }, cfg, s2).unwrap();
        gpu.synchronize();
        assert!(gpu.mem.read(a).iter().all(|&v| v == 2));
        assert!(gpu.mem.read(b).iter().all(|&v| v == 6));

        let spans = gpu.profiler().host_spans();
        let workers: std::collections::HashSet<usize> = spans.iter().map(|s| s.worker).collect();
        assert!(workers.len() >= 2, "both workers must participate: {spans:?}");
        let launches: std::collections::HashSet<u64> =
            spans.iter().map(|s| s.launch_idx).collect();
        assert_eq!(launches.len(), 2, "both launches must appear: {spans:?}");
        let overlapping = spans.iter().any(|x| {
            spans.iter().any(|y| x.launch_idx != y.launch_idx && x.overlaps(y))
        });
        assert!(
            overlapping,
            "independent launches must overlap across workers: {spans:?}"
        );
    }

    /// `dst[i] = src[i] * k + add`, one block per 256 elements; meters its
    /// traffic through the buffer-tagged helpers so fusion crediting
    /// applies when the buffers are fusion-local.
    #[derive(Clone, Copy)]
    struct AffineKernel {
        src: DevBuf<u32>,
        dst: DevBuf<u32>,
        n: usize,
        k: u32,
        add: u32,
        name: &'static str,
    }

    impl Kernel for AffineKernel {
        fn name(&self) -> &'static str {
            self.name
        }
        fn run_block(&self, ctx: &mut BlockCtx<'_>) {
            let tpb = ctx.block_dim.count() as usize;
            let base = ctx.block_idx.x as usize * tpb;
            let end = (base + tpb).min(self.n);
            if base >= end {
                return;
            }
            {
                let src = ctx.mem.read(self.src);
                let mut dst = ctx.mem.write(self.dst);
                for i in base..end {
                    dst[i] = src[i] * self.k + self.add;
                }
            }
            let bytes = ((end - base) * 4) as u64;
            ctx.meter.alu(2 * ctx.warps_in_block());
            ctx.global_load_buf(self.src, bytes);
            ctx.global_store_buf(self.dst, bytes);
        }
        fn access(&self, set: &mut AccessSet) {
            set.reads(self.src).writes(self.dst);
        }
        fn fusion_traits(&self) -> Option<crate::fuse::FusionTraits> {
            Some(crate::fuse::FusionTraits {
                read_domain: (self.n, 1),
                write_domain: (self.n, 1),
                tile_local: true,
            })
        }
    }

    /// Fused chain vs the same stages launched separately, across both
    /// host engines and thread counts: outputs bit-identical, one trace
    /// row instead of three, (k-1) launch overheads and the intermediate
    /// round-trips saved.
    #[test]
    fn fused_chain_matches_separate_launches_and_is_cheaper() {
        let n = 8192usize;
        let cfg = LaunchConfig::linear(n, 256);
        let run = |fused: bool, exec: HostExec, threads: usize| {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent)
                .with_host_exec(exec)
                .with_host_threads(threads);
            let a = gpu.mem.upload(&(0u32..n as u32).collect::<Vec<_>>());
            let b = gpu.mem.alloc::<u32>(n);
            let c = gpu.mem.alloc::<u32>(n);
            let d = gpu.mem.alloc::<u32>(n);
            let s = gpu.create_stream();
            let k1 = AffineKernel { src: a, dst: b, n, k: 3, add: 1, name: "s1" };
            let k2 = AffineKernel { src: b, dst: c, n, k: 2, add: 5, name: "s2" };
            let k3 = AffineKernel { src: c, dst: d, n, k: 1, add: 7, name: "s3" };
            if fused {
                let chain = crate::fuse::FusedChain::new("s1+s2+s3")
                    .then(k1, cfg)
                    .then(k2, cfg)
                    .then(k3, cfg);
                gpu.launch_fused(chain, s).unwrap();
            } else {
                gpu.launch(k1, cfg, s).unwrap();
                gpu.launch(k2, cfg, s).unwrap();
                gpu.launch(k3, cfg, s).unwrap();
            }
            let t = gpu.synchronize();
            let totals: KernelCounters = gpu
                .profiler()
                .kernels()
                .values()
                .fold(KernelCounters::default(), |mut acc, p| {
                    acc.add(&p.counters);
                    acc
                });
            (gpu.mem.download(d), t.span_us(), t.events.len(), totals)
        };

        let baseline = run(false, HostExec::Sync, 1);
        let fused_ref = run(true, HostExec::Sync, 1);
        assert_eq!(baseline.0, fused_ref.0, "fused results must match unfused");
        assert_eq!(baseline.2, 3, "unfused: one trace row per stage");
        assert_eq!(fused_ref.2, 1, "fused: a single launch");

        // Timing: one launch overhead instead of three, and the two
        // intermediates' round-trips credited to on-chip rates.
        let overhead = DeviceSpec::gtx470().launch_overhead_us;
        assert!(
            fused_ref.1 + 1.9 * overhead < baseline.1,
            "fusing 3 stages must save ~2 launch overheads: {} vs {}",
            fused_ref.1,
            baseline.1
        );

        // Counters: the intermediates' store+load traffic moved from the
        // global ledger to the fused ledger; the chain's external read
        // (a) and write (d) stay global.
        let (bc, fc) = (&baseline.3, &fused_ref.3);
        assert_eq!(fc.fused_bytes(), (4 * n * 4) as u64, "b,c round-trips become fused");
        assert_eq!(bc.fused_bytes(), 0);
        assert_eq!(fc.global_bytes_read, (n * 4) as u64);
        assert_eq!(fc.global_bytes_written, (n * 4) as u64);
        assert_eq!(
            bc.global_bytes() - fc.global_bytes(),
            fc.fused_bytes(),
            "credited traffic accounts for every avoided global byte"
        );

        // Engine/thread-count invariance, fused and unfused alike.
        for exec in [HostExec::Sync, HostExec::Async] {
            for threads in [1, 4] {
                let f = run(true, exec, threads);
                assert_eq!(f.0, fused_ref.0, "{exec:?}/{threads}");
                assert_eq!(f.1.to_bits(), fused_ref.1.to_bits(), "{exec:?}/{threads}");
                let u = run(false, exec, threads);
                assert_eq!(u.0, baseline.0, "{exec:?}/{threads}");
                assert_eq!(u.1.to_bits(), baseline.1.to_bits(), "{exec:?}/{threads}");
            }
        }
    }

    /// A launch after a fused chain that reads the chain's output must
    /// order behind the whole chain in the async engine (its dependency
    /// points at the chain's *last* phase node).
    #[test]
    fn downstream_of_fused_chain_sees_final_stage_output() {
        let n = 8192usize;
        let cfg = LaunchConfig::linear(n, 256);
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent)
            .with_host_exec(HostExec::Async)
            .with_host_threads(4);
        let a = gpu.mem.upload(&vec![1u32; n]);
        let b = gpu.mem.alloc::<u32>(n);
        let c = gpu.mem.alloc::<u32>(n);
        let s = gpu.create_stream();
        let s2 = gpu.create_stream();
        let chain = crate::fuse::FusedChain::new("mul+add")
            .then(AffineKernel { src: a, dst: b, n, k: 5, add: 0, name: "mul" }, cfg)
            .then(AffineKernel { src: b, dst: c, n, k: 1, add: 2, name: "add" }, cfg);
        gpu.launch_fused(chain, s).unwrap();
        // Different stream: ordered only by the RAW hazard on c.
        gpu.launch(DoubleKernel { buf: c }, LaunchConfig::linear(n, 256), s2).unwrap();
        gpu.synchronize();
        assert!(gpu.mem.read(c).iter().all(|&v| v == (1 * 5 + 2) * 2));
    }
}
