//! The device front-end: launch kernels, manage streams/events, synchronize.

use std::collections::{HashMap, HashSet};

use crate::cost::CostModel;
use crate::device::DeviceSpec;
use crate::exec;
use crate::kernel::{Kernel, LaunchConfig};
use crate::memory::{ConstBank, ConstPtr, DeviceMemory, TexId, Texture2D};
use crate::profiler::Profiler;
use crate::sched::{simulate, ExecMode, LaunchRecord, Timeline};
use crate::stream::{EventId, StreamId};

/// Most blocks a single launch may execute functionally. Far beyond any
/// realistic pyramid (a 1080p frame tiles to ~32 K blocks); grids past
/// this would exhaust host memory on per-block cost records, so they are
/// rejected as a launch error instead of aborting on allocation.
pub const MAX_FUNCTIONAL_BLOCKS: u64 = 1 << 24;

/// Reasons a kernel launch can be rejected, mirroring CUDA launch errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Block exceeds `max_threads_per_block`.
    TooManyThreads { requested: u32, limit: u32 },
    /// Requested dynamic shared memory exceeds the per-block limit.
    SharedMemExceeded { requested: u32, limit: u32 },
    /// Grid or block has a zero extent.
    EmptyLaunch,
    /// Grid exceeds [`MAX_FUNCTIONAL_BLOCKS`] (`requested` saturates at
    /// `u64::MAX` when the block count itself overflows).
    GridTooLarge { requested: u64, limit: u64 },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::TooManyThreads { requested, limit } => {
                write!(f, "block of {requested} threads exceeds device limit {limit}")
            }
            LaunchError::SharedMemExceeded { requested, limit } => {
                write!(f, "{requested} B shared memory exceeds per-block limit {limit} B")
            }
            LaunchError::EmptyLaunch => write!(f, "grid and block extents must be non-zero"),
            LaunchError::GridTooLarge { requested, limit } => {
                write!(f, "grid of {requested} blocks exceeds functional-simulation limit {limit}")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// A simulated GPU: memory spaces, streams, a launch queue and a profiler.
///
/// See the crate-level documentation for the execution model. The typical
/// per-frame cycle is: upload inputs, stage constants/textures, launch the
/// pipeline's kernels into per-scale streams, then [`Gpu::synchronize`] to
/// obtain the frame's [`Timeline`].
pub struct Gpu {
    pub spec: DeviceSpec,
    pub cost: CostModel,
    /// Global-memory arena (public: host code uploads/downloads directly).
    pub mem: DeviceMemory,
    constants: ConstBank,
    textures: Vec<Texture2D>,
    mode: ExecMode,
    /// Host worker threads for the functional phase; `None` defers to
    /// `FD_SIM_THREADS` / host parallelism (see [`crate::exec`]).
    host_threads: Option<usize>,
    next_stream: u32,
    next_event: u32,
    pending: Vec<LaunchRecord>,
    launch_counter: usize,
    pending_waits: HashMap<StreamId, Vec<EventId>>,
    fired_events: HashSet<EventId>,
    profiler: Profiler,
}

impl Gpu {
    /// Create a device with the default cost model.
    pub fn new(spec: DeviceSpec, mode: ExecMode) -> Self {
        let constants = ConstBank::new(spec.const_mem_bytes);
        Self {
            spec,
            cost: CostModel::default(),
            mem: DeviceMemory::new(),
            constants,
            textures: Vec::new(),
            mode,
            host_threads: None,
            next_stream: 1,
            next_event: 0,
            pending: Vec::new(),
            launch_counter: 0,
            pending_waits: HashMap::new(),
            fired_events: HashSet::new(),
            profiler: Profiler::new(),
        }
    }

    /// Current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Pin the functional phase to `threads` host workers (builder form).
    /// `1` selects the sequential path; overrides `FD_SIM_THREADS`.
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.set_host_threads(Some(threads));
        self
    }

    /// Set or clear the host-thread override for the functional phase.
    /// `None` defers to `FD_SIM_THREADS`, then to host parallelism.
    pub fn set_host_threads(&mut self, threads: Option<usize>) {
        self.host_threads = threads.map(|n| n.max(1));
    }

    /// Effective host worker threads the next launch will use.
    pub fn host_threads(&self) -> usize {
        exec::resolve_host_threads(self.host_threads)
    }

    /// Switch between serial and concurrent kernel execution. Takes effect
    /// at the next [`Gpu::synchronize`]; pending launches are simulated
    /// under the mode active when synchronize is called.
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// Create a new stream.
    pub fn create_stream(&mut self) -> StreamId {
        let s = StreamId(self.next_stream);
        self.next_stream += 1;
        s
    }

    /// Record an event capturing all work currently queued in `stream`.
    pub fn record_event(&mut self, stream: StreamId) -> EventId {
        let e = EventId(self.next_event);
        self.next_event += 1;
        if let Some(last) = self.pending.iter_mut().rev().find(|l| l.stream == stream) {
            last.record_events.push(e);
        } else {
            // Nothing queued in the stream: the event is already complete.
            self.fired_events.insert(e);
        }
        e
    }

    /// Make the *next* launch in `stream` wait for `event`.
    pub fn stream_wait_event(&mut self, stream: StreamId, event: EventId) {
        if self.fired_events.contains(&event) {
            return;
        }
        self.pending_waits.entry(stream).or_default().push(event);
    }

    /// Stage data into constant memory.
    pub fn const_upload(&mut self, words: &[u32]) -> ConstPtr {
        self.constants.upload(words)
    }

    /// Reset constant memory.
    pub fn const_clear(&mut self) {
        self.constants.clear();
    }

    /// Constant-memory words currently staged.
    pub fn const_used_words(&self) -> usize {
        self.constants.used_words()
    }

    /// Bind a 2D single-channel texture; returns its handle.
    pub fn bind_texture(&mut self, tex: Texture2D) -> TexId {
        self.textures.push(tex);
        TexId(self.textures.len() - 1)
    }

    /// Unbind all textures (handles become invalid).
    pub fn clear_textures(&mut self) {
        self.textures.clear();
    }

    /// Launch `kernel` with `cfg` into `stream`.
    ///
    /// The functional phase runs immediately: every block executes (in
    /// parallel across host threads for large grids — see
    /// [`crate::exec`]), and metered work is converted to per-block
    /// timing costs for the scheduler, collected in linear block order.
    pub fn launch<K: Kernel>(
        &mut self,
        kernel: &K,
        cfg: LaunchConfig,
        stream: StreamId,
    ) -> Result<(), LaunchError> {
        let threads = cfg.threads_per_block();
        // Compute the block count with saturation: `Dim3::count` can wrap
        // for adversarial grids (u32³ exceeds u64), and `Vec::with_capacity`
        // on an absurd count would abort the process rather than error.
        let total_blocks = (cfg.grid.x as u64)
            .saturating_mul(cfg.grid.y as u64)
            .saturating_mul(cfg.grid.z as u64);
        if threads == 0 || total_blocks == 0 {
            return Err(LaunchError::EmptyLaunch);
        }
        if total_blocks > MAX_FUNCTIONAL_BLOCKS {
            return Err(LaunchError::GridTooLarge {
                requested: total_blocks,
                limit: MAX_FUNCTIONAL_BLOCKS,
            });
        }
        if threads > self.spec.max_threads_per_block {
            return Err(LaunchError::TooManyThreads {
                requested: threads,
                limit: self.spec.max_threads_per_block,
            });
        }
        if cfg.shared_mem_bytes > self.spec.max_shared_mem_per_block {
            return Err(LaunchError::SharedMemExceeded {
                requested: cfg.shared_mem_bytes,
                limit: self.spec.max_shared_mem_per_block,
            });
        }

        let env = exec::LaunchEnv {
            mem: &self.mem,
            constants: &self.constants,
            textures: &self.textures,
            cost: &self.cost,
            warp_size: self.spec.warp_size,
        };
        let host_threads = exec::resolve_host_threads(self.host_threads);
        let exec::FunctionalResult { block_costs, totals } =
            exec::run_functional(kernel, &cfg, &env, host_threads, total_blocks);

        let wait_events = self.pending_waits.remove(&stream).unwrap_or_default();
        self.pending.push(LaunchRecord {
            launch_idx: self.launch_counter,
            kernel_name: kernel.name(),
            stream,
            shared_mem_bytes: cfg.shared_mem_bytes,
            threads_per_block: threads,
            warps_per_block: cfg.warps_per_block(self.spec.warp_size),
            block_costs,
            counters: totals,
            wait_events,
            record_events: Vec::new(),
        });
        self.launch_counter += 1;
        Ok(())
    }

    /// Launch into the default stream.
    pub fn launch_default<K: Kernel>(
        &mut self,
        kernel: &K,
        cfg: LaunchConfig,
    ) -> Result<(), LaunchError> {
        self.launch(kernel, cfg, StreamId::DEFAULT)
    }

    /// Number of launches queued since the last synchronize.
    pub fn pending_launches(&self) -> usize {
        self.pending.len()
    }

    /// Run the timing simulation over all queued launches, feed the
    /// profiler, clear the queue and return the timeline. The timeline's
    /// origin (t = 0) is this synchronization scope's start.
    pub fn synchronize(&mut self) -> Timeline {
        let launches = std::mem::take(&mut self.pending);
        // Waits registered but never attached to a launch are dropped, like
        // a cudaStreamWaitEvent on a stream that never launches again.
        self.pending_waits.clear();
        // All recorded events fire within this scope.
        for l in &launches {
            for &e in &l.record_events {
                self.fired_events.insert(e);
            }
        }
        let timeline = simulate(&self.spec, &self.cost, self.mode, &launches);
        self.profiler.absorb(&timeline.events);
        timeline
    }

    /// Accumulated profiling data across all synchronization scopes.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Clear profiling data.
    pub fn reset_profiler(&mut self) {
        self.profiler.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::BlockCtx;
    use crate::memory::DevBuf;

    /// Doubles every element; meters one load+store and one ALU op per warp.
    struct DoubleKernel {
        buf: DevBuf<u32>,
    }

    impl Kernel for DoubleKernel {
        fn name(&self) -> &'static str {
            "double"
        }
        fn run_block(&self, ctx: &mut BlockCtx<'_>) {
            let tpb = ctx.block_dim.count() as usize;
            let base = ctx.block_idx.x as usize * tpb;
            let mut data = ctx.mem.write(self.buf);
            let end = (base + tpb).min(data.len());
            for v in &mut data[base..end] {
                *v *= 2;
            }
            ctx.meter.alu(ctx.warps_in_block());
            ctx.meter.global_load(((end - base) * 4) as u64);
            ctx.meter.global_store(((end - base) * 4) as u64);
        }
    }

    #[test]
    fn launch_executes_functionally_and_times() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let buf = gpu.mem.upload(&(0u32..1024).collect::<Vec<_>>());
        gpu.launch_default(&DoubleKernel { buf }, LaunchConfig::linear(1024, 256)).unwrap();
        let t = gpu.synchronize();
        assert_eq!(gpu.mem.read(buf)[10], 20);
        assert_eq!(t.events.len(), 1);
        assert!(t.span_us() > 0.0);
        assert_eq!(t.events[0].blocks, 4);
    }

    #[test]
    fn launch_validation_rejects_bad_configs() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let buf = gpu.mem.alloc::<u32>(16);
        let k = DoubleKernel { buf };
        assert!(matches!(
            gpu.launch_default(&k, LaunchConfig::new(1u32, 2048u32)),
            Err(LaunchError::TooManyThreads { .. })
        ));
        assert!(matches!(
            gpu.launch_default(&k, LaunchConfig::new(1u32, 32u32).with_shared_mem(1 << 20)),
            Err(LaunchError::SharedMemExceeded { .. })
        ));
        assert!(matches!(
            gpu.launch_default(&k, LaunchConfig::new(0u32, 32u32)),
            Err(LaunchError::EmptyLaunch)
        ));
    }

    #[test]
    fn functional_results_identical_across_modes() {
        let run = |mode| {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), mode);
            let buf = gpu.mem.upload(&(0u32..4096).collect::<Vec<_>>());
            let s1 = gpu.create_stream();
            let s2 = gpu.create_stream();
            gpu.launch(&DoubleKernel { buf }, LaunchConfig::linear(4096, 256), s1).unwrap();
            gpu.launch(&DoubleKernel { buf }, LaunchConfig::linear(4096, 256), s2).unwrap();
            gpu.synchronize();
            gpu.mem.download(buf)
        };
        assert_eq!(run(ExecMode::Serial), run(ExecMode::Concurrent));
    }

    #[test]
    fn record_event_on_idle_stream_is_prefired() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let s1 = gpu.create_stream();
        let s2 = gpu.create_stream();
        let e = gpu.record_event(s1); // nothing queued in s1
        gpu.stream_wait_event(s2, e); // must be a no-op
        let buf = gpu.mem.alloc::<u32>(32);
        gpu.launch(&DoubleKernel { buf }, LaunchConfig::linear(32, 32), s2).unwrap();
        let t = gpu.synchronize();
        assert_eq!(t.events.len(), 1);
    }

    #[test]
    fn profiler_accumulates_across_scopes() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let buf = gpu.mem.alloc::<u32>(256);
        gpu.launch_default(&DoubleKernel { buf }, LaunchConfig::linear(256, 128)).unwrap();
        gpu.synchronize();
        gpu.launch_default(&DoubleKernel { buf }, LaunchConfig::linear(256, 128)).unwrap();
        gpu.synchronize();
        assert_eq!(gpu.profiler().kernels()["double"].launches, 2);
        assert_eq!(gpu.profiler().traces().len(), 2);
    }

    #[test]
    fn pending_clears_on_sync() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let buf = gpu.mem.alloc::<u32>(64);
        gpu.launch_default(&DoubleKernel { buf }, LaunchConfig::linear(64, 64)).unwrap();
        assert_eq!(gpu.pending_launches(), 1);
        gpu.synchronize();
        assert_eq!(gpu.pending_launches(), 0);
    }
}
