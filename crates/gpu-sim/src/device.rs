//! Device capability descriptions.

/// Static capabilities of a simulated GPU.
///
/// The preset used throughout the reproduction is [`DeviceSpec::gtx470`],
/// matching the evaluation platform of the paper (NVIDIA GTX470, Fermi
/// GF100, compute capability 2.0). Residency limits are the published sm_20
/// limits; throughput figures are the card's data-sheet values.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, used in profiler output.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// SIMT width of a warp.
    pub warp_size: u32,
    /// Maximum thread blocks resident on one SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads resident on one SM.
    pub max_threads_per_sm: u32,
    /// Maximum warps resident on one SM.
    pub max_warps_per_sm: u32,
    /// Maximum threads in a single block.
    pub max_threads_per_block: u32,
    /// Shared memory per SM, bytes.
    pub shared_mem_per_sm: u32,
    /// Shared memory addressable by a single block, bytes.
    pub max_shared_mem_per_block: u32,
    /// Register file size per SM, in 32-bit registers. Together with a
    /// kernel's declared per-thread register usage this bounds block
    /// residency exactly like shared memory does: a block consumes
    /// `registers_per_thread * threads_per_block` registers for its whole
    /// lifetime.
    pub registers_per_sm: u32,
    /// Most registers the compiler may assign to one thread. Declared
    /// usage above this is clamped (the `-maxrregcount` effect: real
    /// toolchains spill to local memory instead of failing the launch).
    pub max_registers_per_thread: u32,
    /// Constant memory size, bytes.
    pub const_mem_bytes: u32,
    /// Shader ("hot") clock in GHz; cycle costs are expressed in this clock.
    pub clock_ghz: f64,
    /// Aggregate DRAM bandwidth, GB/s.
    pub dram_bandwidth_gbps: f64,
    /// Whether the device can co-schedule kernels from different streams.
    pub concurrent_kernels: bool,
    /// Maximum number of kernels co-resident when `concurrent_kernels`.
    pub max_concurrent_kernels: u32,
    /// Fixed per-kernel launch overhead (host enqueue + device dispatch),
    /// microseconds. Fermi-era microbenchmarks put this at 5-10 us; it is
    /// paid serially between kernels in [`crate::ExecMode::Serial`] and
    /// overlapped across streams in [`crate::ExecMode::Concurrent`] —
    /// with ~130 launches per 1080p frame (17 pyramid levels x 8
    /// kernels), a first-order term of the paper's serial baseline.
    pub launch_overhead_us: f64,
    /// Additional per-kernel overhead applied in [`crate::ExecMode::Serial`]
    /// only. The paper's serial baseline is measured the way its §V
    /// describes: with the CUDA command-line profiler's per-kernel tracing
    /// active (concurrent traces were impossible, so serial numbers come
    /// from profiler-serialized executions). Profiler counter collection
    /// on Fermi drains the device and flushes counters after every
    /// launch, adding tens of microseconds per kernel; with ~130 launches
    /// per 1080p frame this is a first-order term of the serial column.
    pub serial_profiling_overhead_us: f64,
}

impl DeviceSpec {
    /// The paper's evaluation GPU: NVIDIA GeForce GTX470 (Fermi GF100,
    /// sm_20). 14 SMs x 32 lanes, 1.215 GHz shader clock, 133.9 GB/s DRAM,
    /// 16-way concurrent kernel execution.
    pub fn gtx470() -> Self {
        Self {
            name: "GeForce GTX470 (simulated)",
            sm_count: 14,
            warp_size: 32,
            max_blocks_per_sm: 8,
            max_threads_per_sm: 1536,
            max_warps_per_sm: 48,
            max_threads_per_block: 1024,
            shared_mem_per_sm: 48 * 1024,
            max_shared_mem_per_block: 48 * 1024,
            registers_per_sm: 32 * 1024,
            max_registers_per_thread: 63,
            const_mem_bytes: 64 * 1024,
            clock_ghz: 1.215,
            dram_bandwidth_gbps: 133.9,
            concurrent_kernels: true,
            max_concurrent_kernels: 16,
            launch_overhead_us: 8.0,
            serial_profiling_overhead_us: 20.0,
        }
    }

    /// A deliberately small single-SM device, useful in tests where block
    /// serialization must be forced.
    pub fn single_sm() -> Self {
        Self {
            name: "single-SM test device",
            sm_count: 1,
            ..Self::gtx470()
        }
    }

    /// Converts a cycle count in the shader clock domain to microseconds.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e3)
    }

    /// DRAM bytes transferable per shader cycle, device-wide.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbps / self.clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx470_matches_published_limits() {
        let d = DeviceSpec::gtx470();
        assert_eq!(d.sm_count, 14);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.max_warps_per_sm, 48);
        assert_eq!(d.max_threads_per_sm, 1536);
        assert_eq!(d.registers_per_sm, 32768);
        assert_eq!(d.max_registers_per_thread, 63);
        assert!(d.concurrent_kernels);
    }

    #[test]
    fn cycle_conversion_is_clock_scaled() {
        let d = DeviceSpec::gtx470();
        // 1.215e9 cycles is one second = 1e6 us.
        let us = d.cycles_to_us(1.215e9);
        assert!((us - 1e6).abs() < 1e-6 * 1e6);
    }

    #[test]
    fn dram_bytes_per_cycle_sane() {
        let d = DeviceSpec::gtx470();
        let b = d.dram_bytes_per_cycle();
        assert!(b > 100.0 && b < 120.0, "GTX470 ~110 B/cycle, got {b}");
    }
}
