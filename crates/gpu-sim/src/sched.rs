//! Discrete-event scheduling of thread blocks onto streaming
//! multiprocessors.
//!
//! The scheduler consumes [`LaunchRecord`]s (produced by the functional
//! phase) and simulates the device's block dispatcher:
//!
//! * every SM has residency limits (blocks, warps, threads, shared memory,
//!   registers);
//! * launches in the same stream execute in order;
//! * [`ExecMode::Serial`] additionally drains each launch before the next
//!   one starts (profiler-style serialization, the paper's baseline);
//! * [`ExecMode::Concurrent`] lets blocks of up to
//!   `max_concurrent_kernels` launches from *different* streams share the
//!   device, backfilling SMs that the current kernels leave idle — the
//!   mechanism behind the paper's headline speedup;
//! * `cudaStreamWaitEvent`-style dependencies are honored.
//!
//! Block durations come from [`CostModel::block_cycles`], evaluated at
//! placement time with the SM's warp residency, so small lonely kernels pay
//! poor latency hiding in addition to leaving SMs idle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cost::CostModel;
use crate::device::DeviceSpec;
use crate::meter::KernelCounters;
use crate::profiler::TraceEvent;
use crate::stream::{EventId, StreamId};

/// Whether kernels from distinct streams may overlap on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Drain every launch before starting the next, regardless of stream.
    Serial,
    /// Fermi-style concurrent kernel execution across streams.
    Concurrent,
}

/// Timing cost of one thread block, produced by the functional phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCost {
    /// Issue-pipeline cycles (ALU, shared, constant, texture, barriers).
    pub issue_cycles: f64,
    /// Un-hidden global-memory latency cycles.
    pub mem_latency_cycles: f64,
    /// Global traffic in bytes (for the bandwidth floor).
    pub mem_bytes: u64,
}

/// Which per-SM residency budget bounds a launch's block residency.
///
/// The scheduler admits a block only when every budget has room; the
/// *limiting factor* is the budget whose theoretical bound
/// (`budget / per-block demand`) is smallest. Ties resolve toward the
/// scarcer, less elastic budget — registers and shared memory are fixed
/// allocations a compiler or tiling change could relax, warps/threads
/// only shrink with the block, and the 8-block cap almost never binds
/// alone — so the reported factor is the one worth attacking first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OccupancyLimit {
    Registers,
    SharedMem,
    Warps,
    Threads,
    Blocks,
}

impl OccupancyLimit {
    /// Every factor, in tie-break (reporting) order.
    pub const ALL: [OccupancyLimit; 5] = [
        OccupancyLimit::Registers,
        OccupancyLimit::SharedMem,
        OccupancyLimit::Warps,
        OccupancyLimit::Threads,
        OccupancyLimit::Blocks,
    ];

    /// Stable lower-case label for traces and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            OccupancyLimit::Registers => "registers",
            OccupancyLimit::SharedMem => "smem",
            OccupancyLimit::Warps => "warps",
            OccupancyLimit::Threads => "threads",
            OccupancyLimit::Blocks => "blocks",
        }
    }
}

/// Theoretical per-SM residency of one launch's blocks: how many fit an
/// empty SM, and which budget ran out first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchOccupancy {
    /// The budget that bound `blocks_per_sm` (see [`OccupancyLimit`]).
    pub limit: OccupancyLimit,
    /// Blocks of this launch an empty SM can hold. Zero means the launch
    /// can never place a block (validation rejects such launches).
    pub blocks_per_sm: u32,
    /// Warps resident at that bound (`blocks_per_sm * warps_per_block`).
    pub resident_warps: u32,
}

impl LaunchOccupancy {
    /// Theoretical warp occupancy (0..=1) at the bound.
    pub fn warp_fraction(&self, spec: &DeviceSpec) -> f64 {
        if spec.max_warps_per_sm == 0 {
            return 0.0;
        }
        self.resident_warps as f64 / spec.max_warps_per_sm as f64
    }
}

/// Computes the residency bound of a block demanding
/// `(threads_per_block, warps_per_block, shared_mem_bytes,
/// registers_per_thread)` against every per-SM budget of `spec`, and
/// reports the scarcest budget (ties per [`OccupancyLimit`] order).
pub fn launch_occupancy(
    spec: &DeviceSpec,
    threads_per_block: u32,
    warps_per_block: u32,
    shared_mem_bytes: u32,
    registers_per_thread: u32,
) -> LaunchOccupancy {
    let per_budget = |limit: OccupancyLimit| -> u32 {
        let bound = |budget: u32, demand: u32| -> u32 {
            // Zero demand (e.g. no smem) never binds.
            budget.checked_div(demand).unwrap_or(u32::MAX)
        };
        match limit {
            OccupancyLimit::Blocks => spec.max_blocks_per_sm,
            OccupancyLimit::Warps => bound(spec.max_warps_per_sm, warps_per_block),
            OccupancyLimit::Threads => bound(spec.max_threads_per_sm, threads_per_block),
            OccupancyLimit::SharedMem => bound(spec.shared_mem_per_sm, shared_mem_bytes),
            OccupancyLimit::Registers => bound(
                spec.registers_per_sm,
                registers_per_thread.saturating_mul(threads_per_block),
            ),
        }
    };
    let mut limit = OccupancyLimit::ALL[0];
    let mut blocks = per_budget(limit);
    for &l in &OccupancyLimit::ALL[1..] {
        let b = per_budget(l);
        if b < blocks {
            blocks = b;
            limit = l;
        }
    }
    LaunchOccupancy {
        limit,
        blocks_per_sm: blocks,
        resident_warps: blocks.saturating_mul(warps_per_block),
    }
}

/// A completed functional launch, ready for timing simulation.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    /// Position in global launch order (monotonic per device).
    pub launch_idx: usize,
    pub kernel_name: &'static str,
    pub stream: StreamId,
    pub shared_mem_bytes: u32,
    pub threads_per_block: u32,
    pub warps_per_block: u32,
    /// Registers each thread holds for the block's lifetime (already
    /// clamped to [`DeviceSpec::max_registers_per_thread`] at launch).
    pub registers_per_thread: u32,
    /// Per-block costs, in functional block order.
    pub block_costs: Vec<BlockCost>,
    /// Work counters aggregated over all blocks.
    pub counters: KernelCounters,
    /// Events that must have fired before this launch may start.
    pub wait_events: Vec<EventId>,
    /// Events that fire when this launch completes.
    pub record_events: Vec<EventId>,
}

/// Result of a timing simulation: per-launch trace plus device utilization.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// One entry per launch, in launch order.
    pub events: Vec<TraceEvent>,
    /// Block-time integrated per SM (block-microseconds; exceeds the span
    /// when multiple blocks are co-resident).
    pub sm_busy_us: Vec<f64>,
    /// Warp-time integrated per SM (warp-microseconds).
    pub sm_warp_us: Vec<f64>,
    /// Warp capacity of one SM (for utilization normalization).
    pub warps_per_sm: u32,
    /// End of the last launch, microseconds from the simulation origin.
    pub end_us: f64,
}

impl Timeline {
    /// Total elapsed device time.
    pub fn span_us(&self) -> f64 {
        self.end_us
    }

    /// Mean warp occupancy of the device over the simulated span (0..=1):
    /// resident warp-time divided by total warp capacity.
    pub fn sm_utilization(&self) -> f64 {
        if self.end_us <= 0.0 || self.sm_warp_us.is_empty() || self.warps_per_sm == 0 {
            return 0.0;
        }
        let warp_us: f64 = self.sm_warp_us.iter().sum();
        warp_us / (self.end_us * self.sm_warp_us.len() as f64 * self.warps_per_sm as f64)
    }

    /// Mean number of resident blocks per SM over the span.
    pub fn mean_resident_blocks(&self) -> f64 {
        if self.end_us <= 0.0 || self.sm_busy_us.is_empty() {
            return 0.0;
        }
        self.sm_busy_us.iter().sum::<f64>() / (self.end_us * self.sm_busy_us.len() as f64)
    }

    /// Trace rows belonging to one stream, useful for plotting Fig. 6.
    pub fn stream_rows(&self, stream: StreamId) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.stream == stream).collect()
    }

    /// How many launches each residency budget bounded, keyed by the
    /// factor's stable label — the aggregate view of the per-launch
    /// [`TraceEvent::occupancy`] accounting.
    pub fn limiting_factor_counts(&self) -> std::collections::BTreeMap<&'static str, u64> {
        let mut counts = std::collections::BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.occupancy.limit.as_str()).or_insert(0) += 1;
        }
        counts
    }

    /// Mean *theoretical* warp occupancy across launches (0..=1): what
    /// the limiting budgets allow, as opposed to [`Self::sm_utilization`]
    /// which reports what the schedule achieved.
    pub fn mean_theoretical_occupancy(&self) -> f64 {
        if self.events.is_empty() || self.warps_per_sm == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .events
            .iter()
            .map(|e| e.occupancy.resident_warps.min(self.warps_per_sm) as f64)
            .sum();
        sum / (self.events.len() as f64 * self.warps_per_sm as f64)
    }
}

#[derive(Debug, Clone, Copy)]
struct SmState {
    blocks: u32,
    warps: u32,
    threads: u32,
    shared: u32,
    registers: u32,
    busy_us: f64,
    warp_us: f64,
}

#[derive(Debug)]
struct LaunchState {
    ready_us: Option<f64>,
    next_block: usize,
    completed_blocks: usize,
    start_us: Option<f64>,
    end_us: Option<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Completion {
    time_us: f64,
    sm: usize,
    launch: usize,
    warps: u32,
    threads: u32,
    shared: u32,
    registers: u32,
}

impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order: by time, then launch index, then SM (deterministic).
        self.time_us
            .partial_cmp(&other.time_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.launch.cmp(&other.launch))
            .then(self.sm.cmp(&other.sm))
    }
}

/// Simulates the execution of `launches` on `spec` under `mode`.
///
/// `launches` must be in launch order (`launch_idx` ascending). Event ids
/// referenced by `wait_events` must be recorded by some earlier-or-equal
/// launch; waiting on an event never recorded is a deadlock and panics.
pub fn simulate(
    spec: &DeviceSpec,
    cost: &CostModel,
    mode: ExecMode,
    launches: &[LaunchRecord],
) -> Timeline {
    let n = launches.len();
    let mut sms = vec![
        SmState {
            blocks: 0,
            warps: 0,
            threads: 0,
            shared: 0,
            registers: 0,
            busy_us: 0.0,
            warp_us: 0.0
        };
        spec.sm_count as usize
    ];
    let mut states: Vec<LaunchState> = (0..n)
        .map(|_| LaunchState {
            ready_us: None,
            next_block: 0,
            completed_blocks: 0,
            start_us: None,
            end_us: None,
        })
        .collect();
    // Launch overhead actually charged to each launch, reported on the
    // trace so tools can attribute it as its own slice (fusion's saved
    // overheads then show up in traces, not just aggregate spans).
    let mut overheads = vec![0.0f64; n];

    // Map every event to the launch that records it.
    let mut event_source: std::collections::HashMap<EventId, usize> = Default::default();
    for (i, l) in launches.iter().enumerate() {
        for &e in &l.record_events {
            event_source.insert(e, i);
        }
    }

    // Precompute each launch's in-stream predecessor. The readiness loop
    // below runs every event-loop round; scanning `(0..i).rev()` there
    // made each round O(n^2) in the launch count. One forward pass with a
    // per-stream "last seen" map yields the same predecessor indices.
    let mut stream_pred: Vec<Option<usize>> = Vec::with_capacity(n);
    let mut last_in_stream: std::collections::HashMap<StreamId, usize> = Default::default();
    for (i, l) in launches.iter().enumerate() {
        stream_pred.push(last_in_stream.insert(l.stream, i));
    }

    // Validate event graph up front (no forward waits => no deadlock).
    for (i, l) in launches.iter().enumerate() {
        for e in &l.wait_events {
            let src = event_source
                .get(e)
                .unwrap_or_else(|| panic!("launch {i} waits on unrecorded event {e:?}"));
            assert!(*src < i, "launch {i} waits on event recorded by a later launch {src}");
        }
    }

    let bw_per_sm = spec.dram_bytes_per_cycle() / spec.sm_count as f64;
    let mut heap: BinaryHeap<Reverse<Completion>> = BinaryHeap::new();
    let mut now = 0.0f64;
    let mut completed = 0usize;
    // Anti-starvation reservation: when a ready launch cannot place its
    // next block anywhere, the *oldest* such launch reserves one SM; no
    // other launch may issue blocks there until the holder places a
    // block. Without this, a wide block (say 18 warps) starves
    // indefinitely behind a drip of narrow blocks from younger launches
    // that backfill every freed slot — real work distributors dispatch
    // blocks in kernel order and drain capacity for the oldest pending
    // kernel instead. A single slot with age preemption keeps the rest of
    // the device free for backfill while the reserved SM drains.
    let mut reservation: Option<(usize, usize)> = None; // (launch, sm)

    // A launch with zero blocks completes the instant it becomes ready.
    let zero_block_complete =
        |states: &mut Vec<LaunchState>, idx: usize, t: f64| -> bool {
            if launches[idx].block_costs.is_empty() {
                states[idx].start_us = Some(t);
                states[idx].end_us = Some(t);
                true
            } else {
                false
            }
        };

    loop {
        // Refresh readiness: a launch is ready when its stream predecessor,
        // serial predecessor (in Serial mode) and awaited events are done.
        for i in 0..n {
            if states[i].ready_us.is_some() {
                continue;
            }
            let mut ready_at = 0.0f64;
            let mut ok = true;
            // Stream-order predecessor.
            if let Some(prev) = stream_pred[i] {
                match states[prev].end_us {
                    Some(t) => ready_at = ready_at.max(t),
                    None => ok = false,
                }
            }
            // Global serialization.
            if ok && mode == ExecMode::Serial && i > 0 {
                match states[i - 1].end_us {
                    Some(t) => ready_at = ready_at.max(t),
                    None => ok = false,
                }
            }
            // Event waits.
            if ok {
                for e in &launches[i].wait_events {
                    match states[event_source[e]].end_us {
                        Some(t) => ready_at = ready_at.max(t),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                let overhead = spec.launch_overhead_us
                    + if mode == ExecMode::Serial {
                        spec.serial_profiling_overhead_us
                    } else {
                        0.0
                    };
                let t = ready_at.max(now) + overhead;
                overheads[i] = overhead;
                states[i].ready_us = Some(t);
                if zero_block_complete(&mut states, i, t) {
                    completed += 1;
                }
            }
        }

        // Issue blocks from ready launches, in launch order, respecting the
        // concurrent-kernel limit.
        let mut active_kernels: u32 = (0..n)
            .filter(|&i| states[i].next_block > 0 && states[i].end_us.is_none())
            .count() as u32;
        let kernel_cap = match mode {
            ExecMode::Serial => 1,
            ExecMode::Concurrent => {
                if spec.concurrent_kernels {
                    spec.max_concurrent_kernels
                } else {
                    1
                }
            }
        };
        for i in 0..n {
            let ready = matches!(states[i].ready_us, Some(t) if t <= now);
            if !ready || states[i].next_block >= launches[i].block_costs.len() {
                continue;
            }
            if states[i].next_block == 0 && active_kernels >= kernel_cap {
                continue; // cannot start a new kernel yet
            }
            let l = &launches[i];
            let started_before = states[i].next_block > 0;
            while states[i].next_block < l.block_costs.len() {
                // Find the SM with the most free warps that fits this block,
                // skipping an SM reserved for a starving older launch.
                let mut best: Option<usize> = None;
                let mut best_free = 0i64;
                for (s, sm) in sms.iter().enumerate() {
                    if reservation.is_some_and(|(holder, rs)| rs == s && holder != i) {
                        continue;
                    }
                    let block_registers =
                        l.registers_per_thread.saturating_mul(l.threads_per_block);
                    let fits = sm.blocks < spec.max_blocks_per_sm
                        && sm.warps + l.warps_per_block <= spec.max_warps_per_sm
                        && sm.threads + l.threads_per_block <= spec.max_threads_per_sm
                        && sm.shared + l.shared_mem_bytes <= spec.shared_mem_per_sm
                        && sm.registers + block_registers <= spec.registers_per_sm;
                    if fits {
                        let free = spec.max_warps_per_sm as i64 - sm.warps as i64;
                        if best.is_none() || free > best_free {
                            best = Some(s);
                            best_free = free;
                        }
                    }
                }
                let Some(s) = best else {
                    // Could not place the next block. The oldest stalled
                    // launch claims the reservation (preempting a younger
                    // holder) on the SM with the most free warps; it is
                    // sticky until the holder places a block, so draining
                    // capacity there cannot be backfilled by others.
                    match reservation {
                        Some((holder, _)) if holder <= i => {}
                        _ => {
                            let pick = sms
                                .iter()
                                .enumerate()
                                .max_by_key(|(s, sm)| {
                                    (spec.max_warps_per_sm as i64 - sm.warps as i64, Reverse(*s))
                                })
                                .map(|(s, _)| s);
                            if let Some(s) = pick {
                                reservation = Some((i, s));
                            }
                        }
                    }
                    break;
                };
                if reservation.is_some_and(|(holder, _)| holder == i) {
                    reservation = None;
                }
                let bc = l.block_costs[states[i].next_block];
                let block_registers = l.registers_per_thread.saturating_mul(l.threads_per_block);
                let sm = &mut sms[s];
                sm.blocks += 1;
                sm.warps += l.warps_per_block;
                sm.threads += l.threads_per_block;
                sm.shared += l.shared_mem_bytes;
                sm.registers += block_registers;
                // The SM's DRAM share is split among its resident blocks
                // (sm.blocks already includes this one), so co-resident
                // streaming blocks cannot jointly exceed card bandwidth.
                let bw_cycles = if bw_per_sm > 0.0 {
                    bc.mem_bytes as f64 * sm.blocks as f64 / bw_per_sm
                } else {
                    0.0
                };
                let cycles = cost.block_cycles(
                    bc.issue_cycles,
                    bc.mem_latency_cycles,
                    bw_cycles,
                    sm.warps,
                    l.warps_per_block,
                );
                let dur_us = spec.cycles_to_us(cycles);
                sm.busy_us += dur_us;
                sm.warp_us += dur_us * l.warps_per_block as f64;
                heap.push(Reverse(Completion {
                    time_us: now + dur_us,
                    sm: s,
                    launch: i,
                    warps: l.warps_per_block,
                    threads: l.threads_per_block,
                    shared: l.shared_mem_bytes,
                    registers: block_registers,
                }));
                if states[i].next_block == 0 {
                    states[i].start_us = Some(now);
                }
                states[i].next_block += 1;
            }
            if !started_before && states[i].next_block > 0 {
                active_kernels += 1;
                if active_kernels >= kernel_cap {
                    // Later launches may still *become* ready; they just
                    // cannot start issuing this round.
                    continue;
                }
            }
        }

        if completed == n {
            break;
        }

        // Advance to the next completion; if the heap is empty the only
        // remaining progress source is a pending ready time in the future.
        match heap.pop() {
            Some(Reverse(c)) => {
                now = c.time_us.max(now);
                let sm = &mut sms[c.sm];
                sm.blocks -= 1;
                sm.warps -= c.warps;
                sm.threads -= c.threads;
                sm.shared -= c.shared;
                sm.registers -= c.registers;
                states[c.launch].completed_blocks += 1;
                if states[c.launch].completed_blocks == launches[c.launch].block_costs.len() {
                    states[c.launch].end_us = Some(now);
                    completed += 1;
                }
            }
            None => {
                // Jump to the earliest pending ready time strictly > now.
                let next = states
                    .iter()
                    .filter_map(|s| s.ready_us)
                    .filter(|&t| t > now)
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    next.is_finite(),
                    "scheduler stalled: no completions and no future ready times \
                     ({completed}/{n} launches complete)"
                );
                now = next;
            }
        }
    }

    let mut events = Vec::with_capacity(n);
    let mut end_us = 0.0f64;
    for (i, l) in launches.iter().enumerate() {
        let start = states[i].start_us.expect("launch never started");
        let end = states[i].end_us.expect("launch never finished");
        end_us = end_us.max(end);
        events.push(TraceEvent {
            launch_idx: l.launch_idx,
            kernel_name: l.kernel_name,
            stream: l.stream,
            t_start_us: start,
            t_end_us: end,
            overhead_us: overheads[i],
            blocks: l.block_costs.len() as u64,
            occupancy: launch_occupancy(
                spec,
                l.threads_per_block,
                l.warps_per_block,
                l.shared_mem_bytes,
                l.registers_per_thread,
            ),
            counters: l.counters,
        });
    }
    Timeline {
        events,
        sm_busy_us: sms.iter().map(|s| s.busy_us).collect(),
        sm_warp_us: sms.iter().map(|s| s.warp_us).collect(),
        warps_per_sm: spec.max_warps_per_sm,
        end_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        idx: usize,
        stream: u32,
        blocks: usize,
        issue: f64,
        warps: u32,
    ) -> LaunchRecord {
        LaunchRecord {
            launch_idx: idx,
            kernel_name: "k",
            stream: StreamId(stream),
            shared_mem_bytes: 0,
            threads_per_block: warps * 32,
            warps_per_block: warps,
            registers_per_thread: 0,
            block_costs: vec![
                BlockCost { issue_cycles: issue, mem_latency_cycles: 0.0, mem_bytes: 0 };
                blocks
            ],
            counters: KernelCounters::default(),
            wait_events: vec![],
            record_events: vec![],
        }
    }

    fn spec() -> DeviceSpec {
        DeviceSpec::gtx470()
    }

    #[test]
    fn serial_mode_serializes_streams() {
        // Two one-block kernels in different streams; serial mode must not
        // overlap them.
        let launches = vec![record(0, 1, 1, 1215.0, 8), record(1, 2, 1, 1215.0, 8)];
        let t = simulate(&spec(), &CostModel::default(), ExecMode::Serial, &launches);
        assert!(t.events[1].t_start_us >= t.events[0].t_end_us);
    }

    #[test]
    fn concurrent_mode_overlaps_independent_streams() {
        let launches = vec![record(0, 1, 1, 121_500.0, 8), record(1, 2, 1, 121_500.0, 8)];
        let t = simulate(&spec(), &CostModel::default(), ExecMode::Concurrent, &launches);
        // Both ~100us kernels overlap: span well below the 200us serial sum.
        assert!(t.span_us() < 150.0, "span {}", t.span_us());
        let s = simulate(&spec(), &CostModel::default(), ExecMode::Serial, &launches);
        assert!(s.span_us() > 200.0, "serial span {}", s.span_us());
    }

    #[test]
    fn same_stream_never_overlaps_even_concurrently() {
        let launches = vec![record(0, 3, 4, 50_000.0, 8), record(1, 3, 4, 50_000.0, 8)];
        let t = simulate(&spec(), &CostModel::default(), ExecMode::Concurrent, &launches);
        assert!(t.events[1].t_start_us >= t.events[0].t_end_us);
    }

    #[test]
    fn residency_limits_bound_parallelism() {
        // 1 SM, blocks of 48 warps each: only one fits at a time.
        let mut sp = DeviceSpec::single_sm();
        sp.launch_overhead_us = 0.0;
        let launches = vec![record(0, 1, 3, 1215.0, 48)];
        let t = simulate(&sp, &CostModel::default(), ExecMode::Concurrent, &launches);
        // 3 blocks x 1215 cycles at 1.215GHz = 3us total, serialized.
        assert!((t.span_us() - 3.0).abs() < 1e-9, "span {}", t.span_us());
    }

    #[test]
    fn register_pressure_limits_admission() {
        // 1 SM with a raised per-thread cap: a 256-thread block at 128
        // registers/thread burns the whole 32768-register file, so blocks
        // serialize even though warps (6), threads (6), smem and the
        // 8-block cap all allow more. Latency-bound blocks then cannot
        // hide each other's stalls: 3 blocks take 3x a lone block's 1us,
        // while without register pressure all three co-reside and the
        // span collapses onto the slowest lone block.
        let mut sp = DeviceSpec::single_sm();
        sp.launch_overhead_us = 0.0;
        sp.max_registers_per_thread = 128;
        let mut l = record(0, 1, 3, 0.0, 8);
        l.block_costs =
            vec![BlockCost { issue_cycles: 0.0, mem_latency_cycles: 4860.0, mem_bytes: 0 }; 3];
        l.registers_per_thread = 128;
        let t = simulate(&sp, &CostModel::default(), ExecMode::Concurrent, &[l.clone()]);
        assert!((t.span_us() - 3.0).abs() < 1e-9, "span {}", t.span_us());
        assert_eq!(t.events[0].occupancy.limit, OccupancyLimit::Registers);
        assert_eq!(t.events[0].occupancy.blocks_per_sm, 1);
        // Without register pressure the same three blocks run in one wave.
        l.registers_per_thread = 0;
        let free = simulate(&sp, &CostModel::default(), ExecMode::Concurrent, &[l]);
        assert!((free.span_us() - 1.0).abs() < 1e-9, "span {}", free.span_us());
    }

    #[test]
    fn limiting_factor_reports_the_scarcest_budget() {
        let sp = spec();
        // Tiny 1-warp blocks, no smem, no registers: nothing binds
        // before the 8-block cap.
        let o = launch_occupancy(&sp, 32, 1, 0, 0);
        assert_eq!(o.limit, OccupancyLimit::Blocks);
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.resident_warps, 8);
        // 18-warp cascade-like blocks: the warp file runs out first
        // (floor(48/18) = 2 of the 8-block cap).
        let o = launch_occupancy(&sp, 576, 18, 0, 0);
        assert_eq!(o.limit, OccupancyLimit::Warps);
        assert_eq!(o.blocks_per_sm, 2);
        assert!((o.warp_fraction(&sp) - 0.75).abs() < 1e-12);
        // Registers the strict scarcest: 384 threads x 22 regs = 8448 per
        // block bounds at 3 while warps (12/block) would allow 4.
        let o = launch_occupancy(&sp, 384, 12, 0, 22);
        assert_eq!(o.limit, OccupancyLimit::Registers);
        assert_eq!(o.blocks_per_sm, 3);
        // Shared memory the scarcest: 20 KiB blocks fit twice by smem.
        let o = launch_occupancy(&sp, 256, 8, 20 * 1024, 0);
        assert_eq!(o.limit, OccupancyLimit::SharedMem);
        assert_eq!(o.blocks_per_sm, 2);
    }

    #[test]
    fn timeline_reports_occupancy_per_launch_and_in_aggregate() {
        let mut wide = record(0, 1, 1, 1215.0, 18);
        wide.registers_per_thread = 16;
        let tiny = record(1, 2, 1, 1215.0, 1);
        let t = simulate(&spec(), &CostModel::default(), ExecMode::Concurrent, &[wide, tiny]);
        assert_eq!(t.events[0].occupancy.limit, OccupancyLimit::Warps);
        assert_eq!(t.events[0].occupancy.resident_warps, 36);
        assert_eq!(t.events[1].occupancy.limit, OccupancyLimit::Blocks);
        let counts = t.limiting_factor_counts();
        assert_eq!(counts["warps"], 1);
        assert_eq!(counts["blocks"], 1);
        // Mean theoretical occupancy: (36 + 8) / (2 * 48).
        assert!((t.mean_theoretical_occupancy() - 44.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn event_waits_order_across_streams() {
        let mut a = record(0, 1, 1, 121_500.0, 8);
        a.record_events.push(EventId(7));
        let mut b = record(1, 2, 1, 1215.0, 8);
        b.wait_events.push(EventId(7));
        let t = simulate(&spec(), &CostModel::default(), ExecMode::Concurrent, &[a, b]);
        assert!(t.events[1].t_start_us >= t.events[0].t_end_us);
    }

    #[test]
    #[should_panic(expected = "unrecorded event")]
    fn waiting_on_unknown_event_panics() {
        let mut b = record(0, 2, 1, 1215.0, 8);
        b.wait_events.push(EventId(42));
        simulate(&spec(), &CostModel::default(), ExecMode::Concurrent, &[b]);
    }

    #[test]
    fn zero_block_launch_completes_immediately() {
        let launches = vec![record(0, 1, 0, 0.0, 1), record(1, 1, 1, 1215.0, 8)];
        let t = simulate(&spec(), &CostModel::default(), ExecMode::Concurrent, &launches);
        assert_eq!(t.events[0].t_start_us, t.events[0].t_end_us);
        assert!(t.events[1].t_end_us > t.events[1].t_start_us);
    }

    #[test]
    fn wide_blocks_are_not_starved_by_narrow_backfill() {
        // 1 SM, 48 warps. An 18-warp-block kernel becomes ready (behind a
        // same-stream predecessor) while younger launches drip hundreds of
        // 8-warp blocks that would backfill every freed slot. The
        // anti-starvation reservation must drain the SM for the wide block
        // instead of making it wait for the whole drip to finish.
        let mut sp = DeviceSpec::single_sm();
        sp.launch_overhead_us = 0.0;
        let prefix = record(0, 1, 6, 1215.0, 8);
        let wide = record(1, 1, 1, 1215.0, 18);
        let drips: Vec<_> = (2..=5).map(|i| record(i, i as u32, 50, 1215.0, 8)).collect();
        let mut launches = vec![prefix, wide];
        launches.extend(drips);
        let t = simulate(&sp, &CostModel::default(), ExecMode::Concurrent, &launches);
        let wide_start = t.events[1].t_start_us;
        let first_drip_end = t.events[2].t_end_us;
        assert!(
            wide_start < first_drip_end,
            "wide kernel starved: starts {wide_start} vs first drip end {first_drip_end}"
        );
    }

    #[test]
    fn utilization_reflects_idle_sms() {
        // One tiny single-block kernel (8 of 48 warps on 1 of 14 SMs):
        // warp occupancy ~ 8 / (48 * 14) ~ 1.2%.
        let launches = vec![record(0, 1, 1, 1_215_000.0, 8)];
        let t = simulate(&spec(), &CostModel::default(), ExecMode::Concurrent, &launches);
        let u = t.sm_utilization();
        assert!(u < 0.02, "utilization {u} should be ~1%");
        assert!(u > 0.005, "utilization {u} should be nonzero");
        assert!(t.mean_resident_blocks() < 0.1);
    }

    #[test]
    fn many_small_kernels_pack_under_concurrency() {
        // 14 single-block kernels in 14 streams; concurrent span ~ 1 kernel.
        let launches: Vec<_> =
            (0..14).map(|i| record(i, i as u32 + 1, 1, 1_215_000.0, 8)).collect();
        let cm = CostModel::default();
        let c = simulate(&spec(), &cm, ExecMode::Concurrent, &launches);
        let s = simulate(&spec(), &cm, ExecMode::Serial, &launches);
        assert!(
            s.span_us() / c.span_us() > 8.0,
            "serial {} vs concurrent {}",
            s.span_us(),
            c.span_us()
        );
    }
}
