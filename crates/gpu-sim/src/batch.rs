//! Cross-request batched launches: many same-shape kernels in one grid.
//!
//! The paper restores SM occupancy by co-scheduling the *scales* of one
//! frame across streams; a request-serving frontend wants the same trick
//! across *requests*. Both hit the same wall: every launch pays the
//! driver's fixed overhead ([`crate::DeviceSpec::launch_overhead_us`]),
//! and a stream's kernels execute in order, so N independent requests
//! dispatched as N kernel chains serialize N launch overheads even when
//! the device has idle SMs.
//!
//! [`BatchedKernel`] folds N *homogeneous* kernel instances (same type,
//! same per-part [`LaunchConfig`]) into a single launch by stacking the
//! batch dimension on `grid.z`: part `p`'s blocks are the grid slice
//! `z == p`. Because [`crate::Dim3`] linearizes x-major with z outermost,
//! the blocks of part 0 enumerate first and in exactly the order a
//! standalone launch would produce — a 1-part batched launch is therefore
//! bit-identical (results, counters, timeline) to the plain launch, which
//! the serving layer's determinism guarantees build on.
//!
//! Each block's context is remapped before the part kernel runs: the part
//! sees `block_idx.z == 0` and the *per-part* grid extent, so existing
//! kernels batch without modification. The parts must be independent
//! (they are separate requests' kernels over disjoint buffers), which is
//! exactly the disjoint-write contract blocks already obey.

use crate::dim::Dim3;
use crate::kernel::{BlockCtx, Kernel, LaunchConfig};

/// N homogeneous kernels presented to the device as one launch, with the
/// batch dimension stacked on `grid.z`. Built by
/// [`crate::Gpu::launch_batched`]; the type is public so cost-model tests
/// and custom harnesses can construct it directly. Owns its parts: the
/// asynchronous engine may execute the batch long after the launch call
/// returns.
pub struct BatchedKernel<K: Kernel> {
    parts: Vec<K>,
    /// The grid extent each part believes it was launched with.
    part_grid: Dim3,
}

impl<K: Kernel> BatchedKernel<K> {
    /// Wrap `parts` sharing one per-part launch geometry. The per-part
    /// grid must be flat (`grid.z == 1`) — `z` carries the part index.
    pub fn new(parts: Vec<K>, part_cfg: LaunchConfig) -> Self {
        assert!(!parts.is_empty(), "a batched launch needs at least one part");
        assert_eq!(part_cfg.grid.z, 1, "per-part grids must be flat: z carries the part index");
        Self { parts, part_grid: part_cfg.grid }
    }

    /// Number of parts in the batch.
    pub fn batch_size(&self) -> usize {
        self.parts.len()
    }

    /// The stacked launch configuration covering every part.
    pub fn stacked_config(&self, part_cfg: LaunchConfig) -> LaunchConfig {
        LaunchConfig {
            grid: Dim3::d3(self.part_grid.x, self.part_grid.y, self.parts.len() as u32),
            ..part_cfg
        }
    }
}

impl<K: Kernel> Kernel for BatchedKernel<K> {
    fn name(&self) -> &'static str {
        self.parts[0].name()
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let part = ctx.block_idx.z as usize;
        // The part kernel must observe standalone-launch geometry so its
        // per-block work (and metering) is identical to an unbatched run.
        ctx.block_idx.z = 0;
        ctx.grid_dim = self.part_grid;
        self.parts[part].run_block(ctx);
    }

    fn access(&self, set: &mut crate::memory::AccessSet) {
        // A batch touches the union of its parts' buffers; if any part
        // declines to declare, the whole batch is opaque.
        for p in &self.parts {
            let mut part_set = crate::memory::AccessSet::new();
            p.access(&mut part_set);
            set.union(&part_set);
        }
    }

    fn fusion_traits(&self) -> Option<crate::fuse::FusionTraits> {
        // Parts are homogeneous (same type, same geometry), so the batch
        // fuses exactly when one part does, with the part's traits: the
        // stacked z dimension adds identical independent instances and
        // changes neither the per-part domains nor tile-locality.
        self.parts[0].fusion_traits()
    }

    fn batch_parts(&self) -> usize {
        self.parts.len()
    }

    fn registers_per_thread(&self) -> u32 {
        // Homogeneous parts compile identically; the batch's register
        // pressure is any single part's.
        self.parts[0].registers_per_thread()
    }

    fn shape_family(&self) -> Option<crate::tune::ShapeFamily> {
        // Every part retiles the same way (same type, same geometry), so
        // the batch inherits the part family; `grid.z` re-stacking is the
        // caller's job ([`crate::Gpu::launch_batched`] consumes per-part
        // configs).
        self.parts[0].shape_family()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::gpu::{Gpu, LaunchError};
    use crate::memory::DevBuf;
    use crate::sched::ExecMode;

    /// Writes `base + linear_thread_range` scaled by 2; block-parallel.
    #[derive(Clone, Copy)]
    struct FillKernel {
        buf: DevBuf<u32>,
        base: u32,
    }

    impl Kernel for FillKernel {
        fn name(&self) -> &'static str {
            "fill"
        }
        fn run_block(&self, ctx: &mut BlockCtx<'_>) {
            assert_eq!(ctx.block_idx.z, 0, "parts must see a flat grid");
            assert_eq!(ctx.grid_dim.z, 1, "parts must see their own extent");
            let tpb = ctx.block_dim.count() as usize;
            let start = ctx.block_idx.x as usize * tpb;
            let mut data = ctx.mem.write(self.buf);
            let end = (start + tpb).min(data.len());
            for (i, v) in data[start..end].iter_mut().enumerate() {
                *v = self.base + (start + i) as u32 * 2;
            }
            ctx.meter.alu(ctx.warps_in_block());
            ctx.meter.global_store(((end - start) * 4) as u64);
        }
    }

    #[test]
    fn single_part_batch_is_bit_identical_to_plain_launch() {
        let run = |batched: bool| {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let buf = gpu.mem.alloc::<u32>(1024);
            let s = gpu.create_stream();
            let k = FillKernel { buf, base: 5 };
            let cfg = LaunchConfig::linear(1024, 256);
            if batched {
                gpu.launch_batched(vec![k], cfg, s).unwrap();
            } else {
                gpu.launch(k, cfg, s).unwrap();
            }
            let t = gpu.synchronize();
            let trace: Vec<_> = gpu
                .profiler()
                .traces()
                .iter()
                .map(|e| (e.kernel_name, e.blocks, e.t_start_us.to_bits(), e.t_end_us.to_bits()))
                .collect();
            (gpu.mem.download(buf), t.span_us().to_bits(), trace)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn batch_matches_standalone_launches_functionally() {
        let parts = 5usize;
        let n = 700usize;
        let standalone = {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let bufs: Vec<_> = (0..parts).map(|_| gpu.mem.alloc::<u32>(n)).collect();
            for (p, &buf) in bufs.iter().enumerate() {
                let k = FillKernel { buf, base: 1000 * p as u32 };
                let s = gpu.create_stream();
                gpu.launch(k, LaunchConfig::linear(n, 128), s).unwrap();
            }
            gpu.synchronize();
            bufs.iter().map(|&b| gpu.mem.download(b)).collect::<Vec<_>>()
        };
        let batched = {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let bufs: Vec<_> = (0..parts).map(|_| gpu.mem.alloc::<u32>(n)).collect();
            let kernels: Vec<_> = bufs
                .iter()
                .enumerate()
                .map(|(p, &buf)| FillKernel { buf, base: 1000 * p as u32 })
                .collect();
            let s = gpu.create_stream();
            gpu.launch_batched(kernels, LaunchConfig::linear(n, 128), s).unwrap();
            gpu.synchronize();
            bufs.iter().map(|&b| gpu.mem.download(b)).collect::<Vec<_>>()
        };
        assert_eq!(standalone, batched);
    }

    #[test]
    fn batched_launch_pays_one_launch_overhead() {
        let parts = 8usize;
        let n = 256usize;
        let chained = {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let s = gpu.create_stream();
            for _ in 0..parts {
                let buf = gpu.mem.alloc::<u32>(n);
                gpu.launch(FillKernel { buf, base: 0 }, LaunchConfig::linear(n, 128), s)
                    .unwrap();
            }
            gpu.synchronize().span_us()
        };
        let batched = {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let s = gpu.create_stream();
            let bufs: Vec<_> = (0..parts).map(|_| gpu.mem.alloc::<u32>(n)).collect();
            let kernels: Vec<_> =
                bufs.iter().map(|&buf| FillKernel { buf, base: 0 }).collect();
            gpu.launch_batched(kernels, LaunchConfig::linear(n, 128), s).unwrap();
            gpu.synchronize().span_us()
        };
        let overhead = DeviceSpec::gtx470().launch_overhead_us;
        assert!(
            batched + (parts - 1) as f64 * overhead * 0.9 < chained,
            "batching 8 tiny kernels must save ~7 launch overheads: {batched} vs {chained}"
        );
    }

    #[test]
    fn batched_launch_validates_inputs() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let s = gpu.create_stream();
        assert!(matches!(
            gpu.launch_batched(Vec::<FillKernel>::new(), LaunchConfig::linear(64, 64), s),
            Err(LaunchError::EmptyLaunch)
        ));
        let buf = gpu.mem.alloc::<u32>(64);
        let k = FillKernel { buf, base: 0 };
        let deep = LaunchConfig::new(Dim3::d3(1, 1, 2), Dim3::d1(64));
        assert!(matches!(
            gpu.launch_batched(vec![k], deep, s),
            Err(LaunchError::BatchedGridDepth { z: 2 })
        ));
    }
}
