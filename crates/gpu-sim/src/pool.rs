//! Persistent worker pool draining the pending-launch dependency graph.
//!
//! The synchronous path spawns a fresh `std::thread::scope` per launch;
//! at detector scale that is hundreds of thread spawns per frame, each a
//! kernel round-trip, and a sub-threshold grid can never use more than
//! one core. The pool is spawned once per [`crate::Gpu`] and drains a
//! whole queue at a time: workers claim fixed-size block *chunks* from
//! any launch whose dependencies ([`crate::graph`]) are satisfied, so
//! many small independent per-scale launches finally overlap — the host
//! analogue of SM backfilling across CUDA streams.
//!
//! Determinism is structural, exactly as in [`crate::exec`]:
//! which worker runs which chunk when is scheduler noise, but every
//! chunk's results land in a slot keyed by (launch, chunk id), per-launch
//! costs are stitched in linear block order, counters are reduced by one
//! ordered fold, and the drain returns results in launch order. Memory
//! effects match serial issue order because hazardous launches are
//! ordered by graph edges and unordered launches are confluent.
//!
//! The queue borrows live only for the duration of one [`WorkerPool::drain`]
//! call: the job is published to the workers as a lifetime-erased pointer
//! and the host does not return (or touch the queue again) until every
//! worker has checked out of the generation.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::exec::{FunctionalResult, LaunchEnv, MAX_CHUNK_BLOCKS, PARALLEL_MIN_WORK};
use crate::kernel::{Kernel, LaunchConfig};
use crate::memory::KernelScope;
use crate::meter::KernelCounters;
use crate::profiler::HostSpan;
use crate::sched::BlockCost;

/// One unexecuted pending launch, borrowed from the queue for the
/// duration of a drain. `deps` are indices into the same node slice and
/// always point backwards (the graph is acyclic by construction).
pub(crate) struct Node<'a> {
    pub kernel: &'a dyn Kernel,
    pub cfg: &'a LaunchConfig,
    pub total_blocks: u64,
    /// First linear block id this node executes. Zero for whole launches;
    /// a fused launch is expanded into one node per phase, each covering
    /// `[block_offset, block_offset + total_blocks)` of the shared grid,
    /// chained by deps so producer phases complete before consumers start.
    pub block_offset: u64,
    pub deps: Vec<usize>,
    /// Global launch index, for span labels only.
    pub launch_idx: u64,
    pub name: &'static str,
}

/// Per-node scheduling counters, all guarded by the job mutex.
#[derive(Debug, Default)]
struct NodeSched {
    next_chunk: usize,
    done_chunks: usize,
    /// Chunks currently executing on some worker; the claim policy
    /// prefers the ready node with the fewest, spreading workers across
    /// *different* independent launches.
    active_claims: usize,
}

struct SchedState {
    indeg: Vec<usize>,
    succs: Vec<Vec<usize>>,
    /// Nodes with all dependencies satisfied and unclaimed chunks left.
    ready: Vec<usize>,
    node: Vec<NodeSched>,
    completed: usize,
    aborted: bool,
    /// First observed panic, keyed by the smallest node index so the
    /// surfaced payload is stable across schedules (best-effort: serial
    /// order is only guaranteed for non-panicking drains).
    panic: Option<(usize, Box<dyn Any + Send>)>,
}

/// Write-once result slot for one chunk's per-block costs and counters.
type ChunkSlot = OnceLock<Vec<(BlockCost, KernelCounters)>>;

/// Everything one drain shares between workers.
struct DrainJob<'a> {
    env: &'a LaunchEnv<'a>,
    nodes: &'a [Node<'a>],
    /// Blocks per chunk, per node.
    chunk: Vec<usize>,
    n_chunks: Vec<usize>,
    slots: Vec<Vec<ChunkSlot>>,
    state: Mutex<SchedState>,
    cv: Condvar,
    participants: usize,
    epoch: Instant,
    spans: Mutex<Vec<HostSpan>>,
}

impl<'a> DrainJob<'a> {
    fn new(env: &'a LaunchEnv<'a>, nodes: &'a [Node<'a>], threads: usize, epoch: Instant) -> Self {
        let n = nodes.len();
        let mut indeg = vec![0usize; n];
        let mut succs = vec![Vec::new(); n];
        for (i, node) in nodes.iter().enumerate() {
            indeg[i] = node.deps.len();
            for &d in &node.deps {
                debug_assert!(d < i, "dependency edge must point backwards");
                succs[d].push(i);
            }
        }
        let ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let chunk: Vec<usize> = nodes
            .iter()
            .map(|nd| {
                let total = nd.total_blocks as usize;
                (total / (threads * 8)).clamp(1, MAX_CHUNK_BLOCKS)
            })
            .collect();
        let n_chunks: Vec<usize> =
            nodes.iter().zip(&chunk).map(|(nd, &c)| (nd.total_blocks as usize).div_ceil(c)).collect();
        let slots = n_chunks
            .iter()
            .map(|&nc| (0..nc).map(|_| OnceLock::new()).collect())
            .collect();
        Self {
            env,
            nodes,
            chunk,
            n_chunks,
            slots,
            state: Mutex::new(SchedState {
                indeg,
                succs,
                ready,
                node: (0..n).map(|_| NodeSched::default()).collect(),
                completed: 0,
                aborted: false,
                panic: None,
            }),
            cv: Condvar::new(),
            participants: threads,
            epoch,
            spans: Mutex::new(Vec::new()),
        }
    }

    fn elapsed_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Worker body. `worker` 0 is the host thread; pool workers get
    /// 1..; ids beyond `participants` check in and straight back out.
    fn run_worker(&self, worker: usize) {
        if worker >= self.participants {
            return;
        }
        let _scope = KernelScope::enter();
        let mut local_spans: Vec<HostSpan> = Vec::new();
        // Open span, merged across consecutive chunks of the same node.
        let mut cur: Option<(usize, f64, f64, u64)> = None; // (node, t0, t1, blocks)
        let close = |cur: &mut Option<(usize, f64, f64, u64)>,
                         spans: &mut Vec<HostSpan>,
                         nodes: &[Node<'_>]| {
            if let Some((n, t0, t1, blocks)) = cur.take() {
                spans.push(HostSpan {
                    worker,
                    launch_idx: nodes[n].launch_idx,
                    kernel_name: nodes[n].name,
                    t_start_us: t0,
                    t_end_us: t1,
                    blocks,
                });
            }
        };

        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if guard.aborted || guard.completed == self.nodes.len() {
                break;
            }
            let pick = guard
                .ready
                .iter()
                .copied()
                .min_by_key(|&n| (guard.node[n].active_claims, n));
            let Some(n) = pick else {
                // Chunks are in flight elsewhere; their completion will
                // either ready a successor or finish the drain.
                close(&mut cur, &mut local_spans, self.nodes);
                guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
                continue;
            };
            let chunk_idx = guard.node[n].next_chunk;
            guard.node[n].next_chunk += 1;
            if guard.node[n].next_chunk == self.n_chunks[n] {
                let pos = guard.ready.iter().position(|&r| r == n).expect("picked from ready");
                guard.ready.swap_remove(pos);
            }
            guard.node[n].active_claims += 1;
            drop(guard);

            let node = &self.nodes[n];
            let start = chunk_idx * self.chunk[n];
            let end = (start + self.chunk[n]).min(node.total_blocks as usize);
            let t0 = self.elapsed_us();
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut local = Vec::with_capacity(end - start);
                for lin in start..end {
                    local.push(self.env.run_block(
                        node.kernel,
                        node.cfg,
                        node.block_offset + lin as u64,
                    ));
                }
                local
            }));
            let t1 = self.elapsed_us();
            match cur {
                Some((cn, _, ref mut ct1, ref mut cb)) if cn == n => {
                    *ct1 = t1;
                    *cb += (end - start) as u64;
                }
                _ => {
                    close(&mut cur, &mut local_spans, self.nodes);
                    cur = Some((n, t0, t1, (end - start) as u64));
                }
            }

            guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
            guard.node[n].active_claims -= 1;
            match result {
                Ok(local) => {
                    assert!(
                        self.slots[n][chunk_idx].set(local).is_ok(),
                        "chunk ({n}, {chunk_idx}) computed twice"
                    );
                    guard.node[n].done_chunks += 1;
                    if guard.node[n].done_chunks == self.n_chunks[n] {
                        guard.completed += 1;
                        let succs = std::mem::take(&mut guard.succs[n]);
                        for s in succs {
                            guard.indeg[s] -= 1;
                            if guard.indeg[s] == 0 {
                                guard.ready.push(s);
                            }
                        }
                        self.cv.notify_all();
                    }
                }
                Err(payload) => {
                    match &guard.panic {
                        Some((pn, _)) if *pn <= n => {}
                        _ => guard.panic = Some((n, payload)),
                    }
                    guard.aborted = true;
                    self.cv.notify_all();
                }
            }
        }
        drop(guard);
        close(&mut cur, &mut local_spans, self.nodes);
        if !local_spans.is_empty() {
            let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
            spans.extend(local_spans);
        }
    }

    /// Stitch per-chunk results back into launch order. Panics (with the
    /// recorded payload) if any worker panicked.
    fn finish(self) -> (Vec<FunctionalResult>, Vec<HostSpan>) {
        let state = self.state.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some((_, payload)) = state.panic {
            std::panic::resume_unwind(payload);
        }
        assert_eq!(state.completed, self.nodes.len(), "drain exited with unexecuted launches");
        let mut results = Vec::with_capacity(self.nodes.len());
        for (n, node_slots) in self.slots.into_iter().enumerate() {
            let mut block_costs = Vec::with_capacity(self.nodes[n].total_blocks as usize);
            let mut totals = KernelCounters::default();
            for slot in node_slots {
                let part = slot.into_inner().expect("completed node with an unset chunk");
                for (bc, c) in part {
                    block_costs.push(bc);
                    totals.add(&c);
                }
            }
            results.push(FunctionalResult { block_costs, totals });
        }
        let mut spans = self.spans.into_inner().unwrap_or_else(|e| e.into_inner());
        spans.sort_by(|a, b| {
            (a.worker, a.t_start_us.to_bits(), a.launch_idx)
                .cmp(&(b.worker, b.t_start_us.to_bits(), b.launch_idx))
        });
        (results, spans)
    }
}

/// Type-erased pointer to the current drain's [`DrainJob`]. Only valid
/// while the publishing `drain` call is blocked waiting for checkout.
#[derive(Clone, Copy)]
struct JobPtr(*const ());
// SAFETY: the pointer is only dereferenced by pool workers between
// publication and checkout, a window during which the host keeps the
// pointee alive on its stack; DrainJob's shared state is Sync.
unsafe impl Send for JobPtr {}

struct PoolState {
    generation: u64,
    job: Option<JobPtr>,
    /// Workers that have not yet checked out of the current generation.
    active: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// Persistent worker pool, spawned lazily on first parallel drain and
/// reused for the lifetime of the owning [`crate::Gpu`].
pub(crate) struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    pub(crate) fn new() -> Self {
        Self {
            shared: std::sync::Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    generation: 0,
                    job: None,
                    active: 0,
                    shutdown: false,
                }),
                cv: Condvar::new(),
            }),
            handles: Vec::new(),
        }
    }

    /// Grow the pool to at least `n` workers (never shrinks).
    pub(crate) fn ensure_workers(&mut self, n: usize) {
        while self.handles.len() < n {
            let shared = std::sync::Arc::clone(&self.shared);
            let id = self.handles.len() + 1; // host is worker 0
            let handle = std::thread::Builder::new()
                .name(format!("fd-sim-worker-{id}"))
                .spawn(move || worker_main(&shared, id))
                .expect("spawn pool worker");
            self.handles.push(handle);
        }
    }

    /// Execute `nodes` against `env` and return per-node functional
    /// results in node order plus the host-execution spans. Deterministic
    /// for any `threads` (see module docs). Serial fallback when the
    /// queue is too small to pay parallel hand-off costs.
    pub(crate) fn drain(
        &mut self,
        env: &LaunchEnv<'_>,
        nodes: &[Node<'_>],
        threads: usize,
        epoch: Instant,
    ) -> (Vec<FunctionalResult>, Vec<HostSpan>) {
        let total_work: u64 = nodes
            .iter()
            .map(|n| n.total_blocks.saturating_mul(n.cfg.threads_per_block() as u64))
            .sum();
        if threads <= 1 || total_work < PARALLEL_MIN_WORK {
            return drain_serial(env, nodes, epoch);
        }
        self.ensure_workers(threads - 1);
        let job = DrainJob::new(env, nodes, threads.min(self.handles.len() + 1), epoch);

        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            debug_assert!(state.job.is_none(), "drain is not reentrant");
            state.generation += 1;
            state.job = Some(JobPtr(&job as *const DrainJob<'_> as *const ()));
            state.active = self.handles.len();
            self.shared.cv.notify_all();
        }
        job.run_worker(0);
        {
            // Checkout barrier: `job` (and the env/node borrows inside
            // it) must outlive every worker's reference.
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            while state.active > 0 {
                state = self.shared.cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            state.job = None;
        }
        job.finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
            self.shared.cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main(shared: &PoolShared, id: usize) {
    let mut seen_generation = 0u64;
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if state.shutdown {
            return;
        }
        if state.generation > seen_generation {
            seen_generation = state.generation;
            if let Some(ptr) = state.job {
                drop(state);
                // SAFETY: the publishing drain() call blocks until we
                // decrement `active` below, keeping the job alive.
                let job = unsafe { &*(ptr.0 as *const DrainJob<'_>) };
                job.run_worker(id);
                state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            }
            state.active -= 1;
            if state.active == 0 {
                shared.cv.notify_all();
            }
            continue;
        }
        state = shared.cv.wait(state).unwrap_or_else(|e| e.into_inner());
    }
}

/// In-order inline execution: the `host_threads = 1` reference schedule
/// (and the cheap path for tiny queues). Spans all land on worker 0.
fn drain_serial(
    env: &LaunchEnv<'_>,
    nodes: &[Node<'_>],
    epoch: Instant,
) -> (Vec<FunctionalResult>, Vec<HostSpan>) {
    let _scope = KernelScope::enter();
    let mut results = Vec::with_capacity(nodes.len());
    let mut spans = Vec::with_capacity(nodes.len());
    for node in nodes {
        let t0 = epoch.elapsed().as_secs_f64() * 1e6;
        let mut block_costs = Vec::with_capacity(node.total_blocks as usize);
        let mut totals = KernelCounters::default();
        for lin in 0..node.total_blocks {
            let (bc, c) = env.run_block(node.kernel, node.cfg, node.block_offset + lin);
            block_costs.push(bc);
            totals.add(&c);
        }
        let t1 = epoch.elapsed().as_secs_f64() * 1e6;
        spans.push(HostSpan {
            worker: 0,
            launch_idx: node.launch_idx,
            kernel_name: node.name,
            t_start_us: t0,
            t_end_us: t1,
            blocks: node.total_blocks,
        });
        results.push(FunctionalResult { block_costs, totals });
    }
    (results, spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::dim::Dim3;
    use crate::kernel::BlockCtx;
    use crate::memory::{ConstBank, DevBuf, DeviceMemory};

    #[derive(Clone)]
    struct AffineKernel {
        src: DevBuf<u32>,
        dst: DevBuf<u32>,
        mul: u32,
        add: u32,
    }

    impl Kernel for AffineKernel {
        fn name(&self) -> &'static str {
            "affine"
        }
        fn run_block(&self, ctx: &mut BlockCtx<'_>) {
            let tpb = ctx.block_dim.count() as usize;
            let base = ctx.block_idx.x as usize * tpb;
            let src = ctx.mem.read(self.src);
            let mut dst = ctx.mem.write(self.dst);
            let end = (base + tpb).min(dst.len());
            for i in base..end {
                dst[i] = src[i].wrapping_mul(self.mul).wrapping_add(self.add);
            }
            ctx.meter.alu(ctx.warps_in_block());
            ctx.meter.global_load(((end - base) * 4) as u64);
            ctx.meter.global_store(((end - base) * 4) as u64);
        }
        fn access(&self, set: &mut crate::memory::AccessSet) {
            set.reads(self.src).writes(self.dst);
        }
    }

    fn env(mem: &DeviceMemory) -> (LaunchEnv<'_>, &'static ConstBank) {
        static BANK: std::sync::OnceLock<ConstBank> = std::sync::OnceLock::new();
        let bank = BANK.get_or_init(|| ConstBank::new(0));
        (
            LaunchEnv {
                mem,
                constants: bank,
                textures: &[],
                cost: Box::leak(Box::new(CostModel::default())),
                warp_size: 32,
            },
            bank,
        )
    }

    /// Build a chain a -> b (RAW) plus an independent c, drain at the
    /// given thread count and return the final buffers + results.
    fn run_graph(threads: usize) -> (Vec<u32>, Vec<u32>, Vec<FunctionalResult>) {
        let mut mem = DeviceMemory::new();
        let n = 64 * 1024usize;
        let a_in = mem.upload(&(0..n as u32).collect::<Vec<_>>());
        let a_mid = mem.alloc::<u32>(n);
        let a_out = mem.alloc::<u32>(n);
        let c_in = mem.upload(&(0..n as u32).rev().collect::<Vec<_>>());
        let c_out = mem.alloc::<u32>(n);
        let (env, _) = env(&mem);
        let cfg = LaunchConfig::linear(n, 128);
        let k1 = AffineKernel { src: a_in, dst: a_mid, mul: 3, add: 1 };
        let k2 = AffineKernel { src: a_mid, dst: a_out, mul: 5, add: 7 };
        let k3 = AffineKernel { src: c_in, dst: c_out, mul: 11, add: 13 };
        let nodes = vec![
            Node {
                kernel: &k1,
                cfg: &cfg,
                total_blocks: cfg.total_blocks(),
                block_offset: 0,
                deps: vec![],
                launch_idx: 0,
                name: "k1",
            },
            Node {
                kernel: &k2,
                cfg: &cfg,
                total_blocks: cfg.total_blocks(),
                block_offset: 0,
                deps: vec![0],
                launch_idx: 1,
                name: "k2",
            },
            Node {
                kernel: &k3,
                cfg: &cfg,
                total_blocks: cfg.total_blocks(),
                block_offset: 0,
                deps: vec![],
                launch_idx: 2,
                name: "k3",
            },
        ];
        let mut pool = WorkerPool::new();
        let (results, _spans) = pool.drain(&env, &nodes, threads, Instant::now());
        (mem.download(a_out), mem.download(c_out), results)
    }

    #[test]
    fn graph_drain_matches_serial_at_any_thread_count() {
        let (a1, c1, r1) = run_graph(1);
        assert_eq!(a1[10], (10u32.wrapping_mul(3).wrapping_add(1)).wrapping_mul(5).wrapping_add(7));
        for threads in [2, 3, 8] {
            let (a, c, r) = run_graph(threads);
            assert_eq!(a, a1, "dependent chain differs at {threads} threads");
            assert_eq!(c, c1, "independent launch differs at {threads} threads");
            for (i, (x, y)) in r.iter().zip(&r1).enumerate() {
                assert_eq!(x.totals, y.totals, "counters differ for node {i} at {threads} threads");
                assert_eq!(x.block_costs.len(), y.block_costs.len());
                for (a, b) in x.block_costs.iter().zip(&y.block_costs) {
                    assert_eq!(a.issue_cycles.to_bits(), b.issue_cycles.to_bits());
                    assert_eq!(a.mem_latency_cycles.to_bits(), b.mem_latency_cycles.to_bits());
                    assert_eq!(a.mem_bytes, b.mem_bytes);
                }
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_drains() {
        let mut mem = DeviceMemory::new();
        let n = 32 * 1024usize;
        let src = mem.upload(&vec![2u32; n]);
        let dst = mem.alloc::<u32>(n);
        let (env, _) = env(&mem);
        let cfg = LaunchConfig::linear(n, 128);
        let k = AffineKernel { src, dst, mul: 2, add: 0 };
        let mut pool = WorkerPool::new();
        for round in 0..3 {
            let nodes = vec![Node {
                kernel: &k,
                cfg: &cfg,
                total_blocks: cfg.total_blocks(),
                block_offset: 0,
                deps: vec![],
                launch_idx: round,
                name: "k",
            }];
            let (results, _) = pool.drain(&env, &nodes, 4, Instant::now());
            assert_eq!(results.len(), 1);
        }
        assert_eq!(mem.download(dst)[0], 4);
    }

    #[test]
    fn tiny_queues_take_the_serial_path_with_spans() {
        let mut mem = DeviceMemory::new();
        let src = mem.upload(&vec![1u32; 64]);
        let dst = mem.alloc::<u32>(64);
        let (env, _) = env(&mem);
        let cfg = LaunchConfig::linear(64, 32);
        let k = AffineKernel { src, dst, mul: 7, add: 0 };
        let nodes = vec![Node {
            kernel: &k,
            cfg: &cfg,
            total_blocks: cfg.total_blocks(),
            block_offset: 0,
            deps: vec![],
            launch_idx: 0,
            name: "tiny",
        }];
        let mut pool = WorkerPool::new();
        let (results, spans) = pool.drain(&env, &nodes, 8, Instant::now());
        assert_eq!(results.len(), 1);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].worker, 0, "sub-threshold work stays on the host thread");
        assert_eq!(spans[0].blocks, 2);
        assert_eq!(mem.download(dst)[0], 7);
    }

    #[test]
    fn worker_panic_surfaces_on_the_host() {
        struct BoomKernel;
        impl Kernel for BoomKernel {
            fn name(&self) -> &'static str {
                "boom"
            }
            fn run_block(&self, ctx: &mut BlockCtx<'_>) {
                if ctx.block_idx.x == 100 {
                    panic!("injected block failure");
                }
                ctx.meter.alu(1);
            }
        }
        let mem = DeviceMemory::new();
        let (env, _) = env(&mem);
        let cfg = LaunchConfig { grid: Dim3::d1(512), block: Dim3::d1(64), shared_mem_bytes: 0 };
        let k = BoomKernel;
        let nodes = vec![Node {
            kernel: &k,
            cfg: &cfg,
            total_blocks: cfg.total_blocks(),
            block_offset: 0,
            deps: vec![],
            launch_idx: 0,
            name: "boom",
        }];
        let mut pool = WorkerPool::new();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.drain(&env, &nodes, 4, Instant::now())
        }));
        assert!(err.is_err(), "panic in a worker must resurface on the host");
    }
}
