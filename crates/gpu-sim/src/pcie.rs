//! Host-device transfer model (PCIe), backing the paper's §III-A
//! motivation:
//!
//! "When the video decoding stage is performed in a GPU, the latency of
//! memory transfers between the CPU and GPU address space is
//! significantly reduced due to the fact that these transfers deal with
//! compressed video frames."
//!
//! The simulated pipeline never transfers decoded frames (the decoder is
//! on-die, like NVCUVID); this model quantifies the alternative — CPU
//! decode + raw-frame upload — for the `counters` report and the
//! documentation claims.

/// PCIe link model.
#[derive(Debug, Clone, PartialEq)]
pub struct PcieModel {
    /// Effective host-to-device bandwidth, GB/s (pinned memory).
    pub h2d_gbps: f64,
    /// Effective device-to-host bandwidth, GB/s.
    pub d2h_gbps: f64,
    /// Per-transfer fixed latency, microseconds (DMA setup + driver).
    pub latency_us: f64,
}

impl PcieModel {
    /// PCIe 2.0 x16 as on the paper's GTX470 testbed: ~6 GB/s effective
    /// with pinned buffers, ~10 us per DMA.
    pub fn pcie2_x16() -> Self {
        Self { h2d_gbps: 6.0, d2h_gbps: 5.5, latency_us: 10.0 }
    }

    /// Time to move `bytes` host-to-device, microseconds.
    pub fn h2d_us(&self, bytes: usize) -> f64 {
        self.latency_us + bytes as f64 / (self.h2d_gbps * 1e3)
    }

    /// Time to move `bytes` device-to-host, microseconds.
    pub fn d2h_us(&self, bytes: usize) -> f64 {
        self.latency_us + bytes as f64 / (self.d2h_gbps * 1e3)
    }

    /// The paper's comparison for one 1080p frame: uploading the raw NV12
    /// output of a CPU decoder vs uploading the compressed bitstream
    /// slice (on-die decode). Returns `(raw_us, compressed_us)`.
    pub fn frame_upload_comparison(
        &self,
        width: usize,
        height: usize,
        bitrate_mbps: f64,
        fps: f64,
    ) -> (f64, f64) {
        let raw_bytes = width * height * 3 / 2; // NV12
        let compressed_bytes = (bitrate_mbps * 1e6 / 8.0 / fps) as usize;
        (self.h2d_us(raw_bytes), self.h2d_us(compressed_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_1080p_upload_takes_about_half_a_millisecond() {
        let p = PcieModel::pcie2_x16();
        let us = p.h2d_us(1920 * 1080 * 3 / 2);
        assert!((400.0..700.0).contains(&us), "raw NV12 upload {us:.0} us");
    }

    #[test]
    fn compressed_slices_are_an_order_of_magnitude_cheaper() {
        // The paper's trailers: ~9 Mbps at 24 fps -> ~47 KB per frame.
        let p = PcieModel::pcie2_x16();
        let (raw, compressed) = p.frame_upload_comparison(1920, 1080, 9.0, 24.0);
        assert!(
            raw / compressed > 10.0,
            "raw {raw:.0} us vs compressed {compressed:.0} us"
        );
        // Compressed transfer is dominated by DMA latency.
        assert!(compressed < 25.0);
    }

    #[test]
    fn latency_floor_applies_to_tiny_transfers() {
        let p = PcieModel::pcie2_x16();
        assert!(p.h2d_us(1) >= p.latency_us);
        assert!(p.d2h_us(0) >= p.latency_us);
    }

    #[test]
    fn bandwidth_scales_linearly() {
        let p = PcieModel::pcie2_x16();
        let one = p.h2d_us(1_000_000) - p.latency_us;
        let two = p.h2d_us(2_000_000) - p.latency_us;
        assert!((two / one - 2.0).abs() < 1e-9);
    }
}
