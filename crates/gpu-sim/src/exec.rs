//! Host-parallel execution of the functional phase.
//!
//! Thread blocks of one launch are independent by construction (barriers
//! only exist *inside* a block), so the functional phase fans them out
//! across host worker threads. Determinism is preserved structurally:
//!
//! - workers claim fixed-size *chunks* of the linear block range from an
//!   atomic counter (dynamic load balancing), but every chunk's results
//!   land in a slot indexed by chunk id;
//! - after the join, per-block costs are stitched back together in
//!   linear block order and [`KernelCounters`] are reduced by a single
//!   ordered fold over that sequence.
//!
//! The result — block costs, profiler counters and (through the cost
//! model) the timing simulation — is therefore byte-for-byte identical
//! to the sequential path regardless of thread schedule. Cross-block
//! memory effects are governed by the arena's disjoint-write contract
//! ([`crate::memory`]).
//!
//! Thread count resolution: explicit builder override
//! ([`crate::Gpu::set_host_threads`]) → the `FD_SIM_THREADS` environment
//! variable → `std::thread::available_parallelism()`. Small grids run
//! sequentially regardless, as thread-spawn overhead would dominate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::cost::CostModel;
use crate::kernel::{BlockCtx, Kernel, LaunchConfig};
use crate::memory::{ConstBank, DeviceMemory, Texture2D};
use crate::meter::{KernelCounters, Meter};
use crate::sched::BlockCost;

/// Launches whose estimated work (blocks × threads-per-block) falls below
/// this run sequentially. The old gate was a flat block count, which let a
/// 64-block × 32-thread launch (2 Ki thread-iterations) pay parallel
/// dispatch overhead while a 48-block × 512-thread launch (24 Ki) stayed
/// serial. 16 Ki ≈ the former `64 blocks × 256 threads` break-even point
/// measured for the detector's mid-pyramid kernels: below it, chunk-claim
/// and hand-off costs exceed the block work even on a warm persistent
/// pool.
pub(crate) const PARALLEL_MIN_WORK: u64 = 16_384;

/// Upper bound on blocks per chunk; small enough to balance load on the
/// largest realistic grids, large enough to amortize the atomic claim.
pub(crate) const MAX_CHUNK_BLOCKS: usize = 1024;

/// Environment variable selecting the host thread count (`1` forces the
/// sequential path).
pub const THREADS_ENV_VAR: &str = "FD_SIM_THREADS";

/// Resolve the effective host thread count for the functional phase.
/// The environment lookup happens once per process (`OnceLock`): the
/// resolver runs on every launch, and `std::env::var` takes a process
/// lock that would serialize otherwise-independent launch enqueues.
pub(crate) fn resolve_host_threads(override_threads: Option<usize>) -> usize {
    if let Some(n) = override_threads {
        return n.max(1);
    }
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    let env_threads = *ENV_THREADS.get_or_init(|| {
        std::env::var(THREADS_ENV_VAR).ok().and_then(|v| v.trim().parse::<usize>().ok())
    });
    if let Some(n) = env_threads {
        return n.max(1);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Everything the functional phase produces for one launch.
pub(crate) struct FunctionalResult {
    /// Per-block timing costs, indexed by linear block id.
    pub block_costs: Vec<BlockCost>,
    /// Counters summed over blocks in linear order.
    pub totals: KernelCounters,
}

/// Shared read-only state for one launch's functional phase.
pub(crate) struct LaunchEnv<'a> {
    pub mem: &'a DeviceMemory,
    pub constants: &'a ConstBank,
    pub textures: &'a [Texture2D],
    pub cost: &'a CostModel,
    pub warp_size: u32,
}

impl LaunchEnv<'_> {
    pub(crate) fn run_block(
        &self,
        kernel: &dyn Kernel,
        cfg: &LaunchConfig,
        lin: u64,
    ) -> (BlockCost, KernelCounters) {
        let meter = Meter::new();
        let mut ctx = BlockCtx::new(
            cfg.grid.from_linear(lin),
            cfg.grid,
            cfg.block,
            self.mem,
            &meter,
            self.constants,
            self.textures,
            self.warp_size,
            cfg.shared_mem_bytes,
        );
        kernel.run_block(&mut ctx);
        let c = meter.snapshot();
        let bc = BlockCost {
            issue_cycles: self.cost.issue_cycles(&c),
            mem_latency_cycles: self.cost.mem_latency_cycles(&c),
            mem_bytes: c.global_bytes(),
        };
        (bc, c)
    }
}

/// Execute every block of a launch, sequentially or across `threads`
/// host workers. `total_blocks` has been validated by the caller to fit
/// the functional-simulation limit.
pub(crate) fn run_functional(
    kernel: &dyn Kernel,
    cfg: &LaunchConfig,
    env: &LaunchEnv<'_>,
    threads: usize,
    total_blocks: u64,
) -> FunctionalResult {
    run_functional_range(kernel, cfg, env, threads, 0, total_blocks)
}

/// Execute the linear block range `[first_block, first_block + count)` of
/// a launch. The general form behind [`run_functional`]; fused launches
/// use it to run one phase (stage) at a time so producer phases complete
/// before their consumers start.
pub(crate) fn run_functional_range(
    kernel: &dyn Kernel,
    cfg: &LaunchConfig,
    env: &LaunchEnv<'_>,
    threads: usize,
    first_block: u64,
    count: u64,
) -> FunctionalResult {
    let total = count as usize;
    let work = count.saturating_mul(cfg.threads_per_block() as u64);
    if threads <= 1 || work < PARALLEL_MIN_WORK {
        let mut block_costs = Vec::with_capacity(total);
        let mut totals = KernelCounters::default();
        for lin in first_block..first_block + count {
            let (bc, c) = env.run_block(kernel, cfg, lin);
            block_costs.push(bc);
            totals.add(&c);
        }
        return FunctionalResult { block_costs, totals };
    }

    // Chunked dynamic scheduling: ~8 chunks per worker bounds the tail
    // (the last chunk finishing late) to ~1/8 of one worker's share.
    let chunk = (total / (threads * 8)).clamp(1, MAX_CHUNK_BLOCKS);
    let n_chunks = total.div_ceil(chunk);
    let next_chunk = AtomicUsize::new(0);
    let slots: Vec<OnceLock<Vec<(BlockCost, KernelCounters)>>> =
        (0..n_chunks).map(|_| OnceLock::new()).collect();

    std::thread::scope(|s| {
        for _ in 0..threads.min(n_chunks) {
            s.spawn(|| loop {
                let idx = next_chunk.fetch_add(1, Ordering::Relaxed);
                if idx >= n_chunks {
                    break;
                }
                let start = idx * chunk;
                let end = (start + chunk).min(total);
                let mut local = Vec::with_capacity(end - start);
                for lin in start..end {
                    local.push(env.run_block(kernel, cfg, first_block + lin as u64));
                }
                assert!(slots[idx].set(local).is_ok(), "chunk {idx} computed twice");
            });
        }
    });

    // Stitch chunks back into linear block order; the counter reduction
    // is a single ordered fold, independent of which worker ran what.
    let mut block_costs = Vec::with_capacity(total);
    let mut totals = KernelCounters::default();
    for slot in slots {
        let part = slot.into_inner().expect("worker pool exited with an unprocessed chunk");
        for (bc, c) in part {
            block_costs.push(bc);
            totals.add(&c);
        }
    }
    FunctionalResult { block_costs, totals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim3;
    use crate::memory::DevBuf;

    struct FillKernel {
        out: DevBuf<u32>,
    }

    impl Kernel for FillKernel {
        fn name(&self) -> &'static str {
            "fill"
        }
        fn run_block(&self, ctx: &mut BlockCtx<'_>) {
            let tpb = ctx.block_dim.count() as usize;
            let base = ctx.block_idx.x as usize * tpb;
            let mut out = ctx.mem.write(self.out);
            let end = (base + tpb).min(out.len());
            for (i, v) in out[base..end].iter_mut().enumerate() {
                *v = (base + i) as u32 * 3 + 1;
            }
            ctx.meter.alu(ctx.warps_in_block());
            ctx.meter.global_store(((end - base) * 4) as u64);
            // Block-dependent divergence so counter order would show up
            // in a naive unordered reduction of floating-point costs.
            ctx.meter.branches(ctx.block_idx.x as u64 + 1, ctx.block_idx.x as u64 % 2);
        }
    }

    fn run_with(threads: usize) -> (Vec<u32>, FunctionalResult) {
        let mut mem = DeviceMemory::new();
        let out = mem.alloc::<u32>(100_000);
        let cfg = LaunchConfig::linear(100_000, 128);
        let env = LaunchEnv {
            mem: &mem,
            constants: &ConstBank::new(0),
            textures: &[],
            cost: &CostModel::default(),
            warp_size: 32,
        };
        let k = FillKernel { out };
        let r = run_functional(&k, &cfg, &env, threads, cfg.total_blocks());
        (mem.download(out), r)
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (data1, r1) = run_with(1);
        for threads in [2, 4, 7] {
            let (data, r) = run_with(threads);
            assert_eq!(data, data1, "functional output differs at {threads} threads");
            assert_eq!(r.totals, r1.totals, "counters differ at {threads} threads");
            assert_eq!(
                r.block_costs.len(),
                r1.block_costs.len(),
                "block cost count differs at {threads} threads"
            );
            for (i, (a, b)) in r.block_costs.iter().zip(&r1.block_costs).enumerate() {
                assert!(
                    a.issue_cycles.to_bits() == b.issue_cycles.to_bits()
                        && a.mem_latency_cycles.to_bits() == b.mem_latency_cycles.to_bits()
                        && a.mem_bytes == b.mem_bytes,
                    "block {i} cost differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn small_grids_stay_sequential_and_correct() {
        let mut mem = DeviceMemory::new();
        let out = mem.alloc::<u32>(96);
        let cfg = LaunchConfig::linear(96, 32); // 96 thread-iterations < PARALLEL_MIN_WORK
        let env = LaunchEnv {
            mem: &mem,
            constants: &ConstBank::new(0),
            textures: &[],
            cost: &CostModel::default(),
            warp_size: 32,
        };
        let r = run_functional(&FillKernel { out }, &cfg, &env, 8, cfg.total_blocks());
        assert_eq!(r.block_costs.len(), 3);
        assert_eq!(mem.download(out)[95], 95 * 3 + 1);
    }

    #[test]
    fn thread_resolution_prefers_override() {
        assert_eq!(resolve_host_threads(Some(3)), 3);
        assert_eq!(resolve_host_threads(Some(0)), 1, "zero clamps to one");
        assert!(resolve_host_threads(None) >= 1);
    }

    #[test]
    fn from_linear_round_trips_in_parallel_grids() {
        let grid = Dim3::d2(37, 11);
        for lin in 0..grid.count() {
            assert_eq!(grid.linear_index(grid.from_linear(lin)), lin);
        }
    }
}
