//! The per-block timing cost model.
//!
//! Block execution time is derived from metered work (see [`crate::Meter`])
//! in two buckets:
//!
//! * **issue cycles** — warp-wide instructions that occupy the SM's issue
//!   pipeline: ALU ops, shared-memory transactions, constant broadcasts,
//!   texture fetches and barriers. These scale with the amount of SIMT work
//!   regardless of DRAM.
//! * **memory cycles** — global-memory traffic. Each 128-byte coalesced
//!   transaction pays `global_latency_cycles`, but resident warps overlap
//!   their stalls: the effective stall per transaction is divided by a
//!   *latency-hiding factor* that grows with the number of warps co-resident
//!   on the SM when the block starts (more residents, more overlap). A
//!   bandwidth floor keeps the model honest for streaming kernels: a block
//!   can never move bytes faster than its SM's share of DRAM bandwidth.
//!
//! This reproduces the first-order phenomenon the paper exploits: a kernel
//! with very few blocks leaves most SMs idle *and* runs its lone blocks with
//! poor latency hiding, while concurrent kernels across streams backfill the
//! residency and amortize both.

use crate::meter::KernelCounters;

/// Cost-model constants, in shader-clock cycles unless noted.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Issue cycles per warp-wide ALU instruction.
    pub alu_cycles: f64,
    /// Issue cycles per warp shared-memory transaction (bank-conflict free).
    pub shared_cycles: f64,
    /// Issue cycles per warp constant-cache broadcast.
    pub const_cycles: f64,
    /// Issue cycles per warp texture fetch (texture-cache hit assumed; the
    /// interpolator is fixed-function).
    pub tex_cycles: f64,
    /// Issue cycles per `__syncthreads`-style barrier, per warp.
    pub barrier_cycles: f64,
    /// Round-trip DRAM latency for one coalesced transaction.
    pub global_latency_cycles: f64,
    /// Bytes per coalesced global transaction.
    pub bytes_per_transaction: f64,
    /// Resident warps per unit of latency hiding: `hiding = warps / ref`.
    /// With the Fermi-like default of 2.0, a well-occupied SM (>= 48
    /// warps) hides DRAM latency almost completely and its memory time
    /// collapses onto the bandwidth floor, while a lone block of a tiny
    /// kernel (few warps) pays most of the round-trip latency — the
    /// occupancy cliff the paper's concurrency attacks.
    pub hide_warp_ref: f64,
    /// Upper bound on the latency-hiding factor.
    pub hide_max: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            alu_cycles: 1.0,
            shared_cycles: 2.0,
            const_cycles: 1.0,
            tex_cycles: 4.0,
            barrier_cycles: 8.0,
            global_latency_cycles: 400.0,
            bytes_per_transaction: 128.0,
            hide_warp_ref: 2.0,
            hide_max: 24.0,
        }
    }
}

impl CostModel {
    /// Issue-pipeline cycles for one block's metered work.
    ///
    /// Fusion-local traffic (intermediates a fused chain keeps on-chip,
    /// see [`crate::fuse`]) is charged here at shared-memory rate per
    /// would-have-been transaction instead of entering the DRAM
    /// latency/bandwidth terms: the bytes still cost issue slots to move
    /// through the register file and L1, but never pay `global_latency_cycles`
    /// or occupy DRAM bandwidth. With zero fused bytes the result is
    /// numerically identical to the pre-fusion model.
    pub fn issue_cycles(&self, c: &KernelCounters) -> f64 {
        let fused_transactions =
            ((c.fused_bytes_read + c.fused_bytes_written) as f64 / self.bytes_per_transaction)
                .ceil();
        c.alu_ops as f64 * self.alu_cycles
            + c.shared_transactions as f64 * self.shared_cycles
            + c.const_broadcasts as f64 * self.const_cycles
            + c.tex_fetches as f64 * self.tex_cycles
            + c.barriers as f64 * self.barrier_cycles
            + fused_transactions * self.shared_cycles
    }

    /// Un-hidden global-memory stall cycles for one block (latency term,
    /// before dividing by the scheduling-time hiding factor).
    pub fn mem_latency_cycles(&self, c: &KernelCounters) -> f64 {
        let bytes = (c.global_bytes_read + c.global_bytes_written) as f64;
        let transactions = (bytes / self.bytes_per_transaction).ceil();
        transactions * self.global_latency_cycles
    }

    /// Cycles needed to move the block's global traffic at a given DRAM
    /// bandwidth share (bytes per cycle). This is a floor on memory time.
    pub fn mem_bandwidth_cycles(&self, c: &KernelCounters, bytes_per_cycle: f64) -> f64 {
        let bytes = (c.global_bytes_read + c.global_bytes_written) as f64;
        if bytes_per_cycle <= 0.0 {
            return 0.0;
        }
        bytes / bytes_per_cycle
    }

    /// Latency-hiding factor for a block starting on an SM that has
    /// `resident_warps` warps resident (including the block's own warps).
    pub fn hiding_factor(&self, resident_warps: u32) -> f64 {
        (resident_warps as f64 / self.hide_warp_ref).clamp(1.0, self.hide_max)
    }

    /// Issue-pipeline contention: a block's warp-instructions are issued
    /// at the SM's fixed pipeline rate, shared with every other resident
    /// warp. A block owning `block_warps` of `resident_warps` therefore
    /// sees its issue time stretched by `resident / own` — co-resident
    /// blocks double *each other's* duration while keeping SM throughput
    /// constant, and a lone small block on a busy SM gets only its share
    /// of issue slots.
    pub fn issue_contention(&self, resident_warps: u32, block_warps: u32) -> f64 {
        (resident_warps as f64 / block_warps.max(1) as f64).max(1.0)
    }

    /// Final block duration in cycles, combining contended issue work and
    /// memory stalls under the given residency and bandwidth share.
    pub fn block_cycles(
        &self,
        issue_cycles: f64,
        mem_latency_cycles: f64,
        mem_bandwidth_cycles: f64,
        resident_warps: u32,
        block_warps: u32,
    ) -> f64 {
        let hidden = mem_latency_cycles / self.hiding_factor(resident_warps);
        issue_cycles * self.issue_contention(resident_warps, block_warps)
            + hidden.max(mem_bandwidth_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(alu: u64, bytes: u64) -> KernelCounters {
        KernelCounters {
            alu_ops: alu,
            global_bytes_read: bytes,
            ..KernelCounters::default()
        }
    }

    #[test]
    fn issue_cycles_sum_instruction_classes() {
        let m = CostModel::default();
        let c = KernelCounters {
            alu_ops: 10,
            shared_transactions: 5,
            const_broadcasts: 3,
            tex_fetches: 2,
            barriers: 1,
            ..KernelCounters::default()
        };
        let expect = 10.0 * m.alu_cycles
            + 5.0 * m.shared_cycles
            + 3.0 * m.const_cycles
            + 2.0 * m.tex_cycles
            + m.barrier_cycles;
        assert_eq!(m.issue_cycles(&c), expect);
    }

    #[test]
    fn fused_traffic_is_credited_to_on_chip_rates() {
        let m = CostModel::default();
        // 256 fused bytes -> 2 would-have-been transactions at shared rate,
        // and none of it shows up in the DRAM latency term.
        let c = KernelCounters {
            fused_bytes_read: 200,
            fused_bytes_written: 56,
            ..KernelCounters::default()
        };
        assert_eq!(m.issue_cycles(&c), 2.0 * m.shared_cycles);
        assert_eq!(m.mem_latency_cycles(&c), 0.0);
        // The same bytes paid as global traffic would stall on DRAM.
        let g = counters(0, 256);
        assert_eq!(m.mem_latency_cycles(&g), 2.0 * m.global_latency_cycles);
    }

    #[test]
    fn memory_latency_counts_transactions() {
        let m = CostModel::default();
        // 129 bytes -> 2 transactions.
        let c = counters(0, 129);
        assert_eq!(m.mem_latency_cycles(&c), 2.0 * m.global_latency_cycles);
    }

    #[test]
    fn hiding_improves_with_residency_and_saturates() {
        let m = CostModel::default();
        assert_eq!(m.hiding_factor(1), 1.0);
        assert_eq!(m.hiding_factor(2), 1.0);
        assert!(m.hiding_factor(24) > m.hiding_factor(16));
        assert_eq!(m.hiding_factor(1000), m.hide_max);
    }

    #[test]
    fn block_cycles_respect_bandwidth_floor() {
        let m = CostModel::default();
        // Huge hiding but bandwidth-limited transfer dominates; the block
        // owns all resident warps so there is no issue contention.
        let cyc = m.block_cycles(100.0, 1000.0, 5000.0, 1000, 1000);
        assert_eq!(cyc, 100.0 + 5000.0);
    }

    #[test]
    fn lone_block_pays_most_of_the_latency() {
        let m = CostModel::default();
        // 4 resident warps (all its own): hiding factor 2.
        let cyc = m.block_cycles(100.0, 800.0, 0.0, 4, 4);
        assert_eq!(cyc, 500.0);
        // 2 warps: no hiding at all.
        assert_eq!(m.block_cycles(100.0, 800.0, 0.0, 2, 2), 900.0);
    }

    #[test]
    fn issue_contention_shares_the_pipeline() {
        let m = CostModel::default();
        // Two equal co-resident blocks stretch each other 2x.
        assert_eq!(m.issue_contention(36, 18), 2.0);
        // A lone block is unstretched.
        assert_eq!(m.issue_contention(18, 18), 1.0);
        // A small block on a busy SM gets its fair share only.
        assert_eq!(m.issue_contention(48, 8), 6.0);
        // Contention never speeds a block up.
        assert_eq!(m.issue_contention(4, 8), 1.0);
        // Throughput conservation: two co-resident blocks take 2x the
        // time of one, so SM-wide work rate is unchanged.
        let alone = m.block_cycles(1000.0, 0.0, 0.0, 18, 18);
        let shared = m.block_cycles(1000.0, 0.0, 0.0, 36, 18);
        assert_eq!(shared, 2.0 * alone);
    }
}
