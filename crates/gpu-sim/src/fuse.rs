//! Kernel fusion: collapse a producer–consumer chain into one launch.
//!
//! The paper's per-level pipeline issues each stage as its own kernel, so
//! every pyramid level pays a launch overhead per stage and round-trips
//! intermediate arrays through DRAM. Following the kernel-fusion
//! literature for GPU video pipelines, a [`FusedChain`] packages a
//! sequence of kernels whose dependence structure makes a single combined
//! launch legal, and [`FusedKernel`] executes that chain in one launch:
//!
//! * **one launch overhead** instead of one per stage — the timing model
//!   charges `launch_overhead_us` per launch, so a k-stage fusion saves
//!   `k - 1` overheads with no special casing;
//! * **fusion-local intermediates** — a buffer written by one stage and
//!   consumed by a later stage of the same chain never needs to reach
//!   DRAM in the fused execution. Stages meter traffic on such buffers
//!   through [`crate::BlockCtx::global_load_buf`] /
//!   [`crate::BlockCtx::global_store_buf`], which routes it to the
//!   fused-traffic counters; [`crate::CostModel::issue_cycles`] then
//!   charges it at on-chip (shared-memory) rate instead of the DRAM
//!   latency/bandwidth terms.
//!
//! # Legality
//!
//! [`FusedChain::validate`] refuses to fuse unless the chain provably has
//! the shape a real fused kernel could execute:
//!
//! * at least two stages, none opaque (an undeclared access set cannot be
//!   checked), every stage opted in via [`Kernel::fusion_traits`];
//! * uniform thread count per block across stages — the fused launch has
//!   one block shape;
//! * each adjacent pair is a producer→consumer link: some buffer written
//!   by stage *i* is read by stage *i + 1*, and the producer's write
//!   domain equals the consumer's read domain (a transpose legitimately
//!   swaps its domains; the traits encode that);
//! * every producer stage is element-wise or tile-local, so a consumer
//!   tile depends only on a bounded producer neighborhood;
//! * no write-after-write and no later stage writing a buffer an earlier
//!   stage reads — such conflicts would race in a genuinely interleaved
//!   fused kernel, so the model refuses them even though the simulator's
//!   phased execution could hide the problem.
//!
//! # Execution
//!
//! The fused launch concatenates the stage grids on a 1-D grid;
//! [`FusedKernel::run_block`] maps a linear block id back to its stage
//! and remaps the context's geometry before delegating, exactly like
//! [`crate::BatchedKernel`] does for grid-`z` stacking. Stage starts are
//! exposed as [`Kernel::phase_boundaries`]: both host engines execute the
//! phases in order without interleaving blocks across a boundary, which
//! preserves the memory effects of separate launches (and keeps the
//! arena's read-while-write checker quiet). Results are bit-identical to
//! the unfused pipeline at any host thread count and on both engines.

use std::sync::OnceLock;

use crate::dim::Dim3;
use crate::kernel::{BlockCtx, Kernel, LaunchConfig};
use crate::memory::AccessSet;

/// Environment variable enabling fusion by default in consumers that
/// expose a fusion knob (`1`/`true`/`on` to enable).
pub const FUSION_ENV_VAR: &str = "FD_SIM_FUSION";

/// Resolve the process-wide fusion default from [`FUSION_ENV_VAR`].
/// Read once per process (`OnceLock`), like the other `FD_SIM_*` knobs.
/// Unset or unrecognized values mean *off*: the unfused pipeline stays
/// the baseline.
pub fn env_fusion_default() -> bool {
    static ENV_FUSION: OnceLock<bool> = OnceLock::new();
    *ENV_FUSION.get_or_init(|| {
        std::env::var(FUSION_ENV_VAR)
            .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on"))
            .unwrap_or(false)
    })
}

/// A kernel's producer/consumer shape, declared via
/// [`Kernel::fusion_traits`]. Domains are logical `(width, height)`
/// element extents; a transpose reads `(w, h)` and writes `(h, w)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionTraits {
    /// Element domain consumed from the producer input.
    pub read_domain: (usize, usize),
    /// Element domain produced.
    pub write_domain: (usize, usize),
    /// Whether each output element depends only on a bounded neighborhood
    /// of the input (element-wise or tile-local). Required of every
    /// *producer* stage: a consumer tile must be computable from a
    /// bounded set of producer tiles for real fused execution.
    pub tile_local: bool,
}

/// Why a chain refused to fuse. Carried by
/// [`LaunchError::FusionRejected`](crate::LaunchError::FusionRejected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionError {
    /// Fewer than two stages.
    TooFewStages { stages: usize },
    /// A stage did not declare its access set.
    OpaqueStage { stage: usize, kernel: &'static str },
    /// A stage did not opt into fusion via [`Kernel::fusion_traits`].
    Unfusable { stage: usize, kernel: &'static str },
    /// Stage block shapes disagree on threads per block.
    ThreadCountMismatch { stage: usize, expected: u32, found: u32 },
    /// A consumer reads none of its predecessor's outputs.
    MissingProducerLink { stage: usize },
    /// Producer write domain and consumer read domain disagree.
    GeometryMismatch {
        stage: usize,
        produced: (usize, usize),
        consumed: (usize, usize),
    },
    /// A producer stage is not element-wise/tile-local.
    NotTileLocal { stage: usize, kernel: &'static str },
    /// Two stages write the same buffer.
    WriteAfterWrite { buf: usize, first: usize, second: usize },
    /// A later stage writes a buffer an earlier stage reads.
    WriteAfterRead { buf: usize, reader: usize, writer: usize },
    /// The concatenated grid exceeds the 1-D grid limit.
    GridTooLarge { blocks: u64 },
}

impl std::fmt::Display for FusionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewStages { stages } => {
                write!(f, "fusion needs at least 2 stages, got {stages}")
            }
            Self::OpaqueStage { stage, kernel } => {
                write!(f, "stage {stage} ({kernel}) has an opaque access set")
            }
            Self::Unfusable { stage, kernel } => {
                write!(f, "stage {stage} ({kernel}) does not declare fusion traits")
            }
            Self::ThreadCountMismatch { stage, expected, found } => write!(
                f,
                "stage {stage} uses {found} threads/block, chain uses {expected}"
            ),
            Self::MissingProducerLink { stage } => write!(
                f,
                "stage {stage} reads no buffer written by stage {}",
                stage - 1
            ),
            Self::GeometryMismatch { stage, produced, consumed } => write!(
                f,
                "stage {stage} consumes {}x{} but its producer writes {}x{}",
                consumed.0, consumed.1, produced.0, produced.1
            ),
            Self::NotTileLocal { stage, kernel } => {
                write!(f, "producer stage {stage} ({kernel}) is not tile-local")
            }
            Self::WriteAfterWrite { buf, first, second } => write!(
                f,
                "stages {first} and {second} both write buffer {buf} (WAW inside a fused chain)"
            ),
            Self::WriteAfterRead { buf, reader, writer } => write!(
                f,
                "stage {writer} writes buffer {buf} that stage {reader} reads (WAR inside a fused chain)"
            ),
            Self::GridTooLarge { blocks } => {
                write!(f, "fused grid of {blocks} blocks exceeds the 1-D grid limit")
            }
        }
    }
}

impl std::error::Error for FusionError {}

struct FusedStage {
    kernel: Box<dyn Kernel>,
    cfg: LaunchConfig,
}

/// Builder for a fused launch: collect the stage kernels with their
/// standalone launch configs, then [`validate`](Self::validate) into a
/// [`FusedKernel`] (or launch directly via
/// [`Gpu::launch_fused`](crate::Gpu::launch_fused)).
pub struct FusedChain {
    name: &'static str,
    stages: Vec<FusedStage>,
}

impl FusedChain {
    /// Start a chain. `name` labels the fused launch in profiler traces.
    pub fn new(name: &'static str) -> Self {
        Self { name, stages: Vec::new() }
    }

    /// Append a stage with the launch config it would have used standalone.
    pub fn then<K: Kernel + 'static>(mut self, kernel: K, cfg: LaunchConfig) -> Self {
        self.stages.push(FusedStage { kernel: Box::new(kernel), cfg });
        self
    }

    /// Number of stages collected so far.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain is still empty.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Check fusion legality and build the single-launch [`FusedKernel`].
    pub fn validate(self) -> Result<FusedKernel, FusionError> {
        let n = self.stages.len();
        if n < 2 {
            return Err(FusionError::TooFewStages { stages: n });
        }

        // Per-stage access sets and traits.
        let mut accesses = Vec::with_capacity(n);
        let mut traits_v = Vec::with_capacity(n);
        for (i, s) in self.stages.iter().enumerate() {
            let mut set = AccessSet::new();
            s.kernel.access(&mut set);
            if set.is_opaque() {
                return Err(FusionError::OpaqueStage { stage: i, kernel: s.kernel.name() });
            }
            let t = s
                .kernel
                .fusion_traits()
                .ok_or(FusionError::Unfusable { stage: i, kernel: s.kernel.name() })?;
            accesses.push(set);
            traits_v.push(t);
        }

        // Uniform thread count: the fused launch has one block shape.
        let expected = self.stages[0].cfg.threads_per_block();
        for (i, s) in self.stages.iter().enumerate().skip(1) {
            let found = s.cfg.threads_per_block();
            if found != expected {
                return Err(FusionError::ThreadCountMismatch { stage: i, expected, found });
            }
        }

        // Producer→consumer links: adjacent stages must share a buffer
        // (written by i, read by i+1) on matching geometry, and every
        // producer must be tile-local.
        for i in 1..n {
            let linked = accesses[i - 1]
                .write_ids()
                .iter()
                .any(|w| accesses[i].read_ids().contains(w));
            if !linked {
                return Err(FusionError::MissingProducerLink { stage: i });
            }
            let produced = traits_v[i - 1].write_domain;
            let consumed = traits_v[i].read_domain;
            if produced != consumed {
                return Err(FusionError::GeometryMismatch { stage: i, produced, consumed });
            }
            if !traits_v[i - 1].tile_local {
                return Err(FusionError::NotTileLocal {
                    stage: i - 1,
                    kernel: self.stages[i - 1].kernel.name(),
                });
            }
        }

        // Conflicting accesses a genuinely interleaved fusion could not
        // order: WAW between any two stages, and a later stage writing a
        // buffer an earlier stage reads.
        for i in 0..n {
            for j in (i + 1)..n {
                for &b in accesses[j].write_ids() {
                    if accesses[i].write_ids().contains(&b) {
                        return Err(FusionError::WriteAfterWrite { buf: b, first: i, second: j });
                    }
                    if accesses[i].read_ids().contains(&b) {
                        return Err(FusionError::WriteAfterRead { buf: b, reader: i, writer: j });
                    }
                }
            }
        }

        // Fusion-local intermediates: written by one stage, consumed by a
        // later one. Their inter-stage traffic is credited to on-chip
        // rates; they are still written through to the arena (the chain's
        // union access set declares them) so host reads and later
        // launches observe the same bytes as the unfused pipeline.
        let mut fusion_local: Vec<usize> = Vec::new();
        for i in 0..n {
            for &b in accesses[i].write_ids() {
                let consumed_later =
                    (i + 1..n).any(|j| accesses[j].read_ids().contains(&b));
                if consumed_later && !fusion_local.contains(&b) {
                    fusion_local.push(b);
                }
            }
        }
        fusion_local.sort_unstable();

        // Concatenated 1-D grid; stage starts become phase boundaries.
        let mut block_bases = Vec::with_capacity(n);
        let mut total: u64 = 0;
        for s in &self.stages {
            block_bases.push(total);
            total += s.cfg.total_blocks();
        }
        if total > u32::MAX as u64 {
            return Err(FusionError::GridTooLarge { blocks: total });
        }
        let shared = self.stages.iter().map(|s| s.cfg.shared_mem_bytes).max().unwrap_or(0);
        let cfg = LaunchConfig::new(Dim3::d1(total as u32), Dim3::d1(expected))
            .with_shared_mem(shared);

        Ok(FusedKernel {
            name: self.name,
            stages: self.stages,
            block_bases,
            fusion_local,
            cfg,
        })
    }
}

/// A validated producer–consumer chain executing as one launch. Build via
/// [`FusedChain::validate`]; launch like any other kernel with the config
/// from [`Self::config`], or in one step with
/// [`Gpu::launch_fused`](crate::Gpu::launch_fused).
pub struct FusedKernel {
    name: &'static str,
    stages: Vec<FusedStage>,
    /// Linear block id at which each stage starts.
    block_bases: Vec<u64>,
    /// Sorted arena ids of intermediates kept on-chip by this fusion.
    fusion_local: Vec<usize>,
    cfg: LaunchConfig,
}

impl std::fmt::Debug for FusedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedKernel")
            .field("name", &self.name)
            .field("stages", &self.stages.iter().map(|s| s.kernel.name()).collect::<Vec<_>>())
            .field("block_bases", &self.block_bases)
            .field("fusion_local", &self.fusion_local)
            .finish_non_exhaustive()
    }
}

impl FusedKernel {
    /// The single-launch configuration for the whole chain.
    pub fn config(&self) -> LaunchConfig {
        self.cfg
    }

    /// Number of fused stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Arena ids of the intermediates this fusion keeps on-chip.
    pub fn fusion_local(&self) -> &[usize] {
        &self.fusion_local
    }

    fn stage_of(&self, lin: u64) -> usize {
        match self.block_bases.binary_search(&lin) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }
}

impl Kernel for FusedKernel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        // The fused grid is 1-D: the linear block id is the x coordinate.
        let lin = ctx.block_idx.x as u64;
        let stage = self.stage_of(lin);
        let s = &self.stages[stage];
        ctx.block_idx = s.cfg.grid.from_linear(lin - self.block_bases[stage]);
        ctx.grid_dim = s.cfg.grid;
        ctx.block_dim = s.cfg.block;
        ctx.set_fusion_local(&self.fusion_local);
        s.kernel.run_block(ctx);
    }

    /// The union of the stages' access sets. Intermediates stay declared:
    /// they are still materialized in the arena, so frame-to-frame buffer
    /// reuse keeps its hazard ordering.
    fn access(&self, set: &mut AccessSet) {
        for s in &self.stages {
            let mut part = AccessSet::new();
            s.kernel.access(&mut part);
            set.union(&part);
        }
    }

    fn phase_boundaries(&self) -> Vec<u64> {
        self.block_bases[1..].to_vec()
    }

    /// A fused block must hold every stage's live state, so the chain's
    /// register footprint is the *maximum* over its stages — the honest
    /// resource cost of fusion the occupancy model charges (fused
    /// kernels can bound residency where their constituents would not).
    fn registers_per_thread(&self) -> u32 {
        self.stages.iter().map(|s| s.kernel.registers_per_thread()).max().unwrap_or(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{DevBuf, DeviceMemory};

    /// Element-wise map: `dst[i] = src[i] * k + 1`, 1 block per 64 elems.
    struct MapKernel {
        src: DevBuf<u32>,
        dst: DevBuf<u32>,
        n: usize,
        k: u32,
        tile_local: bool,
        name: &'static str,
    }

    impl Kernel for MapKernel {
        fn name(&self) -> &'static str {
            self.name
        }
        fn run_block(&self, ctx: &mut BlockCtx<'_>) {
            let tpb = ctx.block_dim.count() as usize;
            let base = ctx.block_idx.x as usize * tpb;
            let end = (base + tpb).min(self.n);
            if base >= end {
                return;
            }
            {
                let src = ctx.mem.read(self.src);
                let mut dst = ctx.mem.write(self.dst);
                for i in base..end {
                    dst[i] = src[i] * self.k + 1;
                }
            }
            let bytes = ((end - base) * 4) as u64;
            ctx.global_load_buf(self.src, bytes);
            ctx.global_store_buf(self.dst, bytes);
            ctx.meter.alu(ctx.warps_in_block());
        }
        fn access(&self, set: &mut AccessSet) {
            set.reads(self.src).writes(self.dst);
        }
        fn fusion_traits(&self) -> Option<FusionTraits> {
            Some(FusionTraits {
                read_domain: (self.n, 1),
                write_domain: (self.n, 1),
                tile_local: self.tile_local,
            })
        }
    }

    fn map(src: DevBuf<u32>, dst: DevBuf<u32>, n: usize, k: u32) -> MapKernel {
        MapKernel { src, dst, n, k, tile_local: true, name: "map" }
    }

    fn arena(n: usize) -> (DeviceMemory, DevBuf<u32>, DevBuf<u32>, DevBuf<u32>) {
        let mut mem = DeviceMemory::new();
        let input: Vec<u32> = (0..n as u32).collect();
        let a = mem.upload(&input);
        let b = mem.alloc::<u32>(n);
        let c = mem.alloc::<u32>(n);
        (mem, a, b, c)
    }

    #[test]
    fn legal_chain_validates_and_finds_the_intermediate() {
        let (_mem, a, b, c) = arena(256);
        let fused = FusedChain::new("fused_map2")
            .then(map(a, b, 256, 2), LaunchConfig::linear(256, 64))
            .then(map(b, c, 256, 3), LaunchConfig::linear(256, 64))
            .validate()
            .expect("legal chain must fuse");
        assert_eq!(fused.stage_count(), 2);
        assert_eq!(fused.fusion_local(), &[b.raw_id()]);
        assert_eq!(fused.config().total_blocks(), 8);
        assert_eq!(fused.phase_boundaries(), vec![4]);
        // The union access set still declares the intermediate.
        let mut set = AccessSet::new();
        fused.access(&mut set);
        assert!(!set.is_opaque());
    }

    #[test]
    fn single_stage_chains_are_rejected() {
        let (_mem, a, b, _c) = arena(64);
        let err = FusedChain::new("solo")
            .then(map(a, b, 64, 2), LaunchConfig::linear(64, 64))
            .validate()
            .unwrap_err();
        assert_eq!(err, FusionError::TooFewStages { stages: 1 });
    }

    #[test]
    fn opaque_stages_are_rejected() {
        struct Opaque;
        impl Kernel for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn run_block(&self, _ctx: &mut BlockCtx<'_>) {}
        }
        let (_mem, a, b, _c) = arena(64);
        let err = FusedChain::new("f")
            .then(map(a, b, 64, 2), LaunchConfig::linear(64, 64))
            .then(Opaque, LaunchConfig::linear(64, 64))
            .validate()
            .unwrap_err();
        assert_eq!(err, FusionError::OpaqueStage { stage: 1, kernel: "opaque" });
    }

    #[test]
    fn kernels_without_fusion_traits_are_rejected() {
        struct NoTraits {
            src: DevBuf<u32>,
            dst: DevBuf<u32>,
        }
        impl Kernel for NoTraits {
            fn name(&self) -> &'static str {
                "no_traits"
            }
            fn run_block(&self, _ctx: &mut BlockCtx<'_>) {}
            fn access(&self, set: &mut AccessSet) {
                set.reads(self.src).writes(self.dst);
            }
        }
        let (_mem, a, b, c) = arena(64);
        let err = FusedChain::new("f")
            .then(map(a, b, 64, 2), LaunchConfig::linear(64, 64))
            .then(NoTraits { src: b, dst: c }, LaunchConfig::linear(64, 64))
            .validate()
            .unwrap_err();
        assert_eq!(err, FusionError::Unfusable { stage: 1, kernel: "no_traits" });
    }

    #[test]
    fn thread_count_mismatch_is_rejected() {
        let (_mem, a, b, c) = arena(256);
        let err = FusedChain::new("f")
            .then(map(a, b, 256, 2), LaunchConfig::linear(256, 64))
            .then(map(b, c, 256, 3), LaunchConfig::linear(256, 128))
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            FusionError::ThreadCountMismatch { stage: 1, expected: 64, found: 128 }
        );
    }

    #[test]
    fn unlinked_stages_are_rejected() {
        let (mut mem, a, b, _c) = arena(64);
        let d = mem.alloc::<u32>(64);
        let e = mem.alloc::<u32>(64);
        // Second stage reads d, which the first stage never writes.
        let err = FusedChain::new("f")
            .then(map(a, b, 64, 2), LaunchConfig::linear(64, 64))
            .then(map(d, e, 64, 3), LaunchConfig::linear(64, 64))
            .validate()
            .unwrap_err();
        assert_eq!(err, FusionError::MissingProducerLink { stage: 1 });
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let (_mem, a, b, c) = arena(256);
        let mut consumer = map(b, c, 256, 3);
        // Claims to consume a 128-wide domain from a 256-wide producer.
        consumer.n = 256;
        struct Narrow(MapKernel);
        impl Kernel for Narrow {
            fn name(&self) -> &'static str {
                self.0.name()
            }
            fn run_block(&self, ctx: &mut BlockCtx<'_>) {
                self.0.run_block(ctx)
            }
            fn access(&self, set: &mut AccessSet) {
                self.0.access(set)
            }
            fn fusion_traits(&self) -> Option<FusionTraits> {
                Some(FusionTraits {
                    read_domain: (128, 1),
                    write_domain: (256, 1),
                    tile_local: true,
                })
            }
        }
        let err = FusedChain::new("f")
            .then(map(a, b, 256, 2), LaunchConfig::linear(256, 64))
            .then(Narrow(consumer), LaunchConfig::linear(256, 64))
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            FusionError::GeometryMismatch {
                stage: 1,
                produced: (256, 1),
                consumed: (128, 1)
            }
        );
    }

    #[test]
    fn non_tile_local_producers_are_rejected() {
        let (_mem, a, b, c) = arena(256);
        let mut producer = map(a, b, 256, 2);
        producer.tile_local = false;
        producer.name = "gather";
        let err = FusedChain::new("f")
            .then(producer, LaunchConfig::linear(256, 64))
            .then(map(b, c, 256, 3), LaunchConfig::linear(256, 64))
            .validate()
            .unwrap_err();
        assert_eq!(err, FusionError::NotTileLocal { stage: 0, kernel: "gather" });
    }

    #[test]
    fn conflicting_writes_are_rejected() {
        let (_mem, a, b, _c) = arena(256);
        // Both stages write b: WAW inside the chain.
        let err = FusedChain::new("f")
            .then(map(a, b, 256, 2), LaunchConfig::linear(256, 64))
            .then(
                MapKernel { src: b, dst: b, n: 256, k: 3, tile_local: true, name: "rmw" },
                LaunchConfig::linear(256, 64),
            )
            .validate()
            .unwrap_err();
        assert_eq!(err, FusionError::WriteAfterWrite { buf: b.raw_id(), first: 0, second: 1 });
    }

    #[test]
    fn later_writes_to_earlier_reads_are_rejected() {
        let (_mem, a, b, c) = arena(256);
        // Stage 1 consumes b and (illegally) also overwrites a, which
        // stage 0 reads.
        struct Clobber {
            src: DevBuf<u32>,
            dst: DevBuf<u32>,
            clobbered: DevBuf<u32>,
            n: usize,
        }
        impl Kernel for Clobber {
            fn name(&self) -> &'static str {
                "clobber"
            }
            fn run_block(&self, _ctx: &mut BlockCtx<'_>) {}
            fn access(&self, set: &mut AccessSet) {
                set.reads(self.src).writes(self.dst).writes(self.clobbered);
            }
            fn fusion_traits(&self) -> Option<FusionTraits> {
                Some(FusionTraits {
                    read_domain: (self.n, 1),
                    write_domain: (self.n, 1),
                    tile_local: true,
                })
            }
        }
        let err = FusedChain::new("f")
            .then(map(a, b, 256, 2), LaunchConfig::linear(256, 64))
            .then(
                Clobber { src: b, dst: c, clobbered: a, n: 256 },
                LaunchConfig::linear(256, 64),
            )
            .validate()
            .unwrap_err();
        assert_eq!(err, FusionError::WriteAfterRead { buf: a.raw_id(), reader: 0, writer: 1 });
    }

    #[test]
    fn env_default_is_off() {
        // The env var is unset in the test harness; the knob must then
        // leave fusion disabled so the unfused path stays the baseline.
        assert!(!env_fusion_default() || std::env::var(FUSION_ENV_VAR).is_ok());
    }
}
