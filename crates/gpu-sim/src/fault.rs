//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] attached to a [`crate::Gpu`] (or, for copies, to a
//! [`crate::DeviceMemory`]) injects failures that real deployments of the
//! paper's pipeline must survive: launches that time out under engine
//! contention, transient launch errors that a bounded retry recovers,
//! stream stalls (latency spikes in the timing simulation), and
//! corruption of device↔host copies modelled as *poisoned regions*.
//!
//! Every injection decision is a pure function of `(seed, domain,
//! counter)` — no global RNG state — so a given plan reproduces the same
//! fault sequence on every run, at any host thread count, which is what
//! makes fault-matrix tests and bisection of recovery bugs possible. A
//! plan whose rates are all zero is *inert*: the device behaves
//! bit-identically to one with no plan at all (no draws influence any
//! result, and the functional phase never consults the plan).

/// Stateless SplitMix64 step, the same generator family the synthetic
/// data paths use. Kept local so `fd-gpu` stays dependency-free.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Independent draw domains so that, e.g., enabling stalls does not shift
/// the launch-failure sequence.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultDomain {
    LaunchTimeout = 1,
    LaunchTransient = 2,
    StreamStall = 3,
    CopyCorruption = 4,
    /// Sub-draws positioning the poisoned region within a buffer.
    CorruptionOffset = 5,
    /// Sub-draws attributing an injected launch fault to one slot of a
    /// batched launch (the part whose blocks hit the fault). Drawn only
    /// when a fault actually fires, in its own domain, so attribution
    /// never shifts any other draw sequence.
    BatchAttribution = 6,
}

/// Mix `(seed, domain)` into a full-width base *before* the counter is
/// folded in. A plain `seed ^ counter` would let a small seed merely
/// permute the low counter values — every small seed would then draw
/// the same *set* of verdicts over a short run, so seed sweeps at low
/// fault rates would not actually vary the fault pattern.
#[inline]
fn draw_base(seed: u64, domain: FaultDomain) -> u64 {
    splitmix64(seed ^ (domain as u64).wrapping_mul(0xA24BAED4963EE407))
}

/// Deterministic uniform draw in `[0, 1)` for `(seed, domain, counter)`.
#[inline]
pub(crate) fn fault_draw(seed: u64, domain: FaultDomain, counter: u64) -> f64 {
    let h = splitmix64(draw_base(seed, domain).wrapping_add(counter));
    // 53 high bits -> f64 in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic u64 for `(seed, domain, counter)` (region placement).
#[inline]
pub(crate) fn fault_bits(seed: u64, domain: FaultDomain, counter: u64) -> u64 {
    splitmix64(draw_base(seed, domain).wrapping_add(counter))
}

/// A seeded, deterministic fault-injection plan.
///
/// All rates are probabilities in `[0, 1]` evaluated per injectable event
/// (per launch attempt, per host↔device copy). The default plan is inert.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every draw this plan makes.
    pub seed: u64,
    /// Probability a launch attempt fails with an *unrecoverable*
    /// [`crate::LaunchError::InjectedTimeout`].
    pub launch_timeout_rate: f64,
    /// Probability a launch attempt fails with a *transient*
    /// [`crate::LaunchError::InjectedTransient`] (a retry draws afresh).
    pub transient_launch_rate: f64,
    /// Probability a successful launch suffers a stream stall: an extra
    /// `stall_us` of memory latency charged to the launch's first block.
    pub stall_rate: f64,
    /// Stall magnitude, microseconds of device time.
    pub stall_us: f64,
    /// Probability a device↔host copy corrupts a region of the data.
    pub copy_corruption_rate: f64,
    /// Length of the poisoned region, in elements (clamped to the copy).
    pub corrupt_region_len: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::seeded(0)
    }
}

impl FaultPlan {
    /// An inert plan (all rates zero) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            launch_timeout_rate: 0.0,
            transient_launch_rate: 0.0,
            stall_rate: 0.0,
            stall_us: 500.0,
            copy_corruption_rate: 0.0,
            corrupt_region_len: 64,
        }
    }

    pub fn with_launch_timeouts(mut self, rate: f64) -> Self {
        self.launch_timeout_rate = rate;
        self
    }

    pub fn with_transient_launch_failures(mut self, rate: f64) -> Self {
        self.transient_launch_rate = rate;
        self
    }

    pub fn with_stream_stalls(mut self, rate: f64, stall_us: f64) -> Self {
        self.stall_rate = rate;
        self.stall_us = stall_us;
        self
    }

    pub fn with_copy_corruption(mut self, rate: f64) -> Self {
        self.copy_corruption_rate = rate;
        self
    }

    /// Stall magnitude converted to shader-clock cycles at `clock_ghz`
    /// (the unit [`crate::sched`] charges against a launch's first block).
    pub fn stall_cycles(&self, clock_ghz: f64) -> f64 {
        self.stall_us * clock_ghz * 1e3
    }

    /// The plan a fleet replica `index` runs: identical rates and
    /// magnitudes, but an independently mixed seed per replica so the
    /// devices of a multi-GPU fleet fault independently rather than in
    /// lockstep. Replica 0 keeps the plan verbatim — a fleet of one
    /// reproduces the original device's fault sequence bit-for-bit.
    /// An inert plan stays inert on every replica.
    pub fn for_replica(&self, index: u64) -> FaultPlan {
        if index == 0 {
            return self.clone();
        }
        FaultPlan {
            seed: splitmix64(self.seed ^ index.wrapping_mul(0xD1B54A32D192ED03)),
            ..self.clone()
        }
    }

    /// `true` when no fault can ever fire: the device is guaranteed to
    /// behave bit-identically to one without a plan.
    pub fn is_inert(&self) -> bool {
        self.launch_timeout_rate <= 0.0
            && self.transient_launch_rate <= 0.0
            && self.stall_rate <= 0.0
            && self.copy_corruption_rate <= 0.0
    }
}

/// Position in a plan's deterministic draw sequences. Because every
/// injection verdict is a pure function of `(seed, domain, counter)`,
/// capturing the counters and seeking a fresh device to them replays the
/// *remaining* fault sequence exactly — the primitive that makes
/// checkpoint/resume of a faulted stream bit-identical to the
/// uninterrupted run (see `fd-detector`'s `SessionCheckpoint`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCursor {
    /// Launch attempts drawn against the plan ([`crate::Gpu`] side).
    pub launch_attempts: u64,
    /// Host↔device copy verdicts drawn ([`crate::DeviceMemory`] side).
    pub copy_draws: u64,
}

/// Counts of faults actually injected by a device since plan attachment
/// (or the last [`crate::Gpu::set_fault_plan`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Launch attempts rejected with an injected timeout.
    pub launch_timeouts: u64,
    /// Launch attempts rejected with an injected transient failure.
    pub transient_launch_failures: u64,
    /// Launches that suffered an injected stream stall.
    pub stream_stalls: u64,
    /// Total launch attempts evaluated against the plan.
    pub launch_attempts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_domain_independent() {
        let a = fault_draw(7, FaultDomain::LaunchTimeout, 3);
        let b = fault_draw(7, FaultDomain::LaunchTimeout, 3);
        assert_eq!(a, b);
        let c = fault_draw(7, FaultDomain::LaunchTransient, 3);
        assert_ne!(a, c, "domains must draw independently");
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn draw_rate_approximates_probability() {
        let n = 20_000;
        let hits = (0..n)
            .filter(|&i| fault_draw(42, FaultDomain::CopyCorruption, i) < 0.05)
            .count();
        let rate = hits as f64 / n as f64;
        assert!((0.03..0.07).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn small_seeds_draw_independent_sequences() {
        // Regression: `seed ^ counter` used to make every small seed a
        // permutation of the same draw set, so a seed sweep at a low
        // rate either all fired or all stayed clean. Distinct seeds must
        // produce genuinely different verdict sets over a short run.
        let hits = |seed: u64| {
            (0..40u64)
                .filter(|&c| fault_draw(seed, FaultDomain::LaunchTimeout, c) < 0.02)
                .count()
        };
        let counts: Vec<usize> = (0..32).map(hits).collect();
        assert!(counts.iter().any(|&c| c == 0), "some seeds must stay clean at 2%/40");
        assert!(counts.iter().any(|&c| c > 0), "some seeds must fire at 2%/40");
    }

    #[test]
    fn inert_plan_detection() {
        assert!(FaultPlan::seeded(1).is_inert());
        assert!(!FaultPlan::seeded(1).with_transient_launch_failures(0.05).is_inert());
        assert!(!FaultPlan::seeded(1).with_stream_stalls(0.1, 300.0).is_inert());
    }

    #[test]
    fn replica_plans_preserve_rates_and_fault_independently() {
        let base = FaultPlan::seeded(9).with_transient_launch_failures(0.1);
        assert_eq!(base.for_replica(0), base, "replica 0 is the original device");
        let r1 = base.for_replica(1);
        let r2 = base.for_replica(2);
        assert_eq!(r1.transient_launch_rate, base.transient_launch_rate);
        assert_ne!(r1.seed, base.seed);
        assert_ne!(r1.seed, r2.seed);
        // Same replica index always derives the same seed.
        assert_eq!(base.for_replica(1), r1);
        // The derived seeds draw genuinely different verdict sequences.
        let verdicts = |p: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|c| {
                    fault_draw(p.seed, FaultDomain::LaunchTransient, c)
                        < p.transient_launch_rate
                })
                .collect()
        };
        assert_ne!(verdicts(&base), verdicts(&r1), "replicas must not fault in lockstep");
        assert_ne!(verdicts(&r1), verdicts(&r2));
        // Inertness survives replica derivation.
        assert!(FaultPlan::seeded(3).for_replica(5).is_inert());
    }
}
