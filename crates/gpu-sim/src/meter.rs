//! Work metering: how kernels report the SIMT work they perform.
//!
//! Every block executes against its own [`Meter`]; the accumulated
//! [`KernelCounters`] drive both the timing model and the profiler
//! statistics the paper reports (branch efficiency, DRAM throughput).
//!
//! Counters use interior mutability (`Cell`) so that metering calls take
//! `&self`; this lets kernels hold shared borrows of device memory while
//! metering.

use std::cell::Cell;

/// Aggregated work counters for a block, a launch or a kernel name.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Warp-wide ALU/control instructions issued.
    pub alu_ops: u64,
    /// Warp shared-memory transactions.
    pub shared_transactions: u64,
    /// Warp constant-cache broadcasts (one per warp read of one address).
    pub const_broadcasts: u64,
    /// Warp texture fetches.
    pub tex_fetches: u64,
    /// Bytes read from global memory.
    pub global_bytes_read: u64,
    /// Bytes written to global memory.
    pub global_bytes_written: u64,
    /// Bytes read from fusion-local intermediates: traffic a standalone
    /// launch would have paid as global reads, but which a fused chain
    /// keeps on-chip (see [`crate::fuse`]). Costed at shared-memory rate.
    pub fused_bytes_read: u64,
    /// Bytes written to fusion-local intermediates (see
    /// [`Self::fused_bytes_read`]).
    pub fused_bytes_written: u64,
    /// Block-wide barriers executed (per warp).
    pub barriers: u64,
    /// Conditional branches executed by warps.
    pub branches: u64,
    /// Branches on which the warp's active lanes disagreed (serialized
    /// paths). `divergent_branches <= branches`.
    pub divergent_branches: u64,
}

impl KernelCounters {
    /// Ratio of non-divergent branches to total branches, as reported by the
    /// CUDA profiler's `branch_efficiency` counter. Returns 1.0 when no
    /// branches were executed.
    pub fn branch_efficiency(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            debug_assert!(self.divergent_branches <= self.branches);
            1.0 - self.divergent_branches as f64 / self.branches as f64
        }
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &KernelCounters) {
        self.alu_ops += other.alu_ops;
        self.shared_transactions += other.shared_transactions;
        self.const_broadcasts += other.const_broadcasts;
        self.tex_fetches += other.tex_fetches;
        self.global_bytes_read += other.global_bytes_read;
        self.global_bytes_written += other.global_bytes_written;
        self.fused_bytes_read += other.fused_bytes_read;
        self.fused_bytes_written += other.fused_bytes_written;
        self.barriers += other.barriers;
        self.branches += other.branches;
        self.divergent_branches += other.divergent_branches;
    }

    /// Total global traffic in bytes. Fusion-local bytes are excluded:
    /// they never reach DRAM.
    pub fn global_bytes(&self) -> u64 {
        self.global_bytes_read + self.global_bytes_written
    }

    /// Total fusion-local traffic in bytes (DRAM round-trips avoided by
    /// kernel fusion).
    pub fn fused_bytes(&self) -> u64 {
        self.fused_bytes_read + self.fused_bytes_written
    }
}

/// Per-block work meter handed to kernels through [`crate::BlockCtx`].
#[derive(Debug, Default)]
pub struct Meter {
    alu_ops: Cell<u64>,
    shared_transactions: Cell<u64>,
    const_broadcasts: Cell<u64>,
    tex_fetches: Cell<u64>,
    global_bytes_read: Cell<u64>,
    global_bytes_written: Cell<u64>,
    fused_bytes_read: Cell<u64>,
    fused_bytes_written: Cell<u64>,
    barriers: Cell<u64>,
    branches: Cell<u64>,
    divergent_branches: Cell<u64>,
}

impl Meter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` warp-wide ALU/control instructions.
    #[inline]
    pub fn alu(&self, n: u64) {
        self.alu_ops.set(self.alu_ops.get() + n);
    }

    /// Record `n` warp shared-memory transactions.
    #[inline]
    pub fn shared(&self, n: u64) {
        self.shared_transactions.set(self.shared_transactions.get() + n);
    }

    /// Record `n` constant-memory broadcasts.
    #[inline]
    pub fn constant(&self, n: u64) {
        self.const_broadcasts.set(self.const_broadcasts.get() + n);
    }

    /// Record `n` texture fetches.
    #[inline]
    pub fn tex(&self, n: u64) {
        self.tex_fetches.set(self.tex_fetches.get() + n);
    }

    /// Record a global-memory read of `bytes` bytes.
    #[inline]
    pub fn global_load(&self, bytes: u64) {
        self.global_bytes_read.set(self.global_bytes_read.get() + bytes);
    }

    /// Record a global-memory write of `bytes` bytes.
    #[inline]
    pub fn global_store(&self, bytes: u64) {
        self.global_bytes_written.set(self.global_bytes_written.get() + bytes);
    }

    /// Record a read of `bytes` bytes from a fusion-local intermediate.
    #[inline]
    pub fn fused_load(&self, bytes: u64) {
        self.fused_bytes_read.set(self.fused_bytes_read.get() + bytes);
    }

    /// Record a write of `bytes` bytes to a fusion-local intermediate.
    #[inline]
    pub fn fused_store(&self, bytes: u64) {
        self.fused_bytes_written.set(self.fused_bytes_written.get() + bytes);
    }

    /// Record a block barrier executed by `warps` warps.
    #[inline]
    pub fn barrier(&self, warps: u64) {
        self.barriers.set(self.barriers.get() + warps);
    }

    /// Record a warp conditional branch; `divergent` when the active lanes
    /// split between both paths.
    #[inline]
    pub fn branch(&self, divergent: bool) {
        self.branches.set(self.branches.get() + 1);
        if divergent {
            self.divergent_branches.set(self.divergent_branches.get() + 1);
        }
    }

    /// Record `n` branches of which `divergent` diverged.
    #[inline]
    pub fn branches(&self, n: u64, divergent: u64) {
        debug_assert!(divergent <= n);
        self.branches.set(self.branches.get() + n);
        self.divergent_branches.set(self.divergent_branches.get() + divergent);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> KernelCounters {
        KernelCounters {
            alu_ops: self.alu_ops.get(),
            shared_transactions: self.shared_transactions.get(),
            const_broadcasts: self.const_broadcasts.get(),
            tex_fetches: self.tex_fetches.get(),
            global_bytes_read: self.global_bytes_read.get(),
            global_bytes_written: self.global_bytes_written.get(),
            fused_bytes_read: self.fused_bytes_read.get(),
            fused_bytes_written: self.fused_bytes_written.get(),
            barriers: self.barriers.get(),
            branches: self.branches.get(),
            divergent_branches: self.divergent_branches.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_all_classes() {
        let m = Meter::new();
        m.alu(3);
        m.shared(2);
        m.constant(1);
        m.tex(4);
        m.global_load(128);
        m.global_store(64);
        m.barrier(18);
        m.branch(true);
        m.branch(false);
        let c = m.snapshot();
        assert_eq!(c.alu_ops, 3);
        assert_eq!(c.shared_transactions, 2);
        assert_eq!(c.const_broadcasts, 1);
        assert_eq!(c.tex_fetches, 4);
        assert_eq!(c.global_bytes(), 192);
        assert_eq!(c.barriers, 18);
        assert_eq!(c.branches, 2);
        assert_eq!(c.divergent_branches, 1);
    }

    #[test]
    fn fused_bytes_stay_out_of_global_traffic() {
        let m = Meter::new();
        m.global_load(100);
        m.fused_load(64);
        m.fused_store(32);
        let c = m.snapshot();
        assert_eq!(c.global_bytes(), 100);
        assert_eq!(c.fused_bytes(), 96);
        let mut sum = KernelCounters::default();
        sum.add(&c);
        sum.add(&c);
        assert_eq!(sum.fused_bytes_read, 128);
        assert_eq!(sum.fused_bytes_written, 64);
    }

    #[test]
    fn branch_efficiency_matches_definition() {
        let mut c = KernelCounters::default();
        assert_eq!(c.branch_efficiency(), 1.0);
        c.branches = 1000;
        c.divergent_branches = 11;
        assert!((c.branch_efficiency() - 0.989).abs() < 1e-12);
    }

    #[test]
    fn counters_add_elementwise() {
        let mut a = KernelCounters {
            alu_ops: 1,
            branches: 2,
            divergent_branches: 1,
            ..KernelCounters::default()
        };
        let b = KernelCounters {
            alu_ops: 10,
            branches: 20,
            divergent_branches: 2,
            ..KernelCounters::default()
        };
        a.add(&b);
        assert_eq!(a.alu_ops, 11);
        assert_eq!(a.branches, 22);
        assert_eq!(a.divergent_branches, 3);
    }
}
