//! Dependency graph over pending launches.
//!
//! The asynchronous engine (see [`crate::Gpu`]) defers the functional
//! phase: launches are enqueued and only executed at a sync point. To
//! preserve the memory effects of serial issue order while letting
//! *independent* launches overlap on the worker pool, each enqueue
//! computes the set of earlier pending launches it must wait for:
//!
//! - **program order** — a launch depends on the previous launch in its
//!   stream, exactly like CUDA stream semantics;
//! - **event edges** — `stream_wait_event(s, e)` makes the next launch in
//!   `s` depend on the launch that recorded `e` (`cudaStreamWaitEvent`);
//! - **data hazards** — over the declared [`AccessSet`]s: RAW (a read
//!   depends on the last writer), WAR (a write depends on every reader
//!   since that writer) and WAW (a write depends on the last writer);
//! - **opaque barriers** — a launch that does not declare its accesses
//!   (the [`Kernel::access`](crate::Kernel::access) default) depends on
//!   every earlier pending launch and everything later depends on it.
//!
//! Every edge points from a lower `launch_idx` to a higher one, so the
//! graph is acyclic by construction, and any schedule that respects it
//! produces the same memory state as executing launches one at a time in
//! issue order: two launches touching a common buffer where at least one
//! writes are always ordered, and launches left unordered are
//! confluent — their effects commute.
//!
//! Host-side writes *between* launches (uploads into existing buffers,
//! constant-bank and texture mutation) are handled upstream: [`crate::Gpu`]
//! flushes the queue before any such mutation, so a tracker never sees
//! them. Freshly allocated buffers cannot alias pending work (their ids
//! did not exist at enqueue time), which keeps mid-queue allocation legal.

use std::collections::HashMap;

use crate::memory::AccessSet;
use crate::stream::{EventId, StreamId};

/// Per-buffer hazard state: who wrote it last, who has read it since.
#[derive(Debug, Default)]
struct BufState {
    last_writer: Option<usize>,
    readers_since: Vec<usize>,
}

/// Incremental dependency tracker. Indices are positions in the pending
/// queue (monotonically increasing between resets); [`DepTracker::reset`]
/// is called whenever the queue drains.
#[derive(Debug, Default)]
pub(crate) struct DepTracker {
    last_in_stream: HashMap<u32, usize>,
    buf_states: HashMap<usize, BufState>,
    last_opaque: Option<usize>,
    event_sources: HashMap<u32, usize>,
    next_idx: usize,
    /// Launches enqueued with an undeclared (opaque) access set since the
    /// last harvest. Each is a full-barrier fallback that forbids both
    /// overlap and fusion; [`crate::Gpu::synchronize`] hands the count to
    /// the profiler so silently-serializing kernels are visible.
    opaque_launches: u64,
}

impl DepTracker {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Forget all state; called when the pending queue drains (sync,
    /// cancel). Event sources are also dropped: a wait on an event whose
    /// recording launch has already executed is trivially satisfied.
    pub(crate) fn reset(&mut self) {
        self.last_in_stream.clear();
        self.buf_states.clear();
        self.last_opaque = None;
        self.event_sources.clear();
        self.next_idx = 0;
        self.opaque_launches = 0;
    }

    /// Return and clear the opaque-launch count accumulated since the
    /// last harvest (or reset).
    pub(crate) fn take_opaque_launches(&mut self) -> u64 {
        std::mem::take(&mut self.opaque_launches)
    }

    /// Record that `event` will be fired by the pending launch at `idx`
    /// (the last launch in its stream at `record_event` time).
    pub(crate) fn note_event_source(&mut self, event: EventId, idx: usize) {
        self.event_sources.insert(event.0, idx);
    }

    /// Register the next launch and return the indices of earlier pending
    /// launches it must wait for (sorted, deduplicated).
    pub(crate) fn on_enqueue(
        &mut self,
        stream: StreamId,
        access: &AccessSet,
        wait_events: &[EventId],
    ) -> Vec<usize> {
        let idx = self.next_idx;
        self.next_idx += 1;
        let mut deps: Vec<usize> = Vec::new();

        // Program order within the stream.
        if let Some(&prev) = self.last_in_stream.get(&stream.0) {
            deps.push(prev);
        }
        self.last_in_stream.insert(stream.0, idx);

        // Event edges. Unknown sources were recorded before the current
        // queue (already executed) or pre-fired on an idle stream; both
        // are satisfied by definition.
        for e in wait_events {
            if let Some(&src) = self.event_sources.get(&e.0) {
                deps.push(src);
            }
        }

        if access.is_opaque() {
            // Full barrier: order against every earlier pending launch.
            // It suffices to depend on all graph *sinks*, but correctness
            // is easier to see (and the queues are short) depending on
            // everything.
            deps.extend(0..idx);
            self.last_opaque = Some(idx);
            self.opaque_launches += 1;
            // An opaque launch may have written any buffer.
            for state in self.buf_states.values_mut() {
                state.last_writer = Some(idx);
                state.readers_since.clear();
            }
        } else {
            if let Some(op) = self.last_opaque {
                deps.push(op);
            }
            for &b in access.read_ids() {
                let state = self.buf_states.entry(b).or_default();
                if let Some(w) = state.last_writer {
                    deps.push(w); // RAW
                }
                state.readers_since.push(idx);
            }
            for &b in access.write_ids() {
                let state = self.buf_states.entry(b).or_default();
                if let Some(w) = state.last_writer {
                    deps.push(w); // WAW
                }
                // WAR: wait for every read since the last write. A launch
                // reading and writing the same buffer lists itself here.
                deps.extend(state.readers_since.iter().copied());
                state.last_writer = Some(idx);
                state.readers_since.clear();
            }
        }

        deps.retain(|&d| d != idx);
        deps.sort_unstable();
        deps.dedup();
        deps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(ids: &[usize]) -> AccessSet {
        let mut s = AccessSet::new();
        for &id in ids {
            s.read_id(id);
        }
        s
    }

    fn writes(ids: &[usize]) -> AccessSet {
        let mut s = AccessSet::new();
        for &id in ids {
            s.write_id(id);
        }
        s
    }

    fn opaque() -> AccessSet {
        let mut s = AccessSet::new();
        s.mark_opaque();
        s
    }

    const S0: StreamId = StreamId(0);
    const S1: StreamId = StreamId(1);
    const S2: StreamId = StreamId(2);

    #[test]
    fn stream_program_order_is_preserved() {
        let mut t = DepTracker::new();
        assert!(t.on_enqueue(S0, &writes(&[1]), &[]).is_empty());
        assert!(t.on_enqueue(S1, &writes(&[2]), &[]).is_empty());
        assert_eq!(t.on_enqueue(S0, &writes(&[3]), &[]), vec![0]);
        assert_eq!(t.on_enqueue(S1, &writes(&[4]), &[]), vec![1]);
    }

    #[test]
    fn raw_war_waw_hazards_create_edges() {
        let mut t = DepTracker::new();
        assert!(t.on_enqueue(S0, &writes(&[7]), &[]).is_empty()); // 0: writes 7
        assert_eq!(t.on_enqueue(S1, &reads(&[7]), &[]), vec![0]); // 1: RAW on 7
        assert_eq!(t.on_enqueue(S2, &writes(&[7]), &[]), vec![0, 1]); // 2: WAW+WAR
        // A reader after the new writer depends on the new writer only.
        let mut t2 = DepTracker::new();
        t2.on_enqueue(S0, &writes(&[7]), &[]);
        t2.on_enqueue(S1, &writes(&[7]), &[]);
        assert_eq!(t2.on_enqueue(S2, &reads(&[7]), &[]), vec![1]);
    }

    #[test]
    fn read_write_same_buffer_serializes_against_itself_only_once() {
        let mut t = DepTracker::new();
        let mut rw = AccessSet::new();
        rw.read_id(9);
        rw.write_id(9);
        assert!(t.on_enqueue(S0, &rw.clone(), &[]).is_empty());
        // Next read-modify-write of the same buffer depends on the
        // previous one exactly once (RAW + WAR dedup to one edge).
        assert_eq!(t.on_enqueue(S1, &rw, &[]), vec![0]);
    }

    #[test]
    fn independent_buffers_stay_unordered() {
        let mut t = DepTracker::new();
        t.on_enqueue(S0, &writes(&[1]), &[]);
        assert!(t.on_enqueue(S1, &writes(&[2]), &[]).is_empty());
        assert!(t.on_enqueue(S2, &reads(&[4]).tap_write(3), &[]).is_empty());
        // …but reading a pending writer's buffer does order.
        assert_eq!(t.on_enqueue(S0, &reads(&[2]), &[]), vec![0, 1]);
    }

    #[test]
    fn opaque_launch_is_a_full_barrier() {
        let mut t = DepTracker::new();
        t.on_enqueue(S0, &writes(&[1]), &[]);
        t.on_enqueue(S1, &writes(&[2]), &[]);
        assert_eq!(t.on_enqueue(S2, &opaque(), &[]), vec![0, 1]);
        // Later launches order behind the barrier even on fresh buffers…
        assert_eq!(t.on_enqueue(S0, &writes(&[9]), &[]), vec![0, 2]);
        // …and known buffers treat it as their last writer.
        assert_eq!(t.on_enqueue(S1, &reads(&[1]), &[]), vec![1, 2]);
    }

    #[test]
    fn event_edges_cross_streams() {
        let mut t = DepTracker::new();
        t.on_enqueue(S0, &writes(&[1]), &[]);
        t.note_event_source(EventId(5), 0);
        assert_eq!(t.on_enqueue(S1, &writes(&[2]), &[EventId(5)]), vec![0]);
        // Waits on unknown (pre-fired / pre-queue) events add no edges.
        assert!(t.on_enqueue(S2, &writes(&[3]), &[EventId(99)]).is_empty());
    }

    #[test]
    fn reset_forgets_history() {
        let mut t = DepTracker::new();
        t.on_enqueue(S0, &writes(&[1]), &[]);
        t.reset();
        assert!(t.on_enqueue(S0, &reads(&[1]), &[]).is_empty());
    }

    #[test]
    fn opaque_launches_are_counted_and_taken() {
        let mut t = DepTracker::new();
        t.on_enqueue(S0, &writes(&[1]), &[]);
        t.on_enqueue(S1, &opaque(), &[]);
        t.on_enqueue(S2, &opaque(), &[]);
        assert_eq!(t.take_opaque_launches(), 2);
        assert_eq!(t.take_opaque_launches(), 0, "harvest clears the count");
        t.on_enqueue(S0, &opaque(), &[]);
        t.reset();
        assert_eq!(t.take_opaque_launches(), 0, "reset drops unharvested counts");
    }

    impl AccessSet {
        fn tap_write(mut self, id: usize) -> Self {
            self.write_id(id);
            self
        }
    }
}
