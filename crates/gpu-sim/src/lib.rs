//! # fd-gpu — a deterministic SIMT GPU simulator
//!
//! This crate stands in for the CUDA device (an NVIDIA GTX470, sm_20) used by
//! Oro et al., *Accelerating Boosting-based Face Detection on GPUs* (ICPP
//! 2012). The paper's central systems claim is about **scheduling**: cascade
//! evaluation kernels for small pyramid scales leave most streaming
//! multiprocessors (SMs) idle when executed serially, and concurrent kernel
//! execution across CUDA streams restores occupancy and roughly doubles
//! end-to-end throughput. Reproducing that claim does not require
//! cycle-accurate microarchitecture — it requires a device model that captures
//!
//! * the grid/block/thread execution hierarchy and its mapping onto a fixed
//!   number of SMs with bounded per-SM residency (blocks, warps, threads,
//!   shared memory);
//! * warp-granular SIMT execution, so that control-flow divergence and branch
//!   efficiency are observable;
//! * the memory spaces with distinct cost behaviour (global DRAM, per-block
//!   shared memory, broadcast constant memory, interpolating texture memory);
//! * CUDA streams with in-order execution per stream, and a device scheduler
//!   that either serializes kernels ([`ExecMode::Serial`]) or backfills idle
//!   SMs with blocks from other streams ([`ExecMode::Concurrent`]);
//! * profiling: per-kernel timestamps (execution traces), instruction/
//!   transaction counters, branch efficiency and DRAM throughput.
//!
//! ## Execution model
//!
//! Simulation is two-phase:
//!
//! 1. **Functional phase** — every thread block of a launch is executed
//!    against the device memory arena. Kernels implement
//!    [`Kernel::run_block`] and *meter* the work they perform through the
//!    per-block [`Meter`]: warp-wide ALU instructions, shared/constant/
//!    texture/global transactions, barriers and (divergent) branches.
//!    Under the default [`HostExec::Async`] engine a launch call only
//!    *enqueues*: the kernel joins a dependency graph (per-stream program
//!    order, event edges, and read/write hazards over the buffers its
//!    [`Kernel::access`] declares) and executes at the next sync point
//!    ([`Gpu::synchronize`], [`Gpu::flush`], [`Gpu::download`]), where a
//!    persistent worker pool overlaps block-chunks of *independent*
//!    launches across host threads — the host-side analogue of the SM
//!    backfilling the timing model reproduces. Results are bit-exact and
//!    independent of the engine, the thread count and the timing mode;
//!    `FD_SIM_HOST_EXEC=sync` selects the legacy launch-time execution.
//! 2. **Timing phase** — each launch yields per-block cycle costs. At
//!    synchronization points a discrete-event scheduler places blocks onto
//!    SMs subject to residency limits and stream ordering, producing kernel
//!    start/end timestamps and the total elapsed device time.
//!
//! The cost model ([`CostModel`]) is documented and deliberately simple; the
//! quantities the reproduction depends on (SM idleness under serial small
//! launches, warp divergence, constant-memory broadcast amortization) are
//! first-order effects of the model, not tuned constants.
//!
//! ## Quick example
//!
//! ```
//! use fd_gpu::{Gpu, DeviceSpec, ExecMode, Kernel, LaunchConfig, BlockCtx, DevBuf};
//!
//! struct Saxpy { a: f32, x: DevBuf<f32>, y: DevBuf<f32>, n: usize }
//! impl Kernel for Saxpy {
//!     fn name(&self) -> &'static str { "saxpy" }
//!     fn run_block(&self, ctx: &mut BlockCtx<'_>) {
//!         let base = ctx.block_idx.x as usize * ctx.block_dim.x as usize;
//!         let end = (base + ctx.block_dim.x as usize).min(self.n);
//!         {
//!             let x = ctx.mem.read(self.x);
//!             let mut y = ctx.mem.write(self.y);
//!             for i in base..end {
//!                 y[i] += self.a * x[i];
//!             }
//!         }
//!         let warps = ctx.warps_in_block();
//!         ctx.meter.alu(2 * warps); // one fused multiply-add + bound check per warp
//!         ctx.meter.global_load(((end - base) * 8) as u64);
//!         ctx.meter.global_store(((end - base) * 4) as u64);
//!     }
//! }
//!
//! let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
//! let x = gpu.mem.upload(&vec![1.0f32; 1000]);
//! let y = gpu.mem.upload(&vec![2.0f32; 1000]);
//! let s = gpu.create_stream();
//! gpu.launch(Saxpy { a: 3.0, x, y, n: 1000 },
//!            LaunchConfig::linear(1000, 256), s).unwrap();
//! let timeline = gpu.synchronize();
//! assert_eq!(gpu.mem.read(y)[0], 5.0);
//! assert!(timeline.span_us() > 0.0);
//! ```

pub mod batch;
pub mod cost;
pub mod exec;
pub mod device;
pub mod dim;
pub mod fault;
pub mod fuse;
pub mod kernel;
pub mod memory;
pub mod meter;
pub mod pcie;
pub mod profiler;
pub mod sched;
pub mod stream;
pub mod tune;

mod gpu;
mod graph;
mod pool;

pub use batch::BatchedKernel;
pub use cost::CostModel;
pub use device::DeviceSpec;
pub use dim::Dim3;
pub use exec::THREADS_ENV_VAR;
pub use fault::{FaultCursor, FaultPlan, FaultStats};
pub use fuse::{
    env_fusion_default, FusedChain, FusedKernel, FusionError, FusionTraits, FUSION_ENV_VAR,
};
pub use gpu::{Gpu, HostExec, LaunchError, HOST_EXEC_ENV_VAR, MAX_FUNCTIONAL_BLOCKS};
pub use kernel::{BlockCtx, Kernel, LaunchConfig};
pub use memory::{
    AccessSet, ConstPtr, CopyFault, CopyFaultConfig, DevBuf, DevRead, DevWrite, DeviceMemory,
    MemoryError, TexId, Texture2D,
};
pub use meter::{KernelCounters, Meter};
pub use pcie::PcieModel;
pub use profiler::{HostSpan, KernelProfile, Profiler, TraceEvent};
pub use sched::{
    launch_occupancy, BlockCost, ExecMode, LaunchOccupancy, LaunchRecord, OccupancyLimit, Timeline,
};
pub use stream::{EventId, StreamId};
pub use tune::{
    env_autotune_default, score_shape, GeomClass, ShapeCache, ShapeCandidate, ShapeFamily,
    AUTOTUNE_ENV_VAR,
};
