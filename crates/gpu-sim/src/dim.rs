//! CUDA-style three-dimensional index types.

/// A three-component extent or index, mirroring CUDA's `dim3`.
///
/// Components default to 1 when constructed through the convenience
/// constructors, matching CUDA semantics where unspecified dimensions are 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// One-dimensional extent `(x, 1, 1)`.
    pub const fn d1(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// Two-dimensional extent `(x, y, 1)`.
    pub const fn d2(x: u32, y: u32) -> Self {
        Self { x, y, z: 1 }
    }

    /// Three-dimensional extent.
    pub const fn d3(x: u32, y: u32, z: u32) -> Self {
        Self { x, y, z }
    }

    /// Total number of elements covered by this extent.
    pub const fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Linearizes an index within an extent, x-major (CUDA block order).
    pub const fn linear_index(&self, idx: Dim3) -> u64 {
        (idx.z as u64 * self.y as u64 + idx.y as u64) * self.x as u64 + idx.x as u64
    }

    /// Inverse of [`Dim3::linear_index`].
    pub const fn from_linear(&self, lin: u64) -> Dim3 {
        let x = (lin % self.x as u64) as u32;
        let rest = lin / self.x as u64;
        let y = (rest % self.y as u64) as u32;
        let z = (rest / self.y as u64) as u32;
        Dim3 { x, y, z }
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::d1(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::d2(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::d3(x, y, z)
    }
}

/// Ceiling division helper used to size grids from problem extents.
pub const fn div_ceil(n: u32, d: u32) -> u32 {
    n.div_ceil(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_multiplies_components() {
        assert_eq!(Dim3::d3(2, 3, 4).count(), 24);
        assert_eq!(Dim3::d1(7).count(), 7);
    }

    #[test]
    fn linear_roundtrip_covers_extent() {
        let ext = Dim3::d3(3, 4, 2);
        for lin in 0..ext.count() {
            let idx = ext.from_linear(lin);
            assert!(idx.x < ext.x && idx.y < ext.y && idx.z < ext.z);
            assert_eq!(ext.linear_index(idx), lin);
        }
    }

    #[test]
    fn linear_index_is_x_major() {
        let ext = Dim3::d2(10, 10);
        // Indices must use d3: d2 is an *extent* constructor and sets z = 1.
        assert_eq!(ext.linear_index(Dim3::d3(1, 0, 0)), 1);
        assert_eq!(ext.linear_index(Dim3::d3(0, 1, 0)), 10);
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(9, 3), 3);
        assert_eq!(div_ceil(1, 256), 1);
    }
}
