//! Occupancy-driven launch-shape autotuning.
//!
//! Fixed, hand-picked block shapes leave residency on the table: the
//! cascade's 24x24 blocks are 18 warps each, so at most 2 fit under the
//! 48-warp SM cap (75 % theoretical occupancy), and a small pyramid
//! level's handful of fat blocks cannot even cover all 14 SMs. Many
//! kernels are *shape-polymorphic*, though — the same per-element work
//! can be tiled into narrower blocks without changing any output byte.
//!
//! A kernel advertises the functionally-equivalent tilings it supports as
//! a [`ShapeFamily`] of [`ShapeCandidate`]s ([`Kernel::shape_family`];
//! `shapes[0]` is the kernel's built-in default). The tuner scores every
//! legal candidate against the scheduler's theoretical-occupancy model
//! ([`launch_occupancy`]) combined with the [`CostModel`]'s block-time
//! formula, and caches the winner per `(kernel, geometry class)` in a
//! [`ShapeCache`]. Scoring is a pure function of the device spec, the
//! cost model and the candidate — no measurement, no randomness — so the
//! cache is deterministic and the functional results are byte-identical
//! across shapes by construction (only timing may move).
//!
//! The knob is [`AUTOTUNE_ENV_VAR`] (`FD_SIM_AUTOTUNE=1`), read once per
//! process like the other `FD_SIM_*` switches; off means every consumer
//! keeps its built-in shape and the pipeline is bit-identical to the
//! pre-autotune behaviour, timing included.
//!
//! [`Kernel::shape_family`]: crate::Kernel::shape_family

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::cost::CostModel;
use crate::device::DeviceSpec;
use crate::dim::Dim3;
use crate::sched::launch_occupancy;

/// Environment variable enabling launch-shape autotuning by default in
/// consumers that expose an autotune knob (`1`/`true`/`on` to enable).
pub const AUTOTUNE_ENV_VAR: &str = "FD_SIM_AUTOTUNE";

/// Resolve the process-wide autotune default from [`AUTOTUNE_ENV_VAR`].
/// Read once per process (`OnceLock`), like the other `FD_SIM_*` knobs.
/// Unset or unrecognized values mean *off*: fixed shapes stay the
/// baseline.
pub fn env_autotune_default() -> bool {
    static ENV_AUTOTUNE: OnceLock<bool> = OnceLock::new();
    *ENV_AUTOTUNE.get_or_init(|| {
        std::env::var(AUTOTUNE_ENV_VAR)
            .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on"))
            .unwrap_or(false)
    })
}

/// The geometry equivalence class a tuned shape is valid for: the logical
/// element domain a launch covers. Two launches of the same kernel over
/// the same domain get the same shape, so batches formed per geometry
/// class (the serving layer's batching key) share one tuned shape across
/// every part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GeomClass {
    pub width: u32,
    pub height: u32,
}

impl GeomClass {
    pub fn of(width: usize, height: usize) -> Self {
        Self { width: width as u32, height: height as u32 }
    }
}

/// One functionally-equivalent tiling of a kernel over a fixed geometry.
/// The kernel that declares a candidate guarantees that launching with
/// `grid`/`block`/`shared_mem_bytes` produces byte-identical outputs to
/// its default shape; only the per-shape cost hints and the resulting
/// timing differ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeCandidate {
    /// Grid extent covering the declared geometry at this block shape.
    pub grid: Dim3,
    /// Block extent.
    pub block: Dim3,
    /// Static shared memory per block, bytes.
    pub shared_mem_bytes: u32,
    /// Declared per-thread register footprint at this shape.
    pub registers_per_thread: u32,
    /// Estimated issue-pipeline cycles per thread (shape-dependent work
    /// hint; only relative magnitudes across the family matter).
    pub issue_per_thread: f64,
    /// Estimated global-memory bytes per thread. This is where halo
    /// amplification shows up: narrower tiles re-read proportionally more
    /// apron per covered element.
    pub mem_bytes_per_thread: f64,
}

impl ShapeCandidate {
    pub fn threads_per_block(&self) -> u32 {
        self.block.count() as u32
    }

    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.threads_per_block().div_ceil(warp_size.max(1))
    }
}

/// The set of shapes one kernel supports for one geometry class.
/// `shapes[0]` must be the kernel's built-in default: it is the fallback
/// when no candidate is legal on the device, and ties in score resolve
/// toward earlier entries, so an autotuned run can never pick a shape the
/// model scores worse than the default.
#[derive(Debug, Clone)]
pub struct ShapeFamily {
    /// Kernel name the family belongs to (cache key component).
    pub kernel: &'static str,
    pub shapes: Vec<ShapeCandidate>,
}

/// Whether a candidate can launch on `spec` at all: block-level limits
/// plus a non-zero residency bound.
fn legal(spec: &DeviceSpec, c: &ShapeCandidate) -> bool {
    let tpb = c.threads_per_block();
    tpb > 0
        && tpb <= spec.max_threads_per_block
        && c.shared_mem_bytes <= spec.max_shared_mem_per_block
        && launch_occupancy(
            spec,
            tpb,
            c.warps_per_block(spec.warp_size),
            c.shared_mem_bytes,
            c.registers_per_thread.min(spec.max_registers_per_thread),
        )
        .blocks_per_sm
            > 0
}

/// Score a candidate: estimated cycles for the whole grid, lower is
/// better. The model is the scheduler's own arithmetic applied to the
/// steady state the candidate would reach:
///
/// * theoretical residency from [`launch_occupancy`] — the {blocks,
///   warps, threads, smem, registers} bound — capped by how many blocks
///   the grid can actually put on each SM (small grids cannot fill the
///   device no matter the budget, the paper's Fig. 6 problem);
/// * per-block time from [`CostModel::block_cycles`] at that residency:
///   issue contention, latency hiding and the SM's DRAM-share floor all
///   react to the shape via the candidate's cost hints;
/// * whole-grid time as full waves of resident blocks, which is where
///   fat blocks lose on small grids (wave quantization) and where
///   partial-tile waste penalizes shapes that tile the domain poorly.
pub fn score_shape(spec: &DeviceSpec, cost: &CostModel, c: &ShapeCandidate) -> f64 {
    let tpb = c.threads_per_block();
    let wpb = c.warps_per_block(spec.warp_size);
    let occ = launch_occupancy(
        spec,
        tpb,
        wpb,
        c.shared_mem_bytes,
        c.registers_per_thread.min(spec.max_registers_per_thread),
    );
    let total_blocks = c.grid.count().max(1);
    let sm_count = spec.sm_count.max(1) as u64;
    let per_sm = total_blocks.div_ceil(sm_count).min(u32::MAX as u64) as u32;
    let resident_blocks = occ.blocks_per_sm.min(per_sm).max(1);
    let resident_warps = resident_blocks * wpb;

    let issue = c.issue_per_thread * tpb as f64;
    let bytes = c.mem_bytes_per_thread * tpb as f64;
    let transactions = (bytes / cost.bytes_per_transaction).ceil();
    let latency = transactions * cost.global_latency_cycles;
    let bw_per_sm = spec.dram_bytes_per_cycle() / spec.sm_count.max(1) as f64;
    let bw_cycles = if bw_per_sm > 0.0 { bytes * resident_blocks as f64 / bw_per_sm } else { 0.0 };

    let block_cycles = cost.block_cycles(issue, latency, bw_cycles, resident_warps, wpb);
    let waves = total_blocks.div_ceil(sm_count * resident_blocks as u64);
    waves as f64 * block_cycles
}

/// Deterministic per-device cache of tuned shapes, keyed by
/// `(kernel name, geometry class)`. The first lookup for a key scores the
/// family and memoizes the winning index; later lookups (further frames,
/// batch parts, repeated levels) are a map probe.
#[derive(Debug, Clone)]
pub struct ShapeCache {
    spec: DeviceSpec,
    cost: CostModel,
    chosen: BTreeMap<(&'static str, GeomClass), usize>,
}

impl ShapeCache {
    pub fn new(spec: DeviceSpec, cost: CostModel) -> Self {
        Self { spec, cost, chosen: BTreeMap::new() }
    }

    /// The winning candidate for `class`, tuning and caching on first
    /// use. Falls back to `family.shapes[0]` (the declared default) when
    /// no candidate is legal for the device.
    pub fn choose(&mut self, class: GeomClass, family: &ShapeFamily) -> ShapeCandidate {
        assert!(!family.shapes.is_empty(), "a shape family needs at least one candidate");
        let idx = *self.chosen.entry((family.kernel, class)).or_insert_with(|| {
            let mut best = 0usize;
            let mut best_score = f64::INFINITY;
            for (i, c) in family.shapes.iter().enumerate() {
                if !legal(&self.spec, c) {
                    continue;
                }
                let s = score_shape(&self.spec, &self.cost, c);
                // Strict improvement only: ties keep the earliest (the
                // default first, then declaration order) so the choice is
                // stable under reordering-free family edits.
                if s < best_score {
                    best = i;
                    best_score = s;
                }
            }
            best
        });
        family.shapes[idx.min(family.shapes.len() - 1)]
    }

    /// The cached winner index for a key, if that key was tuned already.
    pub fn cached(&self, kernel: &'static str, class: GeomClass) -> Option<usize> {
        self.chosen.get(&(kernel, class)).copied()
    }

    /// Number of distinct `(kernel, geometry)` classes tuned so far.
    pub fn len(&self) -> usize {
        self.chosen.len()
    }

    pub fn is_empty(&self) -> bool {
        self.chosen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(
        grid: (u32, u32),
        block: (u32, u32),
        smem: u32,
        regs: u32,
        mem_per_thread: f64,
    ) -> ShapeCandidate {
        ShapeCandidate {
            grid: Dim3::d2(grid.0, grid.1),
            block: Dim3::d2(block.0, block.1),
            shared_mem_bytes: smem,
            registers_per_thread: regs,
            issue_per_thread: 10.0,
            mem_bytes_per_thread: mem_per_thread,
        }
    }

    fn family(shapes: Vec<ShapeCandidate>) -> ShapeFamily {
        ShapeFamily { kernel: "k", shapes }
    }

    #[test]
    fn env_default_is_off() {
        assert!(!env_autotune_default() || std::env::var(AUTOTUNE_ENV_VAR).is_ok());
    }

    #[test]
    fn narrow_blocks_win_on_sm_starved_grids() {
        // A 4-block grid of 18-warp blocks leaves 10 of 14 SMs idle; the
        // same domain as 12 narrower blocks covers more SMs and finishes
        // a wave sooner. Equal cost hints isolate the occupancy effect.
        let spec = DeviceSpec::gtx470();
        let cost = CostModel::default();
        let fat = cand((2, 2), (24, 24), 9216, 22, 16.0);
        let narrow = cand((2, 6), (24, 8), 6144, 22, 16.0);
        assert!(
            score_shape(&spec, &cost, &narrow) < score_shape(&spec, &cost, &fat),
            "narrow {} vs fat {}",
            score_shape(&spec, &cost, &narrow),
            score_shape(&spec, &cost, &fat)
        );
        let mut cache = ShapeCache::new(spec, cost);
        let won = cache.choose(GeomClass::of(48, 48), &family(vec![fat, narrow]));
        assert_eq!(won, narrow);
    }

    #[test]
    fn halo_amplification_can_keep_the_fat_tile() {
        // On a grid big enough to saturate the device either way, a
        // narrow tile that doubles per-thread DRAM traffic loses to the
        // default: the bandwidth floor prices the extra apron reads.
        let spec = DeviceSpec::gtx470();
        let cost = CostModel::default();
        let fat = cand((40, 40), (24, 24), 9216, 22, 160.0);
        let narrow = cand((40, 120), (24, 8), 6144, 22, 320.0);
        let mut cache = ShapeCache::new(spec, cost);
        let won = cache.choose(GeomClass::of(960, 960), &family(vec![fat, narrow]));
        assert_eq!(won, fat);
    }

    #[test]
    fn illegal_candidates_are_skipped_and_default_is_the_fallback() {
        let spec = DeviceSpec::gtx470();
        let too_many_threads = cand((1, 1), (64, 32), 0, 16, 4.0); // 2048 > 1024
        let too_much_smem = cand((1, 1), (16, 16), 1 << 20, 16, 4.0);
        let fine = cand((1, 1), (16, 16), 0, 16, 4.0);
        let mut cache = ShapeCache::new(spec.clone(), CostModel::default());
        let won = cache.choose(
            GeomClass::of(16, 16),
            &family(vec![too_many_threads, too_much_smem, fine]),
        );
        assert_eq!(won, fine);
        // Nothing legal: the declared default comes back untouched.
        let mut cache = ShapeCache::new(spec, CostModel::default());
        let won = cache.choose(GeomClass::of(9, 9), &family(vec![too_much_smem]));
        assert_eq!(won, too_much_smem);
    }

    #[test]
    fn cache_is_deterministic_and_memoized() {
        let spec = DeviceSpec::gtx470();
        let fat = cand((2, 2), (24, 24), 9216, 22, 16.0);
        let narrow = cand((2, 6), (24, 8), 6144, 22, 16.0);
        let fam = family(vec![fat, narrow]);
        let mut a = ShapeCache::new(spec.clone(), CostModel::default());
        let mut b = ShapeCache::new(spec, CostModel::default());
        let class = GeomClass::of(48, 48);
        assert_eq!(a.choose(class, &fam), b.choose(class, &fam));
        assert_eq!(a.cached("k", class), Some(1));
        assert_eq!(a.len(), 1);
        // Second lookup hits the memo (same result, no growth).
        assert_eq!(a.choose(class, &fam), narrow);
        assert_eq!(a.len(), 1);
        assert_eq!(a.cached("other", class), None);
    }

    #[test]
    fn ties_keep_the_declared_default() {
        let spec = DeviceSpec::gtx470();
        let a = cand((4, 4), (16, 16), 0, 16, 4.0);
        // Identical geometry and hints, different declaration order.
        let mut cache = ShapeCache::new(spec, CostModel::default());
        let won = cache.choose(GeomClass::of(64, 64), &family(vec![a, a]));
        assert_eq!(cache.cached("k", GeomClass::of(64, 64)), Some(0));
        assert_eq!(won, a);
    }
}
