//! Device memory spaces: global buffers, constant memory and textures.
//!
//! Global memory is a typed arena. Buffers are addressed through copyable
//! [`DevBuf<T>`] handles so kernels can capture them without borrowing the
//! device.
//!
//! # Concurrency and the disjoint-write contract
//!
//! The functional phase executes thread blocks in parallel across host
//! threads, so the arena is shared (`DeviceMemory` is `Sync`) and buffer
//! views are handed out through [`DevRead`]/[`DevWrite`] guards backed by
//! an `UnsafeCell` per slot. The CUDA memory model is the contract:
//!
//! - any number of blocks may *read* a buffer concurrently;
//! - any number of blocks may *write* a buffer concurrently **only if
//!   they write disjoint elements** (the standard CUDA requirement for a
//!   correct kernel — e.g. every block of the cascade kernel writes its
//!   own output tile);
//! - a buffer must never be read and written in the same launch.
//!
//! The guards enforce the checkable part of this at buffer granularity
//! with atomic reader/writer counts: taking a read view while a write
//! view exists (or vice versa) panics, which corresponds to a data race
//! under the CUDA memory model. Element-level overlap between concurrent
//! writers is *not* detectable at this granularity and remains the
//! kernel author's obligation, exactly as on real hardware. Within one
//! launch the simulator never reorders a kernel's loads/stores, so a
//! contract-respecting kernel produces bit-identical results at any host
//! thread count.
//!
//! Constant memory is a single 64 KiB bank of 32-bit words with bump
//! allocation, matching how the detector stages its compressed Haar feature
//! records before launching evaluation kernels. Textures are read-only 2D
//! single-channel surfaces with clamp addressing and optional bilinear
//! filtering, the `tex2D` path used by the scaling kernel.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::fault::{fault_bits, fault_draw, FaultDomain};

thread_local! {
    /// Set while this thread is executing kernel blocks on behalf of the
    /// asynchronous drain (see [`KernelScope`]); exempts it from the
    /// deferred-launch host-access guard.
    static IN_KERNEL_SCOPE: Cell<bool> = const { Cell::new(false) };
}

/// RAII marker entered by the execution engine around kernel block
/// execution. While launches are deferred ([`DeviceMemory::set_deferred_launches`]),
/// buffer access from threads *outside* such a scope panics — it would
/// observe pre-launch memory state that serial issue order never exposed.
pub(crate) struct KernelScope {
    prev: bool,
}

impl KernelScope {
    pub(crate) fn enter() -> Self {
        let prev = IN_KERNEL_SCOPE.with(|f| f.replace(true));
        Self { prev }
    }
}

impl Drop for KernelScope {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_KERNEL_SCOPE.with(|f| f.set(prev));
    }
}

/// Typed errors for host-visible memory operations that previously
/// aborted on `assert!` (constant-bank overflow, malformed textures,
/// copy-size mismatches on user-supplied geometry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// Constant-memory bank overflow (`cudaMemcpyToSymbol` past 64 KiB).
    ConstOverflow { used_words: usize, requested_words: usize, capacity_words: usize },
    /// Texture dimensions and data length disagree, or an extent is zero.
    BadTexture { width: usize, height: usize, data_len: usize },
    /// Host↔device copy with mismatched element counts.
    CopyLengthMismatch { buf_len: usize, host_len: usize },
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::ConstOverflow { used_words, requested_words, capacity_words } => write!(
                f,
                "constant memory overflow: {used_words} + {requested_words} words > {capacity_words}"
            ),
            MemoryError::BadTexture { width, height, data_len } => write!(
                f,
                "texture {width}x{height} incompatible with {data_len} data elements"
            ),
            MemoryError::CopyLengthMismatch { buf_len, host_len } => {
                write!(f, "copy length mismatch: buffer holds {buf_len}, host side {host_len}")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// Scalar element types storable in device buffers.
pub trait DeviceScalar: Copy + Default + Send + Sync + 'static {}
impl DeviceScalar for u8 {}
impl DeviceScalar for u16 {}
impl DeviceScalar for u32 {}
impl DeviceScalar for u64 {}
impl DeviceScalar for i8 {}
impl DeviceScalar for i16 {}
impl DeviceScalar for i32 {}
impl DeviceScalar for i64 {}
impl DeviceScalar for f32 {}
impl DeviceScalar for f64 {}

/// Typed handle to a global-memory buffer. Cheap to copy into kernels.
pub struct DevBuf<T> {
    pub(crate) id: usize,
    pub(crate) len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for DevBuf<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DevBuf<T> {}

impl<T> std::fmt::Debug for DevBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DevBuf#{}[len={}]", self.id, self.len)
    }
}

impl<T> DevBuf<T> {
    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The arena slot index, for correlating [`CopyFault`] records with
    /// the buffers they poisoned.
    pub fn raw_id(&self) -> usize {
        self.id
    }
}

/// The device buffers a kernel launch reads and writes, declared through
/// [`crate::Kernel::access`]. The asynchronous execution engine builds
/// read/write hazard edges from these sets: a reader is ordered after the
/// buffer's last writer, a writer after the last writer *and* every
/// reader since. A kernel that does not (or cannot) declare its accesses
/// is **opaque** and acts as a full barrier — it executes after every
/// earlier queued launch and before every later one, which is always
/// safe, merely slow.
///
/// A declared set is a contract: it must cover *every* buffer the kernel
/// touches via [`BlockCtx::mem`](crate::BlockCtx), exactly as a CUDA
/// kernel's stream placement must reflect its true data flow. An
/// under-declared set can let two hazardous launches overlap, which the
/// arena's race checker reports only when the interleaving actually
/// collides.
#[derive(Debug, Clone, Default)]
pub struct AccessSet {
    reads: Vec<usize>,
    writes: Vec<usize>,
    opaque: bool,
}

impl AccessSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare that the kernel reads `buf`.
    pub fn reads<T: DeviceScalar>(&mut self, buf: DevBuf<T>) -> &mut Self {
        self.reads.push(buf.id);
        self
    }

    /// Declare that the kernel writes `buf` (fully or partially).
    pub fn writes<T: DeviceScalar>(&mut self, buf: DevBuf<T>) -> &mut Self {
        self.writes.push(buf.id);
        self
    }

    /// Declare the access set unknown: the launch orders against
    /// everything (the conservative default of [`crate::Kernel::access`]).
    pub fn mark_opaque(&mut self) -> &mut Self {
        self.opaque = true;
        self
    }

    /// Whether the kernel declined to enumerate its buffers.
    pub fn is_opaque(&self) -> bool {
        self.opaque
    }

    /// Arena slot ids of declared reads.
    pub(crate) fn read_ids(&self) -> &[usize] {
        &self.reads
    }

    /// Arena slot ids of declared writes.
    pub(crate) fn write_ids(&self) -> &[usize] {
        &self.writes
    }

    /// Untyped [`AccessSet::reads`], for tests that fabricate hazard
    /// graphs without allocating real buffers.
    #[cfg(test)]
    pub(crate) fn read_id(&mut self, id: usize) -> &mut Self {
        self.reads.push(id);
        self
    }

    /// Untyped [`AccessSet::writes`].
    #[cfg(test)]
    pub(crate) fn write_id(&mut self, id: usize) -> &mut Self {
        self.writes.push(id);
        self
    }

    /// Fold `other` into `self` (a batched launch is the union of its
    /// parts: opaque if any part is).
    pub(crate) fn union(&mut self, other: &AccessSet) {
        self.reads.extend_from_slice(&other.reads);
        self.writes.extend_from_slice(&other.writes);
        self.opaque |= other.opaque;
    }
}

struct Slot {
    /// The buffer contents. Shared mutable access from worker threads is
    /// mediated by the `readers`/`writers` counts below plus the
    /// module-level disjoint-write contract.
    data: UnsafeCell<Box<dyn Any + Send + Sync>>,
    bytes: usize,
    live: bool,
    /// Outstanding [`DevRead`] guards.
    readers: AtomicU32,
    /// Outstanding [`DevWrite`] guards.
    writers: AtomicU32,
}

// SAFETY: all access to `data` goes through `DeviceMemory::read`/`write`,
// which track outstanding views in `readers`/`writers` and panic on
// buffer-level read/write races; concurrent writers are only permitted
// under the documented disjoint-write contract (module docs). Structural
// mutation (alloc/free) takes `&mut DeviceMemory` and is therefore
// exclusive.
unsafe impl Sync for Slot {}

/// Shared view of a device buffer, obtained from [`DeviceMemory::read`].
/// Holding it blocks write views of the same buffer.
pub struct DevRead<'a, T: DeviceScalar> {
    vec: &'a Vec<T>,
    readers: &'a AtomicU32,
}

impl<T: DeviceScalar> Deref for DevRead<'_, T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        self.vec
    }
}

impl<T: DeviceScalar> Drop for DevRead<'_, T> {
    fn drop(&mut self) {
        self.readers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Mutable view of a device buffer, obtained from [`DeviceMemory::write`].
/// Holding it blocks read views; other *write* views may coexist under
/// the disjoint-write contract (module docs), mirroring how CUDA blocks
/// of one launch write one output buffer.
pub struct DevWrite<'a, T: DeviceScalar> {
    vec: *mut Vec<T>,
    writers: &'a AtomicU32,
    _marker: PhantomData<&'a mut Vec<T>>,
}

impl<T: DeviceScalar> Deref for DevWrite<'_, T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        // SAFETY: the slot is live for 'a and read views are excluded
        // while any write view exists.
        unsafe { &*self.vec }
    }
}

impl<T: DeviceScalar> DerefMut for DevWrite<'_, T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        // SAFETY: see `Deref`; concurrent writers touch disjoint elements
        // per the module-level contract.
        unsafe { &mut *self.vec }
    }
}

impl<T: DeviceScalar> Drop for DevWrite<'_, T> {
    fn drop(&mut self) {
        self.writers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Configuration for deterministic corruption of host↔device copies
/// (normally attached via [`crate::Gpu::set_fault_plan`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyFaultConfig {
    pub seed: u64,
    /// Per-copy corruption probability in `[0, 1]`.
    pub rate: f64,
    /// Poisoned-region length in elements (clamped to the copy).
    pub region_len: usize,
}

/// Record of one injected copy corruption: the poisoned region of the
/// affected buffer. Drained by [`DeviceMemory::drain_copy_faults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyFault {
    /// Arena slot of the corrupted buffer ([`DevBuf::raw_id`]).
    pub buf_id: usize,
    /// First poisoned element.
    pub start: usize,
    /// Poisoned element count.
    pub len: usize,
}

/// Interior-mutable injector state: copies go through `&self` methods
/// (`download` is callable while kernels hold views), so the draw counter
/// and fault log live behind a mutex. Copies only happen from the host
/// thread; the mutex is uncontended.
#[derive(Default)]
struct CopyFaultState {
    config: Option<CopyFaultConfig>,
    draws: u64,
    events: Vec<CopyFault>,
    /// Poisoned regions per slot, kept until the buffer is fully
    /// overwritten or freed (the poisoned-region model: corruption is
    /// sticky, not a one-shot bit flip).
    poisoned: HashMap<usize, Vec<(usize, usize)>>,
}

/// The global-memory arena of a simulated device.
#[derive(Default)]
pub struct DeviceMemory {
    slots: Vec<Slot>,
    live_bytes: usize,
    peak_bytes: usize,
    alloc_count: u64,
    copy_faults: Mutex<CopyFaultState>,
    /// Launches enqueued but not yet functionally executed (maintained by
    /// [`crate::Gpu`]). While non-zero, host-side access to *existing*
    /// buffers panics — see [`DeviceMemory::assert_host_quiesced`].
    deferred_launches: AtomicU32,
}

impl DeviceMemory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record how many enqueued launches still await functional execution.
    pub(crate) fn set_deferred_launches(&self, n: u32) {
        self.deferred_launches.store(n, Ordering::Relaxed);
    }

    /// Guard against the host observing (or mutating) a buffer that a
    /// deferred launch may still read or write: under serial issue order
    /// those launches had already executed, so such an access would
    /// silently see different data. Allocating *new* buffers is exempt
    /// (deferred launches cannot reference them), as are the engine's own
    /// worker threads ([`KernelScope`]).
    fn assert_host_quiesced(&self) {
        let n = self.deferred_launches.load(Ordering::Relaxed);
        if n > 0 && !IN_KERNEL_SCOPE.with(|f| f.get()) {
            panic!(
                "host access to device memory while {n} launches are deferred; \
                 call Gpu::synchronize() or Gpu::flush() first"
            );
        }
    }

    /// Allocate a buffer of `len` default-initialized elements
    /// (`cudaMalloc` + `cudaMemset`).
    pub fn alloc<T: DeviceScalar>(&mut self, len: usize) -> DevBuf<T> {
        self.upload(&vec![T::default(); len])
    }

    /// Allocate a buffer initialized from host data (`cudaMemcpyHostToDevice`).
    pub fn upload<T: DeviceScalar>(&mut self, data: &[T]) -> DevBuf<T> {
        let bytes = std::mem::size_of_val(data);
        let id = self.slots.len();
        self.slots.push(Slot {
            data: UnsafeCell::new(Box::new(data.to_vec())),
            bytes,
            live: true,
            readers: AtomicU32::new(0),
            writers: AtomicU32::new(0),
        });
        self.live_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        self.alloc_count += 1;
        DevBuf { id, len: data.len(), _marker: PhantomData }
    }

    /// Release a buffer. Its handle becomes invalid; further access panics.
    pub fn free<T: DeviceScalar>(&mut self, buf: DevBuf<T>) {
        self.assert_host_quiesced();
        let slot = &mut self.slots[buf.id];
        assert!(slot.live, "double free of {buf:?}");
        slot.live = false;
        self.live_bytes -= slot.bytes;
        *slot.data.get_mut() = Box::new(());
        let state = self.copy_faults.get_mut().unwrap_or_else(|e| e.into_inner());
        state.poisoned.remove(&buf.id);
    }

    /// Shared view of a buffer (`cudaMemcpyDeviceToHost` without the copy).
    /// Panics if a write view is outstanding — a read/write race under the
    /// CUDA memory model.
    pub fn read<T: DeviceScalar>(&self, buf: DevBuf<T>) -> DevRead<'_, T> {
        self.assert_host_quiesced();
        let slot = &self.slots[buf.id];
        assert!(slot.live, "use after free of {buf:?}");
        slot.readers.fetch_add(1, Ordering::SeqCst);
        assert!(
            slot.writers.load(Ordering::SeqCst) == 0,
            "read/write race on {buf:?}: a write view is outstanding"
        );
        // SAFETY: no write view exists (checked above) and none can be
        // taken while our reader count is registered.
        let vec = unsafe { (*slot.data.get()).downcast_ref::<Vec<T>>() }
            .expect("device buffer type mismatch");
        DevRead { vec, readers: &slot.readers }
    }

    /// Mutable view of a buffer. Panics if a read view is outstanding;
    /// concurrent write views are permitted under the disjoint-write
    /// contract (module docs), as blocks of one kernel launch share
    /// output buffers but write disjoint elements.
    pub fn write<T: DeviceScalar>(&self, buf: DevBuf<T>) -> DevWrite<'_, T> {
        self.assert_host_quiesced();
        let slot = &self.slots[buf.id];
        assert!(slot.live, "use after free of {buf:?}");
        slot.writers.fetch_add(1, Ordering::SeqCst);
        assert!(
            slot.readers.load(Ordering::SeqCst) == 0,
            "read/write race on {buf:?}: a read view is outstanding"
        );
        // SAFETY: read views are excluded (checked above); overlap between
        // concurrent write views is governed by the disjoint-write
        // contract. The transient exclusive borrow here only downcasts.
        let vec: *mut Vec<T> = unsafe { (*slot.data.get()).downcast_mut::<Vec<T>>() }
            .expect("device buffer type mismatch");
        DevWrite { vec, writers: &slot.writers, _marker: PhantomData }
    }

    /// Attach (or detach) deterministic copy-corruption injection.
    /// Attaching resets the draw counter and clears the fault log.
    pub fn set_copy_faults(&mut self, config: Option<CopyFaultConfig>) {
        let state = self.copy_faults.get_mut().unwrap_or_else(|e| e.into_inner());
        *state = CopyFaultState { config, ..CopyFaultState::default() };
    }

    /// Copy-corruption verdicts drawn so far (zero when no injector is
    /// attached). One half of [`crate::FaultCursor`].
    pub fn copy_fault_draws(&self) -> u64 {
        self.copy_faults.lock().unwrap_or_else(|e| e.into_inner()).draws
    }

    /// Fast-forward the copy-corruption draw counter (checkpoint restore;
    /// see [`crate::Gpu::seek_fault_cursor`]). No-op without an injector.
    pub fn seek_copy_fault_draws(&mut self, draws: u64) {
        let state = self.copy_faults.get_mut().unwrap_or_else(|e| e.into_inner());
        if state.config.is_some() {
            state.draws = draws;
        }
    }

    /// Drain the copy-fault log: every corruption injected since the last
    /// drain (or plan attachment), in injection order. Callers poll this
    /// per frame to attribute corrupted readbacks to outputs.
    pub fn drain_copy_faults(&self) -> Vec<CopyFault> {
        let mut state = self.copy_faults.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut state.events)
    }

    /// Whether a buffer currently holds a poisoned region from a
    /// corrupted `upload_into` (cleared by a clean full overwrite or
    /// free).
    pub fn is_poisoned<T: DeviceScalar>(&self, buf: DevBuf<T>) -> bool {
        let state = self.copy_faults.lock().unwrap_or_else(|e| e.into_inner());
        state.poisoned.get(&buf.id).is_some_and(|r| !r.is_empty())
    }

    /// Draw a corruption verdict for one copy touching `buf_id` over
    /// `len` elements. Returns the poisoned region, if any.
    fn draw_copy_fault(&self, buf_id: usize, len: usize) -> Option<(usize, usize)> {
        let mut state = self.copy_faults.lock().unwrap_or_else(|e| e.into_inner());
        let cfg = state.config?;
        if cfg.rate <= 0.0 || len == 0 {
            return None;
        }
        let draw_idx = state.draws;
        state.draws += 1;
        if fault_draw(cfg.seed, FaultDomain::CopyCorruption, draw_idx) >= cfg.rate {
            return None;
        }
        let span = cfg.region_len.clamp(1, len);
        let start = (fault_bits(cfg.seed, FaultDomain::CorruptionOffset, draw_idx) as usize)
            % (len - span + 1);
        state.events.push(CopyFault { buf_id, start, len: span });
        Some((start, span))
    }

    /// Copy host data into an existing buffer. Subject to copy-fault
    /// injection: a corrupted upload zeroes a region of the destination
    /// and marks it poisoned. Panics on length mismatch; use
    /// [`DeviceMemory::try_upload_into`] for a typed error.
    pub fn upload_into<T: DeviceScalar>(&self, buf: DevBuf<T>, data: &[T]) {
        self.try_upload_into(buf, data).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`DeviceMemory::upload_into`].
    pub fn try_upload_into<T: DeviceScalar>(
        &self,
        buf: DevBuf<T>,
        data: &[T],
    ) -> Result<(), MemoryError> {
        let mut dst = self.write(buf);
        if dst.len() != data.len() {
            return Err(MemoryError::CopyLengthMismatch {
                buf_len: dst.len(),
                host_len: data.len(),
            });
        }
        dst.copy_from_slice(data);
        drop(dst);
        // A clean full overwrite clears previous poison; a corrupted one
        // re-poisons its region.
        {
            let mut state = self.copy_faults.lock().unwrap_or_else(|e| e.into_inner());
            state.poisoned.remove(&buf.id);
        }
        if let Some((start, span)) = self.draw_copy_fault(buf.id, buf.len) {
            let mut dst = self.write(buf);
            for v in &mut dst[start..start + span] {
                *v = T::default();
            }
            drop(dst);
            let mut state = self.copy_faults.lock().unwrap_or_else(|e| e.into_inner());
            state.poisoned.entry(buf.id).or_default().push((start, span));
        }
        Ok(())
    }

    /// Copy a buffer out to a host vector. Subject to copy-fault
    /// injection: a corrupted download returns data with a zeroed region
    /// (the device copy stays intact) and logs a [`CopyFault`].
    pub fn download<T: DeviceScalar>(&self, buf: DevBuf<T>) -> Vec<T> {
        let mut out = self.read(buf).clone();
        if let Some((start, span)) = self.draw_copy_fault(buf.id, out.len()) {
            for v in &mut out[start..start + span] {
                *v = T::default();
            }
        }
        out
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Total number of buffer allocations ever performed (`alloc` +
    /// `upload`). Steady-state code paths (e.g. the frame pipeline's
    /// buffer pool) assert this stays constant across iterations.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }
}

/// Offset handle into the constant-memory bank (in 32-bit words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstPtr {
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl ConstPtr {
    pub fn len(&self) -> usize {
        self.len
    }
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The 64 KiB constant-memory bank (bump allocated, explicitly resettable).
#[derive(Debug)]
pub struct ConstBank {
    words: Vec<u32>,
    capacity_words: usize,
}

impl ConstBank {
    pub fn new(capacity_bytes: u32) -> Self {
        Self { words: Vec::new(), capacity_words: capacity_bytes as usize / 4 }
    }

    /// Stage words into constant memory; panics when the bank overflows,
    /// like `cudaMemcpyToSymbol` past 64 KiB fails to compile. Use
    /// [`ConstBank::try_upload`] for a typed error.
    pub fn upload(&mut self, data: &[u32]) -> ConstPtr {
        self.try_upload(data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ConstBank::upload`]: overflow of the 64 KiB bank by a
    /// user-supplied cascade is reported instead of aborting.
    pub fn try_upload(&mut self, data: &[u32]) -> Result<ConstPtr, MemoryError> {
        if self.words.len() + data.len() > self.capacity_words {
            return Err(MemoryError::ConstOverflow {
                used_words: self.words.len(),
                requested_words: data.len(),
                capacity_words: self.capacity_words,
            });
        }
        let offset = self.words.len();
        self.words.extend_from_slice(data);
        Ok(ConstPtr { offset, len: data.len() })
    }

    /// Reset the bump allocator (between cascades/configurations).
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// View of one staged region.
    pub fn slice(&self, ptr: ConstPtr) -> &[u32] {
        &self.words[ptr.offset..ptr.offset + ptr.len]
    }

    /// Words currently staged.
    pub fn used_words(&self) -> usize {
        self.words.len()
    }

    pub fn capacity_words(&self) -> usize {
        self.capacity_words
    }
}

/// Handle to a bound texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TexId(pub(crate) usize);

/// A read-only single-channel 2D texture with clamp addressing.
#[derive(Debug, Clone)]
pub struct Texture2D {
    pub width: usize,
    pub height: usize,
    data: Vec<f32>,
}

impl Texture2D {
    /// Panicking constructor; use [`Texture2D::try_from_data`] when the
    /// geometry comes from untrusted input.
    pub fn from_data(width: usize, height: usize, data: Vec<f32>) -> Self {
        Self::try_from_data(width, height, data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects zero extents and size mismatches.
    pub fn try_from_data(
        width: usize,
        height: usize,
        data: Vec<f32>,
    ) -> Result<Self, MemoryError> {
        if width == 0 || height == 0 || data.len() != width * height {
            return Err(MemoryError::BadTexture { width, height, data_len: data.len() });
        }
        Ok(Self { width, height, data })
    }

    #[inline]
    fn texel(&self, x: isize, y: isize) -> f32 {
        let xc = x.clamp(0, self.width as isize - 1) as usize;
        let yc = y.clamp(0, self.height as isize - 1) as usize;
        self.data[yc * self.width + xc]
    }

    /// Nearest-neighbour fetch (`tex2D` with point filtering).
    #[inline]
    pub fn fetch_point(&self, x: f32, y: f32) -> f32 {
        self.texel(x.floor() as isize, y.floor() as isize)
    }

    /// Bilinear fetch (`tex2D` with linear filtering); texel centers at
    /// integer + 0.5 coordinates, following the CUDA convention.
    #[inline]
    pub fn fetch_bilinear(&self, x: f32, y: f32) -> f32 {
        let xb = x - 0.5;
        let yb = y - 0.5;
        let x0 = xb.floor();
        let y0 = yb.floor();
        let fx = xb - x0;
        let fy = yb - y0;
        let x0 = x0 as isize;
        let y0 = y0 as isize;
        let t00 = self.texel(x0, y0);
        let t10 = self.texel(x0 + 1, y0);
        let t01 = self.texel(x0, y0 + 1);
        let t11 = self.texel(x0 + 1, y0 + 1);
        let top = t00 + (t10 - t00) * fx;
        let bot = t01 + (t11 - t01) * fx;
        top + (bot - top) * fy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_roundtrip() {
        let mut mem = DeviceMemory::new();
        let b = mem.upload(&[1u32, 2, 3]);
        assert_eq!(mem.download(b), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn write_then_read_sees_update() {
        let mut mem = DeviceMemory::new();
        let b = mem.alloc::<f32>(4);
        mem.write(b)[2] = 7.5;
        assert_eq!(mem.read(b)[2], 7.5);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_confusion_panics() {
        let mut mem = DeviceMemory::new();
        let b = mem.upload(&[1u32, 2]);
        let fake = DevBuf::<f32> { id: b.id, len: b.len, _marker: PhantomData };
        let _ = mem.read(fake);
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn use_after_free_panics() {
        let mut mem = DeviceMemory::new();
        let b = mem.upload(&[1u32]);
        mem.free(b);
        let _ = mem.read(b);
    }

    #[test]
    fn live_and_peak_bytes_track_allocations() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc::<u32>(100); // 400 bytes
        let b = mem.alloc::<u8>(50); // 50 bytes
        assert_eq!(mem.live_bytes(), 450);
        mem.free(a);
        assert_eq!(mem.live_bytes(), 50);
        assert_eq!(mem.peak_bytes(), 450);
        mem.free(b);
        assert_eq!(mem.live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "read/write race")]
    fn read_while_write_outstanding_panics() {
        let mut mem = DeviceMemory::new();
        let b = mem.alloc::<u32>(4);
        let _w = mem.write(b);
        let _r = mem.read(b);
    }

    #[test]
    #[should_panic(expected = "read/write race")]
    fn write_while_read_outstanding_panics() {
        let mut mem = DeviceMemory::new();
        let b = mem.alloc::<u32>(4);
        let _r = mem.read(b);
        let _w = mem.write(b);
    }

    #[test]
    fn disjoint_concurrent_writers_are_allowed() {
        let mut mem = DeviceMemory::new();
        let b = mem.alloc::<u32>(8);
        {
            let mut w1 = mem.write(b);
            let mut w2 = mem.write(b);
            w1[0] = 1;
            w2[7] = 7;
        }
        let r = mem.read(b);
        assert_eq!((r[0], r[7]), (1, 7));
    }

    #[test]
    fn concurrent_reads_from_threads() {
        let mut mem = DeviceMemory::new();
        let b = mem.upload(&(0u32..256).collect::<Vec<_>>());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let mem = &mem;
                s.spawn(move || {
                    let r = mem.read(b);
                    assert_eq!(r[t as usize * 10], t * 10);
                });
            }
        });
        assert_eq!(mem.read(b).len(), 256);
    }

    #[test]
    fn alloc_count_tracks_allocations_not_frees() {
        let mut mem = DeviceMemory::new();
        assert_eq!(mem.alloc_count(), 0);
        let a = mem.alloc::<u32>(4);
        let b = mem.upload(&[1u8, 2]);
        assert_eq!(mem.alloc_count(), 2);
        mem.free(a);
        mem.free(b);
        assert_eq!(mem.alloc_count(), 2, "frees do not change the alloc count");
    }

    #[test]
    fn const_bank_bump_allocates_and_overflows() {
        let mut bank = ConstBank::new(16); // 4 words
        let p = bank.upload(&[1, 2, 3]);
        assert_eq!(bank.slice(p), &[1, 2, 3]);
        assert_eq!(bank.used_words(), 3);
        let q = bank.upload(&[9]);
        assert_eq!(bank.slice(q), &[9]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bank.upload(&[0]);
        }));
        assert!(r.is_err(), "fifth word must overflow a 16-byte bank");
    }

    #[test]
    fn texture_point_fetch_clamps() {
        let t = Texture2D::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.fetch_point(-5.0, -5.0), 1.0);
        assert_eq!(t.fetch_point(10.0, 10.0), 4.0);
        assert_eq!(t.fetch_point(1.0, 0.0), 2.0);
    }

    #[test]
    fn texture_bilinear_interpolates_midpoints() {
        let t = Texture2D::from_data(2, 1, vec![0.0, 10.0]);
        // Texel centers at x=0.5 and x=1.5; x=1.0 is halfway.
        assert!((t.fetch_bilinear(1.0, 0.5) - 5.0).abs() < 1e-6);
        // At texel centers the fetch returns the texel exactly.
        assert!((t.fetch_bilinear(0.5, 0.5) - 0.0).abs() < 1e-6);
        assert!((t.fetch_bilinear(1.5, 0.5) - 10.0).abs() < 1e-6);
    }
}
