//! Profiling output: execution traces and per-kernel aggregate statistics.
//!
//! Mirrors what the paper extracts from the CUDA compute command-line
//! profiler: kernel timestamps per stream (their Fig. 6), branch efficiency
//! (their 98.9 % figure) and DRAM read throughput per kernel (their
//! 9.57–532 MB/s range for the cascade kernels).

use std::collections::BTreeMap;

use crate::meter::KernelCounters;
use crate::sched::LaunchOccupancy;
use crate::stream::StreamId;

/// One row of an execution trace: a kernel launch with its timestamps.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub launch_idx: usize,
    pub kernel_name: &'static str,
    pub stream: StreamId,
    pub t_start_us: f64,
    pub t_end_us: f64,
    pub blocks: u64,
    /// Launch overhead charged before `t_start_us` (driver/runtime cost;
    /// includes profiling overhead in serial mode). A fused launch pays
    /// this once where its constituents would have paid it k times.
    pub overhead_us: f64,
    /// Theoretical residency of this launch's blocks and the budget that
    /// bounded it (see [`crate::sched::launch_occupancy`]).
    pub occupancy: LaunchOccupancy,
    pub counters: KernelCounters,
}

impl TraceEvent {
    pub fn duration_us(&self) -> f64 {
        self.t_end_us - self.t_start_us
    }

    /// DRAM read throughput over the kernel's lifetime, MB/s.
    pub fn dram_read_throughput_mbps(&self) -> f64 {
        let d = self.duration_us();
        if d <= 0.0 {
            return 0.0;
        }
        // bytes / us = MB/s.
        self.counters.global_bytes_read as f64 / d
    }
}

/// One contiguous run of block-chunks a host worker executed for one
/// launch during the asynchronous drain (wall-clock, unlike the
/// simulated-device times in [`TraceEvent`]). Overlapping spans on
/// *different* workers for *different* launches are host-side kernel
/// concurrency made visible — the host analogue of the paper's Fig. 6
/// stream overlap.
#[derive(Debug, Clone)]
pub struct HostSpan {
    /// Host worker id; 0 is the application thread.
    pub worker: usize,
    /// Global launch index of the launch whose blocks ran.
    pub launch_idx: u64,
    pub kernel_name: &'static str,
    /// Wall-clock µs since the owning `Gpu` was created.
    pub t_start_us: f64,
    pub t_end_us: f64,
    /// Blocks executed within this span.
    pub blocks: u64,
}

impl HostSpan {
    pub fn duration_us(&self) -> f64 {
        self.t_end_us - self.t_start_us
    }

    /// Whether two spans overlap in wall-clock time.
    pub fn overlaps(&self, other: &HostSpan) -> bool {
        self.t_start_us < other.t_end_us && other.t_start_us < self.t_end_us
    }
}

/// Aggregate statistics for one kernel name across many launches.
#[derive(Debug, Clone, Default)]
pub struct KernelProfile {
    pub launches: u64,
    pub blocks: u64,
    pub total_time_us: f64,
    pub counters: KernelCounters,
    /// Launch counts per occupancy-limiting factor (stable labels from
    /// [`crate::sched::OccupancyLimit::as_str`]): which residency budget
    /// bounded this kernel's block residency, and how often.
    pub limits: BTreeMap<&'static str, u64>,
}

impl KernelProfile {
    pub fn branch_efficiency(&self) -> f64 {
        self.counters.branch_efficiency()
    }

    /// Mean DRAM read throughput while this kernel was executing, MB/s.
    pub fn dram_read_throughput_mbps(&self) -> f64 {
        if self.total_time_us <= 0.0 {
            return 0.0;
        }
        self.counters.global_bytes_read as f64 / self.total_time_us
    }
}

/// Accumulates traces across synchronization scopes.
#[derive(Default)]
pub struct Profiler {
    traces: Vec<TraceEvent>,
    per_kernel: BTreeMap<&'static str, KernelProfile>,
    host_spans: Vec<HostSpan>,
    opaque_launches: u64,
}

/// Host spans carry host wall-clock times and so vary run to run; they
/// are omitted here so a `Debug` fingerprint of the profiler stays
/// deterministic (only the simulated-device state participates).
impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("traces", &self.traces)
            .field("per_kernel", &self.per_kernel)
            .field("opaque_launches", &self.opaque_launches)
            .finish_non_exhaustive()
    }
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest the events of one timing simulation.
    pub fn absorb(&mut self, events: &[TraceEvent]) {
        for e in events {
            let p = self.per_kernel.entry(e.kernel_name).or_default();
            p.launches += 1;
            p.blocks += e.blocks;
            p.total_time_us += e.duration_us();
            p.counters.add(&e.counters);
            *p.limits.entry(e.occupancy.limit.as_str()).or_insert(0) += 1;
            self.traces.push(e.clone());
        }
    }

    /// Ingest host-execution spans from one asynchronous drain.
    pub fn absorb_host_spans(&mut self, spans: Vec<HostSpan>) {
        self.host_spans.extend(spans);
    }

    /// Ingest the count of undeclared-access (full-barrier) launches
    /// harvested from the dependency tracker at a sync point.
    pub(crate) fn add_opaque_launches(&mut self, n: u64) {
        self.opaque_launches += n;
    }

    /// Launches enqueued without a declared [`AccessSet`]
    /// (the [`Kernel::access`](crate::Kernel::access) default). Each one
    /// is a full barrier: it forbids both asynchronous overlap and
    /// fusion, so a non-zero count flags kernels silently serializing
    /// the pipeline.
    pub fn opaque_launches(&self) -> u64 {
        self.opaque_launches
    }

    /// All recorded trace rows, in launch order.
    pub fn traces(&self) -> &[TraceEvent] {
        &self.traces
    }

    /// Host-execution spans, sorted by (worker, start time).
    pub fn host_spans(&self) -> &[HostSpan] {
        &self.host_spans
    }

    /// Aggregate per-kernel profiles, keyed by kernel name.
    pub fn kernels(&self) -> &BTreeMap<&'static str, KernelProfile> {
        &self.per_kernel
    }

    /// Device-wide branch efficiency across every metered kernel.
    pub fn branch_efficiency(&self) -> f64 {
        let mut total = KernelCounters::default();
        for p in self.per_kernel.values() {
            total.add(&p.counters);
        }
        total.branch_efficiency()
    }

    /// Clear all recorded data.
    pub fn reset(&mut self) {
        self.traces.clear();
        self.per_kernel.clear();
        self.host_spans.clear();
        self.opaque_launches = 0;
    }

    /// Render the trace as aligned text rows (a poor man's Fig. 6).
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        out.push_str("launch  stream  t_start_us   t_end_us     kernel\n");
        for e in &self.traces {
            out.push_str(&format!(
                "{:<7} {:<7} {:<12.3} {:<12.3} {}\n",
                e.launch_idx,
                e.stream.index(),
                e.t_start_us,
                e.t_end_us,
                e.kernel_name
            ));
        }
        out
    }

    /// Render the trace in the Chrome trace-event format (a JSON array of
    /// `"ph": "X"` complete events) for `chrome://tracing` / Perfetto.
    /// Timestamps and durations are already in microseconds — the
    /// viewer's native unit — and the stream index becomes the thread
    /// lane, so batched-vs-serial request timelines can be eyeballed
    /// side by side.
    pub fn render_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for e in &self.traces {
            Self::push_device_event(&mut out, &mut first, e);
        }
        out.push_str("\n]\n");
        out
    }

    /// Append one trace row as a `"cat":"kernel"` complete event,
    /// preceded — when the launch paid a non-zero overhead — by its own
    /// `"cat":"overhead"` slice spanning `[t_start - overhead, t_start]`,
    /// so launch cost shows up as a distinct ribbon in the viewer rather
    /// than silently padding the gap between kernels, and followed by a
    /// `"cat":"occupancy"` slice over the kernel's interval that nests
    /// under it in the viewer, naming the residency budget that bounded
    /// the launch (warps vs registers vs smem vs threads vs blocks) and
    /// the block/warp residency that budget allowed.
    fn push_device_event(out: &mut String, first: &mut bool, e: &TraceEvent) {
        if e.overhead_us > 0.0 {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&format!(
                "\n  {{\"name\":\"launch {}\",\"cat\":\"overhead\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"launch\":{}}}}}",
                e.kernel_name,
                e.t_start_us - e.overhead_us,
                e.overhead_us,
                e.stream.index(),
                e.launch_idx,
            ));
        }
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&format!(
            "\n  {{\"name\":\"{}\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":0,\"tid\":{},\"args\":{{\"launch\":{},\"blocks\":{}}}}}",
            e.kernel_name,
            e.t_start_us,
            e.duration_us(),
            e.stream.index(),
            e.launch_idx,
            e.blocks,
        ));
        out.push(',');
        out.push_str(&format!(
            "\n  {{\"name\":\"occupancy {}\",\"cat\":\"occupancy\",\"ph\":\"X\",\"ts\":{:.3},\
             \"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"launch\":{},\"limit\":\"{}\",\
             \"blocks_per_sm\":{},\"resident_warps\":{}}}}}",
            e.kernel_name,
            e.t_start_us,
            e.duration_us(),
            e.stream.index(),
            e.launch_idx,
            e.occupancy.limit.as_str(),
            e.occupancy.blocks_per_sm,
            e.occupancy.resident_warps,
        ));
    }

    /// [`Profiler::render_chrome_trace`] plus a host-execution lane:
    /// every host worker becomes a row under `pid:1` showing which
    /// launch's block-chunks it ran when (wall-clock µs). Two spans from
    /// different launches overlapping on different rows is asynchronous
    /// launch overlap, visible at a glance. Kept out of the default
    /// renderer so device-only traces stay byte-identical across host
    /// thread counts (host spans are wall-clock and inherently not).
    pub fn render_chrome_trace_with_host(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for e in &self.traces {
            Self::push_device_event(&mut out, &mut first, e);
        }
        for s in &self.host_spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n  {{\"name\":\"{}\",\"cat\":\"host\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"launch\":{},\"blocks\":{}}}}}",
                s.kernel_name,
                s.t_start_us,
                s.duration_us(),
                s.worker,
                s.launch_idx,
                s.blocks,
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, stream: u32, t0: f64, t1: f64, read: u64) -> TraceEvent {
        TraceEvent {
            launch_idx: 0,
            kernel_name: name,
            stream: StreamId(stream),
            t_start_us: t0,
            t_end_us: t1,
            blocks: 1,
            overhead_us: 0.0,
            occupancy: LaunchOccupancy {
                limit: crate::sched::OccupancyLimit::Warps,
                blocks_per_sm: 2,
                resident_warps: 36,
            },
            counters: KernelCounters {
                global_bytes_read: read,
                branches: 100,
                divergent_branches: 2,
                ..KernelCounters::default()
            },
        }
    }

    #[test]
    fn profiler_aggregates_by_kernel_name() {
        let mut p = Profiler::new();
        p.absorb(&[ev("cascade", 1, 0.0, 10.0, 1000), ev("cascade", 2, 5.0, 25.0, 3000)]);
        let k = &p.kernels()["cascade"];
        assert_eq!(k.launches, 2);
        assert_eq!(k.total_time_us, 30.0);
        assert_eq!(k.counters.global_bytes_read, 4000);
        assert_eq!(k.limits["warps"], 2, "limiting factor tallied per launch");
    }

    #[test]
    fn dram_throughput_is_bytes_per_us() {
        // 500 bytes over 1 us = 500 MB/s.
        let e = ev("k", 1, 0.0, 1.0, 500);
        assert!((e.dram_read_throughput_mbps() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn branch_efficiency_aggregates_over_kernels() {
        let mut p = Profiler::new();
        p.absorb(&[ev("a", 1, 0.0, 1.0, 0), ev("b", 1, 0.0, 1.0, 0)]);
        // 200 branches, 4 divergent => 98%.
        assert!((p.branch_efficiency() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn render_trace_lists_rows() {
        let mut p = Profiler::new();
        p.absorb(&[ev("scale", 3, 1.0, 2.0, 0)]);
        let s = p.render_trace();
        assert!(s.contains("scale"));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn chrome_trace_is_a_json_array_of_complete_events() {
        let mut p = Profiler::new();
        p.absorb(&[ev("scale", 3, 1.0, 2.5, 0), ev("cascade", 1, 2.5, 10.0, 64)]);
        let s = p.render_chrome_trace();

        // Shape: one JSON array, a kernel slice plus a nested occupancy
        // slice per trace row, comma-separated.
        assert!(s.starts_with('['));
        assert!(s.trim_end().ends_with(']'));
        assert_eq!(s.matches("\"name\"").count(), 2 * p.traces().len());
        assert_eq!(s.matches("\"ph\":\"X\"").count(), 2 * p.traces().len());
        assert_eq!(s.matches("\"cat\":\"kernel\"").count(), p.traces().len());
        assert_eq!(s.matches("\"cat\":\"occupancy\"").count(), p.traces().len());
        assert_eq!(s.matches("},").count(), 2 * p.traces().len() - 1, "comma-separated");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert_eq!(s.matches('"').count() % 2, 0, "quotes must balance");

        // Content: µs timestamps/durations and the stream as the lane.
        assert!(s.contains("\"name\":\"scale\""));
        assert!(s.contains("\"ts\":1.000"));
        assert!(s.contains("\"dur\":1.500"));
        assert!(s.contains("\"tid\":3"));
        assert!(s.contains("\"name\":\"cascade\""));
        assert!(s.contains("\"dur\":7.500"));
        // The occupancy ribbon names the limiting budget per launch.
        assert!(s.contains("\"name\":\"occupancy cascade\""));
        assert!(s.contains("\"limit\":\"warps\",\"blocks_per_sm\":2,\"resident_warps\":36"));
    }

    #[test]
    fn chrome_trace_of_empty_profiler_is_an_empty_array() {
        let p = Profiler::new();
        assert_eq!(p.render_chrome_trace(), "[\n]\n");
    }

    #[test]
    fn launch_overhead_renders_as_its_own_slice() {
        let mut p = Profiler::new();
        let mut with_overhead = ev("scale", 3, 5.0, 7.0, 0);
        with_overhead.overhead_us = 4.0;
        p.absorb(&[with_overhead, ev("cascade", 1, 7.0, 10.0, 64)]);
        let s = p.render_chrome_trace();

        // One extra slice for the launch that paid overhead, none for the
        // one that did not; every kernel slice drags its occupancy
        // ribbon; the JSON stays well-formed.
        assert_eq!(s.matches("\"cat\":\"overhead\"").count(), 1);
        assert_eq!(s.matches("\"cat\":\"kernel\"").count(), 2);
        assert_eq!(s.matches("\"cat\":\"occupancy\"").count(), 2);
        assert_eq!(s.matches("\"name\"").count(), 5);
        assert_eq!(s.matches("},").count(), 4, "comma-separated");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('"').count() % 2, 0, "quotes must balance");

        // The slice ends where the kernel starts: [t_start-ovh, t_start].
        assert!(s.contains("\"name\":\"launch scale\""));
        assert!(s.contains("\"ts\":1.000,\"dur\":4.000"));
        // Host renderer shows the same slice.
        assert_eq!(p.render_chrome_trace_with_host(), s);
    }

    #[test]
    fn opaque_launch_count_accumulates_and_resets() {
        let mut p = Profiler::new();
        assert_eq!(p.opaque_launches(), 0);
        p.add_opaque_launches(2);
        p.add_opaque_launches(1);
        assert_eq!(p.opaque_launches(), 3);
        p.reset();
        assert_eq!(p.opaque_launches(), 0);
    }

    fn span(worker: usize, launch: u64, t0: f64, t1: f64) -> HostSpan {
        HostSpan {
            worker,
            launch_idx: launch,
            kernel_name: "k",
            t_start_us: t0,
            t_end_us: t1,
            blocks: 8,
        }
    }

    #[test]
    fn host_lane_renders_under_its_own_pid_and_leaves_default_untouched() {
        let mut p = Profiler::new();
        p.absorb(&[ev("scale", 3, 1.0, 2.5, 0)]);
        let device_only = p.render_chrome_trace();
        p.absorb_host_spans(vec![span(0, 0, 0.0, 5.0), span(1, 1, 1.0, 4.0)]);
        // Default renderer ignores host spans entirely.
        assert_eq!(p.render_chrome_trace(), device_only);
        let s = p.render_chrome_trace_with_host();
        assert_eq!(s.matches("\"cat\":\"host\"").count(), 2);
        assert_eq!(s.matches("\"pid\":1").count(), 2);
        assert!(s.contains("\"tid\":0") && s.contains("\"tid\":1"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches("},").count() + 1, s.matches("\"name\"").count());
        // Reset drops the lane.
        p.reset();
        assert!(p.host_spans().is_empty());
        assert_eq!(p.render_chrome_trace_with_host(), "[\n]\n");
    }

    #[test]
    fn host_spans_report_overlap() {
        assert!(span(0, 0, 0.0, 5.0).overlaps(&span(1, 1, 4.0, 9.0)));
        assert!(!span(0, 0, 0.0, 5.0).overlaps(&span(1, 1, 5.0, 9.0)));
    }
}
