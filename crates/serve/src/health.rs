//! Server health machine: brown-out admission and a fail-fast breaker.
//!
//! The per-stream supervisor (`fd_detector::supervisor`) already showed
//! that a consecutive-fault circuit breaker with tick-based cool-down
//! and half-open probes keeps a faulting pipeline from burning its
//! budget on doomed work. This module ports that machine to the serving
//! layer, where the reaction is *admission control* rather than session
//! quarantine:
//!
//! * **Healthy** — full batching, every class admitted;
//! * **BrownOut** — after `brownout_after` consecutive device faults the
//!   server sheds load pre-emptively: the dynamic batcher's cap shrinks
//!   to `brownout_batch_cap` (smaller blast radius per faulted
//!   submission) and the lowest-priority class is rejected at arrival;
//! * **Open** — after `open_after` consecutive faults the breaker trips:
//!   every arrival is rejected fail-fast (no queueing, no device time)
//!   until `cooldown_us` of virtual time passes;
//! * **HalfOpen** — after cool-down one probe batch (cap 1) is allowed
//!   through: success closes the breaker back to Healthy, another device
//!   fault re-opens it for a fresh cool-down.
//!
//! Every transition is driven by the virtual clock and the deterministic
//! fault sequence, so health trajectories are bit-identical across runs
//! and host-thread settings. Under a zero-fault plan the machine never
//! leaves Healthy and the server's behavior is byte-identical to one
//! without a health layer.

use crate::request::Priority;

/// Health state of the serving loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServerHealth {
    /// Normal operation.
    Healthy,
    /// Sustained faults: shrunken batches, lowest class rejected.
    BrownOut,
    /// Breaker tripped: fail-fast all arrivals until `until_us`.
    Open {
        /// Virtual instant the cool-down ends.
        until_us: f64,
    },
    /// Cool-down elapsed: one probe submission decides re-close/re-open.
    HalfOpen,
}

/// Thresholds and reactions for the health machine.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Master switch; `false` pins the machine to Healthy forever.
    pub enabled: bool,
    /// Consecutive device faults before entering BrownOut.
    pub brownout_after: u32,
    /// Consecutive device faults before the breaker trips Open.
    pub open_after: u32,
    /// Batch-size cap while browned out (also applies to the half-open
    /// probe, which is always a single request).
    pub brownout_batch_cap: usize,
    /// Virtual µs the breaker stays Open before probing.
    pub cooldown_us: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            brownout_after: 2,
            open_after: 4,
            brownout_batch_cap: 2,
            cooldown_us: 20_000.0,
        }
    }
}

impl HealthPolicy {
    /// A policy that never reacts (the machine stays Healthy).
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// What a reported device fault did to the machine (for stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultReaction {
    /// No state change.
    None,
    /// Entered BrownOut.
    BrownedOut,
    /// Breaker tripped Healthy/BrownOut → Open.
    Tripped,
    /// A half-open probe failed; breaker re-opened.
    ProbeFailed,
}

/// The breaker itself: consecutive-fault counter plus state.
#[derive(Debug, Clone)]
pub struct HealthMachine {
    policy: HealthPolicy,
    state: ServerHealth,
    consecutive_faults: u32,
}

impl HealthMachine {
    pub fn new(policy: HealthPolicy) -> Self {
        Self { policy, state: ServerHealth::Healthy, consecutive_faults: 0 }
    }

    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    pub fn state(&self) -> ServerHealth {
        self.state
    }

    /// Consecutive device faults since the last successful submission.
    pub fn consecutive_faults(&self) -> u32 {
        self.consecutive_faults
    }

    /// When Open, the cool-down expiry instant.
    pub fn open_until(&self) -> Option<f64> {
        match self.state {
            ServerHealth::Open { until_us } => Some(until_us),
            _ => None,
        }
    }

    /// Whether the breaker is currently Open (dispatch suspended). The
    /// fleet router consults this directly instead of probing
    /// [`Self::open_until`] for the expiry it does not need.
    pub fn is_open(&self) -> bool {
        matches!(self.state, ServerHealth::Open { .. })
    }

    /// Advance the machine to `now_us`: an expired cool-down moves
    /// Open → HalfOpen. Returns `true` on that transition.
    pub fn tick(&mut self, now_us: f64) -> bool {
        if let ServerHealth::Open { until_us } = self.state {
            if now_us >= until_us {
                self.state = ServerHealth::HalfOpen;
                return true;
            }
        }
        false
    }

    /// Report a successful device submission. Returns `true` when it was
    /// a half-open probe closing the breaker.
    pub fn on_ok(&mut self) -> bool {
        self.consecutive_faults = 0;
        match self.state {
            ServerHealth::HalfOpen => {
                self.state = ServerHealth::Healthy;
                true
            }
            ServerHealth::BrownOut => {
                self.state = ServerHealth::Healthy;
                false
            }
            _ => false,
        }
    }

    /// Report a device fault (an injected launch failure — request-caused
    /// errors must not reach here).
    pub fn on_device_fault(&mut self, now_us: f64) -> FaultReaction {
        if !self.policy.enabled {
            return FaultReaction::None;
        }
        self.consecutive_faults = self.consecutive_faults.saturating_add(1);
        match self.state {
            ServerHealth::HalfOpen => {
                self.state = ServerHealth::Open { until_us: now_us + self.policy.cooldown_us };
                FaultReaction::ProbeFailed
            }
            ServerHealth::Open { .. } => FaultReaction::None,
            ServerHealth::Healthy | ServerHealth::BrownOut => {
                if self.consecutive_faults >= self.policy.open_after {
                    self.state =
                        ServerHealth::Open { until_us: now_us + self.policy.cooldown_us };
                    FaultReaction::Tripped
                } else if self.consecutive_faults >= self.policy.brownout_after
                    && self.state == ServerHealth::Healthy
                {
                    self.state = ServerHealth::BrownOut;
                    FaultReaction::BrownedOut
                } else {
                    FaultReaction::None
                }
            }
        }
    }

    /// Whether a request of `priority` is admitted at arrival.
    pub fn admits(&self, priority: Priority) -> bool {
        match self.state {
            ServerHealth::Healthy | ServerHealth::HalfOpen => true,
            ServerHealth::BrownOut => priority != Priority::Bulk,
            ServerHealth::Open { .. } => false,
        }
    }

    /// The batch-size cap the current state imposes on the dynamic
    /// batcher (`None` = no cap beyond the batching policy's own).
    pub fn batch_cap(&self) -> Option<usize> {
        match self.state {
            ServerHealth::Healthy => None,
            ServerHealth::BrownOut => Some(self.policy.brownout_batch_cap.max(1)),
            // The half-open probe is a single request; Open never
            // dispatches, the cap is vacuous.
            ServerHealth::HalfOpen | ServerHealth::Open { .. } => Some(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_walk_healthy_to_brownout_to_open() {
        let mut m = HealthMachine::new(HealthPolicy::default());
        assert_eq!(m.state(), ServerHealth::Healthy);
        assert!(m.admits(Priority::Bulk));
        assert_eq!(m.on_device_fault(0.0), FaultReaction::None);
        assert_eq!(m.on_device_fault(10.0), FaultReaction::BrownedOut);
        assert_eq!(m.state(), ServerHealth::BrownOut);
        assert!(m.admits(Priority::Interactive));
        assert!(!m.admits(Priority::Bulk), "brown-out sheds the lowest class");
        assert_eq!(m.batch_cap(), Some(2));
        assert_eq!(m.on_device_fault(20.0), FaultReaction::None);
        assert_eq!(m.on_device_fault(30.0), FaultReaction::Tripped);
        assert_eq!(m.state(), ServerHealth::Open { until_us: 30.0 + 20_000.0 });
        assert!(!m.admits(Priority::Interactive), "open fails fast every class");
        assert!(m.is_open());
    }

    #[test]
    fn is_open_tracks_exactly_the_open_state() {
        let mut m = HealthMachine::new(HealthPolicy::default());
        assert!(!m.is_open());
        for i in 0..4 {
            m.on_device_fault(i as f64);
        }
        assert!(m.is_open());
        m.tick(m.open_until().unwrap());
        assert!(!m.is_open(), "half-open is not open");
    }

    #[test]
    fn success_closes_brownout_and_resets_the_counter() {
        let mut m = HealthMachine::new(HealthPolicy::default());
        m.on_device_fault(0.0);
        m.on_device_fault(1.0);
        assert_eq!(m.state(), ServerHealth::BrownOut);
        assert!(!m.on_ok(), "not a probe");
        assert_eq!(m.state(), ServerHealth::Healthy);
        assert_eq!(m.consecutive_faults(), 0);
    }

    #[test]
    fn cooldown_probes_half_open_then_closes_or_reopens() {
        let mut m = HealthMachine::new(HealthPolicy::default());
        for i in 0..4 {
            m.on_device_fault(i as f64);
        }
        let until = m.open_until().unwrap();
        assert!(!m.tick(until - 1.0), "cool-down still running");
        assert!(m.tick(until));
        assert_eq!(m.state(), ServerHealth::HalfOpen);
        assert_eq!(m.batch_cap(), Some(1), "probe is a single request");
        assert!(m.admits(Priority::Bulk), "the probe may be any class");
        // Probe fails: re-armed cool-down from the fault instant.
        assert_eq!(m.on_device_fault(until + 5.0), FaultReaction::ProbeFailed);
        assert_eq!(m.open_until(), Some(until + 5.0 + 20_000.0));
        // Second probe succeeds: breaker closes.
        let until2 = m.open_until().unwrap();
        assert!(m.tick(until2));
        assert!(m.on_ok(), "probe success");
        assert_eq!(m.state(), ServerHealth::Healthy);
    }

    #[test]
    fn disabled_policy_never_leaves_healthy() {
        let mut m = HealthMachine::new(HealthPolicy::disabled());
        for i in 0..50 {
            assert_eq!(m.on_device_fault(i as f64), FaultReaction::None);
        }
        assert_eq!(m.state(), ServerHealth::Healthy);
        assert_eq!(m.batch_cap(), None);
        assert!(m.admits(Priority::Bulk));
    }
}
