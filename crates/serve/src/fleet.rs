//! The fleet front door: N device lanes behind one deterministic
//! serving surface.
//!
//! [`FleetServer`] shards request serving across N simulated GPUs. Each
//! device gets a full dispatch lane — its own [`DetectionServer`] with
//! queue, dynamic batcher, retry stack and per-device
//! [`crate::HealthMachine`] — and the fleet layer adds what a single
//! server cannot give:
//!
//! * **Routing** — submissions are placed by the [`crate::Router`]:
//!   geometry affinity (so per-device batches still fill), then least
//!   load, with per-device memory-budget admission (the supervisor's
//!   projected-bytes accounting, applied per lane).
//! * **Failover** — when a device's breaker opens, its queued,
//!   not-yet-launched requests migrate to healthy replicas with
//!   deadlines intact; the broken lane keeps cooling down and rejoins
//!   by closing its own breaker.
//! * **Draining** — a draining device stops admitting (its future
//!   arrivals re-route) but finishes the work it already queued;
//!   [`FleetServer::rejoin_device`] returns it to rotation.
//! * **Kill** — a killed device evacuates queue *and* calendar to the
//!   survivors and never dispatches again. Requests no survivor can
//!   take finish as [`RequestOutcome::Evicted`] — never silently lost.
//! * **Work stealing** — an idle healthy lane steals the loosest-
//!   deadline half of the deepest queue (bounded by [`StealPolicy`]),
//!   keeping survivors saturated through an outage.
//!
//! The fleet co-simulates its lanes with a min-clock event loop: each
//! iteration steps the lane whose virtual clock is furthest behind
//! (ties by index), so cross-lane decisions — migration targets, steal
//! pairs, scheduled kills — happen at a deterministic global frontier.
//! Everything is a pure function of the submissions, the configuration
//! and the per-device fault plans; a fleet of one with no scheduled
//! commands reduces exactly to its single [`DetectionServer`],
//! byte-for-byte, even under faults.

use fd_detector::{Backend, Detector, DetectorConfig, FaceDetector};
use fd_gpu::GeomClass;
use fd_haar::Cascade;
use fd_imgproc::GrayImage;

use crate::request::{DetectionRequest, Priority, RequestId};
use crate::router::{LaneView, RoutePolicy, Router, RouterStats};
use crate::server::{CompletedRequest, DetectionServer, RequestOutcome, ServeConfig, ServeError};
use crate::stats::ServeStats;

/// Work-stealing policy between per-device queues.
#[derive(Debug, Clone)]
pub struct StealPolicy {
    /// Master switch.
    pub enabled: bool,
    /// Minimum queued requests on a victim before an idle lane steals
    /// (stealing from a nearly-empty queue just moves the bubble).
    pub min_victim_queue: usize,
    /// Most requests one steal moves (at most half the victim's queue
    /// goes regardless).
    pub max_steal: usize,
}

impl Default for StealPolicy {
    fn default() -> Self {
        Self { enabled: true, min_victim_queue: 2, max_steal: 4 }
    }
}

impl StealPolicy {
    /// No stealing (lanes only receive routed and failover work).
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// Lifecycle state of one fleet device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// In rotation: admits new work.
    Active,
    /// Stopped admitting; finishes its queued work, can rejoin.
    Draining,
    /// Gone: evacuated and never dispatches again.
    Dead,
}

/// Fleet-level configuration. Per-lane serving behavior comes from the
/// embedded [`ServeConfig`]; the wrapped detectors from a
/// [`DetectorConfig`] whose fault plan is forked per device.
#[derive(Debug, Clone, Default)]
pub struct FleetConfig {
    /// Per-lane serving configuration (every lane gets a copy).
    pub serve: ServeConfig,
    /// Placement policy for the fleet router.
    pub route: RoutePolicy,
    /// Work stealing between per-device queues.
    pub steal: StealPolicy,
    /// Per-device memory budget, bytes: a lane only admits a frame
    /// geometry while its projected steady-state footprint (buffer
    /// pools + staged cascade) stays within budget. `None` = unlimited.
    pub device_memory_budget: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommandKind {
    Kill,
    Drain,
    Rejoin,
}

#[derive(Debug, Clone, Copy)]
struct ScheduledCommand {
    at_us: f64,
    device: usize,
    seq: u64,
    kind: CommandKind,
}

/// What to do with evacuated requests no survivor can take.
enum Orphans {
    /// Put them back on the source lane (breaker-open failover: the
    /// lane still exists and will cool down).
    ReturnToSource,
    /// Finish them as [`RequestOutcome::Evicted`] (the source is gone).
    Evict,
}

struct Lane<D: Detector> {
    server: DetectionServer<D>,
    state: DeviceState,
    /// Geometries this lane has admitted, with the device bytes each
    /// one was charged (pool bytes; the first admission also carries
    /// the constant-memory footprint).
    geometries: Vec<(GeomClass, usize)>,
    charged_bytes: usize,
}

/// N-device sharded serving front door (see module docs). Generic over
/// the detection engine: a homogeneous fleet instantiates a concrete
/// `D` (default: the Haar [`FaceDetector`]); a mixed fleet holds
/// `FleetServer<Box<dyn Detector>>` lanes of different engines, with
/// the router matching each request's [`Backend`] class to a lane that
/// serves it — so batches stay same-geometry *and* same-backend by
/// construction (one detector per lane).
pub struct FleetServer<D: Detector = FaceDetector> {
    lanes: Vec<Lane<D>>,
    router: Router,
    steal: StealPolicy,
    budget: Option<usize>,
    next_seq: u64,
    next_command_seq: u64,
    commands: Vec<ScheduledCommand>,
    completed: Vec<CompletedRequest>,
    completed_device: Vec<usize>,
    /// Fleet-level outcomes (evictions) that belong to no lane.
    local_stats: ServeStats,
}

impl FleetServer {
    /// Build a fleet of `devices` replicas of one Haar detector
    /// configuration. An attached fault plan is forked per device via
    /// `FaultPlan::for_replica`, so devices fault independently
    /// (replica 0 keeps the plan verbatim).
    pub fn new(
        cascade: &Cascade,
        detector_config: DetectorConfig,
        devices: usize,
        config: FleetConfig,
    ) -> Result<Self, ServeError> {
        let detectors = FaceDetector::try_new_replicas(cascade, detector_config, devices)
            .map_err(ServeError::Detector)?;
        Ok(Self::from_detectors(detectors, config))
    }
}

impl<D: Detector> FleetServer<D> {
    /// Build a fleet over pre-built detectors — one lane per detector,
    /// in order. This is how tests hand different devices different
    /// fault plans, and how mixed fleets are assembled
    /// (`Vec<Box<dyn Detector>>` of different engines).
    ///
    /// # Panics
    /// When `detectors` is empty.
    pub fn from_detectors(detectors: Vec<D>, config: FleetConfig) -> Self {
        assert!(!detectors.is_empty(), "a fleet needs at least one device");
        let devices = detectors.len();
        let lanes = detectors
            .into_iter()
            .map(|d| Lane {
                server: DetectionServer::from_detector(d, config.serve.clone()),
                state: DeviceState::Active,
                geometries: Vec::new(),
                charged_bytes: 0,
            })
            .collect();
        Self {
            lanes,
            router: Router::new(config.route, devices),
            steal: config.steal,
            budget: config.device_memory_budget,
            next_seq: 0,
            next_command_seq: 0,
            commands: Vec::new(),
            completed: Vec::new(),
            completed_device: Vec::new(),
            local_stats: ServeStats::default(),
        }
    }

    /// Number of device lanes (in any state).
    pub fn devices(&self) -> usize {
        self.lanes.len()
    }

    /// The fleet's virtual clock: the furthest-ahead lane clock (lanes
    /// that have not served recent work lag behind).
    pub fn now_us(&self) -> f64 {
        self.lanes
            .iter()
            .map(|l| l.server.now_us())
            .fold(0.0, f64::max)
    }

    /// Queued + calendar requests across all live lanes.
    pub fn pending(&self) -> usize {
        self.lanes
            .iter()
            .filter(|l| l.state != DeviceState::Dead)
            .map(|l| l.server.pending())
            .sum()
    }

    /// One device's dispatch lane (stats, health, detector access).
    pub fn device(&self, device: usize) -> &DetectionServer<D> {
        &self.lanes[device].server
    }

    /// The backend class one device's lane serves.
    pub fn device_backend(&self, device: usize) -> Backend {
        self.lanes[device].server.backend()
    }

    /// One device's lifecycle state.
    pub fn device_state(&self, device: usize) -> DeviceState {
        self.lanes[device].state
    }

    /// One device's serving statistics. Evicted requests are accounted
    /// at fleet level (see [`Self::stats`]), not against any device.
    pub fn device_stats(&self, device: usize) -> &ServeStats {
        self.lanes[device].server.stats()
    }

    /// Fleet-wide statistics: every device's report merged (exact
    /// quantiles — see `ServeStats::merge`) plus fleet-level evictions.
    pub fn stats(&self) -> ServeStats {
        let mut total = ServeStats::default();
        for lane in &self.lanes {
            total.merge(lane.server.stats());
        }
        total.merge(&self.local_stats);
        total
    }

    /// Routing, migration and steal accounting.
    pub fn router_stats(&self) -> &RouterStats {
        self.router.stats()
    }

    /// Finished requests in fleet completion order (each lane's
    /// completions are folded in as its steps produce them).
    pub fn completed(&self) -> &[CompletedRequest] {
        &self.completed
    }

    /// Which device finished each entry of [`Self::completed`]
    /// (evictions report the device the request was lost from).
    pub fn completed_device(&self) -> &[usize] {
        &self.completed_device
    }

    /// Drain the finished-request log (and its device attribution).
    pub fn take_completed(&mut self) -> Vec<CompletedRequest> {
        self.completed_device.clear();
        std::mem::take(&mut self.completed)
    }

    /// Schedule a detection request, routed to a device lane (see
    /// module docs). Same contract as `DetectionServer::submit`, plus
    /// [`ServeError::NoCapacity`] when no accepting lane can admit the
    /// frame's geometry under its memory budget. The request takes lane
    /// 0's backend class — the fleet's "default engine" — so a
    /// homogeneous fleet behaves exactly as before the backend axis
    /// existed; mixed traffic goes through [`Self::submit_to_backend`].
    pub fn submit(
        &mut self,
        frame: GrayImage,
        priority: Priority,
        arrival_us: f64,
        slo_us: f64,
    ) -> Result<RequestId, ServeError> {
        let backend = self.lanes[0].server.backend();
        self.submit_to_backend(frame, priority, arrival_us, slo_us, backend)
    }

    /// [`Self::submit`] with an explicit backend class: the router only
    /// considers lanes whose detector serves `backend`, and returns
    /// [`ServeError::NoCapacity`] when none is accepting.
    pub fn submit_to_backend(
        &mut self,
        frame: GrayImage,
        priority: Priority,
        arrival_us: f64,
        slo_us: f64,
        backend: Backend,
    ) -> Result<RequestId, ServeError> {
        if !arrival_us.is_finite() || arrival_us < self.now_us() {
            return Err(ServeError::InvalidSubmission {
                reason: "arrival time must be finite and not in the past",
            });
        }
        if !slo_us.is_finite() || slo_us <= 0.0 {
            return Err(ServeError::InvalidSubmission {
                reason: "SLO must be finite and positive",
            });
        }
        let geometry = GeomClass::of(frame.width(), frame.height());
        let views = self.lane_views(geometry, backend);
        let Some(device) = self.router.route(&views) else {
            return Err(ServeError::NoCapacity {
                width: geometry.width as usize,
                height: geometry.height as usize,
            });
        };
        self.charge_geometry(device, geometry);
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = RequestId(seq);
        let req = DetectionRequest {
            id,
            priority,
            arrival_us,
            deadline_us: arrival_us + slo_us,
            frame,
            backend,
            seq,
        };
        self.lanes[device].server.enqueue(req);
        Ok(id)
    }

    /// Run the fleet event loop until every lane is idle.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// One fleet event-loop iteration: apply due lifecycle commands,
    /// step the furthest-behind lane, fold in its completions, then run
    /// the failover and work-stealing policies. Returns `false` when no
    /// live lane has pending work.
    pub fn step(&mut self) -> bool {
        self.apply_due_commands();
        let Some(device) = self.next_lane() else {
            return false;
        };
        if self.apply_pre_step_command(device) {
            return true;
        }
        self.lanes[device].server.step();
        self.collect_completions(device);
        self.failover_if_open(device);
        self.balance();
        true
    }

    /// Kill `device` now: evacuate its queue and calendar to the
    /// survivors and take it out of rotation for good. Unplaceable
    /// requests finish as [`RequestOutcome::Evicted`].
    pub fn kill_device(&mut self, device: usize) {
        let at = self.lanes[device].server.now_us();
        self.kill_now(device, at);
    }

    /// Drain `device` now: stop admission, re-route its future
    /// (calendar) arrivals, finish its queued work.
    pub fn drain_device(&mut self, device: usize) {
        let at = self.lanes[device].server.now_us();
        self.drain_now(device, at);
    }

    /// Return a draining device to rotation (dead devices stay dead).
    pub fn rejoin_device(&mut self, device: usize) {
        if self.lanes[device].state == DeviceState::Draining {
            self.lanes[device].state = DeviceState::Active;
        }
    }

    /// Schedule a kill at virtual instant `at_us` (applied by the event
    /// loop when the fleet frontier reaches it).
    pub fn schedule_kill(&mut self, device: usize, at_us: f64) {
        self.schedule(device, at_us, CommandKind::Kill);
    }

    /// Schedule a drain at virtual instant `at_us`.
    pub fn schedule_drain(&mut self, device: usize, at_us: f64) {
        self.schedule(device, at_us, CommandKind::Drain);
    }

    /// Schedule a rejoin at virtual instant `at_us`.
    pub fn schedule_rejoin(&mut self, device: usize, at_us: f64) {
        self.schedule(device, at_us, CommandKind::Rejoin);
    }

    fn schedule(&mut self, device: usize, at_us: f64, kind: CommandKind) {
        assert!(device < self.lanes.len(), "no such device: {device}");
        assert!(at_us.is_finite(), "command instant must be finite");
        let cmd =
            ScheduledCommand { at_us, device, seq: self.next_command_seq, kind };
        self.next_command_seq += 1;
        let pos = self.commands.partition_point(|c| {
            c.at_us.total_cmp(&cmd.at_us).then(c.seq.cmp(&cmd.seq)).is_lt()
        });
        self.commands.insert(pos, cmd);
    }

    /// The lane the event loop steps next: the furthest-behind clock
    /// among live lanes with pending work, ties by index.
    fn next_lane(&self) -> Option<usize> {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.state != DeviceState::Dead && l.server.pending() > 0)
            .min_by(|(_, a), (_, b)| a.server.now_us().total_cmp(&b.server.now_us()))
            .map(|(i, _)| i)
    }

    /// Apply every scheduled command whose instant the fleet frontier
    /// (the next lane to step) has reached. Commands bind before the
    /// affected lane can step past them: stepping requires being the
    /// frontier, and the frontier cannot pass an unapplied command.
    fn apply_due_commands(&mut self) {
        loop {
            let Some(frontier) =
                self.next_lane().map(|d| self.lanes[d].server.now_us())
            else {
                return;
            };
            if self.commands.first().is_none_or(|c| c.at_us > frontier) {
                return;
            }
            let cmd = self.commands.remove(0);
            self.apply_command(cmd);
        }
    }

    /// An idle lane about to jump its clock over a command's instant
    /// applies the command first — otherwise a quiet lane could leap
    /// past its own kill time and serve arrivals scheduled after its
    /// death. Returns `true` when a command was applied (the caller
    /// re-enters the loop instead of stepping).
    fn apply_pre_step_command(&mut self, device: usize) -> bool {
        let lane = &self.lanes[device];
        let now = lane.server.now_us();
        let jump_target = if lane.server.queue_len() == 0 {
            lane.server.next_arrival_us()
        } else {
            None
        };
        let due = |c: &ScheduledCommand| {
            c.device == device
                && (c.at_us <= now || jump_target.is_some_and(|a| a >= c.at_us))
        };
        let Some(i) = self.commands.iter().position(due) else {
            return false;
        };
        let cmd = self.commands.remove(i);
        self.apply_command(cmd);
        true
    }

    fn apply_command(&mut self, cmd: ScheduledCommand) {
        match cmd.kind {
            CommandKind::Kill => self.kill_now(cmd.device, cmd.at_us),
            CommandKind::Drain => self.drain_now(cmd.device, cmd.at_us),
            CommandKind::Rejoin => self.rejoin_device(cmd.device),
        }
    }

    fn kill_now(&mut self, device: usize, at_us: f64) {
        if self.lanes[device].state == DeviceState::Dead {
            return;
        }
        self.lanes[device].state = DeviceState::Dead;
        let t = self.lanes[device].server.now_us().max(at_us);
        let mut orphans = self.lanes[device].server.take_queued();
        orphans.extend(self.lanes[device].server.take_calendar());
        self.relocate(device, orphans, t, Orphans::Evict);
        self.collect_completions(device);
    }

    fn drain_now(&mut self, device: usize, at_us: f64) {
        if self.lanes[device].state != DeviceState::Active {
            return;
        }
        self.lanes[device].state = DeviceState::Draining;
        let t = self.lanes[device].server.now_us().max(at_us);
        let future = self.lanes[device].server.take_calendar();
        self.relocate(device, future, t, Orphans::Evict);
        self.collect_completions(device);
    }

    /// Breaker-open failover: once a lane's breaker trips, its queued
    /// (not-yet-launched) requests migrate to lanes that can still
    /// dispatch, deadlines intact. With no such lane (fleet of one, or
    /// every survivor down) the queue stays put — which is exactly the
    /// single-server behavior, keeping the fleet-of-1 reduction exact
    /// even under faults.
    fn failover_if_open(&mut self, device: usize) {
        if !self.lanes[device].server.breaker_open()
            || self.lanes[device].server.queue_len() == 0
        {
            return;
        }
        let has_target = self.lanes.iter().enumerate().any(|(i, l)| {
            i != device
                && l.state == DeviceState::Active
                && !l.server.breaker_open()
        });
        if !has_target {
            return;
        }
        let t = self.lanes[device].server.now_us();
        let reqs = self.lanes[device].server.take_queued();
        self.relocate(device, reqs, t, Orphans::ReturnToSource);
    }

    /// Move `reqs` (EDF order) off `source` at instant `t_us`: each
    /// request goes to the router's preferred remaining lane, falling
    /// through full queues to the next choice. Receiving lanes advance
    /// to the handover instant so migrated work is never served in the
    /// fleet's past.
    fn relocate(
        &mut self,
        source: usize,
        reqs: Vec<DetectionRequest>,
        t_us: f64,
        orphans: Orphans,
    ) {
        let mut moved = 0u64;
        for req in reqs {
            let geometry = req.geometry();
            let mut views = self.lane_views(geometry, req.backend);
            views[source].accepting = false;
            let mut unplaced = Some(req);
            while let Some(req) = unplaced.take() {
                let Some(target) = self.router.pick(&views) else {
                    unplaced = Some(req);
                    break;
                };
                self.lanes[target].server.advance_to(t_us);
                match self.lanes[target].server.inject(req) {
                    Ok(()) => {
                        self.charge_geometry(target, geometry);
                        moved += 1;
                    }
                    Err(bounced) => {
                        unplaced = Some(bounced);
                        views[target].accepting = false;
                    }
                }
            }
            if let Some(req) = unplaced {
                match orphans {
                    Orphans::ReturnToSource => {
                        // The slots we drained are free again, so this
                        // cannot bounce; evict rather than lose it if
                        // it somehow does.
                        if let Err(req) = self.lanes[source].server.inject(req) {
                            self.evict(source, req, t_us);
                        }
                    }
                    Orphans::Evict => self.evict(source, req, t_us),
                }
            }
        }
        if moved > 0 {
            self.router.stats_mut().migrations += moved;
            self.router.stats_mut().failovers += 1;
        }
    }

    /// Finish a request no lane could take as Evicted (accounted at
    /// fleet level: its original lane already counted the submission).
    fn evict(&mut self, device: usize, req: DetectionRequest, t_us: f64) {
        self.local_stats.evicted += 1;
        self.completed.push(CompletedRequest {
            id: req.id,
            priority: req.priority,
            backend: req.backend,
            arrival_us: req.arrival_us,
            deadline_us: req.deadline_us,
            outcome: RequestOutcome::Evicted { evicted_us: t_us },
        });
        self.completed_device.push(device);
    }

    /// Deterministic work stealing: while an idle healthy lane and a
    /// deep-enough victim exist, move the loosest-deadline half of the
    /// deepest queue (bounded by the policy) to the lowest-index idle
    /// lane. Each move strictly shrinks the deepest queue and occupies
    /// a thief, so the loop terminates.
    fn balance(&mut self) {
        if !self.steal.enabled || self.lanes.len() < 2 {
            return;
        }
        loop {
            let thief = self.lanes.iter().enumerate().position(|(_, l)| {
                l.state == DeviceState::Active
                    && l.server.health() == crate::ServerHealth::Healthy
                    && l.server.pending() == 0
            });
            let Some(thief) = thief else { return };
            let victim = self
                .lanes
                .iter()
                .enumerate()
                .filter(|&(i, l)| {
                    i != thief
                        && l.state == DeviceState::Active
                        && l.server.queue_len() >= self.steal.min_victim_queue
                })
                .max_by_key(|&(i, l)| (l.server.queue_len(), usize::MAX - i))
                .map(|(i, _)| i);
            let Some(victim) = victim else { return };
            if self.steal_once(thief, victim) == 0 {
                return;
            }
        }
    }

    /// One thief-victim transfer. Returns the number of requests moved.
    fn steal_once(&mut self, thief: usize, victim: usize) -> u64 {
        let mut queue = self.lanes[victim].server.take_queued();
        let take = (queue.len() / 2).min(self.steal.max_steal);
        let stolen = queue.split_off(queue.len() - take);
        for req in queue {
            // Just drained from these very slots; cannot bounce.
            let _ = self.lanes[victim].server.inject(req);
        }
        // The thief picks the work up at the victim's instant — the
        // earliest moment the fleet knows the victim is backlogged.
        let t = self.lanes[victim].server.now_us();
        self.lanes[thief].server.advance_to(t);
        let mut moved = 0u64;
        for req in stolen {
            let geometry = req.geometry();
            // A thief of a different engine can never take the work:
            // the result would come off the wrong kernel chain.
            let admitted = self.lanes[thief].server.backend() == req.backend
                && (self.lanes[thief].geometries.iter().any(|(g, _)| *g == geometry)
                    || self.admits(&self.lanes[thief], geometry));
            if !admitted {
                let _ = self.lanes[victim].server.inject(req);
                continue;
            }
            match self.lanes[thief].server.inject(req) {
                Ok(()) => {
                    self.charge_geometry(thief, geometry);
                    moved += 1;
                }
                Err(req) => {
                    let _ = self.lanes[victim].server.inject(req);
                }
            }
        }
        self.router.stats_mut().steals += moved;
        moved
    }

    fn collect_completions(&mut self, device: usize) {
        for c in self.lanes[device].server.take_completed() {
            self.completed.push(c);
            self.completed_device.push(device);
        }
    }

    /// Per-lane snapshots the router decides over, for one geometry and
    /// backend class.
    fn lane_views(&self, geometry: GeomClass, backend: Backend) -> Vec<LaneView> {
        self.lanes
            .iter()
            .map(|l| LaneView {
                accepting: l.state == DeviceState::Active,
                breaker_open: l.server.breaker_open(),
                pending: l.server.pending(),
                has_geometry: l.geometries.iter().any(|(g, _)| *g == geometry),
                can_admit: self.admits(l, geometry),
                backend_match: l.server.backend() == backend,
            })
            .collect()
    }

    /// Whether a lane's memory budget admits `geometry`.
    fn admits(&self, lane: &Lane<D>, geometry: GeomClass) -> bool {
        let Some(budget) = self.budget else { return true };
        match self.charge_for(lane, geometry) {
            Some(charge) => lane.charged_bytes + charge <= budget,
            // Unplannable geometry: admit and let dispatch fail it as
            // request-caused, the single-server behavior.
            None => true,
        }
    }

    /// Device bytes admitting `geometry` would add to a lane's ledger:
    /// the projected buffer pool, plus the constant-memory footprint on
    /// the lane's first geometry. Zero if already admitted.
    fn charge_for(&self, lane: &Lane<D>, geometry: GeomClass) -> Option<usize> {
        if lane.geometries.iter().any(|(g, _)| *g == geometry) {
            return Some(0);
        }
        let projected = lane
            .server
            .detector()
            .projected_device_bytes(geometry.width as usize, geometry.height as usize)
            .ok()?;
        Some(if lane.geometries.is_empty() {
            projected
        } else {
            projected - lane.server.detector().const_bytes()
        })
    }

    fn charge_geometry(&mut self, device: usize, geometry: GeomClass) {
        if self.lanes[device].geometries.iter().any(|(g, _)| *g == geometry) {
            return;
        }
        let Some(charge) = self.charge_for(&self.lanes[device], geometry) else {
            return;
        };
        let lane = &mut self.lanes[device];
        lane.geometries.push((geometry, charge));
        lane.charged_bytes += charge;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};

    fn edge_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("edge", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn pattern_frame(w: usize, h: usize, shift: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            let x = x + shift;
            if (20..30).contains(&x) && (14..34).contains(&y) {
                5.0
            } else if (30..40).contains(&x) && (14..34).contains(&y) {
                250.0
            } else {
                120.0
            }
        })
    }

    fn det_cfg() -> DetectorConfig {
        DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() }
    }

    fn fleet(devices: usize, config: FleetConfig) -> FleetServer {
        FleetServer::new(&edge_cascade(), det_cfg(), devices, config).expect("fleet")
    }

    fn outcome_kind(c: &CompletedRequest) -> u8 {
        match &c.outcome {
            RequestOutcome::Served { .. } => 0,
            RequestOutcome::Degraded { .. } => 1,
            RequestOutcome::ShedLate { .. } => 2,
            RequestOutcome::RejectedQueueFull => 3,
            RequestOutcome::RejectedBrownOut => 4,
            RequestOutcome::RejectedFailFast => 5,
            RequestOutcome::Failed { .. } => 6,
            RequestOutcome::Expired { .. } => 7,
            RequestOutcome::Evicted { .. } => 8,
        }
    }

    fn fingerprint(completed: &[CompletedRequest]) -> Vec<(u64, u8, u64)> {
        completed
            .iter()
            .map(|c| {
                let t = match &c.outcome {
                    RequestOutcome::Served { completed_us, result, .. }
                    | RequestOutcome::Degraded { completed_us, result, .. } => {
                        completed_us.to_bits() ^ result.raw.len() as u64
                    }
                    RequestOutcome::ShedLate { shed_us } => shed_us.to_bits(),
                    RequestOutcome::Expired { expired_us, .. } => expired_us.to_bits(),
                    RequestOutcome::Evicted { evicted_us } => evicted_us.to_bits(),
                    _ => 0,
                };
                (c.id.0, outcome_kind(c), t)
            })
            .collect()
    }

    #[test]
    fn fleet_of_one_reproduces_the_single_server_exactly() {
        let submissions: Vec<(f64, usize, Priority)> = (0..12)
            .map(|i| (i as f64 * 350.0, i % 4, Priority::ALL[i % 3]))
            .collect();
        let mut single = DetectionServer::new(
            &edge_cascade(),
            det_cfg(),
            ServeConfig::default(),
        )
        .unwrap();
        let mut fleet = fleet(1, FleetConfig::default());
        for &(t, shift, p) in &submissions {
            single.submit(pattern_frame(64, 48, shift), p, t, 30_000.0).unwrap();
            fleet.submit(pattern_frame(64, 48, shift), p, t, 30_000.0).unwrap();
        }
        single.run();
        fleet.run();
        assert_eq!(fingerprint(single.completed()), fingerprint(fleet.completed()));
        assert_eq!(&fleet.stats(), single.stats(), "merged stats equal the lane's");
        assert_eq!(fleet.now_us(), single.now_us());
    }

    #[test]
    fn two_devices_split_the_load_and_account_exactly() {
        let n = 12u64;
        let mut f = fleet(
            2,
            FleetConfig {
                route: RoutePolicy { affinity_slack: 2, ..RoutePolicy::default() },
                ..FleetConfig::default()
            },
        );
        for i in 0..n {
            f.submit(pattern_frame(64, 48, (i % 4) as usize), Priority::Standard, 0.0, 1e9)
                .unwrap();
        }
        f.run();
        let total = f.stats();
        assert_eq!(total.submitted, n);
        assert_eq!(total.served, n);
        assert_eq!(f.completed().len() as u64, n);
        assert!(f.device_stats(0).served > 0, "device 0 took a share");
        assert!(f.device_stats(1).served > 0, "device 1 took a share");
        let routed = f.router_stats().routed_per_device.clone();
        assert_eq!(routed.iter().sum::<u64>(), n);
        assert!(routed.iter().all(|&r| r > 0), "router spread the load: {routed:?}");
    }

    #[test]
    fn killed_device_migrates_queue_and_calendar_to_survivors() {
        let run = |kill: bool| {
            let mut f = fleet(
                2,
                FleetConfig {
                    route: RoutePolicy { affinity_slack: 2, ..RoutePolicy::default() },
                    ..FleetConfig::default()
                },
            );
            for i in 0..16u64 {
                f.submit(
                    pattern_frame(64, 48, (i % 4) as usize),
                    Priority::Standard,
                    i as f64 * 200.0,
                    1e9,
                )
                .unwrap();
            }
            if kill {
                f.schedule_kill(0, 900.0);
            }
            f.run();
            (f.stats(), f.router_stats().clone(), fingerprint(f.completed()))
        };
        let (stats, router, print) = run(true);
        assert_eq!(stats.served, 16, "survivor absorbs everything (generous SLO)");
        assert_eq!(stats.evicted, 0);
        assert!(router.migrations > 0, "the kill must actually move requests");
        assert!(router.failovers > 0);
        let (_, _, print2) = run(true);
        assert_eq!(print, print2, "chaos runs are seed-reproducible");
        let (baseline, _, _) = run(false);
        assert_eq!(baseline.served, 16);
    }

    #[test]
    fn kill_with_no_survivor_evicts_rather_than_loses() {
        let mut f = fleet(1, FleetConfig::default());
        for i in 0..5u64 {
            f.submit(pattern_frame(64, 48, 0), Priority::Standard, i as f64 * 100.0, 1e9)
                .unwrap();
        }
        f.kill_device(0);
        f.run();
        let stats = f.stats();
        assert_eq!(stats.evicted, 5, "nothing is silently dropped");
        assert_eq!(stats.submitted, 5);
        assert_eq!(f.completed().len(), 5);
        assert!(f
            .completed()
            .iter()
            .all(|c| matches!(c.outcome, RequestOutcome::Evicted { .. })));
        assert_eq!(f.device_state(0), DeviceState::Dead);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn draining_stops_admission_but_serves_rejoined_traffic() {
        let mut f = fleet(2, FleetConfig::default());
        for i in 0..8u64 {
            f.submit(pattern_frame(64, 48, (i % 4) as usize), Priority::Standard, 0.0, 1e9)
                .unwrap();
        }
        // Drain before anything arrives: device 0's calendar re-routes.
        f.drain_device(0);
        assert_eq!(f.device_state(0), DeviceState::Draining);
        f.run();
        assert_eq!(f.device_stats(0).served, 0, "drained before serving anything");
        assert_eq!(f.device_stats(1).served, 8);
        // Rejoined, the device serves again (least-loaded, lowest index).
        f.rejoin_device(0);
        assert_eq!(f.device_state(0), DeviceState::Active);
        let t = f.now_us();
        for i in 0..4u64 {
            f.submit(pattern_frame(64, 48, (i % 4) as usize), Priority::Standard, t, 1e9)
                .unwrap();
        }
        f.run();
        assert!(f.device_stats(0).served > 0, "rejoined device takes traffic");
        assert_eq!(f.stats().served, 12);
    }

    #[test]
    fn memory_budget_gates_admission_per_device() {
        let probe = fleet(1, FleetConfig::default());
        let small = probe.device(0).detector().projected_device_bytes(64, 48).unwrap();
        let large = probe.device(0).detector().projected_device_bytes(96, 72).unwrap();
        assert!(large > small);
        // Budget fits exactly one small geometry per device.
        let mut f = fleet(
            2,
            FleetConfig { device_memory_budget: Some(small), ..FleetConfig::default() },
        );
        f.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 1e9).unwrap();
        // Same geometry re-admits everywhere (the pool is shared).
        f.submit(pattern_frame(64, 48, 1), Priority::Standard, 0.0, 1e9).unwrap();
        // A second geometry overflows both budgets.
        let err = f.submit(pattern_frame(96, 72, 0), Priority::Standard, 0.0, 1e9);
        assert!(matches!(err, Err(ServeError::NoCapacity { width: 96, height: 72 })));
        assert_eq!(f.router_stats().admission_rejected, 1);
        f.run();
        assert_eq!(f.stats().served, 2);
        // An unlimited fleet takes the large geometry fine.
        let mut open = fleet(1, FleetConfig::default());
        open.submit(pattern_frame(96, 72, 0), Priority::Standard, 0.0, 1e9).unwrap();
        open.run();
        assert_eq!(open.stats().served, 1);
    }

    #[test]
    fn idle_lane_steals_from_a_deep_queue() {
        // Two geometries, sticky affinity: 10 same-geometry requests
        // pile on device 0, device 1 serves its single small request
        // and goes idle while device 0 is still backlogged — stealing
        // must move work to the idle lane.
        let mut f = fleet(
            2,
            FleetConfig {
                route: RoutePolicy { affinity_slack: 64, ..RoutePolicy::default() },
                steal: StealPolicy { max_steal: 4, ..StealPolicy::default() },
                ..FleetConfig::default()
            },
        );
        for i in 0..10u64 {
            f.submit(pattern_frame(64, 48, (i % 4) as usize), Priority::Standard, 0.0, 1e9)
                .unwrap();
        }
        f.submit(pattern_frame(32, 48, 0), Priority::Standard, 0.0, 1e9).unwrap();
        f.run();
        assert_eq!(f.stats().served, 11);
        assert!(f.router_stats().steals > 0, "idle lane must steal from the backlog");
        assert!(
            f.device_stats(1).served > 1,
            "the thief served stolen work, not just its own"
        );
    }

    #[test]
    fn stealing_disabled_leaves_the_backlog_where_it_was_routed() {
        let mut f = fleet(
            2,
            FleetConfig {
                route: RoutePolicy { affinity_slack: 64, ..RoutePolicy::default() },
                steal: StealPolicy::disabled(),
                ..FleetConfig::default()
            },
        );
        for i in 0..8u64 {
            f.submit(pattern_frame(64, 48, (i % 4) as usize), Priority::Standard, 0.0, 1e9)
                .unwrap();
        }
        f.run();
        assert_eq!(f.router_stats().steals, 0);
        assert_eq!(f.device_stats(0).served, 8, "affinity kept the geometry home");
    }

    #[test]
    fn mixed_fleet_routes_each_backend_class_to_its_lane() {
        use fd_cnn::{CnnDetector, CnnModel};
        let haar = FaceDetector::try_new(&edge_cascade(), det_cfg()).expect("haar");
        let cnn = CnnDetector::try_new(&CnnModel::seeded(0), det_cfg()).expect("cnn");
        let detectors: Vec<Box<dyn Detector>> = vec![Box::new(haar), Box::new(cnn)];
        let mut f = FleetServer::from_detectors(detectors, FleetConfig::default());
        assert_eq!(f.device_backend(0), Backend::Haar);
        assert_eq!(f.device_backend(1), Backend::Cnn);
        for i in 0..6u64 {
            let backend = Backend::ALL[(i % 2) as usize];
            f.submit_to_backend(
                pattern_frame(64, 48, (i % 4) as usize),
                Priority::Standard,
                0.0,
                1e9,
                backend,
            )
            .expect("valid submission");
        }
        f.run();
        let st = f.stats();
        assert_eq!(st.served, 6);
        assert_eq!(st.submitted_per_backend, [3, 3]);
        assert_eq!(st.served_per_backend, [3, 3]);
        assert_eq!(st.backend_latency(Backend::Haar).len(), 3);
        assert_eq!(st.backend_latency(Backend::Cnn).len(), 3);
        assert_eq!(st.backend_goodput(Backend::Cnn), 1.0);
        // Every completion ran on the lane whose engine matches its
        // class — the wrong-backend lane never takes a request, even
        // when idle (work stealing included).
        for (c, &d) in f.completed().iter().zip(f.completed_device()) {
            assert_eq!(f.device_backend(d), c.backend, "request {} misrouted", c.id);
        }
        // The backend-less front door takes lane 0's (Haar's) class.
        let t = f.now_us();
        f.submit(pattern_frame(64, 48, 0), Priority::Standard, t, 1e9).expect("submit");
        f.run();
        assert_eq!(f.stats().submitted_per_backend, [4, 3]);
    }

    #[test]
    fn backend_with_no_lane_is_refused_at_the_front_door() {
        let mut f = fleet(2, FleetConfig::default());
        let err = f.submit_to_backend(
            pattern_frame(64, 48, 0),
            Priority::Standard,
            0.0,
            1e9,
            Backend::Cnn,
        );
        assert!(
            matches!(err, Err(ServeError::NoCapacity { width: 64, height: 48 })),
            "a Haar-only fleet cannot take CNN traffic: {err:?}"
        );
        assert_eq!(f.router_stats().admission_rejected, 1);
    }

    #[test]
    fn invalid_submissions_are_rejected_up_front() {
        let mut f = fleet(2, FleetConfig::default());
        assert!(matches!(
            f.submit(pattern_frame(64, 48, 0), Priority::Standard, f64::NAN, 1e6),
            Err(ServeError::InvalidSubmission { .. })
        ));
        assert!(matches!(
            f.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 0.0),
            Err(ServeError::InvalidSubmission { .. })
        ));
        // All lanes dead: capacity error, not a panic.
        f.kill_device(0);
        f.kill_device(1);
        assert!(matches!(
            f.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 1e6),
            Err(ServeError::NoCapacity { .. })
        ));
    }
}
