//! fd-serve: deterministic request-serving frontend for the detector.
//!
//! Where `fd_detector::StreamSupervisor` manages long-lived *video
//! streams*, this crate serves independent one-shot detection
//! *requests*, the way an inference service would:
//!
//! * [`RequestQueue`] — bounded admission per [`Priority`] class, so
//!   bulk traffic cannot crowd out interactive requests;
//! * [`DynamicBatcher`] — coalesces pending same-geometry requests into
//!   one shared device submission (each pyramid-level kernel launches
//!   once for the whole batch via `fd_gpu::Gpu::launch_batched`),
//!   trading a bounded `max_wait_us` of queueing delay for large
//!   per-launch overhead savings;
//! * SLO scheduling — every request carries a deadline; dispatch is
//!   earliest-deadline-first, and requests whose deadline passes while
//!   queued are deterministically shed instead of wasting device time;
//! * [`ServeStats`] — latency quantiles (p50/p95/p99 in virtual µs),
//!   queue-depth high-water marks, shed/reject, batch-occupancy and
//!   fault-recovery accounting;
//! * fault tolerance — under an injected `fd_gpu::FaultPlan`, faulted
//!   batches are retried with bounded deterministic backoff, poisoned
//!   requests are isolated by device attribution or bisection so their
//!   batchmates still complete ([`RetryPolicy`]), deadline pressure
//!   degrades re-attempts to shed-scale plans, and sustained faults
//!   drive brown-out admission and a fail-fast breaker with half-open
//!   probes ([`HealthPolicy`]).
//!
//! * fleet serving — [`FleetServer`] shards requests across N simulated
//!   devices behind one front door: geometry-affine routing with
//!   per-device memory-budget admission ([`Router`]), breaker-open
//!   failover that migrates queued work to healthy replicas with
//!   deadlines intact, drain/kill/rejoin device lifecycle, and
//!   deterministic work stealing between per-device queues. A fleet of
//!   one reduces byte-for-byte to a single [`DetectionServer`].
//!
//! * multi-backend serving — both servers are generic over
//!   `fd_detector::Detector`, so the same loop drives the Haar cascade
//!   (default) or the compact CNN cascade of `fd-cnn`. Each request
//!   carries a [`Backend`] class; a mixed fleet
//!   (`FleetServer<Box<dyn Detector>>`) routes cheap-Haar and
//!   high-accuracy-CNN traffic to matching lanes via
//!   [`FleetServer::submit_to_backend`], and batches stay same-geometry
//!   *and* same-backend by construction. [`ServeStats`] breaks latency
//!   and goodput out per backend.
//!
//! Everything runs on a virtual clock against the simulated GPU: a
//! serving run is a pure function of its submissions and configuration,
//! bit-identical across runs and across `FD_SIM_THREADS` settings.
//!
//! ```
//! use fd_serve::{DetectionServer, Priority, ServeConfig};
//! use fd_detector::DetectorConfig;
//! # use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
//! # use fd_imgproc::GrayImage;
//! # let mut cascade = Cascade::new("demo", 24);
//! # cascade.stages.push(Stage {
//! #     stumps: vec![Stump {
//! #         feature: HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8),
//! #         threshold: 8192, left: -1.0, right: 1.0 }],
//! #     threshold: 0.5 });
//!
//! let mut server = DetectionServer::new(
//!     &cascade, DetectorConfig::default(), ServeConfig::default())?;
//! let frame = GrayImage::from_fn(64, 48, |x, y| ((x * 3 + y) % 251) as f32);
//! server.submit(frame, Priority::Interactive, 0.0, 50_000.0)?;
//! server.run();
//! assert_eq!(server.stats().served, 1);
//! # Ok::<(), fd_serve::ServeError>(())
//! ```

pub mod batcher;
pub mod fleet;
pub mod health;
pub mod queue;
pub mod recovery;
pub mod request;
pub mod router;
pub mod server;
pub mod stats;

pub use batcher::{BatchDecision, BatchPolicy, DynamicBatcher};
pub use fd_detector::{Backend, Detector};
pub use fleet::{DeviceState, FleetConfig, FleetServer, StealPolicy};
pub use health::{FaultReaction, HealthMachine, HealthPolicy, ServerHealth};
pub use queue::RequestQueue;
pub use recovery::{RecoveryStep, RetryPolicy};
pub use request::{DetectionRequest, Priority, RequestId};
pub use router::{LaneView, RoutePolicy, Router, RouterStats};
pub use server::{
    CompletedRequest, DetectionServer, RequestOutcome, ServeConfig, ServeError,
};
pub use stats::{LatencyHistogram, ServeStats};
