//! The virtual-clock serving loop: arrivals → queue → batch → device.
//!
//! [`DetectionServer`] owns a detection engine — any
//! [`fd_detector::Detector`], defaulting to the Haar [`FaceDetector`] —
//! and advances a virtual clock in microseconds. Submissions go onto an *arrival calendar*
//! (they may be scheduled at any time at or after the current instant);
//! the event loop then alternates between ingesting due arrivals,
//! shedding already-late queued requests, and asking the
//! [`DynamicBatcher`] whether to dispatch the EDF head's batch or sleep
//! to the next decision point. Device time comes from the simulated
//! timeline of each submission, so the entire run — latencies, shed
//! sets, batch compositions, statistics — is a deterministic function
//! of the submissions and the configuration, bit-identical at any
//! `FD_SIM_THREADS`.
//!
//! Under an injected [`fd_gpu::FaultPlan`] the loop additionally runs a
//! fault-tolerance layer (see [`crate::recovery`] and [`crate::health`]):
//! faulted batches are retried, bisected or slot-isolated so one
//! poisoned request cannot fail its batchmates; retries are bounded and
//! deadline-aware, degrading to shed-scale plans under pressure; and
//! sustained faults drive brown-out admission and a fail-fast breaker.
//! All of it engages only on error paths, so a zero-fault configuration
//! is byte-identical to a server without the layer.

use std::collections::VecDeque;

use fd_detector::{Backend, Detector, DetectorConfig, DetectorError, FaceDetector, FrameResult};
use fd_haar::Cascade;
use fd_imgproc::GrayImage;

use crate::batcher::{BatchDecision, BatchPolicy, DynamicBatcher};
use crate::health::{FaultReaction, HealthMachine, HealthPolicy, ServerHealth};
use crate::queue::RequestQueue;
use crate::recovery::{RecoveryStep, RetryPolicy};
use crate::request::{DetectionRequest, Priority, RequestId};
use crate::stats::ServeStats;

/// Serving-side configuration (the wrapped detector has its own
/// [`DetectorConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Queue slots per priority class.
    pub queue_depth_per_class: usize,
    /// Dynamic batching policy.
    pub batch: BatchPolicy,
    /// Shed queued requests whose deadline has passed instead of running
    /// them late (deterministic load shedding). Disabling serves
    /// everything, however late.
    pub shed_late: bool,
    /// Fault recovery for batched submissions (retries, isolation,
    /// degraded completions). [`RetryPolicy::disabled`] reproduces the
    /// legacy fail-the-batch behavior.
    pub retry: RetryPolicy,
    /// Health machine driving brown-out admission and the fail-fast
    /// breaker. [`HealthPolicy::disabled`] pins the server Healthy.
    pub health: HealthPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_depth_per_class: 64,
            batch: BatchPolicy::default(),
            shed_late: true,
            retry: RetryPolicy::default(),
            health: HealthPolicy::default(),
        }
    }
}

/// Errors surfaced by the serving layer itself.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A submission carried a non-finite or past arrival time, or a
    /// non-positive SLO.
    InvalidSubmission { reason: &'static str },
    /// Building the wrapped detector failed.
    Detector(DetectorError),
    /// A fleet front door could not place the request on any device:
    /// every admitting lane is draining or dead, or no device's memory
    /// budget can take the frame's geometry.
    NoCapacity { width: usize, height: usize },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidSubmission { reason } => {
                write!(f, "invalid submission: {reason}")
            }
            ServeError::Detector(e) => write!(f, "detector construction failed: {e}"),
            ServeError::NoCapacity { width, height } => {
                write!(f, "no fleet device can admit a {width}x{height} request")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Detector(e) => Some(e),
            _ => None,
        }
    }
}

/// How one request's life ended.
#[derive(Debug, Clone)]
pub enum RequestOutcome {
    /// Ran on the device and produced a detection result.
    Served {
        /// When its batch was submitted.
        dispatched_us: f64,
        /// When its batch drained (= completion of every member).
        completed_us: f64,
        /// Requests sharing the submission.
        batch_size: usize,
        /// The detection output.
        result: FrameResult,
    },
    /// Completed with a degraded (shed-scale) pyramid plan: a fault
    /// recovery re-attempt under deadline pressure dropped the finest
    /// `shed_levels` scales so the batch could finish in time.
    Degraded {
        /// When its (final) submission was dispatched.
        dispatched_us: f64,
        /// When that submission drained.
        completed_us: f64,
        /// Requests sharing the final submission.
        batch_size: usize,
        /// Pyramid levels shed from the full plan.
        shed_levels: usize,
        /// The (coarser) detection output.
        result: FrameResult,
    },
    /// Shed while queued: its deadline passed before dispatch.
    ShedLate {
        /// Virtual instant of the shed decision.
        shed_us: f64,
    },
    /// Refused at arrival: its priority class's queue was full.
    RejectedQueueFull,
    /// Refused at arrival: the server was browned out and this request's
    /// class is shed pre-emptively under sustained faults.
    RejectedBrownOut,
    /// Refused at arrival fail-fast: the breaker was open.
    RejectedFailFast,
    /// Its batch's device submission failed (after `attempts`
    /// submissions when recovery was enabled).
    Failed {
        dispatched_us: f64,
        /// Device submissions that included this request.
        attempts: u32,
        error: DetectorError,
    },
    /// Its deadline passed while its batch was in fault recovery, so
    /// further retries were abandoned.
    Expired {
        /// Virtual instant recovery gave up on it.
        expired_us: f64,
        /// Device submissions that included this request.
        attempts: u32,
        /// The fault that put its batch into recovery.
        error: DetectorError,
    },
    /// Its fleet device was killed (or drained away from under it) and
    /// no surviving replica could take it over. Only the fleet layer
    /// emits this; a single server never does.
    Evicted {
        /// Virtual instant the device was lost.
        evicted_us: f64,
    },
}

/// A finished request: identity, timing and outcome.
#[derive(Debug, Clone)]
pub struct CompletedRequest {
    pub id: RequestId,
    pub priority: Priority,
    /// The detection backend that served (or would have served) it.
    pub backend: Backend,
    pub arrival_us: f64,
    pub deadline_us: f64,
    pub outcome: RequestOutcome,
}

impl CompletedRequest {
    /// Arrival-to-completion latency for requests that produced a
    /// result (served or degraded).
    pub fn latency_us(&self) -> Option<f64> {
        match &self.outcome {
            RequestOutcome::Served { completed_us, .. }
            | RequestOutcome::Degraded { completed_us, .. } => {
                Some(completed_us - self.arrival_us)
            }
            _ => None,
        }
    }

    /// Whether a completed (served or degraded) request made its
    /// deadline.
    pub fn met_deadline(&self) -> Option<bool> {
        match &self.outcome {
            RequestOutcome::Served { completed_us, .. }
            | RequestOutcome::Degraded { completed_us, .. } => {
                Some(*completed_us <= self.deadline_us)
            }
            _ => None,
        }
    }
}

/// Deterministic request-serving frontend over one detector/device (see
/// module docs). Generic over the detection engine; the default is the
/// Haar [`FaceDetector`], and serving it through the generic loop is
/// byte-identical to the pre-trait concrete server. One-shot requests
/// only; long-lived video sessions stay with
/// `fd_detector::StreamSupervisor`.
pub struct DetectionServer<D: Detector = FaceDetector> {
    detector: D,
    queue: RequestQueue,
    batcher: DynamicBatcher,
    shed_late: bool,
    retry: RetryPolicy,
    health: HealthMachine,
    now_us: f64,
    next_seq: u64,
    /// Span of the last successful device submission, used to project
    /// whether a recovery re-attempt can still make a group's deadline.
    last_span_us: f64,
    /// Future submissions, kept sorted by (arrival, seq) *descending* so
    /// the next one pops off the back in O(1).
    arrivals: Vec<DetectionRequest>,
    completed: Vec<CompletedRequest>,
    stats: ServeStats,
}

/// A (sub-)batch moving through fault recovery inside one dispatch.
struct RecoveryGroup {
    reqs: Vec<DetectionRequest>,
    /// Transient retries this group's lineage has spent.
    retries: u32,
    /// Device submissions that have included this group's members.
    attempts: u32,
    /// The most recent fault of this lineage; `None` marks a fault-free
    /// first attempt, which gates the expiry filter and shed decision so
    /// fault-free dispatches stay byte-identical to the legacy path.
    last_error: Option<DetectorError>,
}

impl DetectionServer {
    /// Build a server around a fresh Haar detector for `cascade`.
    pub fn new(
        cascade: &Cascade,
        detector_config: DetectorConfig,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        let detector =
            FaceDetector::try_new(cascade, detector_config).map_err(ServeError::Detector)?;
        Ok(Self::from_detector(detector, config))
    }
}

impl<D: Detector> DetectionServer<D> {
    /// Build a server around an existing detector (and therefore its
    /// simulated device).
    pub fn from_detector(detector: D, config: ServeConfig) -> Self {
        Self {
            detector,
            queue: RequestQueue::new(config.queue_depth_per_class),
            batcher: DynamicBatcher::new(config.batch),
            shed_late: config.shed_late,
            retry: config.retry,
            health: HealthMachine::new(config.health),
            now_us: 0.0,
            next_seq: 0,
            last_span_us: 0.0,
            arrivals: Vec::new(),
            completed: Vec::new(),
            stats: ServeStats::default(),
        }
    }

    /// The current virtual time, µs.
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// The server's current health state.
    pub fn health(&self) -> ServerHealth {
        self.health.state()
    }

    /// The wrapped detector (profiler access, device inspection).
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// The backend class this server's detector serves.
    pub fn backend(&self) -> Backend {
        self.detector.backend()
    }

    /// Requests on the arrival calendar plus requests queued.
    pub fn pending(&self) -> usize {
        self.arrivals.len() + self.queue.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Finished requests, in completion order.
    pub fn completed(&self) -> &[CompletedRequest] {
        &self.completed
    }

    /// Drain the finished-request log (closed-loop generators resubmit
    /// from these).
    pub fn take_completed(&mut self) -> Vec<CompletedRequest> {
        std::mem::take(&mut self.completed)
    }

    /// Whether the fail-fast breaker is currently open (dispatch
    /// suspended until the cool-down elapses).
    pub fn breaker_open(&self) -> bool {
        self.health.is_open()
    }

    /// Requests sitting in the dispatch queue (excluding the calendar).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Arrival instant of the next calendar entry, if any.
    pub fn next_arrival_us(&self) -> Option<f64> {
        self.arrivals.last().map(|r| r.arrival_us)
    }

    /// Pull every queued (already-arrived, not-yet-launched) request off
    /// the dispatch queue in EDF order — the fleet's evacuation and
    /// work-stealing primitive.
    pub(crate) fn take_queued(&mut self) -> Vec<DetectionRequest> {
        self.queue.drain_all()
    }

    /// Pull every not-yet-arrived request off the calendar, earliest
    /// first (fleet kill/drain re-routes these to surviving lanes).
    pub(crate) fn take_calendar(&mut self) -> Vec<DetectionRequest> {
        let mut reqs = std::mem::take(&mut self.arrivals);
        reqs.reverse();
        reqs
    }

    /// Hand a request migrated from another lane to this one without
    /// counting a fresh submission: already-arrived requests go straight
    /// onto the dispatch queue (bounced back if the class is full),
    /// future ones back onto the calendar.
    pub(crate) fn inject(&mut self, req: DetectionRequest) -> Result<(), DetectionRequest> {
        if req.arrival_us <= self.now_us {
            self.queue.offer(req)?;
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        } else {
            let pos = self
                .arrivals
                .partition_point(|r| {
                    r.arrival_us
                        .total_cmp(&req.arrival_us)
                        .then(r.seq.cmp(&req.seq))
                        .is_gt()
                });
            self.arrivals.insert(pos, req);
        }
        Ok(())
    }

    /// Move the clock forward to `t_us` (never backward). Migrated work
    /// is handed over at the source lane's instant; the receiving lane
    /// must not serve it in its own past.
    pub(crate) fn advance_to(&mut self, t_us: f64) {
        self.now_us = self.now_us.max(t_us);
    }

    /// Schedule a detection request: `frame` arrives at `arrival_us`
    /// (which must not lie in the past) with deadline
    /// `arrival_us + slo_us`. Returns the request's id; its outcome
    /// appears in [`Self::completed`] once the clock passes it.
    pub fn submit(
        &mut self,
        frame: GrayImage,
        priority: Priority,
        arrival_us: f64,
        slo_us: f64,
    ) -> Result<RequestId, ServeError> {
        if !arrival_us.is_finite() || arrival_us < self.now_us {
            return Err(ServeError::InvalidSubmission {
                reason: "arrival time must be finite and not in the past",
            });
        }
        if !slo_us.is_finite() || slo_us <= 0.0 {
            return Err(ServeError::InvalidSubmission {
                reason: "SLO must be finite and positive",
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = RequestId(seq);
        let req = DetectionRequest {
            id,
            priority,
            arrival_us,
            deadline_us: arrival_us + slo_us,
            frame,
            backend: self.detector.backend(),
            seq,
        };
        self.enqueue(req);
        Ok(id)
    }

    /// Put an already-built request on the arrival calendar and count
    /// the submission. The fleet front door routes here with its own
    /// (fleet-global) ids, so per-lane sequence state stays untouched.
    pub(crate) fn enqueue(&mut self, req: DetectionRequest) {
        // Insert keeping descending (arrival, seq) so pop() yields the
        // earliest; ties resolve by submission order.
        let pos = self
            .arrivals
            .partition_point(|r| {
                r.arrival_us
                    .total_cmp(&req.arrival_us)
                    .then(r.seq.cmp(&req.seq))
                    .is_gt()
            });
        self.stats.submitted_per_backend[req.backend.index()] += 1;
        self.arrivals.insert(pos, req);
        self.stats.submitted += 1;
    }

    /// Run the event loop until the arrival calendar and the queue are
    /// both empty. Device failures mark the affected requests
    /// [`RequestOutcome::Failed`] and serving continues.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Advance the event loop by one action (ingest, shed, wait or
    /// dispatch). Returns `false` when idle with nothing pending —
    /// closed-loop drivers interleave [`Self::submit`] between steps.
    pub fn step(&mut self) -> bool {
        self.health.tick(self.now_us);
        if self.health.state() != ServerHealth::Healthy {
            self.stats.brownout_ticks += 1;
        }
        self.ingest_due();
        // Breaker open: dispatch is suspended. Jump the clock to the
        // cool-down expiry or the next arrival (which gets rejected
        // fail-fast at ingest), whichever comes first.
        if let Some(until) = self.health.open_until() {
            let next_arrival = self.arrivals.last().map(|r| r.arrival_us);
            if self.arrivals.is_empty() && self.queue.is_empty() {
                return false;
            }
            let target = match next_arrival {
                Some(a) if a < until => a,
                _ => until,
            };
            self.now_us = self.now_us.max(target);
            return true;
        }
        if self.queue.is_empty() {
            let Some(next) = self.arrivals.last() else {
                return false;
            };
            // Idle: jump to the next arrival.
            self.now_us = self.now_us.max(next.arrival_us);
            self.ingest_due();
            return true;
        }
        if self.shed_late {
            let late = self.queue.take_late(self.now_us);
            if !late.is_empty() {
                for req in late {
                    self.stats.shed_late += 1;
                    self.finish(req, RequestOutcome::ShedLate { shed_us: self.now_us });
                }
                return true;
            }
        }
        let next_arrival = self.arrivals.last().map(|r| r.arrival_us);
        let cap = self.health.batch_cap();
        match self.batcher.decide(&self.queue, self.now_us, next_arrival, cap) {
            BatchDecision::WaitUntil(t) => {
                self.now_us = self.now_us.max(t);
            }
            BatchDecision::Dispatch => {
                self.dispatch();
            }
        }
        true
    }

    /// Move arrivals whose time has come into the queue, rejecting into
    /// the completion log when a class is full or the health machine
    /// refuses the class (brown-out / breaker-open fail-fast).
    fn ingest_due(&mut self) {
        while self.arrivals.last().is_some_and(|r| r.arrival_us <= self.now_us) {
            let Some(req) = self.arrivals.pop() else { break };
            if !self.health.admits(req.priority) {
                let outcome = if matches!(self.health.state(), ServerHealth::Open { .. }) {
                    self.stats.rejected_failfast += 1;
                    RequestOutcome::RejectedFailFast
                } else {
                    self.stats.rejected_brownout += 1;
                    RequestOutcome::RejectedBrownOut
                };
                self.finish(req, outcome);
                continue;
            }
            if let Err(req) = self.queue.offer(req) {
                self.stats.rejected_full += 1;
                self.stats.rejected_per_class[req.priority.index()] += 1;
                self.finish(req, RequestOutcome::RejectedQueueFull);
            }
        }
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
    }

    /// Log a request's final outcome.
    fn finish(&mut self, req: DetectionRequest, outcome: RequestOutcome) {
        self.completed.push(CompletedRequest {
            id: req.id,
            priority: req.priority,
            backend: req.backend,
            arrival_us: req.arrival_us,
            deadline_us: req.deadline_us,
            outcome,
        });
    }

    /// Fail every member of `reqs` with clones of `error`.
    fn fail_group(
        &mut self,
        reqs: Vec<DetectionRequest>,
        dispatched_us: f64,
        attempts: u32,
        error: &DetectorError,
    ) {
        for req in reqs {
            self.stats.failed += 1;
            self.finish(
                req,
                RequestOutcome::Failed { dispatched_us, attempts, error: error.clone() },
            );
        }
    }

    /// Submit the EDF head's batch to the device and complete its
    /// members at the submission's drain time, running fault recovery
    /// (retry / isolate / bisect / degrade) on submission errors.
    fn dispatch(&mut self) {
        let cap = self.health.batch_cap();
        let batch = self.batcher.form(&mut self.queue, cap);
        if batch.is_empty() {
            return;
        }
        // One full-pyramid plan per dispatch (the batch shares a
        // geometry). A planning error is request-caused — bad geometry,
        // not a device fault — so it fails the members immediately
        // without touching the health machine or the retry budget.
        let full_plan = match self.detector.pyramid_plan(&batch[0].frame) {
            Ok(p) => p,
            Err(error) => {
                let dispatched_us = self.now_us;
                self.fail_group(batch, dispatched_us, 1, &error);
                return;
            }
        };
        let mut groups = VecDeque::new();
        groups.push_back(RecoveryGroup {
            reqs: batch,
            retries: 0,
            attempts: 0,
            last_error: None,
        });
        while let Some(mut group) = groups.pop_front() {
            // Deadline-aware recovery: once a lineage has faulted,
            // members whose deadline already passed expire instead of
            // burning further submissions. Never applied on the
            // fault-free first attempt, so zero-fault runs stay
            // byte-identical to the legacy path.
            if self.retry.enabled && self.retry.deadline_aware {
                if let Some(err) = group.last_error.clone() {
                    let now = self.now_us;
                    let attempts = group.attempts;
                    let mut live = Vec::with_capacity(group.reqs.len());
                    for req in group.reqs.drain(..) {
                        if req.deadline_us > now {
                            live.push(req);
                        } else {
                            self.stats.expired += 1;
                            self.finish(
                                req,
                                RequestOutcome::Expired {
                                    expired_us: now,
                                    attempts,
                                    error: err.clone(),
                                },
                            );
                        }
                    }
                    group.reqs = live;
                }
            }
            if group.reqs.is_empty() {
                continue;
            }

            // Degraded re-attempt: a faulted lineage that projects to
            // finish past its earliest deadline sheds the finest scales
            // (bounded by the policy; at least one level always runs).
            let max_shed = self.retry.recovery.max_shed_levels;
            let shed = if group.last_error.is_some()
                && self.retry.enabled
                && self.retry.deadline_aware
                && max_shed > 0
            {
                let earliest = group
                    .reqs
                    .iter()
                    .map(|r| r.deadline_us)
                    .fold(f64::INFINITY, f64::min);
                if self.now_us + self.last_span_us >= earliest {
                    max_shed.min(full_plan.len().saturating_sub(1))
                } else {
                    0
                }
            } else {
                0
            };
            let plan = &full_plan[..full_plan.len() - shed];

            let dispatched_us = self.now_us;
            group.attempts += 1;
            let frames: Vec<&GrayImage> = group.reqs.iter().map(|r| &r.frame).collect();
            let submission = self.detector.detect_batch_with_plan(&frames, plan);
            drop(frames);
            match submission {
                Ok(results) => {
                    if self.health.on_ok() {
                        self.stats.probes_succeeded += 1;
                    }
                    let span_us = results.first().map_or(0.0, |r| r.timeline.span_us());
                    self.now_us += span_us;
                    self.last_span_us = span_us;
                    self.stats.gpu_busy_us += span_us;
                    self.stats.batches += 1;
                    self.stats.batched_requests += group.reqs.len() as u64;
                    let batch_size = group.reqs.len();
                    if results.len() != batch_size {
                        // Typed guard instead of a zip that would
                        // silently truncate: an injected fault must
                        // never panic or desync the event loop.
                        let error = DetectorError::InvalidConfig {
                            reason: "batch result count does not match batch size",
                        };
                        self.fail_group(group.reqs, dispatched_us, group.attempts, &error);
                        continue;
                    }
                    for (req, result) in group.reqs.into_iter().zip(results) {
                        let latency = self.now_us - req.arrival_us;
                        self.stats.latency.record(latency);
                        self.stats.latency_per_class[req.priority.index()].record(latency);
                        self.stats.latency_per_backend[req.backend.index()].record(latency);
                        if self.now_us <= req.deadline_us {
                            self.stats.deadline_met += 1;
                        } else {
                            self.stats.deadline_missed += 1;
                        }
                        let completed_us = self.now_us;
                        let outcome = if shed == 0 {
                            self.stats.served += 1;
                            self.stats.served_per_backend[req.backend.index()] += 1;
                            RequestOutcome::Served {
                                dispatched_us,
                                completed_us,
                                batch_size,
                                result,
                            }
                        } else {
                            self.stats.degraded_completions += 1;
                            self.stats.degraded_per_backend[req.backend.index()] += 1;
                            RequestOutcome::Degraded {
                                dispatched_us,
                                completed_us,
                                batch_size,
                                shed_levels: shed,
                                result,
                            }
                        };
                        self.finish(req, outcome);
                    }
                    self.stats.makespan_us = self.stats.makespan_us.max(self.now_us);
                }
                Err(error) => {
                    // The submission was rejected before consuming
                    // device time; only recovery backoff advances the
                    // clock on this path.
                    if error.is_device_fault() {
                        match self.health.on_device_fault(self.now_us) {
                            FaultReaction::Tripped => self.stats.breaker_trips += 1,
                            FaultReaction::ProbeFailed => {
                                self.stats.breaker_trips += 1;
                                self.stats.probes_failed += 1;
                            }
                            FaultReaction::BrownedOut | FaultReaction::None => {}
                        }
                    }
                    match self.retry.next_step(&error, group.retries, group.reqs.len()) {
                        RecoveryStep::FailAll => {
                            self.fail_group(group.reqs, dispatched_us, group.attempts, &error);
                        }
                        RecoveryStep::RetrySame { backoff_us } => {
                            self.now_us += backoff_us;
                            self.stats.retries_issued += 1;
                            self.stats.retry_backoff_us += backoff_us;
                            group.retries += 1;
                            group.last_error = Some(error);
                            groups.push_front(group);
                        }
                        RecoveryStep::IsolateSlot { slot } => {
                            // The device named the poisoned member: fail
                            // exactly it, resubmit the survivors.
                            self.stats.poisoned_requests += 1;
                            self.stats.failed += 1;
                            let poisoned = group.reqs.remove(slot);
                            self.finish(
                                poisoned,
                                RequestOutcome::Failed {
                                    dispatched_us,
                                    attempts: group.attempts,
                                    error: error.clone(),
                                },
                            );
                            group.last_error = Some(error);
                            if !group.reqs.is_empty() {
                                groups.push_front(group);
                            }
                        }
                        RecoveryStep::Bisect => {
                            // No attribution: split and resubmit both
                            // halves (first half first), cornering the
                            // poisoned member in O(log n) submissions.
                            self.stats.batches_bisected += 1;
                            let mid = group.reqs.len() / 2;
                            let tail = group.reqs.split_off(mid);
                            let head = std::mem::take(&mut group.reqs);
                            groups.push_front(RecoveryGroup {
                                reqs: tail,
                                retries: group.retries,
                                attempts: group.attempts,
                                last_error: Some(error.clone()),
                            });
                            groups.push_front(RecoveryGroup {
                                reqs: head,
                                retries: group.retries,
                                attempts: group.attempts,
                                last_error: Some(error),
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};

    fn edge_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("edge", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn pattern_frame(w: usize, h: usize, shift: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            let x = x + shift;
            if (20..30).contains(&x) && (14..34).contains(&y) {
                5.0
            } else if (30..40).contains(&x) && (14..34).contains(&y) {
                250.0
            } else {
                120.0
            }
        })
    }

    fn server(config: ServeConfig) -> DetectionServer {
        let det_cfg = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        DetectionServer::new(&edge_cascade(), det_cfg, config).unwrap()
    }

    #[test]
    fn single_request_is_served_with_service_latency() {
        let mut s = server(ServeConfig::default());
        let id = s
            .submit(pattern_frame(64, 48, 0), Priority::Interactive, 100.0, 1e6)
            .unwrap();
        s.run();
        assert_eq!(s.completed().len(), 1);
        let c = &s.completed()[0];
        assert_eq!(c.id, id);
        let RequestOutcome::Served { completed_us, batch_size, ref result, .. } = c.outcome
        else {
            panic!("expected served, got {:?}", c.outcome);
        };
        assert_eq!(batch_size, 1);
        assert!(completed_us > 100.0);
        assert!(!result.raw.is_empty(), "pattern fires windows");
        assert_eq!(c.latency_us(), Some(completed_us - 100.0));
        assert_eq!(s.stats().served, 1);
        assert_eq!(s.stats().mean_batch_occupancy(), 1.0);
        assert!(s.stats().throughput_rps() > 0.0);
    }

    #[test]
    fn simultaneous_arrivals_batch_up_to_the_cap() {
        let mut s = server(ServeConfig {
            batch: BatchPolicy { max_batch_size: 4, ..BatchPolicy::default() },
            ..ServeConfig::default()
        });
        for _ in 0..6 {
            s.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 1e9).unwrap();
        }
        s.run();
        assert_eq!(s.stats().served, 6);
        assert_eq!(s.stats().batches, 2, "4 + 2");
        assert_eq!(s.stats().max_queue_depth, 6);
        assert!(s.stats().mean_batch_occupancy() > 2.9);
    }

    #[test]
    fn mixed_geometries_batch_separately() {
        let mut s = server(ServeConfig::default());
        s.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 1e9).unwrap();
        s.submit(pattern_frame(96, 72, 0), Priority::Standard, 0.0, 1e9).unwrap();
        s.submit(pattern_frame(64, 48, 2), Priority::Standard, 0.0, 1e9).unwrap();
        s.run();
        assert_eq!(s.stats().served, 3);
        assert_eq!(s.stats().batches, 2, "64x48 pair fuses, 96x72 runs alone");
    }

    #[test]
    fn edf_dispatches_tightest_deadline_first() {
        let mut s = server(ServeConfig {
            batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
            ..ServeConfig::default()
        });
        let loose = s.submit(pattern_frame(64, 48, 0), Priority::Bulk, 0.0, 9e8).unwrap();
        let tight = s.submit(pattern_frame(64, 48, 1), Priority::Bulk, 0.0, 1e6).unwrap();
        s.run();
        let order: Vec<_> = s.completed().iter().map(|c| c.id).collect();
        assert_eq!(order, [tight, loose]);
    }

    #[test]
    fn late_requests_are_shed_deterministically() {
        let mut s = server(ServeConfig {
            batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
            ..ServeConfig::default()
        });
        // The first request's service time pushes the clock well past the
        // second's deadline before it even arrives, so it is shed, never
        // run. (Frame service here is on the order of hundreds of µs.)
        let a = s.submit(pattern_frame(96, 72, 0), Priority::Standard, 0.0, 1e9).unwrap();
        let b = s.submit(pattern_frame(96, 72, 1), Priority::Standard, 10.0, 1.0).unwrap();
        s.run();
        let by_id = |id| s.completed().iter().find(|c| c.id == id).unwrap();
        assert!(matches!(by_id(a).outcome, RequestOutcome::Served { .. }));
        assert!(matches!(by_id(b).outcome, RequestOutcome::ShedLate { .. }));
        assert_eq!(s.stats().shed_late, 1);
        assert_eq!(s.stats().served, 1);
    }

    #[test]
    fn shedding_disabled_serves_late_requests() {
        let mut s = server(ServeConfig {
            shed_late: false,
            batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
            ..ServeConfig::default()
        });
        s.submit(pattern_frame(96, 72, 0), Priority::Standard, 0.0, 1e9).unwrap();
        s.submit(pattern_frame(96, 72, 1), Priority::Standard, 10.0, 1.0).unwrap();
        s.run();
        assert_eq!(s.stats().served, 2);
        assert_eq!(s.stats().shed_late, 0);
        assert_eq!(s.stats().deadline_missed, 1);
    }

    #[test]
    fn full_class_queue_rejects_at_arrival() {
        let mut s = server(ServeConfig {
            queue_depth_per_class: 2,
            batch: BatchPolicy { max_batch_size: 2, max_wait_us: 1e9, enabled: true },
            ..ServeConfig::default()
        });
        // Four bulk arrivals at t=0; depth 2 → two rejected. Interactive
        // still admitted.
        for _ in 0..4 {
            s.submit(pattern_frame(64, 48, 0), Priority::Bulk, 0.0, 1e9).unwrap();
        }
        s.submit(pattern_frame(64, 48, 0), Priority::Interactive, 0.0, 1e9).unwrap();
        s.run();
        assert_eq!(s.stats().rejected_full, 2);
        assert_eq!(s.stats().rejected_per_class, [0, 0, 2]);
        assert_eq!(s.stats().served, 3);
    }

    #[test]
    fn submissions_in_the_past_are_invalid() {
        let mut s = server(ServeConfig::default());
        s.submit(pattern_frame(64, 48, 0), Priority::Standard, 100.0, 1e6).unwrap();
        s.run();
        assert!(s.now_us() > 100.0);
        let err = s.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 1e6);
        assert!(matches!(err, Err(ServeError::InvalidSubmission { .. })));
        let err = s.submit(pattern_frame(64, 48, 0), Priority::Standard, f64::NAN, 1e6);
        assert!(matches!(err, Err(ServeError::InvalidSubmission { .. })));
        let err = s.submit(pattern_frame(64, 48, 0), Priority::Standard, s.now_us(), 0.0);
        assert!(matches!(err, Err(ServeError::InvalidSubmission { .. })));
    }

    #[test]
    fn device_failures_fail_the_batch_not_the_server() {
        // A frame smaller than the 24-px cascade window fails planning at
        // dispatch; the next request still gets served.
        let mut s = server(ServeConfig {
            batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
            ..ServeConfig::default()
        });
        let bad = s
            .submit(GrayImage::from_fn(8, 8, |_, _| 0.0), Priority::Standard, 0.0, 1e9)
            .unwrap();
        let good = s.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 2e9).unwrap();
        s.run();
        let by_id = |id| s.completed().iter().find(|c| c.id == id).unwrap();
        assert!(matches!(by_id(bad).outcome, RequestOutcome::Failed { .. }));
        assert!(matches!(by_id(good).outcome, RequestOutcome::Served { .. }));
        assert_eq!(s.stats().failed, 1);
        assert_eq!(s.stats().served, 1);
    }

    #[test]
    fn open_loop_run_is_bit_identical_across_host_threads() {
        let run = |threads: usize| {
            let det_cfg = DetectorConfig {
                min_neighbors: 1,
                host_threads: Some(threads),
                ..DetectorConfig::default()
            };
            let mut s = DetectionServer::new(&edge_cascade(), det_cfg, ServeConfig::default())
                .unwrap();
            for i in 0..10u64 {
                s.submit(
                    pattern_frame(64, 48, (i % 4) as usize),
                    Priority::ALL[(i % 3) as usize],
                    (i * 700) as f64,
                    40_000.0,
                )
                .unwrap();
            }
            s.run();
            s.completed()
                .iter()
                .map(|c| {
                    let (kind, t) = match &c.outcome {
                        RequestOutcome::Served { completed_us, result, .. } => {
                            (0u8, completed_us.to_bits() ^ result.raw.len() as u64)
                        }
                        RequestOutcome::ShedLate { shed_us } => (1, shed_us.to_bits()),
                        RequestOutcome::RejectedQueueFull => (2, 0),
                        RequestOutcome::Failed { .. } => (3, 0),
                        RequestOutcome::Degraded { completed_us, result, .. } => {
                            (4, completed_us.to_bits() ^ result.raw.len() as u64)
                        }
                        RequestOutcome::Expired { expired_us, .. } => (5, expired_us.to_bits()),
                        RequestOutcome::RejectedBrownOut => (6, 0),
                        RequestOutcome::RejectedFailFast => (7, 0),
                        RequestOutcome::Evicted { evicted_us } => (8, evicted_us.to_bits()),
                    };
                    (c.id, kind, t)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn closed_loop_driving_via_step_makes_progress() {
        let mut s = server(ServeConfig::default());
        let mut submitted = 0usize;
        let mut in_flight = 0usize;
        for _ in 0..3 {
            s.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 1e9).unwrap();
            submitted += 1;
            in_flight += 1;
        }
        let mut served_total = 0usize;
        let mut rounds = 0;
        while in_flight > 0 && rounds < 100 {
            while s.step() {}
            for c in s.take_completed() {
                assert!(matches!(c.outcome, RequestOutcome::Served { .. }));
                in_flight -= 1;
                served_total += 1;
                // Zero-think-time resubmission, 9 submissions total.
                if submitted < 9 {
                    s.submit(pattern_frame(64, 48, 0), Priority::Standard, s.now_us(), 1e9)
                        .unwrap();
                    submitted += 1;
                    in_flight += 1;
                }
            }
            rounds += 1;
        }
        assert_eq!(served_total, 9);
        assert_eq!(s.stats().served, 9);
    }
}
