//! The virtual-clock serving loop: arrivals → queue → batch → device.
//!
//! [`DetectionServer`] owns a [`FaceDetector`] and advances a virtual
//! clock in microseconds. Submissions go onto an *arrival calendar*
//! (they may be scheduled at any time at or after the current instant);
//! the event loop then alternates between ingesting due arrivals,
//! shedding already-late queued requests, and asking the
//! [`DynamicBatcher`] whether to dispatch the EDF head's batch or sleep
//! to the next decision point. Device time comes from the simulated
//! timeline of each submission, so the entire run — latencies, shed
//! sets, batch compositions, statistics — is a deterministic function
//! of the submissions and the configuration, bit-identical at any
//! `FD_SIM_THREADS`.

use fd_detector::{DetectorConfig, DetectorError, FaceDetector, FrameResult};
use fd_haar::Cascade;
use fd_imgproc::GrayImage;

use crate::batcher::{BatchDecision, BatchPolicy, DynamicBatcher};
use crate::queue::RequestQueue;
use crate::request::{DetectionRequest, Priority, RequestId};
use crate::stats::ServeStats;

/// Serving-side configuration (the wrapped detector has its own
/// [`DetectorConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Queue slots per priority class.
    pub queue_depth_per_class: usize,
    /// Dynamic batching policy.
    pub batch: BatchPolicy,
    /// Shed queued requests whose deadline has passed instead of running
    /// them late (deterministic load shedding). Disabling serves
    /// everything, however late.
    pub shed_late: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { queue_depth_per_class: 64, batch: BatchPolicy::default(), shed_late: true }
    }
}

/// Errors surfaced by the serving layer itself.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A submission carried a non-finite or past arrival time, or a
    /// non-positive SLO.
    InvalidSubmission { reason: &'static str },
    /// Building the wrapped detector failed.
    Detector(DetectorError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidSubmission { reason } => {
                write!(f, "invalid submission: {reason}")
            }
            ServeError::Detector(e) => write!(f, "detector construction failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Detector(e) => Some(e),
            _ => None,
        }
    }
}

/// How one request's life ended.
#[derive(Debug, Clone)]
pub enum RequestOutcome {
    /// Ran on the device and produced a detection result.
    Served {
        /// When its batch was submitted.
        dispatched_us: f64,
        /// When its batch drained (= completion of every member).
        completed_us: f64,
        /// Requests sharing the submission.
        batch_size: usize,
        /// The detection output.
        result: FrameResult,
    },
    /// Shed while queued: its deadline passed before dispatch.
    ShedLate {
        /// Virtual instant of the shed decision.
        shed_us: f64,
    },
    /// Refused at arrival: its priority class's queue was full.
    RejectedQueueFull,
    /// Its batch's device submission failed.
    Failed {
        dispatched_us: f64,
        error: DetectorError,
    },
}

/// A finished request: identity, timing and outcome.
#[derive(Debug, Clone)]
pub struct CompletedRequest {
    pub id: RequestId,
    pub priority: Priority,
    pub arrival_us: f64,
    pub deadline_us: f64,
    pub outcome: RequestOutcome,
}

impl CompletedRequest {
    /// Arrival-to-completion latency for served requests.
    pub fn latency_us(&self) -> Option<f64> {
        match &self.outcome {
            RequestOutcome::Served { completed_us, .. } => Some(completed_us - self.arrival_us),
            _ => None,
        }
    }

    /// Whether a served request made its deadline.
    pub fn met_deadline(&self) -> Option<bool> {
        match &self.outcome {
            RequestOutcome::Served { completed_us, .. } => {
                Some(*completed_us <= self.deadline_us)
            }
            _ => None,
        }
    }
}

/// Deterministic request-serving frontend over one detector/device (see
/// module docs). One-shot requests only; long-lived video sessions stay
/// with `fd_detector::StreamSupervisor`.
pub struct DetectionServer {
    detector: FaceDetector,
    queue: RequestQueue,
    batcher: DynamicBatcher,
    shed_late: bool,
    now_us: f64,
    next_seq: u64,
    /// Future submissions, kept sorted by (arrival, seq) *descending* so
    /// the next one pops off the back in O(1).
    arrivals: Vec<DetectionRequest>,
    completed: Vec<CompletedRequest>,
    stats: ServeStats,
}

impl DetectionServer {
    /// Build a server around a fresh detector for `cascade`.
    pub fn new(
        cascade: &Cascade,
        detector_config: DetectorConfig,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        let detector =
            FaceDetector::try_new(cascade, detector_config).map_err(ServeError::Detector)?;
        Ok(Self::from_detector(detector, config))
    }

    /// Build a server around an existing detector (and therefore its
    /// simulated device).
    pub fn from_detector(detector: FaceDetector, config: ServeConfig) -> Self {
        Self {
            detector,
            queue: RequestQueue::new(config.queue_depth_per_class),
            batcher: DynamicBatcher::new(config.batch),
            shed_late: config.shed_late,
            now_us: 0.0,
            next_seq: 0,
            arrivals: Vec::new(),
            completed: Vec::new(),
            stats: ServeStats::default(),
        }
    }

    /// The current virtual time, µs.
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// The wrapped detector (profiler access, device inspection).
    pub fn detector(&self) -> &FaceDetector {
        &self.detector
    }

    /// Requests on the arrival calendar plus requests queued.
    pub fn pending(&self) -> usize {
        self.arrivals.len() + self.queue.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Finished requests, in completion order.
    pub fn completed(&self) -> &[CompletedRequest] {
        &self.completed
    }

    /// Drain the finished-request log (closed-loop generators resubmit
    /// from these).
    pub fn take_completed(&mut self) -> Vec<CompletedRequest> {
        std::mem::take(&mut self.completed)
    }

    /// Schedule a detection request: `frame` arrives at `arrival_us`
    /// (which must not lie in the past) with deadline
    /// `arrival_us + slo_us`. Returns the request's id; its outcome
    /// appears in [`Self::completed`] once the clock passes it.
    pub fn submit(
        &mut self,
        frame: GrayImage,
        priority: Priority,
        arrival_us: f64,
        slo_us: f64,
    ) -> Result<RequestId, ServeError> {
        if !arrival_us.is_finite() || arrival_us < self.now_us {
            return Err(ServeError::InvalidSubmission {
                reason: "arrival time must be finite and not in the past",
            });
        }
        if !slo_us.is_finite() || slo_us <= 0.0 {
            return Err(ServeError::InvalidSubmission {
                reason: "SLO must be finite and positive",
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = RequestId(seq);
        let req = DetectionRequest {
            id,
            priority,
            arrival_us,
            deadline_us: arrival_us + slo_us,
            frame,
            seq,
        };
        // Insert keeping descending (arrival, seq) so pop() yields the
        // earliest; ties resolve by submission order.
        let pos = self
            .arrivals
            .partition_point(|r| {
                r.arrival_us
                    .total_cmp(&req.arrival_us)
                    .then(r.seq.cmp(&req.seq))
                    .is_gt()
            });
        self.arrivals.insert(pos, req);
        self.stats.submitted += 1;
        Ok(id)
    }

    /// Run the event loop until the arrival calendar and the queue are
    /// both empty. Device failures mark the affected requests
    /// [`RequestOutcome::Failed`] and serving continues.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Advance the event loop by one action (ingest, shed, wait or
    /// dispatch). Returns `false` when idle with nothing pending —
    /// closed-loop drivers interleave [`Self::submit`] between steps.
    pub fn step(&mut self) -> bool {
        self.ingest_due();
        if self.queue.is_empty() {
            let Some(next) = self.arrivals.last() else {
                return false;
            };
            // Idle: jump to the next arrival.
            self.now_us = self.now_us.max(next.arrival_us);
            self.ingest_due();
            return true;
        }
        if self.shed_late {
            let late = self.queue.take_late(self.now_us);
            if !late.is_empty() {
                for req in late {
                    self.stats.shed_late += 1;
                    self.completed.push(CompletedRequest {
                        id: req.id,
                        priority: req.priority,
                        arrival_us: req.arrival_us,
                        deadline_us: req.deadline_us,
                        outcome: RequestOutcome::ShedLate { shed_us: self.now_us },
                    });
                }
                return true;
            }
        }
        let next_arrival = self.arrivals.last().map(|r| r.arrival_us);
        match self.batcher.decide(&self.queue, self.now_us, next_arrival) {
            BatchDecision::WaitUntil(t) => {
                self.now_us = self.now_us.max(t);
            }
            BatchDecision::Dispatch => {
                self.dispatch();
            }
        }
        true
    }

    /// Move arrivals whose time has come into the queue, rejecting into
    /// the completion log when a class is full.
    fn ingest_due(&mut self) {
        while self.arrivals.last().is_some_and(|r| r.arrival_us <= self.now_us) {
            let Some(req) = self.arrivals.pop() else { break };
            if let Err(req) = self.queue.offer(req) {
                self.stats.rejected_full += 1;
                self.stats.rejected_per_class[req.priority.index()] += 1;
                self.completed.push(CompletedRequest {
                    id: req.id,
                    priority: req.priority,
                    arrival_us: req.arrival_us,
                    deadline_us: req.deadline_us,
                    outcome: RequestOutcome::RejectedQueueFull,
                });
            }
        }
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
    }

    /// Submit the EDF head's batch to the device and complete its
    /// members at the submission's drain time.
    fn dispatch(&mut self) {
        let batch = self.batcher.form(&mut self.queue);
        if batch.is_empty() {
            return;
        }
        let dispatched_us = self.now_us;
        let frames: Vec<&GrayImage> = batch.iter().map(|r| &r.frame).collect();
        match self.detector.detect_batch(&frames) {
            Ok(results) => {
                let span_us = results.first().map_or(0.0, |r| r.timeline.span_us());
                self.now_us += span_us;
                self.stats.gpu_busy_us += span_us;
                self.stats.batches += 1;
                self.stats.batched_requests += batch.len() as u64;
                let batch_size = batch.len();
                for (req, result) in batch.into_iter().zip(results) {
                    let latency = self.now_us - req.arrival_us;
                    self.stats.served += 1;
                    self.stats.latency.record(latency);
                    self.stats.latency_per_class[req.priority.index()].record(latency);
                    if self.now_us <= req.deadline_us {
                        self.stats.deadline_met += 1;
                    } else {
                        self.stats.deadline_missed += 1;
                    }
                    self.completed.push(CompletedRequest {
                        id: req.id,
                        priority: req.priority,
                        arrival_us: req.arrival_us,
                        deadline_us: req.deadline_us,
                        outcome: RequestOutcome::Served {
                            dispatched_us,
                            completed_us: self.now_us,
                            batch_size,
                            result,
                        },
                    });
                }
                self.stats.makespan_us = self.stats.makespan_us.max(self.now_us);
            }
            Err(error) => {
                // The submission was rejected before consuming device
                // time; its members fail, the server keeps serving.
                for req in batch {
                    self.stats.failed += 1;
                    self.completed.push(CompletedRequest {
                        id: req.id,
                        priority: req.priority,
                        arrival_us: req.arrival_us,
                        deadline_us: req.deadline_us,
                        outcome: RequestOutcome::Failed {
                            dispatched_us,
                            error: error.clone(),
                        },
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};

    fn edge_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("edge", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn pattern_frame(w: usize, h: usize, shift: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            let x = x + shift;
            if (20..30).contains(&x) && (14..34).contains(&y) {
                5.0
            } else if (30..40).contains(&x) && (14..34).contains(&y) {
                250.0
            } else {
                120.0
            }
        })
    }

    fn server(config: ServeConfig) -> DetectionServer {
        let det_cfg = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        DetectionServer::new(&edge_cascade(), det_cfg, config).unwrap()
    }

    #[test]
    fn single_request_is_served_with_service_latency() {
        let mut s = server(ServeConfig::default());
        let id = s
            .submit(pattern_frame(64, 48, 0), Priority::Interactive, 100.0, 1e6)
            .unwrap();
        s.run();
        assert_eq!(s.completed().len(), 1);
        let c = &s.completed()[0];
        assert_eq!(c.id, id);
        let RequestOutcome::Served { completed_us, batch_size, ref result, .. } = c.outcome
        else {
            panic!("expected served, got {:?}", c.outcome);
        };
        assert_eq!(batch_size, 1);
        assert!(completed_us > 100.0);
        assert!(!result.raw.is_empty(), "pattern fires windows");
        assert_eq!(c.latency_us(), Some(completed_us - 100.0));
        assert_eq!(s.stats().served, 1);
        assert_eq!(s.stats().mean_batch_occupancy(), 1.0);
        assert!(s.stats().throughput_rps() > 0.0);
    }

    #[test]
    fn simultaneous_arrivals_batch_up_to_the_cap() {
        let mut s = server(ServeConfig {
            batch: BatchPolicy { max_batch_size: 4, ..BatchPolicy::default() },
            ..ServeConfig::default()
        });
        for _ in 0..6 {
            s.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 1e9).unwrap();
        }
        s.run();
        assert_eq!(s.stats().served, 6);
        assert_eq!(s.stats().batches, 2, "4 + 2");
        assert_eq!(s.stats().max_queue_depth, 6);
        assert!(s.stats().mean_batch_occupancy() > 2.9);
    }

    #[test]
    fn mixed_geometries_batch_separately() {
        let mut s = server(ServeConfig::default());
        s.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 1e9).unwrap();
        s.submit(pattern_frame(96, 72, 0), Priority::Standard, 0.0, 1e9).unwrap();
        s.submit(pattern_frame(64, 48, 2), Priority::Standard, 0.0, 1e9).unwrap();
        s.run();
        assert_eq!(s.stats().served, 3);
        assert_eq!(s.stats().batches, 2, "64x48 pair fuses, 96x72 runs alone");
    }

    #[test]
    fn edf_dispatches_tightest_deadline_first() {
        let mut s = server(ServeConfig {
            batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
            ..ServeConfig::default()
        });
        let loose = s.submit(pattern_frame(64, 48, 0), Priority::Bulk, 0.0, 9e8).unwrap();
        let tight = s.submit(pattern_frame(64, 48, 1), Priority::Bulk, 0.0, 1e6).unwrap();
        s.run();
        let order: Vec<_> = s.completed().iter().map(|c| c.id).collect();
        assert_eq!(order, [tight, loose]);
    }

    #[test]
    fn late_requests_are_shed_deterministically() {
        let mut s = server(ServeConfig {
            batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
            ..ServeConfig::default()
        });
        // The first request's service time pushes the clock well past the
        // second's deadline before it even arrives, so it is shed, never
        // run. (Frame service here is on the order of hundreds of µs.)
        let a = s.submit(pattern_frame(96, 72, 0), Priority::Standard, 0.0, 1e9).unwrap();
        let b = s.submit(pattern_frame(96, 72, 1), Priority::Standard, 10.0, 1.0).unwrap();
        s.run();
        let by_id = |id| s.completed().iter().find(|c| c.id == id).unwrap();
        assert!(matches!(by_id(a).outcome, RequestOutcome::Served { .. }));
        assert!(matches!(by_id(b).outcome, RequestOutcome::ShedLate { .. }));
        assert_eq!(s.stats().shed_late, 1);
        assert_eq!(s.stats().served, 1);
    }

    #[test]
    fn shedding_disabled_serves_late_requests() {
        let mut s = server(ServeConfig {
            shed_late: false,
            batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
            ..ServeConfig::default()
        });
        s.submit(pattern_frame(96, 72, 0), Priority::Standard, 0.0, 1e9).unwrap();
        s.submit(pattern_frame(96, 72, 1), Priority::Standard, 10.0, 1.0).unwrap();
        s.run();
        assert_eq!(s.stats().served, 2);
        assert_eq!(s.stats().shed_late, 0);
        assert_eq!(s.stats().deadline_missed, 1);
    }

    #[test]
    fn full_class_queue_rejects_at_arrival() {
        let mut s = server(ServeConfig {
            queue_depth_per_class: 2,
            batch: BatchPolicy { max_batch_size: 2, max_wait_us: 1e9, enabled: true },
            ..ServeConfig::default()
        });
        // Four bulk arrivals at t=0; depth 2 → two rejected. Interactive
        // still admitted.
        for _ in 0..4 {
            s.submit(pattern_frame(64, 48, 0), Priority::Bulk, 0.0, 1e9).unwrap();
        }
        s.submit(pattern_frame(64, 48, 0), Priority::Interactive, 0.0, 1e9).unwrap();
        s.run();
        assert_eq!(s.stats().rejected_full, 2);
        assert_eq!(s.stats().rejected_per_class, [0, 0, 2]);
        assert_eq!(s.stats().served, 3);
    }

    #[test]
    fn submissions_in_the_past_are_invalid() {
        let mut s = server(ServeConfig::default());
        s.submit(pattern_frame(64, 48, 0), Priority::Standard, 100.0, 1e6).unwrap();
        s.run();
        assert!(s.now_us() > 100.0);
        let err = s.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 1e6);
        assert!(matches!(err, Err(ServeError::InvalidSubmission { .. })));
        let err = s.submit(pattern_frame(64, 48, 0), Priority::Standard, f64::NAN, 1e6);
        assert!(matches!(err, Err(ServeError::InvalidSubmission { .. })));
        let err = s.submit(pattern_frame(64, 48, 0), Priority::Standard, s.now_us(), 0.0);
        assert!(matches!(err, Err(ServeError::InvalidSubmission { .. })));
    }

    #[test]
    fn device_failures_fail_the_batch_not_the_server() {
        // A frame smaller than the 24-px cascade window fails planning at
        // dispatch; the next request still gets served.
        let mut s = server(ServeConfig {
            batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
            ..ServeConfig::default()
        });
        let bad = s
            .submit(GrayImage::from_fn(8, 8, |_, _| 0.0), Priority::Standard, 0.0, 1e9)
            .unwrap();
        let good = s.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 2e9).unwrap();
        s.run();
        let by_id = |id| s.completed().iter().find(|c| c.id == id).unwrap();
        assert!(matches!(by_id(bad).outcome, RequestOutcome::Failed { .. }));
        assert!(matches!(by_id(good).outcome, RequestOutcome::Served { .. }));
        assert_eq!(s.stats().failed, 1);
        assert_eq!(s.stats().served, 1);
    }

    #[test]
    fn open_loop_run_is_bit_identical_across_host_threads() {
        let run = |threads: usize| {
            let det_cfg = DetectorConfig {
                min_neighbors: 1,
                host_threads: Some(threads),
                ..DetectorConfig::default()
            };
            let mut s = DetectionServer::new(&edge_cascade(), det_cfg, ServeConfig::default())
                .unwrap();
            for i in 0..10u64 {
                s.submit(
                    pattern_frame(64, 48, (i % 4) as usize),
                    Priority::ALL[(i % 3) as usize],
                    (i * 700) as f64,
                    40_000.0,
                )
                .unwrap();
            }
            s.run();
            s.completed()
                .iter()
                .map(|c| {
                    let (kind, t) = match &c.outcome {
                        RequestOutcome::Served { completed_us, result, .. } => {
                            (0u8, completed_us.to_bits() ^ result.raw.len() as u64)
                        }
                        RequestOutcome::ShedLate { shed_us } => (1, shed_us.to_bits()),
                        RequestOutcome::RejectedQueueFull => (2, 0),
                        RequestOutcome::Failed { .. } => (3, 0),
                    };
                    (c.id, kind, t)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn closed_loop_driving_via_step_makes_progress() {
        let mut s = server(ServeConfig::default());
        let mut submitted = 0usize;
        let mut in_flight = 0usize;
        for _ in 0..3 {
            s.submit(pattern_frame(64, 48, 0), Priority::Standard, 0.0, 1e9).unwrap();
            submitted += 1;
            in_flight += 1;
        }
        let mut served_total = 0usize;
        let mut rounds = 0;
        while in_flight > 0 && rounds < 100 {
            while s.step() {}
            for c in s.take_completed() {
                assert!(matches!(c.outcome, RequestOutcome::Served { .. }));
                in_flight -= 1;
                served_total += 1;
                // Zero-think-time resubmission, 9 submissions total.
                if submitted < 9 {
                    s.submit(pattern_frame(64, 48, 0), Priority::Standard, s.now_us(), 1e9)
                        .unwrap();
                    submitted += 1;
                    in_flight += 1;
                }
            }
            rounds += 1;
        }
        assert_eq!(served_total, 9);
        assert_eq!(s.stats().served, 9);
    }
}
