//! The bounded, priority-classed request queue.
//!
//! One FIFO ring per [`Priority`] class with a shared per-class depth
//! bound: admission control rejects at the class boundary, so a flood of
//! bulk requests can never crowd interactive traffic out of the queue.
//! *Dispatch* order is not FIFO but earliest-deadline-first across all
//! classes ([`DetectionRequest::edf_cmp`]); class rank only breaks
//! deadline ties and partitions the admission bound.

use std::collections::VecDeque;

use fd_gpu::GeomClass;

use crate::request::{DetectionRequest, Priority};

/// Bounded multi-class request queue with EDF selection.
pub struct RequestQueue {
    classes: [VecDeque<DetectionRequest>; 3],
    depth_per_class: usize,
}

impl RequestQueue {
    /// A queue admitting at most `depth_per_class` requests per priority
    /// class (minimum 1).
    pub fn new(depth_per_class: usize) -> Self {
        Self {
            classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            depth_per_class: depth_per_class.max(1),
        }
    }

    /// The per-class admission bound.
    pub fn depth_per_class(&self) -> usize {
        self.depth_per_class
    }

    /// Queued requests across all classes.
    pub fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(VecDeque::is_empty)
    }

    /// Queued requests in one class.
    pub fn class_len(&self, class: Priority) -> usize {
        self.classes[class.index()].len()
    }

    /// Admit a request, or hand it back when its class is full.
    pub fn offer(&mut self, req: DetectionRequest) -> Result<(), DetectionRequest> {
        let class = &mut self.classes[req.priority.index()];
        if class.len() >= self.depth_per_class {
            return Err(req);
        }
        class.push_back(req);
        Ok(())
    }

    /// The request the EDF scheduler would dispatch next.
    pub fn peek_edf(&self) -> Option<&DetectionRequest> {
        self.classes.iter().flatten().min_by(|a, b| a.edf_cmp(b))
    }

    /// Queued requests whose frames share `geometry` (the only requests
    /// that can join a batch with the current EDF head).
    pub fn count_geometry(&self, geometry: GeomClass) -> usize {
        self.classes.iter().flatten().filter(|r| r.geometry() == geometry).count()
    }

    /// Arrival time of the longest-waiting queued request — the batch
    /// former's forced-dispatch reference point.
    pub fn earliest_arrival_us(&self) -> Option<f64> {
        self.classes
            .iter()
            .flatten()
            .map(|r| r.arrival_us)
            .min_by(f64::total_cmp)
    }

    /// Remove and return up to `max` requests of `geometry` in EDF order
    /// (the batch the scheduler dispatches as one submission).
    pub fn take_batch(&mut self, geometry: GeomClass, max: usize) -> Vec<DetectionRequest> {
        let mut batch = Vec::new();
        while batch.len() < max {
            let Some((class, idx)) = self
                .classes
                .iter()
                .enumerate()
                .flat_map(|(c, q)| {
                    q.iter().enumerate().map(move |(i, r)| ((c, i), r))
                })
                .filter(|(_, r)| r.geometry() == geometry)
                .min_by(|(_, a), (_, b)| a.edf_cmp(b))
                .map(|(pos, _)| pos)
            else {
                break;
            };
            // remove preserves relative FIFO order of the untouched rest.
            if let Some(r) = self.classes[class].remove(idx) {
                batch.push(r);
            }
        }
        batch
    }

    /// Remove and return every queued request, in EDF order — the fleet
    /// layer's evacuation primitive (breaker-open failover, device kill,
    /// work stealing). Because every selector on this queue is
    /// order-independent (EDF minimum, geometry filter, deadline
    /// filter), draining and re-offering a subset is behavior-neutral.
    pub fn drain_all(&mut self) -> Vec<DetectionRequest> {
        let mut all: Vec<DetectionRequest> =
            self.classes.iter_mut().flat_map(|c| c.drain(..)).collect();
        all.sort_by(|a, b| a.edf_cmp(b));
        all
    }

    /// Remove and return every queued request whose deadline already
    /// passed at `now_us`, in EDF order (the deterministic shed set).
    pub fn take_late(&mut self, now_us: f64) -> Vec<DetectionRequest> {
        let mut late = Vec::new();
        for class in &mut self.classes {
            let mut keep = VecDeque::with_capacity(class.len());
            for r in class.drain(..) {
                if r.deadline_us < now_us {
                    late.push(r);
                } else {
                    keep.push_back(r);
                }
            }
            *class = keep;
        }
        late.sort_by(|a, b| a.edf_cmp(b));
        late
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use fd_detector::Backend;
    use fd_imgproc::GrayImage;

    fn req(seq: u64, priority: Priority, deadline_us: f64, w: usize) -> DetectionRequest {
        DetectionRequest {
            id: RequestId(seq),
            priority,
            arrival_us: seq as f64,
            deadline_us,
            frame: GrayImage::from_fn(w, 4, |_, _| 0.0),
            backend: Backend::Haar,
            seq,
        }
    }

    #[test]
    fn class_depth_is_bounded_independently() {
        let mut q = RequestQueue::new(2);
        assert!(q.offer(req(0, Priority::Bulk, 10.0, 8)).is_ok());
        assert!(q.offer(req(1, Priority::Bulk, 10.0, 8)).is_ok());
        let rejected = q.offer(req(2, Priority::Bulk, 10.0, 8));
        assert_eq!(rejected.unwrap_err().id, RequestId(2));
        // A full bulk class does not block interactive admission.
        assert!(q.offer(req(3, Priority::Interactive, 10.0, 8)).is_ok());
        assert_eq!(q.len(), 3);
        assert_eq!(q.class_len(Priority::Bulk), 2);
    }

    #[test]
    fn edf_peek_spans_classes() {
        let mut q = RequestQueue::new(8);
        q.offer(req(0, Priority::Interactive, 300.0, 8)).unwrap();
        q.offer(req(1, Priority::Bulk, 100.0, 8)).unwrap();
        q.offer(req(2, Priority::Standard, 200.0, 8)).unwrap();
        assert_eq!(q.peek_edf().unwrap().id, RequestId(1), "earliest deadline wins");
    }

    #[test]
    fn take_batch_filters_geometry_in_edf_order() {
        let mut q = RequestQueue::new(8);
        q.offer(req(0, Priority::Standard, 300.0, 8)).unwrap();
        q.offer(req(1, Priority::Standard, 100.0, 16)).unwrap(); // other geometry
        q.offer(req(2, Priority::Standard, 200.0, 8)).unwrap();
        q.offer(req(3, Priority::Standard, 50.0, 8)).unwrap();
        let batch = q.take_batch(GeomClass::of(8, 4), 2);
        let ids: Vec<_> = batch.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, [3, 2], "EDF order within the geometry");
        assert_eq!(q.len(), 2);
        assert_eq!(q.count_geometry(GeomClass::of(16, 4)), 1);
    }

    #[test]
    fn take_late_sheds_exactly_the_expired() {
        let mut q = RequestQueue::new(8);
        q.offer(req(0, Priority::Standard, 100.0, 8)).unwrap();
        q.offer(req(1, Priority::Bulk, 99.0, 8)).unwrap();
        q.offer(req(2, Priority::Interactive, 150.0, 8)).unwrap();
        let late = q.take_late(100.0);
        let ids: Vec<_> = late.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, [1], "deadline == now is not yet late");
        assert_eq!(q.len(), 2);
        assert!(q.take_late(1000.0).len() == 2);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_all_empties_every_class_in_edf_order() {
        let mut q = RequestQueue::new(8);
        q.offer(req(0, Priority::Standard, 300.0, 8)).unwrap();
        q.offer(req(1, Priority::Bulk, 100.0, 8)).unwrap();
        q.offer(req(2, Priority::Interactive, 200.0, 16)).unwrap();
        let drained = q.drain_all();
        let ids: Vec<_> = drained.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, [1, 2, 0], "EDF order across classes and geometries");
        assert!(q.is_empty());
        assert!(q.drain_all().is_empty());
    }

    #[test]
    fn earliest_arrival_tracks_the_longest_waiter() {
        let mut q = RequestQueue::new(8);
        assert!(q.earliest_arrival_us().is_none());
        q.offer(req(5, Priority::Bulk, 900.0, 8)).unwrap();
        q.offer(req(2, Priority::Standard, 800.0, 8)).unwrap();
        assert_eq!(q.earliest_arrival_us(), Some(2.0));
    }
}
