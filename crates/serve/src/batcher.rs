//! Dynamic batch formation: when to dispatch, and what to dispatch.
//!
//! The batcher generalizes the paper's per-scale stream concurrency to
//! *cross-request* concurrency: pending single-image requests that share
//! a frame geometry are coalesced into one device submission, where each
//! pyramid-level kernel launches once for the whole batch
//! ([`fd_gpu::Gpu::launch_batched`]). The policy is the classic
//! max-batch / max-wait trade-off:
//!
//! * **dispatch now** when the EDF head's geometry already has
//!   `max_batch_size` joinable requests queued (a full batch gains
//!   nothing by waiting);
//! * **dispatch now** when the longest-waiting queued request has waited
//!   `max_wait_us` (bounded batching delay — the head must not starve
//!   for stragglers);
//! * **dispatch now** when no future arrivals remain (nobody can join;
//!   waiting only adds latency);
//! * otherwise **wait** until the earliest of the forced-dispatch time
//!   and the next arrival.
//!
//! With batching disabled the effective batch size is 1 and dispatch is
//! immediate, which degenerates to plain EDF serving — the baseline the
//! determinism proptests compare against bit-for-bit.

use crate::queue::RequestQueue;
use crate::request::DetectionRequest;

/// Batch-formation policy.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPolicy {
    /// Master switch; `false` serves strictly one request per submission
    /// with no added waiting.
    pub enabled: bool,
    /// Most requests fused into one device submission.
    pub max_batch_size: usize,
    /// Longest a queued request may wait for co-batchable arrivals
    /// before the head is dispatched regardless, in virtual µs.
    pub max_wait_us: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self { enabled: true, max_batch_size: 8, max_wait_us: 2000.0 }
    }
}

impl BatchPolicy {
    /// The batch-size cap this policy actually enforces.
    pub fn effective_max(&self) -> usize {
        if self.enabled {
            self.max_batch_size.max(1)
        } else {
            1
        }
    }
}

/// What the scheduler should do at the current virtual instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchDecision {
    /// Form a batch around the EDF head and submit it now.
    Dispatch,
    /// Sleep until this virtual time (a forced-dispatch point or the
    /// next arrival), then re-decide. Always strictly in the future.
    WaitUntil(f64),
}

/// Pure decision logic over the queue state — owns no requests itself,
/// so the server's borrow structure stays simple and every decision is a
/// function of (queue, clock, arrival horizon) only.
#[derive(Debug, Clone)]
pub struct DynamicBatcher {
    policy: BatchPolicy,
}

impl DynamicBatcher {
    pub fn new(policy: BatchPolicy) -> Self {
        Self { policy }
    }

    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// The batch-size limit after an external cap (e.g. the health
    /// machine's brown-out shrink) is applied on top of the policy.
    fn capped_max(&self, cap: Option<usize>) -> usize {
        let max = self.policy.effective_max();
        cap.map_or(max, |c| max.min(c.max(1)))
    }

    /// Decide whether to dispatch at `now_us`. `next_arrival_us` is the
    /// earliest future submission (strictly after `now_us`), or `None`
    /// when the arrival calendar is exhausted. `cap` further restricts
    /// the policy's batch size (`None` = policy cap only). The queue
    /// must be non-empty.
    pub fn decide(
        &self,
        queue: &RequestQueue,
        now_us: f64,
        next_arrival_us: Option<f64>,
        cap: Option<usize>,
    ) -> BatchDecision {
        let Some(head) = queue.peek_edf() else {
            return BatchDecision::Dispatch; // vacuous; the server never asks
        };
        let max = self.capped_max(cap);
        if !self.policy.enabled || queue.count_geometry(head.geometry()) >= max {
            return BatchDecision::Dispatch;
        }
        let oldest = queue.earliest_arrival_us().unwrap_or(now_us);
        let force_at = oldest + self.policy.max_wait_us;
        if now_us >= force_at {
            return BatchDecision::Dispatch;
        }
        match next_arrival_us {
            None => BatchDecision::Dispatch,
            Some(arrival) => BatchDecision::WaitUntil(arrival.min(force_at)),
        }
    }

    /// Remove the batch to dispatch: the EDF head plus up to
    /// `max_batch_size - 1` same-geometry requests in EDF order, further
    /// limited by `cap` when given.
    pub fn form(&self, queue: &mut RequestQueue, cap: Option<usize>) -> Vec<DetectionRequest> {
        let Some(geometry) = queue.peek_edf().map(|r| r.geometry()) else {
            return Vec::new();
        };
        queue.take_batch(geometry, self.capped_max(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Priority, RequestId};
    use fd_detector::Backend;
    use fd_imgproc::GrayImage;

    fn req(seq: u64, arrival_us: f64, deadline_us: f64, w: usize) -> DetectionRequest {
        DetectionRequest {
            id: RequestId(seq),
            priority: Priority::Standard,
            arrival_us,
            deadline_us,
            frame: GrayImage::from_fn(w, 4, |_, _| 0.0),
            backend: Backend::Haar,
            seq,
        }
    }

    fn queue_with(reqs: Vec<DetectionRequest>) -> RequestQueue {
        let mut q = RequestQueue::new(64);
        for r in reqs {
            q.offer(r).unwrap();
        }
        q
    }

    #[test]
    fn full_batch_dispatches_immediately() {
        let b = DynamicBatcher::new(BatchPolicy { max_batch_size: 2, ..BatchPolicy::default() });
        let q = queue_with(vec![req(0, 0.0, 1e6, 8), req(1, 0.0, 1e6, 8)]);
        assert_eq!(b.decide(&q, 0.0, Some(50.0), None), BatchDecision::Dispatch);
    }

    #[test]
    fn partial_batch_waits_for_the_next_arrival() {
        let b = DynamicBatcher::new(BatchPolicy {
            max_batch_size: 4,
            max_wait_us: 1000.0,
            ..BatchPolicy::default()
        });
        let q = queue_with(vec![req(0, 0.0, 1e6, 8)]);
        assert_eq!(b.decide(&q, 0.0, Some(300.0), None), BatchDecision::WaitUntil(300.0));
        // ... but never past the forced-dispatch point.
        assert_eq!(b.decide(&q, 0.0, Some(5000.0), None), BatchDecision::WaitUntil(1000.0));
        // Once the head has waited max_wait, dispatch regardless.
        assert_eq!(b.decide(&q, 1000.0, Some(5000.0), None), BatchDecision::Dispatch);
    }

    #[test]
    fn exhausted_arrivals_dispatch_immediately() {
        let b = DynamicBatcher::new(BatchPolicy::default());
        let q = queue_with(vec![req(0, 0.0, 1e6, 8)]);
        assert_eq!(b.decide(&q, 0.0, None, None), BatchDecision::Dispatch);
    }

    #[test]
    fn disabled_batching_is_immediate_single_dispatch() {
        let b = DynamicBatcher::new(BatchPolicy { enabled: false, ..BatchPolicy::default() });
        assert_eq!(b.policy().effective_max(), 1);
        let mut q = queue_with(vec![req(0, 0.0, 1e6, 8), req(1, 0.0, 2e6, 8)]);
        assert_eq!(b.decide(&q, 0.0, Some(10.0), None), BatchDecision::Dispatch);
        let batch = b.form(&mut q, None);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, RequestId(0));
    }

    #[test]
    fn external_cap_shrinks_the_batch() {
        let b = DynamicBatcher::new(BatchPolicy { max_batch_size: 8, ..BatchPolicy::default() });
        let mut q = queue_with((0..4).map(|i| req(i, 0.0, 1e6, 8)).collect());
        // A brown-out cap of 2 makes 4 queued requests a "full" batch.
        assert_eq!(b.decide(&q, 0.0, Some(50.0), Some(2)), BatchDecision::Dispatch);
        assert_eq!(b.form(&mut q, Some(2)).len(), 2);
        // A cap above the policy maximum changes nothing: the remaining
        // two requests fit one policy-sized batch.
        assert_eq!(b.form(&mut q, Some(99)).len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn form_takes_the_heads_geometry_only() {
        let b = DynamicBatcher::new(BatchPolicy::default());
        let mut q = queue_with(vec![
            req(0, 0.0, 100.0, 8),
            req(1, 0.0, 50.0, 16), // head (earliest deadline), 16-wide
            req(2, 0.0, 75.0, 16),
            req(3, 0.0, 60.0, 8),
        ]);
        let batch = b.form(&mut q, None);
        let ids: Vec<_> = batch.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, [1, 2], "head geometry, EDF order");
        assert_eq!(q.len(), 2);
    }
}
