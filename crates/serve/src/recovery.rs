//! Batch recovery: poisoning isolation, bounded retries, degraded plans.
//!
//! A batched submission fails as a unit: one injected launch fault
//! surfaces as a single [`DetectorError`] for the whole batch, and
//! before this layer existed every batchmate of a poisoned request was
//! failed with it. Recovery turns that unit failure into per-request
//! outcomes on the virtual clock:
//!
//! * **transient faults** are retried in place with the deterministic
//!   exponential backoff of [`RecoveryPolicy`] (the same schedule the
//!   streaming retry loop charges), bounded by `max_retries`;
//! * **attributed faults** — when the device names the poisoned batch
//!   slot ([`DetectorError::batch_slot`]) — fail exactly that request
//!   and resubmit the survivors;
//! * **unattributed faults** bisect the batch and resubmit both halves,
//!   charging real re-submission latency, so a poisoned request is
//!   cornered in `O(log n)` extra submissions instead of failing `n`;
//! * **request-caused errors** (bad geometry, invalid configuration)
//!   fail the whole group immediately — no retry can fix a malformed
//!   request and it must not consume the fault budget.
//!
//! Every decision is a pure function of the error, the retry count and
//! the group size, so recovery trajectories are as deterministic as the
//! fault sequences that trigger them.

use fd_detector::{DetectorError, RecoveryPolicy};

/// Per-request retry policy for the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Master switch; `false` reproduces the legacy behavior exactly
    /// (any submission error fails every batch member, no retries).
    pub enabled: bool,
    /// Retry budget and backoff schedule, shared with the streaming
    /// layer: `max_retries` transient retries per group lineage,
    /// `backoff_ms(k)` virtual backoff before retry `k`, and
    /// `max_shed_levels` pyramid levels a degraded re-attempt may shed.
    pub recovery: RecoveryPolicy,
    /// Consult request deadlines while recovering: members whose
    /// deadline passes mid-recovery expire instead of burning retries,
    /// and re-attempts under deadline pressure shed pyramid scales
    /// (completing as `Degraded`) when `max_shed_levels` allows.
    pub deadline_aware: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            recovery: RecoveryPolicy { max_shed_levels: 2, ..RecoveryPolicy::default() },
            deadline_aware: true,
        }
    }
}

impl RetryPolicy {
    /// The legacy no-recovery policy: a submission error fails the whole
    /// batch, exactly as the pre-fault-tolerance server did.
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }

    /// Backoff charged before transient retry `k` (0-based), virtual µs.
    pub fn backoff_us(&self, retry: u32) -> f64 {
        self.recovery.backoff_ms(retry) * 1000.0
    }

    /// Decide how to react to `error` from a submission of `group_len`
    /// requests that has already spent `retries` transient retries.
    pub fn next_step(
        &self,
        error: &DetectorError,
        retries: u32,
        group_len: usize,
    ) -> RecoveryStep {
        if !self.enabled || !error.is_device_fault() {
            return RecoveryStep::FailAll;
        }
        if error.is_transient() && retries < self.recovery.max_retries {
            return RecoveryStep::RetrySame { backoff_us: self.backoff_us(retries) };
        }
        // Timeout, or transient budget exhausted: the launch class is
        // wedged for this composition — peel the poisoned member off.
        if group_len <= 1 {
            return RecoveryStep::FailAll;
        }
        match error.batch_slot() {
            Some(slot) if slot < group_len => RecoveryStep::IsolateSlot { slot },
            _ => RecoveryStep::Bisect,
        }
    }
}

/// Reaction to one failed batch submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryStep {
    /// Re-submit the same group after charging `backoff_us`.
    RetrySame { backoff_us: f64 },
    /// Fail the request at `slot`; re-submit the survivors.
    IsolateSlot { slot: usize },
    /// Split the group in half and re-submit both halves.
    Bisect,
    /// Fail every member of the group.
    FailAll,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::LaunchError;

    fn transient(batch_slot: Option<usize>) -> DetectorError {
        DetectorError::Launch {
            kernel: "cascade_eval",
            level: Some(1),
            frame: None,
            source: LaunchError::InjectedTransient { kernel: "cascade_eval", batch_slot },
        }
    }

    fn timeout(batch_slot: Option<usize>) -> DetectorError {
        DetectorError::Launch {
            kernel: "cascade_eval",
            level: Some(1),
            frame: None,
            source: LaunchError::InjectedTimeout { kernel: "cascade_eval", batch_slot },
        }
    }

    #[test]
    fn transients_retry_with_exponential_backoff_until_budget() {
        let p = RetryPolicy::default();
        assert_eq!(
            p.next_step(&transient(None), 0, 4),
            RecoveryStep::RetrySame { backoff_us: 2_000.0 }
        );
        assert_eq!(
            p.next_step(&transient(None), 2, 4),
            RecoveryStep::RetrySame { backoff_us: 8_000.0 }
        );
        // Budget exhausted (default max_retries = 3): fall to isolation.
        assert_eq!(p.next_step(&transient(None), 3, 4), RecoveryStep::Bisect);
        assert_eq!(p.next_step(&transient(None), 3, 1), RecoveryStep::FailAll);
    }

    #[test]
    fn timeouts_isolate_by_slot_or_bisect() {
        let p = RetryPolicy::default();
        assert_eq!(p.next_step(&timeout(Some(2)), 0, 4), RecoveryStep::IsolateSlot { slot: 2 });
        assert_eq!(p.next_step(&timeout(None), 0, 4), RecoveryStep::Bisect);
        // A stale out-of-range slot (cannot index this group) bisects.
        assert_eq!(p.next_step(&timeout(Some(9)), 0, 4), RecoveryStep::Bisect);
        assert_eq!(p.next_step(&timeout(Some(0)), 0, 1), RecoveryStep::FailAll);
    }

    #[test]
    fn request_caused_errors_never_retry() {
        let p = RetryPolicy::default();
        let bad = DetectorError::FrameTooSmall { width: 8, height: 8, window: 24 };
        assert_eq!(p.next_step(&bad, 0, 4), RecoveryStep::FailAll);
    }

    #[test]
    fn disabled_policy_fails_everything() {
        let p = RetryPolicy::disabled();
        assert_eq!(p.next_step(&transient(None), 0, 4), RecoveryStep::FailAll);
        assert_eq!(p.next_step(&timeout(Some(1)), 0, 4), RecoveryStep::FailAll);
    }
}
