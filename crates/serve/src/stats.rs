//! Serving statistics: latency histograms, shed/batch-occupancy and
//! queue-depth accounting. All times are virtual microseconds.

use crate::request::Priority;

/// Exact latency histogram: keeps every sample and answers quantiles by
/// sorted rank. Serving runs are bounded (one sample per served
/// request), so exactness is affordable and keeps the quantiles — and
/// therefore the benches' pass/fail assertions — fully deterministic.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples_us: Vec<f64>,
}

impl LatencyHistogram {
    pub fn record(&mut self, latency_us: f64) {
        self.samples_us.push(latency_us);
    }

    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The `q`-quantile (0 < q <= 1) by nearest-rank; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    pub fn p50_us(&self) -> f64 {
        self.quantile_us(0.50)
    }

    pub fn p95_us(&self) -> f64 {
        self.quantile_us(0.95)
    }

    pub fn p99_us(&self) -> f64 {
        self.quantile_us(0.99)
    }

    pub fn max_us(&self) -> f64 {
        self.samples_us.iter().copied().fold(0.0, f64::max)
    }

    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
    }
}

/// Aggregate accounting for one serving run.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests submitted to the arrival calendar.
    pub submitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed because their deadline passed while queued.
    pub shed_late: u64,
    /// Requests refused at arrival because their class queue was full.
    pub rejected_full: u64,
    /// Per-class breakdown of `rejected_full` (indexed by
    /// [`Priority::index`]).
    pub rejected_per_class: [u64; 3],
    /// Requests whose batch failed on the device (after recovery, when
    /// enabled, exhausted its options).
    pub failed: u64,
    /// Requests completed with a shed-scale (degraded) plan under
    /// deadline pressure during fault recovery.
    pub degraded_completions: u64,
    /// Requests whose deadline passed mid-recovery (retries abandoned).
    pub expired: u64,
    /// Requests refused at arrival while the server was browned out.
    pub rejected_brownout: u64,
    /// Requests refused fail-fast while the breaker was open.
    pub rejected_failfast: u64,
    /// Same-group re-submissions issued for transient faults.
    pub retries_issued: u64,
    /// Virtual µs of retry backoff charged to the clock.
    pub retry_backoff_us: f64,
    /// Failed groups split in half to corner an unattributed fault.
    pub batches_bisected: u64,
    /// Requests isolated as the poisoned member of a faulted batch
    /// (device-attributed slot or cornered by bisection).
    pub poisoned_requests: u64,
    /// Event-loop steps spent in a non-Healthy state.
    pub brownout_ticks: u64,
    /// Times the breaker tripped to Open (including failed probes).
    pub breaker_trips: u64,
    /// Half-open probes that closed the breaker.
    pub probes_succeeded: u64,
    /// Half-open probes that re-opened the breaker.
    pub probes_failed: u64,
    /// Served requests that completed by their deadline.
    pub deadline_met: u64,
    /// Served requests that completed after their deadline.
    pub deadline_missed: u64,
    /// Device submissions dispatched.
    pub batches: u64,
    /// Requests carried by those submissions (occupancy numerator).
    pub batched_requests: u64,
    /// High-water mark of total queued requests.
    pub max_queue_depth: usize,
    /// Virtual µs the device spent executing submissions.
    pub gpu_busy_us: f64,
    /// Virtual time of the last completion.
    pub makespan_us: f64,
    /// Queueing + service latency of completed requests (served and
    /// degraded).
    pub latency: LatencyHistogram,
    /// Per-class latency (indexed by [`Priority::index`]).
    pub latency_per_class: [LatencyHistogram; 3],
}

impl ServeStats {
    /// Mean requests per device submission (1.0 = batching bought
    /// nothing, `max_batch_size` = perfectly full batches).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_requests as f64 / self.batches as f64
    }

    /// Served requests per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            return 0.0;
        }
        self.served as f64 / (self.makespan_us / 1e6)
    }

    /// Latency histogram of one priority class.
    pub fn class_latency(&self, class: Priority) -> &LatencyHistogram {
        &self.latency_per_class[class.index()]
    }

    /// Useful completions (full or degraded) per submitted request —
    /// the fault-tolerance figure of merit the chaos bench gates on.
    pub fn goodput(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        (self.served + self.degraded_completions) as f64 / self.submitted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let mut h = LatencyHistogram::default();
        for v in [50.0, 10.0, 30.0, 20.0, 40.0] {
            h.record(v);
        }
        assert_eq!(h.p50_us(), 30.0);
        assert_eq!(h.quantile_us(0.2), 10.0);
        assert_eq!(h.p99_us(), 50.0);
        assert_eq!(h.max_us(), 50.0);
        assert_eq!(h.mean_us(), 30.0);
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.p99_us(), 0.0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn occupancy_and_throughput_derive_from_counters() {
        let stats = ServeStats {
            served: 20,
            batches: 5,
            batched_requests: 20,
            makespan_us: 2_000_000.0,
            ..ServeStats::default()
        };
        assert_eq!(stats.mean_batch_occupancy(), 4.0);
        assert_eq!(stats.throughput_rps(), 10.0);
        assert_eq!(ServeStats::default().mean_batch_occupancy(), 0.0);
        assert_eq!(ServeStats::default().throughput_rps(), 0.0);
    }

    #[test]
    fn goodput_counts_full_and_degraded_completions() {
        let stats = ServeStats {
            submitted: 10,
            served: 7,
            degraded_completions: 2,
            failed: 1,
            ..ServeStats::default()
        };
        assert_eq!(stats.goodput(), 0.9);
        assert_eq!(ServeStats::default().goodput(), 0.0);
    }
}
