//! Serving statistics: latency histograms, shed/batch-occupancy and
//! queue-depth accounting. All times are virtual microseconds.

use fd_detector::Backend;

use crate::request::Priority;

/// Exact latency histogram: keeps every sample and answers quantiles by
/// sorted rank. Serving runs are bounded (one sample per served
/// request), so exactness is affordable and keeps the quantiles — and
/// therefore the benches' pass/fail assertions — fully deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    samples_us: Vec<f64>,
}

impl LatencyHistogram {
    pub fn record(&mut self, latency_us: f64) {
        self.samples_us.push(latency_us);
    }

    /// The raw samples, in recording order.
    pub fn samples_us(&self) -> &[f64] {
        &self.samples_us
    }

    /// Fold `other`'s samples into this histogram. Because quantiles are
    /// answered from the full sample set, the merged histogram's
    /// quantiles are *exact* — identical to recomputing over the union
    /// of both sample sets, never an approximation.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The `q`-quantile (0 < q <= 1) by nearest-rank; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    pub fn p50_us(&self) -> f64 {
        self.quantile_us(0.50)
    }

    pub fn p95_us(&self) -> f64 {
        self.quantile_us(0.95)
    }

    pub fn p99_us(&self) -> f64 {
        self.quantile_us(0.99)
    }

    pub fn max_us(&self) -> f64 {
        self.samples_us.iter().copied().fold(0.0, f64::max)
    }

    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
    }
}

/// Aggregate accounting for one serving run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests submitted to the arrival calendar.
    pub submitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed because their deadline passed while queued.
    pub shed_late: u64,
    /// Requests refused at arrival because their class queue was full.
    pub rejected_full: u64,
    /// Per-class breakdown of `rejected_full` (indexed by
    /// [`Priority::index`]).
    pub rejected_per_class: [u64; 3],
    /// Requests whose batch failed on the device (after recovery, when
    /// enabled, exhausted its options).
    pub failed: u64,
    /// Requests completed with a shed-scale (degraded) plan under
    /// deadline pressure during fault recovery.
    pub degraded_completions: u64,
    /// Requests whose deadline passed mid-recovery (retries abandoned).
    pub expired: u64,
    /// Requests refused at arrival while the server was browned out.
    pub rejected_brownout: u64,
    /// Requests refused fail-fast while the breaker was open.
    pub rejected_failfast: u64,
    /// Requests evicted from a lost (killed or draining) fleet device
    /// that no surviving replica could take. Only the fleet layer emits
    /// these; a single server never does.
    pub evicted: u64,
    /// Same-group re-submissions issued for transient faults.
    pub retries_issued: u64,
    /// Virtual µs of retry backoff charged to the clock.
    pub retry_backoff_us: f64,
    /// Failed groups split in half to corner an unattributed fault.
    pub batches_bisected: u64,
    /// Requests isolated as the poisoned member of a faulted batch
    /// (device-attributed slot or cornered by bisection).
    pub poisoned_requests: u64,
    /// Event-loop steps spent in a non-Healthy state.
    pub brownout_ticks: u64,
    /// Times the breaker tripped to Open (including failed probes).
    pub breaker_trips: u64,
    /// Half-open probes that closed the breaker.
    pub probes_succeeded: u64,
    /// Half-open probes that re-opened the breaker.
    pub probes_failed: u64,
    /// Served requests that completed by their deadline.
    pub deadline_met: u64,
    /// Served requests that completed after their deadline.
    pub deadline_missed: u64,
    /// Device submissions dispatched.
    pub batches: u64,
    /// Requests carried by those submissions (occupancy numerator).
    pub batched_requests: u64,
    /// High-water mark of total queued requests.
    pub max_queue_depth: usize,
    /// Virtual µs the device spent executing submissions.
    pub gpu_busy_us: f64,
    /// Virtual time of the last completion.
    pub makespan_us: f64,
    /// Queueing + service latency of completed requests (served and
    /// degraded).
    pub latency: LatencyHistogram,
    /// Per-class latency (indexed by [`Priority::index`]).
    pub latency_per_class: [LatencyHistogram; 3],
    /// Submissions per detection backend (indexed by
    /// [`Backend::index`]).
    pub submitted_per_backend: [u64; 2],
    /// Served completions per backend.
    pub served_per_backend: [u64; 2],
    /// Degraded completions per backend.
    pub degraded_per_backend: [u64; 2],
    /// Per-backend latency of completed requests (served and degraded),
    /// the mixed-traffic tiering the `serve_mixed` bench gates on.
    pub latency_per_backend: [LatencyHistogram; 2],
}

impl ServeStats {
    /// Mean requests per device submission (1.0 = batching bought
    /// nothing, `max_batch_size` = perfectly full batches).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_requests as f64 / self.batches as f64
    }

    /// Served requests per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            return 0.0;
        }
        self.served as f64 / (self.makespan_us / 1e6)
    }

    /// Latency histogram of one priority class.
    pub fn class_latency(&self, class: Priority) -> &LatencyHistogram {
        &self.latency_per_class[class.index()]
    }

    /// Latency histogram of one detection backend.
    pub fn backend_latency(&self, backend: Backend) -> &LatencyHistogram {
        &self.latency_per_backend[backend.index()]
    }

    /// Useful completions (full or degraded) of one backend per
    /// submission to that backend — per-tier goodput for mixed traffic.
    pub fn backend_goodput(&self, backend: Backend) -> f64 {
        let i = backend.index();
        if self.submitted_per_backend[i] == 0 {
            return 0.0;
        }
        (self.served_per_backend[i] + self.degraded_per_backend[i]) as f64
            / self.submitted_per_backend[i] as f64
    }

    /// Useful completions (full or degraded) per submitted request —
    /// the fault-tolerance figure of merit the chaos bench gates on.
    pub fn goodput(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        (self.served + self.degraded_completions) as f64 / self.submitted as f64
    }

    /// Roll `other` into this report — the fleet aggregator that turns
    /// per-device stats into one fleet-wide view. Counters and busy time
    /// add; high-water marks (`max_queue_depth`, `makespan_us`) take the
    /// max; latency histograms merge by sample union, so the merged
    /// quantiles are exact (see [`LatencyHistogram::merge`]). The
    /// exhaustive destructure makes adding a `ServeStats` field without
    /// deciding its merge rule a compile error.
    pub fn merge(&mut self, other: &ServeStats) {
        let ServeStats {
            submitted,
            served,
            shed_late,
            rejected_full,
            rejected_per_class,
            failed,
            degraded_completions,
            expired,
            rejected_brownout,
            rejected_failfast,
            evicted,
            retries_issued,
            retry_backoff_us,
            batches_bisected,
            poisoned_requests,
            brownout_ticks,
            breaker_trips,
            probes_succeeded,
            probes_failed,
            deadline_met,
            deadline_missed,
            batches,
            batched_requests,
            max_queue_depth,
            gpu_busy_us,
            makespan_us,
            latency,
            latency_per_class,
            submitted_per_backend,
            served_per_backend,
            degraded_per_backend,
            latency_per_backend,
        } = other;
        self.submitted += submitted;
        self.served += served;
        self.shed_late += shed_late;
        self.rejected_full += rejected_full;
        for (mine, theirs) in self.rejected_per_class.iter_mut().zip(rejected_per_class) {
            *mine += theirs;
        }
        self.failed += failed;
        self.degraded_completions += degraded_completions;
        self.expired += expired;
        self.rejected_brownout += rejected_brownout;
        self.rejected_failfast += rejected_failfast;
        self.evicted += evicted;
        self.retries_issued += retries_issued;
        self.retry_backoff_us += retry_backoff_us;
        self.batches_bisected += batches_bisected;
        self.poisoned_requests += poisoned_requests;
        self.brownout_ticks += brownout_ticks;
        self.breaker_trips += breaker_trips;
        self.probes_succeeded += probes_succeeded;
        self.probes_failed += probes_failed;
        self.deadline_met += deadline_met;
        self.deadline_missed += deadline_missed;
        self.batches += batches;
        self.batched_requests += batched_requests;
        self.max_queue_depth = self.max_queue_depth.max(*max_queue_depth);
        self.gpu_busy_us += gpu_busy_us;
        self.makespan_us = self.makespan_us.max(*makespan_us);
        self.latency.merge(latency);
        for (mine, theirs) in self.latency_per_class.iter_mut().zip(latency_per_class) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.submitted_per_backend.iter_mut().zip(submitted_per_backend) {
            *mine += theirs;
        }
        for (mine, theirs) in self.served_per_backend.iter_mut().zip(served_per_backend) {
            *mine += theirs;
        }
        for (mine, theirs) in self.degraded_per_backend.iter_mut().zip(degraded_per_backend) {
            *mine += theirs;
        }
        for (mine, theirs) in self.latency_per_backend.iter_mut().zip(latency_per_backend) {
            mine.merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let mut h = LatencyHistogram::default();
        for v in [50.0, 10.0, 30.0, 20.0, 40.0] {
            h.record(v);
        }
        assert_eq!(h.p50_us(), 30.0);
        assert_eq!(h.quantile_us(0.2), 10.0);
        assert_eq!(h.p99_us(), 50.0);
        assert_eq!(h.max_us(), 50.0);
        assert_eq!(h.mean_us(), 30.0);
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.p99_us(), 0.0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn occupancy_and_throughput_derive_from_counters() {
        let stats = ServeStats {
            served: 20,
            batches: 5,
            batched_requests: 20,
            makespan_us: 2_000_000.0,
            ..ServeStats::default()
        };
        assert_eq!(stats.mean_batch_occupancy(), 4.0);
        assert_eq!(stats.throughput_rps(), 10.0);
        assert_eq!(ServeStats::default().mean_batch_occupancy(), 0.0);
        assert_eq!(ServeStats::default().throughput_rps(), 0.0);
    }

    #[test]
    fn merged_quantiles_equal_recomputing_from_the_union() {
        // Three per-device sample sets with distinct shapes.
        let sets: [&[f64]; 3] =
            [&[900.0, 120.0, 340.0], &[55.0, 2100.0, 640.0, 10.0], &[470.0]];
        let mut merged = ServeStats::default();
        let mut union = LatencyHistogram::default();
        for samples in sets {
            let mut device = ServeStats::default();
            for &s in samples {
                device.latency.record(s);
                device.latency_per_class[1].record(s);
                union.record(s);
            }
            device.served = samples.len() as u64;
            device.submitted = samples.len() as u64;
            merged.merge(&device);
        }
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(
                merged.latency.quantile_us(q),
                union.quantile_us(q),
                "merged q={q} must equal the union's"
            );
            assert_eq!(merged.latency_per_class[1].quantile_us(q), union.quantile_us(q));
        }
        assert_eq!(merged.latency.len(), 8);
        assert_eq!(merged.served, 8);
        assert_eq!(merged.latency.mean_us(), union.mean_us());
    }

    #[test]
    fn merge_sums_counters_and_maxes_high_water_marks() {
        let a = ServeStats {
            submitted: 10,
            served: 8,
            failed: 2,
            rejected_per_class: [1, 2, 3],
            max_queue_depth: 5,
            makespan_us: 1000.0,
            gpu_busy_us: 400.0,
            ..ServeStats::default()
        };
        let b = ServeStats {
            submitted: 4,
            served: 4,
            rejected_per_class: [0, 1, 0],
            max_queue_depth: 9,
            makespan_us: 700.0,
            gpu_busy_us: 100.0,
            ..ServeStats::default()
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.submitted, 14);
        assert_eq!(m.served, 12);
        assert_eq!(m.failed, 2);
        assert_eq!(m.rejected_per_class, [1, 3, 3]);
        assert_eq!(m.max_queue_depth, 9, "high-water mark takes the max");
        assert_eq!(m.makespan_us, 1000.0);
        assert_eq!(m.gpu_busy_us, 500.0);
        // Merging a default is the identity.
        let mut id = a.clone();
        id.merge(&ServeStats::default());
        assert_eq!(id, a);
    }

    #[test]
    fn goodput_counts_full_and_degraded_completions() {
        let stats = ServeStats {
            submitted: 10,
            served: 7,
            degraded_completions: 2,
            failed: 1,
            ..ServeStats::default()
        };
        assert_eq!(stats.goodput(), 0.9);
        assert_eq!(ServeStats::default().goodput(), 0.0);
    }
}
