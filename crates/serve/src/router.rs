//! Fleet routing: which device lane takes the next request.
//!
//! The router is a pure decision function over per-lane snapshots
//! ([`LaneView`]), so placement — like everything else in the serving
//! stack — is deterministic: the same fleet state always routes the
//! same way. Placement preference, in order:
//!
//! 1. **Eligibility** — only lanes that are accepting work (not
//!    draining, not dead) and whose memory budget admits the request's
//!    frame geometry are considered. Lanes with an open breaker are
//!    *de-prioritized* rather than excluded: when a healthy lane
//!    exists, open lanes get nothing, but when every admitting lane is
//!    open the request is still placed (the lane's own fail-fast path
//!    rejects it deterministically — exactly what a single
//!    [`crate::DetectionServer`] would do).
//! 2. **Geometry affinity** — a lane that has already admitted this
//!    frame geometry keeps receiving it while its backlog stays within
//!    `affinity_slack` of the least-loaded eligible lane. Affinity is
//!    what lets the dynamic batcher fill same-geometry batches instead
//!    of smearing every geometry across every device (and re-paying
//!    each device's buffer-pool footprint).
//! 3. **Least load, then lowest index** — pending work breaks affinity
//!    ties; the lane index makes the order total.

/// Routing policy knobs.
#[derive(Debug, Clone)]
pub struct RoutePolicy {
    /// Prefer lanes that already admitted the request's geometry (see
    /// module docs). Disabling degenerates to pure least-loaded.
    pub geometry_affinity: bool,
    /// How much deeper (in pending requests) an affine lane may be than
    /// the least-loaded eligible lane before the router spills the
    /// geometry to a fresh lane. Defaults to the default batch size, so
    /// a lane keeps enough backlog to fill batches but a sustained
    /// imbalance spills.
    pub affinity_slack: usize,
}

impl Default for RoutePolicy {
    fn default() -> Self {
        Self { geometry_affinity: true, affinity_slack: 8 }
    }
}

/// One lane's state as the router sees it at decision time.
#[derive(Debug, Clone, Copy)]
pub struct LaneView {
    /// Accepting new work (Active state — not draining, not dead).
    pub accepting: bool,
    /// The lane's fail-fast breaker is open.
    pub breaker_open: bool,
    /// Queued + calendar requests on the lane.
    pub pending: usize,
    /// The lane already admitted this request's frame geometry.
    pub has_geometry: bool,
    /// The lane's device memory budget admits this geometry.
    pub can_admit: bool,
    /// The lane's detector serves this request's backend class. A hard
    /// eligibility bound, never a preference: a Haar request on a CNN
    /// lane would silently change its results. Homogeneous fleets set
    /// this `true` everywhere, reducing to the pre-backend router.
    pub backend_match: bool,
}

/// Fleet-level routing and migration accounting.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Fresh submissions placed, per device.
    pub routed_per_device: Vec<u64>,
    /// Queued/calendar requests moved off a lost or breaker-open lane.
    pub migrations: u64,
    /// Evacuation events (breaker-open, kill or drain) that moved at
    /// least one request.
    pub failovers: u64,
    /// Requests moved by idle lanes stealing from deep queues.
    pub steals: u64,
    /// Submissions refused because no lane could admit the geometry.
    pub admission_rejected: u64,
}

/// The fleet's placement engine (policy + accounting).
#[derive(Debug, Clone)]
pub struct Router {
    policy: RoutePolicy,
    stats: RouterStats,
}

impl Router {
    pub fn new(policy: RoutePolicy, devices: usize) -> Self {
        Self {
            policy,
            stats: RouterStats { routed_per_device: vec![0; devices], ..Default::default() },
        }
    }

    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut RouterStats {
        &mut self.stats
    }

    /// Pick the lane for a fresh submission and count it. `None` means
    /// no lane can take the request (see [`Self::pick`]).
    pub fn route(&mut self, lanes: &[LaneView]) -> Option<usize> {
        let choice = self.pick(lanes);
        match choice {
            Some(d) => self.stats.routed_per_device[d] += 1,
            None => self.stats.admission_rejected += 1,
        }
        choice
    }

    /// The placement decision alone, without accounting. Deterministic
    /// in the snapshot. Returns `None` only when no accepting lane
    /// admits the geometry.
    pub fn pick(&self, lanes: &[LaneView]) -> Option<usize> {
        let eligible =
            |l: &LaneView| l.accepting && l.backend_match && (l.has_geometry || l.can_admit);
        // Healthy (breaker closed) lanes take absolute precedence; open
        // lanes are a last resort so a fully-open fleet still fails fast
        // through a lane instead of erroring at the front door.
        let tier = |open: bool| {
            self.best_of(
                lanes
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| eligible(l) && l.breaker_open == open),
            )
        };
        tier(false).or_else(|| tier(true))
    }

    /// Min-(pending, index) with geometry affinity over one tier of
    /// candidate lanes.
    fn best_of<'a, I>(&self, candidates: I) -> Option<usize>
    where
        I: Iterator<Item = (usize, &'a LaneView)> + Clone,
    {
        let min_pending = candidates.clone().map(|(_, l)| l.pending).min()?;
        if self.policy.geometry_affinity {
            let affine = candidates
                .clone()
                .filter(|(_, l)| {
                    l.has_geometry && l.pending <= min_pending + self.policy.affinity_slack
                })
                .min_by_key(|&(i, l)| (l.pending, i));
            if let Some((i, _)) = affine {
                return Some(i);
            }
        }
        candidates.min_by_key(|&(i, l)| (l.pending, i)).map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(pending: usize, has_geometry: bool) -> LaneView {
        LaneView {
            accepting: true,
            breaker_open: false,
            pending,
            has_geometry,
            can_admit: true,
            backend_match: true,
        }
    }

    #[test]
    fn least_loaded_lowest_index_without_affinity() {
        let r = Router::new(RoutePolicy { geometry_affinity: false, affinity_slack: 0 }, 3);
        let lanes = [lane(4, true), lane(2, false), lane(2, false)];
        assert_eq!(r.pick(&lanes), Some(1), "load first, index breaks the tie");
    }

    #[test]
    fn affinity_holds_within_slack_then_spills() {
        let r = Router::new(RoutePolicy { geometry_affinity: true, affinity_slack: 3 }, 2);
        // The affine lane is deeper, but within slack: it keeps the
        // geometry so batches can fill.
        assert_eq!(r.pick(&[lane(3, true), lane(1, false)]), Some(0));
        // Past the slack the geometry spills to the emptier lane.
        assert_eq!(r.pick(&[lane(5, true), lane(1, false)]), Some(1));
        // Two affine lanes: least-loaded affine wins.
        assert_eq!(r.pick(&[lane(3, true), lane(2, true)]), Some(1));
    }

    #[test]
    fn non_accepting_and_non_admitting_lanes_are_excluded() {
        let r = Router::new(RoutePolicy::default(), 3);
        let mut lanes = [lane(0, false), lane(5, true), lane(9, false)];
        lanes[0].accepting = false; // draining or dead
        assert_eq!(r.pick(&lanes), Some(1));
        lanes[1].can_admit = false;
        lanes[1].has_geometry = false;
        assert_eq!(r.pick(&lanes), Some(2), "a known geometry outranks a budget check");
        lanes[2].can_admit = false;
        assert_eq!(r.pick(&lanes), None, "nothing left that can take the request");
    }

    #[test]
    fn open_breakers_are_a_last_resort_tier() {
        let r = Router::new(RoutePolicy::default(), 2);
        let mut lanes = [lane(0, true), lane(7, false)];
        lanes[0].breaker_open = true;
        assert_eq!(r.pick(&lanes), Some(1), "healthy lane wins regardless of load");
        lanes[1].accepting = false;
        assert_eq!(
            r.pick(&lanes),
            Some(0),
            "an all-open fleet still places (the lane fail-fasts it deterministically)"
        );
    }

    #[test]
    fn backend_mismatch_is_a_hard_bound_not_a_preference() {
        let r = Router::new(RoutePolicy::default(), 2);
        let mut lanes = [lane(0, true), lane(9, false)];
        lanes[0].backend_match = false;
        assert_eq!(
            r.pick(&lanes),
            Some(1),
            "an idle affine lane of the wrong backend never takes the request"
        );
        lanes[1].backend_match = false;
        assert_eq!(r.pick(&lanes), None, "no matching backend anywhere");
    }

    #[test]
    fn route_accounts_placements_and_rejections() {
        let mut r = Router::new(RoutePolicy::default(), 2);
        assert_eq!(r.route(&[lane(0, false), lane(0, false)]), Some(0));
        assert_eq!(r.route(&[lane(9, false), lane(0, false)]), Some(1));
        let mut dead = [lane(0, false), lane(0, false)];
        dead[0].accepting = false;
        dead[1].accepting = false;
        assert_eq!(r.route(&dead), None);
        assert_eq!(r.stats().routed_per_device, vec![1, 1]);
        assert_eq!(r.stats().admission_rejected, 1);
    }
}
