//! Request types: identifiers, priority classes and the queued record.

use fd_detector::Backend;
use fd_gpu::GeomClass;
use fd_imgproc::GrayImage;

/// Opaque handle identifying one submitted request. Assigned by the
/// server in submission order; stable across the request's lifetime and
/// reported back on every [`crate::CompletedRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Priority class of a request. Classes have separate bounded queue
/// depths (so bulk traffic cannot starve interactive admission) and act
/// as the tie-breaker between requests with equal deadlines: lower rank
/// dispatches first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// User-facing, latency-sensitive (tightest SLOs).
    Interactive,
    /// Default class.
    Standard,
    /// Background / best-effort (offline indexing, re-processing).
    Bulk,
}

impl Priority {
    /// All classes, in rank order (highest priority first).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Bulk];

    /// Rank of this class: 0 = most urgent. Also the per-class index in
    /// queue-depth and statistics arrays.
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Bulk => 2,
        }
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Bulk => "bulk",
        }
    }
}

/// One pending detection request as the scheduler sees it. Times are in
/// virtual microseconds on the server's clock.
#[derive(Debug, Clone)]
pub struct DetectionRequest {
    pub id: RequestId,
    pub priority: Priority,
    /// When the request reaches the server.
    pub arrival_us: f64,
    /// Absolute deadline (`arrival_us + slo_us`). Requests still queued
    /// past this instant are shed (when shedding is enabled).
    pub deadline_us: f64,
    /// The luma frame to run detection on.
    pub frame: GrayImage,
    /// Which detection engine serves this request. The third axis of
    /// the request class (with priority and geometry): batches only
    /// form on a lane whose detector matches, so a batch is always one
    /// engine's kernel chain.
    pub backend: Backend,
    /// Submission sequence number: the final, always-unique tie-breaker
    /// that makes every scheduling order total and deterministic.
    pub(crate) seq: u64,
}

impl DetectionRequest {
    /// Frame geometry class; batches only form across equal classes.
    /// This is the simulator's tuning key ([`fd_gpu::GeomClass`]), so a
    /// batch shares one autotuned launch shape per kernel by
    /// construction.
    pub fn geometry(&self) -> GeomClass {
        GeomClass::of(self.frame.width(), self.frame.height())
    }

    /// Earliest-deadline-first total order: deadline, then priority
    /// rank, then submission sequence. All three components are finite
    /// and unique-in-the-last, so the order is total and deterministic
    /// (validated times are finite; `total_cmp` needs no NaN caveats).
    pub fn edf_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deadline_us
            .total_cmp(&other.deadline_us)
            .then(self.priority.index().cmp(&other.priority.index()))
            .then(self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seq: u64, priority: Priority, deadline_us: f64) -> DetectionRequest {
        DetectionRequest {
            id: RequestId(seq),
            priority,
            arrival_us: 0.0,
            deadline_us,
            frame: GrayImage::from_fn(4, 4, |_, _| 0.0),
            backend: Backend::Haar,
            seq,
        }
    }

    #[test]
    fn edf_orders_by_deadline_then_priority_then_seq() {
        let early = req(5, Priority::Bulk, 100.0);
        let late = req(1, Priority::Interactive, 200.0);
        assert!(early.edf_cmp(&late).is_lt(), "deadline dominates priority");

        let a = req(7, Priority::Interactive, 100.0);
        assert!(a.edf_cmp(&early).is_lt(), "priority breaks deadline ties");

        let b = req(8, Priority::Interactive, 100.0);
        assert!(a.edf_cmp(&b).is_lt(), "sequence breaks full ties");
        assert!(a.edf_cmp(&a).is_eq());
    }

    #[test]
    fn priority_ranks_are_stable() {
        assert_eq!(Priority::ALL.map(Priority::index), [0, 1, 2]);
        assert_eq!(Priority::Interactive.name(), "interactive");
    }
}
