//! Chaos matrix: seeded fault plans × batching × retry policy.
//!
//! Sweeps the serving loop's fault-tolerance layer across injected
//! fault kinds, batching on/off and retry on/off, asserting on every
//! cell that (a) accounting is exact — each submitted request gets
//! exactly one terminal outcome and the stats counters tile the
//! submission count, (b) the run is deterministic — an identical
//! configuration reproduces identical outcomes bit-for-bit, and
//! (c) recovery actually recovers: transient-only plans keep goodput
//! high, poisoned batches fail at most the poisoned member's worth of
//! requests, and stall-only plans (which slow but never reject) serve
//! everything.

use fd_cnn::{CnnDetector, CnnModel};
use fd_detector::{Backend, Detector, DetectorConfig, FaceDetector};
use fd_gpu::{FaultPlan, HostExec};
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_imgproc::GrayImage;
use fd_serve::{
    BatchPolicy, CompletedRequest, DetectionServer, DeviceState, FleetConfig, FleetServer,
    HealthPolicy, Priority, RequestOutcome, RetryPolicy, RoutePolicy, ServeConfig, ServeStats,
    StealPolicy,
};

fn edge_cascade() -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut c = Cascade::new("edge", 24);
    c.stages.push(Stage {
        stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
        threshold: 0.5,
    });
    c
}

fn pattern_frame(w: usize, h: usize, shift: usize) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let x = x + shift;
        if (20..30).contains(&x) && (14..34).contains(&y) {
            5.0
        } else if (30..40).contains(&x) && (14..34).contains(&y) {
            250.0
        } else {
            120.0
        }
    })
}

fn server(plan: Option<FaultPlan>, batched: bool, retry: RetryPolicy) -> DetectionServer {
    let det = DetectorConfig {
        min_neighbors: 1,
        fault_plan: plan,
        ..DetectorConfig::default()
    };
    let cfg = ServeConfig {
        batch: BatchPolicy { enabled: batched, ..BatchPolicy::default() },
        retry,
        ..ServeConfig::default()
    };
    DetectionServer::new(&edge_cascade(), det, cfg).expect("server construction")
}

/// Submit `n` spread-out standard requests with a generous SLO.
fn submit_wave<D: Detector>(s: &mut DetectionServer<D>, n: u64, gap_us: f64, slo_us: f64) {
    for i in 0..n {
        s.submit(
            pattern_frame(64, 48, (i % 4) as usize),
            Priority::ALL[(i % 3) as usize],
            i as f64 * gap_us,
            slo_us,
        )
        .expect("valid submission");
    }
}

/// One terminal outcome per submission; stats counters tile the total.
fn assert_accounting<D: Detector>(s: &DetectionServer<D>, submitted: u64) {
    let st = s.stats();
    assert_eq!(st.submitted, submitted);
    assert_eq!(s.completed().len() as u64, submitted, "every request gets an outcome");
    assert_outcomes_tile(st, s.completed(), submitted);
}

/// Outcome counters (including fleet evictions) tile the submissions
/// and agree with the completion log, whichever layer produced it.
fn assert_outcomes_tile(st: &ServeStats, completed: &[CompletedRequest], submitted: u64) {
    let tiled = st.served
        + st.degraded_completions
        + st.shed_late
        + st.rejected_full
        + st.rejected_brownout
        + st.rejected_failfast
        + st.failed
        + st.expired
        + st.evicted;
    assert_eq!(tiled, submitted, "outcome counters must tile the submissions");
    // The outcome log agrees with the counters.
    let mut by_kind = [0u64; 9];
    for c in completed {
        let k = match &c.outcome {
            RequestOutcome::Served { .. } => 0,
            RequestOutcome::Degraded { .. } => 1,
            RequestOutcome::ShedLate { .. } => 2,
            RequestOutcome::RejectedQueueFull => 3,
            RequestOutcome::RejectedBrownOut => 4,
            RequestOutcome::RejectedFailFast => 5,
            RequestOutcome::Failed { .. } => 6,
            RequestOutcome::Expired { .. } => 7,
            RequestOutcome::Evicted { .. } => 8,
        };
        by_kind[k] += 1;
    }
    assert_eq!(
        by_kind,
        [
            st.served,
            st.degraded_completions,
            st.shed_late,
            st.rejected_full,
            st.rejected_brownout,
            st.rejected_failfast,
            st.failed,
            st.expired,
            st.evicted,
        ]
    );
}

fn fingerprint<D: Detector>(s: &DetectionServer<D>) -> Vec<(u64, u8, u64)> {
    fingerprint_log(s.completed())
}

fn fingerprint_log(completed: &[CompletedRequest]) -> Vec<(u64, u8, u64)> {
    completed
        .iter()
        .map(|c| {
            let (kind, t) = match &c.outcome {
                RequestOutcome::Served { completed_us, result, .. } => {
                    (0u8, completed_us.to_bits() ^ result.raw.len() as u64)
                }
                RequestOutcome::Degraded { completed_us, shed_levels, result, .. } => {
                    (1, completed_us.to_bits() ^ (*shed_levels as u64) ^ result.raw.len() as u64)
                }
                RequestOutcome::ShedLate { shed_us } => (2, shed_us.to_bits()),
                RequestOutcome::RejectedQueueFull => (3, 0),
                RequestOutcome::RejectedBrownOut => (4, 0),
                RequestOutcome::RejectedFailFast => (5, 0),
                RequestOutcome::Failed { attempts, .. } => (6, *attempts as u64),
                RequestOutcome::Expired { expired_us, .. } => (7, expired_us.to_bits()),
                RequestOutcome::Evicted { evicted_us } => (8, evicted_us.to_bits()),
            };
            (c.id.0, kind, t)
        })
        .collect()
}

#[test]
fn chaos_matrix_accounts_exactly_and_reproduces() {
    let n = 24u64;
    let plans: Vec<(&str, Option<FaultPlan>)> = vec![
        ("none", None),
        ("inert", Some(FaultPlan::seeded(3))),
        ("transient2%", Some(FaultPlan::seeded(3).with_transient_launch_failures(0.02))),
        ("timeout1%", Some(FaultPlan::seeded(5).with_launch_timeouts(0.01))),
        ("stalls", Some(FaultPlan::seeded(7).with_stream_stalls(0.05, 300.0))),
        (
            "mixed",
            Some(
                FaultPlan::seeded(9)
                    .with_transient_launch_failures(0.02)
                    .with_launch_timeouts(0.005)
                    .with_stream_stalls(0.02, 200.0),
            ),
        ),
    ];
    for (name, plan) in &plans {
        for batched in [false, true] {
            for retry in [RetryPolicy::disabled(), RetryPolicy::default()] {
                let run = || {
                    let mut s = server(plan.clone(), batched, retry.clone());
                    submit_wave(&mut s, n, 400.0, 1e6);
                    s.run();
                    assert_accounting(&s, n);
                    fingerprint(&s)
                };
                assert_eq!(
                    run(),
                    run(),
                    "cell (plan={name}, batched={batched}, retry={}) must reproduce",
                    retry.enabled
                );
            }
        }
    }
}

#[test]
fn stall_only_plans_serve_every_request() {
    // Stalls stretch the timeline but never reject a launch: no retries,
    // no failures, everything served (the SLO is generous).
    for batched in [false, true] {
        let mut s = server(
            Some(FaultPlan::seeded(21).with_stream_stalls(0.2, 400.0)),
            batched,
            RetryPolicy::default(),
        );
        submit_wave(&mut s, 16, 400.0, 1e6);
        s.run();
        assert_eq!(s.stats().served, 16, "batched={batched}");
        assert_eq!(s.stats().failed, 0);
        assert_eq!(s.stats().retries_issued, 0);
    }
}

#[test]
fn transient_faults_recover_to_high_goodput() {
    let mut s = server(
        Some(FaultPlan::seeded(42).with_transient_launch_failures(0.02)),
        true,
        RetryPolicy::default(),
    );
    submit_wave(&mut s, 40, 400.0, 1e6);
    s.run();
    let st = s.stats();
    assert!(st.retries_issued > 0, "a 2% rate over a 40-request run must fault");
    assert!(
        st.goodput() >= 0.9,
        "bounded retries must absorb transients: goodput {:.3}",
        st.goodput()
    );
    // Without retries, the same plan loses whole batches.
    let mut legacy = server(
        Some(FaultPlan::seeded(42).with_transient_launch_failures(0.02)),
        true,
        RetryPolicy::disabled(),
    );
    submit_wave(&mut legacy, 40, 400.0, 1e6);
    legacy.run();
    assert!(
        legacy.stats().failed > st.failed,
        "retries must strictly reduce failures ({} vs {})",
        legacy.stats().failed,
        st.failed
    );
}

#[test]
fn poisoned_batch_fails_at_most_the_poisoned_member() {
    // Six simultaneous same-geometry requests form one batch of 6. Under
    // a timeout-only plan (non-retryable, slot-attributed), recovery
    // must corner each poisoned request: batchmates complete Ok or
    // Degraded. Sweep seeds to cover different poisoned slots.
    let mut saw_single_poison = false;
    for seed in 0..24u64 {
        let plan = FaultPlan::seeded(seed).with_launch_timeouts(0.002);
        let mut s = server(Some(plan), true, RetryPolicy::default());
        for i in 0..6u64 {
            s.submit(pattern_frame(64, 48, (i % 4) as usize), Priority::Standard, 0.0, 1e9)
                .expect("valid submission");
        }
        s.run();
        let st = s.stats();
        assert_eq!(st.expired + st.shed_late, 0, "seed {seed}: generous SLO never expires");
        assert_eq!(
            st.served + st.degraded_completions + st.failed,
            6,
            "seed {seed}: all terminal"
        );
        // Isolation contract: every failed request was individually
        // poisoned — never a batchmate casualty.
        assert_eq!(
            st.failed, st.poisoned_requests,
            "seed {seed}: only poisoned members may fail"
        );
        if st.failed == 1 {
            saw_single_poison = true;
            assert_eq!(st.served + st.degraded_completions, 5, "seed {seed}: batchmates live");
        }
    }
    assert!(
        saw_single_poison,
        "sweep must include a run where exactly one request is poisoned"
    );
}

#[test]
fn sustained_timeouts_trip_brownout_then_open_then_recover() {
    // A per-launch timeout rate of 2% compounds over the ~32 launches of
    // each dispatch to roughly a coin-flip per request: fault streaks
    // walk the health machine Healthy → BrownOut → Open, and the
    // cool-down's half-open probe finds a clean request to close it.
    let plan = FaultPlan::seeded(0).with_launch_timeouts(0.02);
    let det = DetectorConfig {
        min_neighbors: 1,
        fault_plan: Some(plan),
        ..DetectorConfig::default()
    };
    let cfg = ServeConfig {
        batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
        retry: RetryPolicy::default(),
        health: HealthPolicy { cooldown_us: 5_000.0, ..HealthPolicy::default() },
        ..ServeConfig::default()
    };
    let mut s = DetectionServer::new(&edge_cascade(), det, cfg).expect("server");
    submit_wave(&mut s, 60, 300.0, 1e6);
    s.run();
    let st = s.stats();
    assert!(st.breaker_trips > 0, "the fault streaks must trip the breaker");
    assert!(st.brownout_ticks > 0, "non-Healthy steps must be accounted");
    assert!(
        st.probes_succeeded > 0,
        "the fault rate leaves room for a successful probe to close the breaker"
    );
    assert!(st.served > 0, "the server must keep serving around the faults");
    assert_accounting(&s, 60);
}

#[test]
fn brownout_rejects_only_the_lowest_class() {
    let plan = FaultPlan::seeded(2).with_launch_timeouts(0.5);
    let det = DetectorConfig {
        min_neighbors: 1,
        fault_plan: Some(plan),
        ..DetectorConfig::default()
    };
    let cfg = ServeConfig {
        batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
        // No Open state in this run: trip threshold out of reach.
        health: HealthPolicy { open_after: u32::MAX, ..HealthPolicy::default() },
        ..ServeConfig::default()
    };
    let mut s = DetectionServer::new(&edge_cascade(), det, cfg).expect("server");
    submit_wave(&mut s, 48, 300.0, 1e6);
    s.run();
    let st = s.stats();
    assert!(st.rejected_brownout > 0, "50% timeouts must brown the server out");
    assert_eq!(st.rejected_failfast, 0, "breaker can never open in this config");
    for c in s.completed() {
        if matches!(c.outcome, RequestOutcome::RejectedBrownOut) {
            assert_eq!(c.priority, Priority::Bulk, "brown-out sheds only the lowest class");
        }
    }
    assert_accounting(&s, 48);
}

#[test]
fn cnn_batches_recover_under_a_seeded_fault_plan() {
    // The same recovery stack behind the CNN backend: batched CNN
    // submissions under a mixed transient/timeout plan must retry,
    // isolate and account exactly like the Haar path — the serving loop
    // is engine-agnostic.
    let run = || {
        let det = DetectorConfig {
            min_neighbors: 1,
            fault_plan: Some(
                FaultPlan::seeded(13)
                    .with_transient_launch_failures(0.02)
                    .with_launch_timeouts(0.004),
            ),
            ..DetectorConfig::default()
        };
        let cnn = CnnDetector::try_new(&CnnModel::seeded(1), det).expect("cnn detector");
        let mut s = DetectionServer::from_detector(cnn, ServeConfig::default());
        submit_wave(&mut s, 24, 400.0, 1e6);
        s.run();
        assert_accounting(&s, 24);
        let st = s.stats();
        assert_eq!(st.submitted_per_backend, [0, 24], "every request is CNN-class");
        assert_eq!(
            st.served_per_backend[Backend::Cnn.index()] + st.degraded_per_backend[1],
            st.served + st.degraded_completions,
        );
        assert!(
            st.retries_issued > 0,
            "the plan must fault somewhere across 24 batched CNN dispatches"
        );
        assert!(
            st.goodput() >= 0.9,
            "recovery must absorb CNN-batch faults: goodput {:.3}",
            st.goodput()
        );
        for c in s.completed() {
            assert_eq!(c.backend, Backend::Cnn);
        }
        fingerprint(&s)
    };
    assert_eq!(run(), run(), "CNN chaos must be seed-reproducible");
}

// ---------------------------------------------------------------------
// Fleet chaos: device-level failures behind the FleetServer front door.
// ---------------------------------------------------------------------

/// Fleet accounting: every fleet submission gets exactly one terminal
/// outcome, wherever in the fleet (or at fleet level, for evictions) it
/// was produced.
fn assert_fleet_accounting<D: Detector>(f: &FleetServer<D>, submitted: u64) {
    let st: ServeStats = f.stats();
    assert_eq!(st.submitted, submitted);
    assert_eq!(f.completed().len() as u64, submitted, "every request gets an outcome");
    assert_outcomes_tile(&st, f.completed(), submitted);
}

#[test]
fn open_breaker_migrates_the_backlog_to_the_healthy_replica() {
    // Device 0 gets a pathological timeout plan (~80% of its dispatches
    // fault), device 1 an inert plan with an independent seed. Sixteen
    // simultaneous requests fill the queues; device 0's fault streak
    // walks its health machine to Open, at which point its queued
    // backlog must migrate to device 1 and complete there.
    let run = || {
        let det = |plan: FaultPlan| DetectorConfig {
            min_neighbors: 1,
            fault_plan: Some(plan),
            ..DetectorConfig::default()
        };
        let detectors = vec![
            FaceDetector::try_new(
                &edge_cascade(),
                det(FaultPlan::seeded(11).with_launch_timeouts(0.05)),
            )
            .expect("hot detector"),
            FaceDetector::try_new(&edge_cascade(), det(FaultPlan::seeded(12)))
                .expect("inert detector"),
        ];
        let mut f = FleetServer::from_detectors(
            detectors,
            FleetConfig {
                serve: ServeConfig {
                    batch: BatchPolicy { enabled: false, ..BatchPolicy::default() },
                    ..ServeConfig::default()
                },
                steal: StealPolicy::disabled(),
                ..FleetConfig::default()
            },
        );
        for i in 0..16u64 {
            f.submit(pattern_frame(64, 48, (i % 4) as usize), Priority::Standard, 0.0, 1e9)
                .expect("valid submission");
        }
        f.run();
        assert_fleet_accounting(&f, 16);
        assert!(
            f.device_stats(0).breaker_trips > 0,
            "the hot device's fault streak must open its breaker"
        );
        assert!(
            f.router_stats().migrations > 0,
            "the open breaker must evacuate the queued backlog"
        );
        assert!(
            f.device_stats(1).served > 0,
            "the healthy replica must serve migrated work"
        );
        assert_eq!(f.stats().evicted, 0, "a healthy replica exists; nothing is evicted");
        (fingerprint_log(f.completed()), f.router_stats().migrations)
    };
    assert_eq!(run(), run(), "device-level chaos must be seed-reproducible");
}

#[test]
fn drain_reroutes_future_arrivals_and_rejoin_restores_service() {
    let mut f = FleetServer::new(
        &edge_cascade(),
        DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() },
        2,
        FleetConfig::default(),
    )
    .expect("fleet");
    // A spread-out wave: geometry affinity keeps it on device 0.
    for i in 0..12u64 {
        f.submit(
            pattern_frame(64, 48, (i % 4) as usize),
            Priority::Standard,
            i as f64 * 400.0,
            1e9,
        )
        .expect("valid submission");
    }
    // Serve the head of the wave, then drain device 0 mid-run.
    while f.device_stats(0).served == 0 && f.step() {}
    let served_before_drain = f.device_stats(0).served;
    assert!(served_before_drain > 0, "device 0 serves the head of the wave");
    f.drain_device(0);
    assert_eq!(f.device_state(0), DeviceState::Draining);
    f.run();
    assert_fleet_accounting(&f, 12);
    assert_eq!(f.stats().served, 12, "nothing is lost across the drain");
    assert!(
        f.router_stats().migrations > 0,
        "the drained device's future arrivals must re-route"
    );
    assert!(
        f.device_stats(1).served > 0,
        "the other device picks up the re-routed arrivals"
    );
    // Rejoined, the device takes (and serves) traffic again.
    f.rejoin_device(0);
    assert_eq!(f.device_state(0), DeviceState::Active);
    let t = f.now_us();
    for i in 0..6u64 {
        f.submit(pattern_frame(64, 48, (i % 4) as usize), Priority::Standard, t, 1e9)
            .expect("valid submission");
    }
    f.run();
    assert_fleet_accounting(&f, 18);
    assert!(
        f.device_stats(0).served > served_before_drain,
        "the rejoined device serves again"
    );
}

#[test]
fn stolen_work_is_bit_identical_across_host_threads_and_engines() {
    // Sticky affinity piles ten same-geometry requests on device 0
    // while device 1 serves one small request and goes idle — work
    // stealing must engage, and the full fleet outcome (including which
    // lane served what, when) must be bit-identical across host thread
    // counts and both host execution engines.
    let run = |threads: usize, exec: HostExec| {
        let det = DetectorConfig {
            min_neighbors: 1,
            host_threads: Some(threads),
            host_exec: Some(exec),
            ..DetectorConfig::default()
        };
        let mut f = FleetServer::new(
            &edge_cascade(),
            det,
            2,
            FleetConfig {
                route: RoutePolicy { affinity_slack: 64, ..RoutePolicy::default() },
                ..FleetConfig::default()
            },
        )
        .expect("fleet");
        for i in 0..10u64 {
            f.submit(pattern_frame(64, 48, (i % 4) as usize), Priority::Standard, 0.0, 1e9)
                .expect("valid submission");
        }
        f.submit(pattern_frame(32, 48, 0), Priority::Standard, 0.0, 1e9)
            .expect("valid submission");
        f.run();
        assert_fleet_accounting(&f, 11);
        assert!(f.router_stats().steals > 0, "the idle lane must steal the backlog");
        let devices: Vec<usize> = f.completed_device().to_vec();
        (fingerprint_log(f.completed()), devices, f.router_stats().steals)
    };
    let reference = run(1, HostExec::Sync);
    for (threads, exec) in [(1, HostExec::Async), (4, HostExec::Sync), (4, HostExec::Async)] {
        assert_eq!(
            run(threads, exec),
            reference,
            "steals must reproduce at threads={threads}, exec={exec:?}"
        );
    }
}
