//! The public CNN detector API — the second engine behind
//! [`fd_detector::Detector`].
//!
//! Shares everything user-visible with [`fd_detector::FaceDetector`]:
//! the [`DetectorConfig`] vocabulary (device, exec mode, pyramid ratio,
//! grouping, determinism and fault-injection knobs), the [`FrameResult`]
//! shape, per-stage rejection histograms, batched submissions and
//! replica construction. The `fusion` knob is accepted but inert — the
//! CNN chain launches unfused (its kernels declare fusion traits, but
//! the pipeline does not yet build chains).

use fd_detector::detector::{DetectorConfig, FrameResult, RejectionHistogram};
use fd_detector::group::{group_detections, Detection};
use fd_detector::{Backend, Detector, DetectorError};
use fd_gpu::Gpu;
use fd_imgproc::{GrayImage, Rect};

use crate::model::{CnnModel, SCORE_SCALE, STAGES, WINDOW, WINDOW_STRIDE};
use crate::pipeline::{CnnLevelOutput, CnnPipeline};

/// GPU CNN-cascade detector bound to a model and configuration.
pub struct CnnDetector {
    pipeline: CnnPipeline,
    /// Kept for replica construction.
    model: CnnModel,
    config: DetectorConfig,
}

impl CnnDetector {
    /// Build a detector, validating the model before any device state
    /// exists (the hardened asset path: corrupt weights surface as a
    /// typed [`DetectorError`], never as a device panic).
    pub fn try_new(model: &CnnModel, config: DetectorConfig) -> Result<Self, DetectorError> {
        let mut gpu = Gpu::new(config.device.clone(), config.exec_mode);
        gpu.set_host_threads(config.host_threads);
        gpu.set_host_exec(config.host_exec);
        gpu.set_fault_plan(config.fault_plan.clone());
        let pipeline = CnnPipeline::try_new(gpu, model, config.scale_factor)?;
        Ok(Self { pipeline, model: model.clone(), config })
    }

    /// Build `n` detectors over `n` independent simulated devices,
    /// forking any fault plan per replica (replica 0 verbatim, matching
    /// `FaceDetector::try_new_replicas`).
    pub fn try_new_replicas(
        model: &CnnModel,
        config: DetectorConfig,
        n: usize,
    ) -> Result<Vec<Self>, DetectorError> {
        if n == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "a fleet needs at least one device replica",
            });
        }
        (0..n)
            .map(|i| {
                let mut cfg = config.clone();
                cfg.fault_plan = config.fault_plan.as_ref().map(|p| p.for_replica(i as u64));
                Self::try_new(model, cfg)
            })
            .collect()
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The validated model in use.
    pub fn model(&self) -> &CnnModel {
        &self.model
    }

    /// Accumulated profiler (all frames so far).
    pub fn profiler(&self) -> &fd_gpu::Profiler {
        self.pipeline.gpu.profiler()
    }

    /// Device bytes this detector currently holds.
    pub fn device_bytes(&self) -> usize {
        self.pipeline.gpu.device_bytes_in_use()
    }

    /// Geometry-independent constant-memory footprint (the staged model
    /// tensors).
    pub fn const_bytes(&self) -> usize {
        self.pipeline.const_bytes()
    }

    /// Device bytes a `width x height` stream will hold at steady
    /// state, without allocating.
    pub fn projected_device_bytes(
        &self,
        width: usize,
        height: usize,
    ) -> Result<usize, DetectorError> {
        Ok(self.pipeline.projected_pool_bytes(width, height)? + self.pipeline.const_bytes())
    }

    /// The full pyramid plan for a frame (largest level first) — shared
    /// with the Haar backend, both slide 24-px windows.
    pub fn pyramid_plan(&self, frame: &GrayImage) -> Result<Vec<(usize, usize)>, DetectorError> {
        self.pipeline.plan_for(frame)
    }

    /// Detect faces in one luma frame.
    pub fn detect(&mut self, frame: &GrayImage) -> Result<FrameResult, DetectorError> {
        let plan = self.pipeline.plan_for(frame)?;
        self.detect_with_plan(frame, &plan)
    }

    /// [`Self::detect`] over a prefix of the pyramid plan.
    pub fn detect_with_plan(
        &mut self,
        frame: &GrayImage,
        plan: &[(usize, usize)],
    ) -> Result<FrameResult, DetectorError> {
        let mut results = self.detect_batch_with_plan(&[frame], plan)?;
        results.pop().ok_or(DetectorError::InvalidConfig {
            reason: "batch execution returned no result for its single frame",
        })
    }

    /// Detect over a batch of same-geometry frames as one device
    /// submission (the serving layer's entry point); a batch of one is
    /// bit-identical to [`Self::detect`].
    pub fn detect_batch_with_plan(
        &mut self,
        frames: &[&GrayImage],
        plan: &[(usize, usize)],
    ) -> Result<Vec<FrameResult>, DetectorError> {
        let (batch_outputs, timeline) = self.pipeline.run_batch_with_plan(frames, plan)?;
        Ok(batch_outputs
            .iter()
            .map(|outputs| {
                let raw = extract_raw(outputs);
                let detections = group_detections(
                    &raw,
                    self.config.overlap_threshold,
                    self.config.min_neighbors,
                );
                let rejection =
                    self.config.collect_rejection_stats.then(|| histogram(outputs));
                FrameResult {
                    detections,
                    raw,
                    detect_ms: timeline.span_us() / 1000.0,
                    timeline: timeline.clone(),
                    rejection,
                }
            })
            .collect())
    }
}

/// Windows that reached the final stage become raw detections in frame
/// coordinates (the Haar pipeline's extraction, at window-grid
/// granularity).
fn extract_raw(outputs: &[CnnLevelOutput]) -> Vec<Detection> {
    let mut raw = Vec::new();
    for out in outputs {
        for gy in 0..out.ny {
            for gx in 0..out.nx {
                let i = gy * out.nx + gx;
                if out.depth[i] == STAGES {
                    let size = (WINDOW as f64 * out.scale).round() as u32;
                    raw.push(Detection {
                        rect: Rect::new(
                            ((gx * WINDOW_STRIDE) as f64 * out.scale).round() as i32,
                            ((gy * WINDOW_STRIDE) as f64 * out.scale).round() as i32,
                            size,
                            size,
                        ),
                        score: out.score[i] as f32 / SCORE_SCALE,
                        scale: out.level,
                    });
                }
            }
        }
    }
    raw
}

/// Per-stage rejection histogram at window granularity: `counts[level]`
/// has [`STAGES`]` + 1` bins, bin `d` counting windows whose cascade
/// ended at depth `d`.
fn histogram(outputs: &[CnnLevelOutput]) -> RejectionHistogram {
    let n_stages = STAGES as usize;
    let mut counts = Vec::with_capacity(outputs.len());
    let mut windows = Vec::with_capacity(outputs.len());
    for out in outputs {
        let mut hist = vec![0u64; n_stages + 1];
        for &d in &out.depth {
            hist[(d as usize).min(n_stages)] += 1;
        }
        counts.push(hist);
        windows.push(out.depth.len() as u64);
    }
    RejectionHistogram { counts, windows_per_level: windows }
}

impl Detector for CnnDetector {
    fn backend(&self) -> Backend {
        Backend::Cnn
    }

    fn pyramid_plan(&self, frame: &GrayImage) -> Result<Vec<(usize, usize)>, DetectorError> {
        CnnDetector::pyramid_plan(self, frame)
    }

    fn detect_batch_with_plan(
        &mut self,
        frames: &[&GrayImage],
        plan: &[(usize, usize)],
    ) -> Result<Vec<FrameResult>, DetectorError> {
        CnnDetector::detect_batch_with_plan(self, frames, plan)
    }

    fn projected_device_bytes(
        &self,
        width: usize,
        height: usize,
    ) -> Result<usize, DetectorError> {
        CnnDetector::projected_device_bytes(self, width, height)
    }

    fn const_bytes(&self) -> usize {
        CnnDetector::const_bytes(self)
    }

    fn device_bytes(&self) -> usize {
        CnnDetector::device_bytes(self)
    }

    fn try_replicas(&self, n: usize) -> Result<Vec<Box<dyn Detector>>, DetectorError> {
        Ok(CnnDetector::try_new_replicas(&self.model, self.config.clone(), n)?
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn Detector>)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_imgproc::synth::{render_background, BackgroundKind, FaceParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn face_frame() -> GrayImage {
        // One synthetic mugshot-style frame: a nominal frontal face over
        // smooth background texture, deterministic.
        let mut rng = StdRng::seed_from_u64(42);
        let mut img = render_background(&mut rng, 64, 64, BackgroundKind::ValueNoise);
        let patch = FaceParams::nominal().render(40);
        img.blit(&patch, 12, 10);
        img
    }

    #[test]
    fn detects_synthetic_faces_and_rejects_flat_frames() {
        let cfg = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        let mut det = CnnDetector::try_new(&CnnModel::seeded(0), cfg).unwrap();
        let r = det.detect(&face_frame()).unwrap();
        assert!(!r.raw.is_empty(), "a centered synthetic face must fire windows");
        assert!(!r.detections.is_empty());
        assert!(r.detect_ms > 0.0);

        let flat = GrayImage::from_fn(64, 64, |_, _| 128.0);
        let r = det.detect(&flat).unwrap();
        assert!(r.raw.is_empty(), "flat frames die at the stage-1 gate");
    }

    #[test]
    fn rejection_histogram_accounts_every_window() {
        let cfg =
            DetectorConfig { collect_rejection_stats: true, ..DetectorConfig::default() };
        let mut det = CnnDetector::try_new(&CnnModel::seeded(0), cfg).unwrap();
        let r = det.detect(&face_frame()).unwrap();
        let hist = r.rejection.expect("enabled");
        for (level, counts) in hist.counts.iter().enumerate() {
            let sum: u64 = counts.iter().sum();
            assert_eq!(sum, hist.windows_per_level[level], "level {level}");
        }
    }

    #[test]
    fn batch_of_one_matches_detect_bitwise() {
        let frame = face_frame();
        let cfg = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        let mut det = CnnDetector::try_new(&CnnModel::seeded(5), cfg.clone()).unwrap();
        let single = det.detect(&frame).unwrap();
        let mut det = CnnDetector::try_new(&CnnModel::seeded(5), cfg).unwrap();
        let plan = det.pyramid_plan(&frame).unwrap();
        let batch = det.detect_batch_with_plan(&[&frame], &plan).unwrap();
        assert_eq!(single.raw, batch[0].raw);
        assert_eq!(single.detect_ms.to_bits(), batch[0].detect_ms.to_bits());
    }

    #[test]
    fn trait_object_serves_the_cnn_backend() {
        let cfg = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        let mut det: Box<dyn Detector> =
            Box::new(CnnDetector::try_new(&CnnModel::seeded(0), cfg).unwrap());
        assert_eq!(det.backend(), Backend::Cnn);
        let frame = face_frame();
        let r = det.detect(&frame).unwrap();
        assert!(!r.raw.is_empty());
        let replicas = det.try_replicas(2).unwrap();
        assert_eq!(replicas.len(), 2);
        assert!(replicas.iter().all(|r| r.backend() == Backend::Cnn));
        assert!(det.try_replicas(0).is_err());
    }

    #[test]
    fn stripes_background_dies_before_the_final_stage() {
        // The classic cascade false-positive source: high edge energy,
        // spatially uniform. The sum-rule templates must kill it.
        let cfg = DetectorConfig {
            collect_rejection_stats: true,
            min_neighbors: 1,
            ..DetectorConfig::default()
        };
        let mut det = CnnDetector::try_new(&CnnModel::seeded(0), cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut total = 0u64;
        let mut reached_final = 0u64;
        for _ in 0..8 {
            let img = render_background(&mut rng, 64, 64, BackgroundKind::Stripes);
            let r = det.detect(&img).unwrap();
            let hist = r.rejection.unwrap();
            total += hist.windows_per_level.iter().sum::<u64>();
            reached_final += hist.counts.iter().map(|c| c[2] + c[3]).sum::<u64>();
        }
        assert!(total > 0);
        assert!(
            (reached_final as f64) < 0.1 * total as f64,
            "stripes must mostly die in stages 1-2: {reached_final}/{total}"
        );
    }
}
