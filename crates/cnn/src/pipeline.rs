//! Per-frame orchestration of the CNN cascade — the `FramePipeline`
//! of the second backend.
//!
//! Structure mirrors `fd_detector::FramePipeline` deliberately: per
//! pyramid level one stream carries the level's eight launches (the
//! shared bilinear [`ScaleKernel`] followed by the seven CNN-chain
//! kernels of [`crate::kernels::level_chain`]), levels overlap under
//! [`fd_gpu::ExecMode::Concurrent`], batched submissions stack request
//! slots on `grid.z`, and a frame-persistent buffer pool keyed by the
//! pyramid plan makes steady-state frames allocation-free. A launch
//! failure cancels the frame's queued work so the device is clean for a
//! retry, and every kernel fully overwrites its outputs, so pooled
//! buffers never leak state between frames.

use fd_detector::kernels::ScaleKernel;
use fd_detector::DetectorError;
use fd_gpu::{ConstPtr, Gpu, LaunchError, StreamId, TexId, Texture2D, Timeline};
use fd_imgproc::{GrayImage, Pyramid};

use crate::kernels::{level_chain, window_grid, ChainKernel, LevelDeviceBufs, ModelTensors};
use crate::model::{CnnModel, CnnModelError, C1, C2, WINDOW};

/// Map a model-validation failure onto the detector error vocabulary
/// (static reasons, like every other `InvalidConfig`).
pub fn model_error_reason(e: &CnnModelError) -> &'static str {
    match e {
        CnnModelError::BadWindow { .. } => "the CNN kernels are specialized for 24-px windows",
        CnnModelError::TensorLen { .. } => "a CNN model tensor has the wrong shape",
        CnnModelError::WeightOutOfRange { .. } => {
            "a CNN model weight is outside its fixed-point range"
        }
        CnnModelError::Conv1NotZeroSum { .. } => "a luma-facing conv filter is not DC-free",
        CnnModelError::BadStageGate => "the stage-1 gate weights are not a valid energy gate",
        CnnModelError::UniformResponsePasses { .. } => {
            "a stage template would pass spatially uniform responses"
        }
        CnnModelError::AllZeroStage { .. } => "a stage template is identically zero",
    }
}

/// Readback of one pyramid level: the final cascade depth and
/// accumulated fixed-point margin per window of the level's grid.
#[derive(Debug, Clone)]
pub struct CnnLevelOutput {
    pub level: usize,
    /// Scaled level dimensions.
    pub width: usize,
    pub height: usize,
    /// Window grid extent (stride-4 sliding windows).
    pub nx: usize,
    pub ny: usize,
    /// Multiply level coordinates by this to reach frame coordinates.
    pub scale: f64,
    /// Deepest cascade stage reached per window (3 = detection).
    pub depth: Vec<u32>,
    /// Accumulated integer stage margin per window.
    pub score: Vec<i32>,
}

fn alloc_level(mem: &mut fd_gpu::DeviceMemory, w: usize, h: usize) -> LevelDeviceBufs {
    let (p1w, p1h) = (w / 2, h / 2);
    let (p2w, p2h) = (p1w / 2, p1h / 2);
    let (nx, ny) = window_grid(w, h);
    LevelDeviceBufs {
        scaled: mem.alloc::<f32>(w * h),
        conv1: mem.alloc::<i32>(C1 * w * h),
        pooled1: mem.alloc::<i32>(C1 * p1w * p1h),
        conv2: mem.alloc::<i32>(C2 * p1w * p1h),
        pooled2: mem.alloc::<i32>(C2 * p2w * p2h),
        depth_a: mem.alloc::<u32>(nx * ny),
        score_a: mem.alloc::<i32>(nx * ny),
        depth_b: mem.alloc::<u32>(nx * ny),
        score_b: mem.alloc::<i32>(nx * ny),
        depth: mem.alloc::<u32>(nx * ny),
        score: mem.alloc::<i32>(nx * ny),
    }
}

fn free_level(mem: &mut fd_gpu::DeviceMemory, bufs: LevelDeviceBufs) {
    mem.free(bufs.scaled);
    mem.free(bufs.conv1);
    mem.free(bufs.pooled1);
    mem.free(bufs.conv2);
    mem.free(bufs.pooled2);
    mem.free(bufs.depth_a);
    mem.free(bufs.score_a);
    mem.free(bufs.depth_b);
    mem.free(bufs.score_b);
    mem.free(bufs.depth);
    mem.free(bufs.score);
}

/// Device bytes of one level's workspaces for a `w x h` level.
fn level_bytes(w: usize, h: usize) -> usize {
    let (p1, p2) = ((w / 2) * (h / 2), (w / 4) * (h / 4));
    let (nx, ny) = window_grid(w, h);
    4 * (w * h + C1 * w * h + C1 * p1 + C2 * p1 + C2 * p2 + 6 * nx * ny)
}

/// Frame-persistent buffer pool: per-level streams shared by every
/// request slot, and per-slot workspaces, valid for one frame geometry
/// (the `FramePool` shape of the Haar pipeline).
struct CnnPool {
    frame_dims: (usize, usize),
    plan: Vec<(usize, usize)>,
    streams: Vec<StreamId>,
    slots: Vec<Vec<LevelDeviceBufs>>,
    bytes: usize,
}

impl CnnPool {
    fn slot_bytes(plan: &[(usize, usize)]) -> usize {
        plan.iter().map(|&(w, h)| level_bytes(w, h)).sum()
    }
}

/// The CNN detection pipeline bound to one model.
pub struct CnnPipeline {
    /// The simulated device (public for profiler access).
    pub gpu: Gpu,
    tensors: ModelTensors,
    const_ptr: ConstPtr,
    scale_factor: f64,
    pool: Option<CnnPool>,
}

impl CnnPipeline {
    /// Validate the model, stage its tensors in constant memory and
    /// prepare the pipeline.
    pub fn try_new(
        mut gpu: Gpu,
        model: &CnnModel,
        scale_factor: f64,
    ) -> Result<Self, DetectorError> {
        if !(scale_factor.is_finite() && scale_factor > 1.0) {
            return Err(DetectorError::BadScaleFactor { scale_factor });
        }
        model
            .validate()
            .map_err(|e| DetectorError::InvalidConfig { reason: model_error_reason(&e) })?;
        gpu.const_clear();
        let const_ptr =
            gpu.try_const_upload(&model.encode()).map_err(|source| DetectorError::Memory {
                context: "staging the CNN model in constant memory",
                source,
            })?;
        Ok(Self {
            gpu,
            tensors: ModelTensors::from_model(model),
            const_ptr,
            scale_factor,
            pool: None,
        })
    }

    /// Pyramid scale factor.
    pub fn scale_factor(&self) -> f64 {
        self.scale_factor
    }

    /// Constant-memory bytes occupied by the staged model.
    pub fn const_bytes(&self) -> usize {
        self.const_ptr.len() * 4
    }

    /// Device bytes held by the frame-persistent buffer pool.
    pub fn pooled_bytes(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.bytes)
    }

    /// Device bytes the buffer pool *would* hold for a `width x height`
    /// frame, computed without allocating — the admission-control
    /// projection.
    pub fn projected_pool_bytes(
        &self,
        width: usize,
        height: usize,
    ) -> Result<usize, DetectorError> {
        if width < WINDOW || height < WINDOW {
            return Err(DetectorError::FrameTooSmall { width, height, window: WINDOW });
        }
        let plan = Pyramid::plan(width, height, self.scale_factor, WINDOW);
        Ok(CnnPool::slot_bytes(&plan))
    }

    /// Free the frame-persistent buffer pool.
    pub fn release_pool(&mut self) {
        if let Some(pool) = self.pool.take() {
            for slot in pool.slots {
                for bufs in slot {
                    free_level(&mut self.gpu.mem, bufs);
                }
            }
        }
    }

    fn ensure_pool(&mut self, fw: usize, fh: usize, plan: &[(usize, usize)], batch: usize) {
        let reusable = self
            .pool
            .as_ref()
            .is_some_and(|p| p.frame_dims == (fw, fh) && p.plan == plan);
        if !reusable {
            self.release_pool();
            let gpu = &mut self.gpu;
            let streams = plan.iter().map(|_| gpu.create_stream()).collect();
            self.pool = Some(CnnPool {
                frame_dims: (fw, fh),
                plan: plan.to_vec(),
                streams,
                slots: Vec::new(),
                bytes: 0,
            });
        }
        let Some(pool) = self.pool.as_mut() else { return };
        while pool.slots.len() < batch {
            pool.slots
                .push(plan.iter().map(|&(w, h)| alloc_level(&mut self.gpu.mem, w, h)).collect());
            pool.bytes += CnnPool::slot_bytes(plan);
        }
    }

    /// The full pyramid plan for a `fw x fh` frame (largest level
    /// first) — identical to the Haar pipeline's plan for the same
    /// geometry, since both slide 24-px windows over the same pyramid.
    pub fn plan_for(&self, frame: &GrayImage) -> Result<Vec<(usize, usize)>, DetectorError> {
        let (fw, fh) = (frame.width(), frame.height());
        if fw < WINDOW || fh < WINDOW {
            return Err(DetectorError::FrameTooSmall { width: fw, height: fh, window: WINDOW });
        }
        Ok(Pyramid::plan(fw, fh, self.scale_factor, WINDOW))
    }

    /// Run the CNN cascade on a batch of same-geometry frames as one
    /// device submission (`plan` may be a prefix of [`Self::plan_for`]'s
    /// result). Per level, each of the eight kernels launches once for
    /// the whole batch. Returns one `Vec<CnnLevelOutput>` per frame plus
    /// the submission's timeline.
    pub fn run_batch_with_plan(
        &mut self,
        frames: &[&GrayImage],
        plan: &[(usize, usize)],
    ) -> Result<(Vec<Vec<CnnLevelOutput>>, Timeline), DetectorError> {
        let Some(first) = frames.first() else {
            return Err(DetectorError::InvalidConfig { reason: "empty frame batch" });
        };
        let (fw, fh) = (first.width(), first.height());
        if frames.iter().any(|f| (f.width(), f.height()) != (fw, fh)) {
            return Err(DetectorError::InvalidConfig {
                reason: "all frames of a batched submission must share one geometry",
            });
        }
        if plan.is_empty() {
            return Err(DetectorError::InvalidConfig { reason: "empty pyramid plan" });
        }
        self.ensure_pool(fw, fh, plan, frames.len());
        let Some(pool) = self.pool.as_ref() else {
            return Err(DetectorError::InvalidConfig { reason: "buffer pool missing" });
        };
        let gpu = &mut self.gpu;

        gpu.clear_textures();
        let mut texs: Vec<TexId> = Vec::with_capacity(frames.len());
        for frame in frames {
            let tex_data = Texture2D::try_from_data(fw, fh, frame.as_slice().to_vec())
                .map_err(|source| DetectorError::Memory {
                    context: "binding the frame texture",
                    source,
                })?;
            texs.push(gpu.bind_texture(tex_data));
        }

        let fail = |gpu: &mut Gpu, kernel, level, source: LaunchError| {
            gpu.cancel_pending();
            Err(DetectorError::Launch { kernel, level: Some(level), frame: None, source })
        };
        let slots = &pool.slots[..frames.len()];
        for (level, (&(w, h), &stream)) in plan.iter().zip(&pool.streams).enumerate() {
            let scales: Vec<_> = texs
                .iter()
                .zip(slots)
                .map(|(&tex, slot)| ScaleKernel {
                    src: tex,
                    src_w: fw,
                    src_h: fh,
                    dst: slot[level].scaled,
                    dst_w: w,
                    dst_h: h,
                })
                .collect();
            let sc_cfg = scales[0].config();
            if let Err(e) = gpu.launch_batched(scales, sc_cfg, stream) {
                return fail(gpu, "scale_bilinear", level, e);
            }

            // The seven chain kernels, each batched across request slots.
            let mut per_slot: Vec<std::vec::IntoIter<ChainKernel>> = slots
                .iter()
                .map(|slot| {
                    level_chain(&self.tensors, &slot[level], w, h, self.const_ptr).into_iter()
                })
                .collect();
            loop {
                let stage: Vec<ChainKernel> =
                    per_slot.iter_mut().filter_map(|it| it.next()).collect();
                if stage.is_empty() {
                    break;
                }
                let cfg = stage[0].config();
                let name = stage[0].kernel_name();
                if let Err(e) = gpu.launch_batched(stage, cfg, stream) {
                    return fail(gpu, name, level, e);
                }
            }
        }

        let timeline = gpu.synchronize();

        let mut batch_outputs = Vec::with_capacity(frames.len());
        for slot in slots {
            let mut outputs = Vec::with_capacity(plan.len());
            for (level, &(w, h)) in plan.iter().enumerate() {
                let (nx, ny) = window_grid(w, h);
                outputs.push(CnnLevelOutput {
                    level,
                    width: w,
                    height: h,
                    nx,
                    ny,
                    scale: self.scale_factor.powi(level as i32),
                    depth: gpu.mem.download(slot[level].depth),
                    score: gpu.mem.download(slot[level].score),
                });
            }
            batch_outputs.push(outputs);
        }
        Ok((batch_outputs, timeline))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode};
    use fd_imgproc::resize::resize_bilinear;

    fn test_frame() -> GrayImage {
        GrayImage::from_fn(96, 72, |x, y| {
            ((x as u32 * 37 + y as u32 * 101).wrapping_mul(2654435761) >> 24) as f32
        })
    }

    fn pipeline() -> CnnPipeline {
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        CnnPipeline::try_new(gpu, &CnnModel::seeded(7), 1.25).unwrap()
    }

    #[test]
    fn levels_match_the_host_reference() {
        let mut p = pipeline();
        let frame = test_frame();
        let plan = p.plan_for(&frame).unwrap();
        let (outputs, timeline) = p.run_batch_with_plan(&[&frame], &plan).unwrap();
        assert!(timeline.span_us() > 0.0);
        let model = CnnModel::seeded(7);
        for out in &outputs[0] {
            let scaled = if out.level == 0 {
                frame.clone()
            } else {
                resize_bilinear(&frame, out.width, out.height)
            };
            let host = model.eval_level_host(scaled.as_slice(), out.width, out.height);
            assert_eq!(out.depth, host.depth, "level {}", out.level);
            assert_eq!(out.score, host.score, "level {}", out.level);
        }
    }

    #[test]
    fn serial_and_concurrent_agree_functionally() {
        let frame = test_frame();
        let run = |mode| {
            let gpu = Gpu::new(DeviceSpec::gtx470(), mode);
            let mut p = CnnPipeline::try_new(gpu, &CnnModel::seeded(3), 1.25).unwrap();
            let plan = p.plan_for(&frame).unwrap();
            p.run_batch_with_plan(&[&frame], &plan).unwrap()
        };
        let (a, ta) = run(ExecMode::Serial);
        let (b, tb) = run(ExecMode::Concurrent);
        for (x, y) in a[0].iter().zip(&b[0]) {
            assert_eq!(x.depth, y.depth);
            assert_eq!(x.score, y.score);
        }
        assert!(tb.span_us() <= ta.span_us() * 1.001);
    }

    #[test]
    fn memory_is_pooled_and_steady_state_allocation_free() {
        let mut p = pipeline();
        let frame = test_frame();
        let plan = p.plan_for(&frame).unwrap();
        assert_eq!(p.pooled_bytes(), 0);
        let _ = p.run_batch_with_plan(&[&frame], &plan).unwrap();
        let live = p.gpu.mem.live_bytes();
        let allocs = p.gpu.mem.alloc_count();
        assert_eq!(p.pooled_bytes(), live, "pool owns all live memory");
        for _ in 0..3 {
            let _ = p.run_batch_with_plan(&[&frame], &plan).unwrap();
        }
        assert_eq!(p.gpu.mem.alloc_count(), allocs, "steady-state frames are allocation-free");
        p.release_pool();
        assert_eq!(p.gpu.mem.live_bytes(), 0);
    }

    #[test]
    fn projection_matches_actual_pool_bytes() {
        let mut p = pipeline();
        let frame = test_frame();
        let projected = p.projected_pool_bytes(96, 72).unwrap();
        let plan = p.plan_for(&frame).unwrap();
        let _ = p.run_batch_with_plan(&[&frame], &plan).unwrap();
        assert_eq!(projected, p.pooled_bytes());
    }

    #[test]
    fn batch_matches_single_frame_runs() {
        let frames: Vec<GrayImage> = (0..3)
            .map(|k| {
                GrayImage::from_fn(64, 48, |x, y| {
                    ((x as u32 * 37 + y as u32 * 101 + k * 7919)
                        .wrapping_mul(2654435761)
                        >> 24) as f32
                })
            })
            .collect();
        let mut p = pipeline();
        let plan = p.plan_for(&frames[0]).unwrap();
        let singles: Vec<_> = frames
            .iter()
            .map(|f| p.run_batch_with_plan(&[f], &plan).unwrap().0.remove(0))
            .collect();
        let refs: Vec<&GrayImage> = frames.iter().collect();
        let (batch, _) = p.run_batch_with_plan(&refs, &plan).unwrap();
        for (single, batched) in singles.iter().zip(&batch) {
            for (a, b) in single.iter().zip(batched) {
                assert_eq!(a.depth, b.depth);
                assert_eq!(a.score, b.score);
            }
        }
    }

    #[test]
    fn rejects_invalid_models_and_geometry() {
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let mut bad = CnnModel::seeded(0);
        bad.conv1[0] += 1;
        assert!(matches!(
            CnnPipeline::try_new(gpu, &bad, 1.25),
            Err(DetectorError::InvalidConfig { .. })
        ));
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        assert!(matches!(
            CnnPipeline::try_new(gpu, &CnnModel::seeded(0), 1.0),
            Err(DetectorError::BadScaleFactor { .. })
        ));
        let p = pipeline();
        assert!(matches!(
            p.projected_pool_bytes(16, 16),
            Err(DetectorError::FrameTooSmall { .. })
        ));
    }
}
