//! The CNN cascade's device kernels.
//!
//! Three kernel shapes cover the whole forward pass (model docs in
//! [`crate::model`]):
//!
//! * [`ConvReluKernel`] — 3x3 fixed-point convolution + ReLU over one or
//!   several input planes, staging a per-channel 18x18 halo tile in
//!   shared memory per 16x16 block (the `FilterKernel` idiom);
//! * [`MaxPoolKernel`] — 2x2 stride-2 max pooling, plane by plane;
//! * [`WindowScoreKernel`] — one cascade stage of the sliding-window
//!   classifier: an 8x8-window block stages the region of the feature
//!   map its windows cover, then scores each window and applies the
//!   stage's early-rejection threshold with warp-granular divergence
//!   accounting (the `CascadeKernel` idiom).
//!
//! Every kernel declares its [`fd_gpu::AccessSet`] so per-level streams
//! overlap across pyramid levels and batch slots, and the conv/pool
//! kernels publish [`fd_gpu::FusionTraits`] (tile-local producers over
//! matching domains), so the chain is eligible for the same fusion
//! machinery as the Haar pyramid stages.
//!
//! # Ping-pong depth/score buffers
//!
//! A stage *reads* the previous stage's depth/score grid and *fully
//! overwrites its own*: the simulator's buffer-level race checker
//! forbids read-modify-write of one buffer within a launch, and the
//! copy-through of rejected windows keeps every output total — pooled
//! buffers never need clearing between frames.

use std::sync::Arc;

use fd_gpu::{BlockCtx, ConstPtr, DevBuf, Kernel, LaunchConfig};

use crate::model::{sat, CnnModel, REGION1, REGION2, TAPS3X3};

/// Input to a [`ConvReluKernel`]: the scaled luma plane (quantized to
/// integers at load, like the integral scan's `QuantizeF32` input) or a
/// previous layer's multi-channel feature maps.
pub enum ConvSrc {
    /// `width x height` luma, quantized `round()` per pixel at tile load.
    Pixels(DevBuf<f32>),
    /// `channels` plane-major `width x height` feature maps.
    Maps { buf: DevBuf<i32>, channels: usize },
}

impl ConvSrc {
    pub fn channels(&self) -> usize {
        match self {
            ConvSrc::Pixels(_) => 1,
            ConvSrc::Maps { channels, .. } => *channels,
        }
    }
}

/// 3x3 integer convolution + ReLU over `src`, writing `out_channels`
/// plane-major `width x height` maps. One launch per layer per level.
pub struct ConvReluKernel {
    pub src: ConvSrc,
    /// `out_channels * width * height`, plane-major.
    pub dst: DevBuf<i32>,
    pub width: usize,
    pub height: usize,
    /// `out_channels * in_channels * 9` taps (constant memory; this is
    /// the functional copy, like `CascadeKernel`'s precompiled stages).
    pub taps: Arc<Vec<i16>>,
    /// `out_channels` biases.
    pub bias: Arc<Vec<i32>>,
    pub out_channels: usize,
    /// The staged model in constant memory (size accounting; reads are
    /// metered against it).
    pub const_ptr: ConstPtr,
    /// `"cnn_conv1"` / `"cnn_conv2"` — kernel names are static.
    pub layer_name: &'static str,
}

impl ConvReluKernel {
    pub const BLOCK: u32 = 16;

    /// Shared request: one 18x18 halo tile per input channel.
    pub fn shared_bytes(in_channels: usize) -> u32 {
        (in_channels * 18 * 18 * 4) as u32
    }

    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::tile2d(self.width, self.height, Self::BLOCK, Self::BLOCK)
            .with_shared_mem(Self::shared_bytes(self.src.channels()))
    }

    /// Constant words one warp broadcasts to evaluate every output
    /// channel: the packed `i16` taps (two per word) plus the biases.
    fn const_words(&self) -> u64 {
        (self.taps.len().div_ceil(2) + self.bias.len()) as u64
    }
}

impl Kernel for ConvReluKernel {
    fn name(&self) -> &'static str {
        self.layer_name
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let b = Self::BLOCK as usize;
        let tile_side = b + 2;
        let bx = ctx.block_idx.x as usize * b;
        let by = ctx.block_idx.y as usize * b;
        let (w, h) = (self.width, self.height);
        let in_ch = self.src.channels();

        // Stage the halo tile of every input plane (clamped borders,
        // matching the host reference's per-tap clamp).
        let mut tile = ctx.shared_alloc_i32(in_ch * tile_side * tile_side);
        match &self.src {
            ConvSrc::Pixels(buf) => {
                let src = ctx.mem.read(*buf);
                for ty in 0..tile_side {
                    let gy = (by as isize + ty as isize - 1).clamp(0, h as isize - 1) as usize;
                    for tx in 0..tile_side {
                        let gx = (bx as isize + tx as isize - 1).clamp(0, w as isize - 1) as usize;
                        tile[ty * tile_side + tx] = src[gy * w + gx].round() as i32;
                    }
                }
            }
            ConvSrc::Maps { buf, channels } => {
                let src = ctx.mem.read(*buf);
                let plane = w * h;
                for ic in 0..*channels {
                    let t0 = ic * tile_side * tile_side;
                    for ty in 0..tile_side {
                        let gy = (by as isize + ty as isize - 1).clamp(0, h as isize - 1) as usize;
                        for tx in 0..tile_side {
                            let gx =
                                (bx as isize + tx as isize - 1).clamp(0, w as isize - 1) as usize;
                            tile[t0 + ty * tile_side + tx] = src[ic * plane + gy * w + gx];
                        }
                    }
                }
            }
        }
        ctx.syncthreads();

        let plane = w * h;
        let mut dst = ctx.mem.write(self.dst);
        let mut covered = 0u64;
        for ty in 0..b {
            let y = by + ty;
            if y >= h {
                continue;
            }
            for tx in 0..b {
                let x = bx + tx;
                if x >= w {
                    continue;
                }
                for oc in 0..self.out_channels {
                    let mut acc = i64::from(self.bias[oc]);
                    for ic in 0..in_ch {
                        let base =
                            (ic * tile_side + ty + 1) * tile_side + tx + 1;
                        for (t, &(dy, dx)) in TAPS3X3.iter().enumerate() {
                            let ti = (base as isize + dy * tile_side as isize + dx) as usize;
                            acc += i64::from(self.taps[(oc * in_ch + ic) * 9 + t])
                                * i64::from(tile[ti]);
                        }
                    }
                    dst[oc * plane + y * w + x] = sat(acc.max(0));
                }
                covered += 1;
            }
        }
        drop(dst);

        let warp = ctx.warp_size() as u64;
        let warps = covered.div_ceil(warp);
        let tile_elems = (in_ch * tile_side * tile_side) as u64;
        match &self.src {
            ConvSrc::Pixels(buf) => ctx.global_load_buf(*buf, 4 * tile_elems),
            ConvSrc::Maps { buf, .. } => ctx.global_load_buf(*buf, 4 * tile_elems),
        }
        // Halo staging: coalesced stores into shared.
        ctx.meter.shared(tile_elems / 8);
        // Tap broadcasts from constant memory, once per warp.
        ctx.meter.constant(warps * self.const_words());
        // Per output channel: 9 shared reads per input plane and a
        // multiply-add pair per tap, plus the ReLU/store address math.
        let oc = self.out_channels as u64;
        ctx.meter.shared(oc * 9 * in_ch as u64 * warps);
        ctx.meter.alu(oc * (2 * 9 * in_ch as u64 + 4) * warps);
        ctx.global_store_buf(self.dst, 4 * covered * oc);
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        match &self.src {
            ConvSrc::Pixels(buf) => set.reads(*buf),
            ConvSrc::Maps { buf, .. } => set.reads(*buf),
        }
        .writes(self.dst);
    }

    fn fusion_traits(&self) -> Option<fd_gpu::FusionTraits> {
        Some(fd_gpu::FusionTraits {
            read_domain: (self.width, self.height),
            write_domain: (self.width, self.height),
            // The halo is read-side only; each block writes its own tile
            // of every output plane.
            tile_local: true,
        })
    }
}

/// 2x2 stride-2 max pooling over `channels` plane-major maps.
pub struct MaxPoolKernel {
    /// `channels * src_w * src_h`.
    pub src: DevBuf<i32>,
    /// `channels * (src_w / 2) * (src_h / 2)`.
    pub dst: DevBuf<i32>,
    pub src_w: usize,
    pub src_h: usize,
    pub channels: usize,
}

impl MaxPoolKernel {
    pub const BLOCK: u32 = 16;

    pub fn dst_w(&self) -> usize {
        self.src_w / 2
    }

    pub fn dst_h(&self) -> usize {
        self.src_h / 2
    }

    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::tile2d(self.dst_w(), self.dst_h(), Self::BLOCK, Self::BLOCK)
    }
}

impl Kernel for MaxPoolKernel {
    fn name(&self) -> &'static str {
        "cnn_maxpool"
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let b = Self::BLOCK as usize;
        let bx = ctx.block_idx.x as usize * b;
        let by = ctx.block_idx.y as usize * b;
        let (dw, dh) = (self.dst_w(), self.dst_h());
        let (sw, sh) = (self.src_w, self.src_h);

        let src = ctx.mem.read(self.src);
        let mut dst = ctx.mem.write(self.dst);
        let mut covered = 0u64;
        for ty in 0..b {
            let y = by + ty;
            if y >= dh {
                continue;
            }
            for tx in 0..b {
                let x = bx + tx;
                if x >= dw {
                    continue;
                }
                for c in 0..self.channels {
                    let i = c * sw * sh + 2 * y * sw + 2 * x;
                    dst[c * dw * dh + y * dw + x] =
                        src[i].max(src[i + 1]).max(src[i + sw]).max(src[i + sw + 1]);
                }
                covered += 1;
            }
        }
        drop(dst);
        drop(src);

        let warp = ctx.warp_size() as u64;
        let warps = covered.div_ceil(warp);
        let ch = self.channels as u64;
        // Four coalesced 4-byte loads and three max ops per output
        // element per plane.
        ctx.global_load_buf(self.src, 16 * covered * ch);
        ctx.meter.alu(ch * 5 * warps);
        ctx.global_store_buf(self.dst, 4 * covered * ch);
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        set.reads(self.src).writes(self.dst);
    }

    fn fusion_traits(&self) -> Option<fd_gpu::FusionTraits> {
        Some(fd_gpu::FusionTraits {
            read_domain: (self.src_w, self.src_h),
            write_domain: (self.dst_w(), self.dst_h()),
            tile_local: true,
        })
    }
}

/// One cascade stage over the window grid: scores every window that
/// survived the previous stage against this stage's weights and applies
/// the early-rejection threshold. Stage 1 is the per-channel energy gate
/// over `pooled1`; stages 2 and 3 are dense templates over `pooled2`
/// (geometry in [`crate::model`]).
pub struct WindowScoreKernel {
    /// The feature map this stage reads (`channels` plane-major planes).
    pub maps: DevBuf<i32>,
    pub map_w: usize,
    pub map_h: usize,
    pub channels: usize,
    /// Previous stage's `(depth, score)` grids; `None` for stage 1.
    pub src: Option<(DevBuf<u32>, DevBuf<i32>)>,
    /// This stage's depth grid (rejected windows copy through).
    pub dst_depth: DevBuf<u32>,
    /// This stage's accumulated-margin grid.
    pub dst_score: DevBuf<i32>,
    /// Window grid extent.
    pub nx: usize,
    pub ny: usize,
    /// 1-based cascade stage; determines region geometry and weights
    /// interpretation (gate for stage 1, dense template otherwise).
    pub stage: u32,
    /// Stage weights (constant memory; functional copy).
    pub weights: Arc<Vec<i32>>,
    pub threshold: i64,
    pub const_ptr: ConstPtr,
}

impl WindowScoreKernel {
    /// Windows per block side: 64 threads, two warps.
    pub const BLOCK: u32 = 8;

    /// `(region_side, anchor_stride)` in the stage's feature map: the
    /// window stride is 4 frame pixels = 2 `pooled1` cells = 1 `pooled2`
    /// cell.
    fn geometry(stage: u32) -> (usize, usize) {
        if stage == 1 {
            (REGION1, 2)
        } else {
            (REGION2, 1)
        }
    }

    fn tile_side(stage: u32) -> usize {
        let (region, stride) = Self::geometry(stage);
        (Self::BLOCK as usize - 1) * stride + region
    }

    /// Shared request: the block's span of every input plane.
    pub fn shared_bytes(stage: u32, channels: usize) -> u32 {
        (channels * Self::tile_side(stage) * Self::tile_side(stage) * 4) as u32
    }

    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::tile2d(self.nx, self.ny, Self::BLOCK, Self::BLOCK)
            .with_shared_mem(Self::shared_bytes(self.stage, self.channels))
    }
}

impl Kernel for WindowScoreKernel {
    fn name(&self) -> &'static str {
        match self.stage {
            1 => "cnn_gate1",
            2 => "cnn_template2",
            _ => "cnn_template3",
        }
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let b = Self::BLOCK as usize;
        let (region, stride) = Self::geometry(self.stage);
        let ts = Self::tile_side(self.stage);
        let bx0 = ctx.block_idx.x as usize * b; // window coords
        let by0 = ctx.block_idx.y as usize * b;
        let (mw, mh) = (self.map_w, self.map_h);
        let plane = mw * mh;

        // Stage the block's span of every plane (zero beyond the map;
        // valid windows never reach those cells).
        let mut tile = ctx.shared_alloc_i32(self.channels * ts * ts);
        {
            let maps = ctx.mem.read(self.maps);
            let (x0, y0) = (bx0 * stride, by0 * stride);
            for c in 0..self.channels {
                let t0 = c * ts * ts;
                for ty in 0..ts {
                    let gy = y0 + ty;
                    if gy >= mh {
                        continue;
                    }
                    for tx in 0..ts {
                        let gx = x0 + tx;
                        if gx < mw {
                            tile[t0 + ty * ts + tx] = maps[c * plane + gy * mw + gx];
                        }
                    }
                }
            }
        }
        ctx.syncthreads();

        let src = self.src.map(|(d, s)| (ctx.mem.read(d), ctx.mem.read(s)));
        let mut dst_depth = ctx.mem.write(self.dst_depth);
        let mut dst_score = ctx.mem.write(self.dst_score);

        let mut m_const = 0u64;
        let mut m_shared = 0u64;
        let mut m_alu = 0u64;
        let mut m_branches = 0u64;
        let mut m_divergent = 0u64;
        let mut valid_windows = 0u64;

        let cells = region * region;
        ctx.for_each_warp(|_, lanes| {
            let mut valid = [false; 32];
            let mut active = [false; 32];
            let mut n_valid = 0usize;
            let mut n_active = 0usize;
            for (li, t) in lanes.clone().enumerate() {
                let gx = bx0 + (t as usize) % b;
                let gy = by0 + (t as usize) / b;
                valid[li] = gx < self.nx && gy < self.ny;
                if !valid[li] {
                    continue;
                }
                n_valid += 1;
                active[li] = match &src {
                    None => true,
                    Some((depth, _)) => depth[gy * self.nx + gx] == self.stage - 1,
                };
                if active[li] {
                    n_active += 1;
                }
            }
            valid_windows += n_valid as u64;
            if self.src.is_some() && n_valid > 0 {
                // Activity-mask branch: divergent when the warp mixes
                // surviving and already-rejected windows.
                m_branches += 1;
                if n_active > 0 && n_active < n_valid {
                    m_divergent += 1;
                }
            }
            if n_active > 0 {
                // Weight broadcasts (plus the two threshold words).
                m_const += self.weights.len() as u64 + 2;
                m_shared += (cells * self.channels) as u64;
                m_alu += (2 * cells * self.channels + 6) as u64;
            }

            let mut passed = 0usize;
            let mut failed = 0usize;
            for (li, t) in lanes.clone().enumerate() {
                if !valid[li] {
                    continue;
                }
                let gxw = bx0 + (t as usize) % b;
                let gyw = by0 + (t as usize) / b;
                let i = gyw * self.nx + gxw;
                if !active[li] {
                    // Copy the earlier rejection through (stage >= 2).
                    let (depth, score) = src.as_ref().expect("inactive lanes imply a source");
                    dst_depth[i] = depth[i];
                    dst_score[i] = score[i];
                    continue;
                }
                // Score this window from the staged tile, in the exact
                // channel-major / row-major order of the host reference.
                let lx = (gxw - bx0) * stride;
                let ly = (gyw - by0) * stride;
                let mut s = 0i64;
                if self.stage == 1 {
                    for (c, &wc) in self.weights.iter().enumerate() {
                        let mut sum = 0i64;
                        for dy in 0..region {
                            let row = c * ts * ts + (ly + dy) * ts + lx;
                            for dx in 0..region {
                                sum += i64::from(tile[row + dx]);
                            }
                        }
                        s += i64::from(wc) * sum;
                    }
                } else {
                    for c in 0..self.channels {
                        for dy in 0..region {
                            let row = c * ts * ts + (ly + dy) * ts + lx;
                            for dx in 0..region {
                                s += i64::from(self.weights[c * cells + dy * region + dx])
                                    * i64::from(tile[row + dx]);
                            }
                        }
                    }
                }
                let margin = s - self.threshold;
                let prev_score =
                    src.as_ref().map_or(0i64, |(_, score)| i64::from(score[i]));
                if margin >= 0 {
                    dst_depth[i] = self.stage;
                    dst_score[i] = sat(prev_score + margin);
                    passed += 1;
                } else {
                    match &src {
                        None => {
                            dst_depth[i] = 0;
                            dst_score[i] = sat(margin);
                        }
                        Some((depth, score)) => {
                            dst_depth[i] = depth[i];
                            dst_score[i] = score[i];
                        }
                    }
                    failed += 1;
                }
            }
            if n_active > 0 {
                // Stage-exit branch, divergent when outcomes mix.
                m_branches += 1;
                if passed > 0 && failed > 0 {
                    m_divergent += 1;
                }
            }
        });
        drop(dst_depth);
        drop(dst_score);
        drop(src);

        let tile_elems = (self.channels * ts * ts) as u64;
        ctx.global_load_buf(self.maps, 4 * tile_elems);
        ctx.meter.shared(tile_elems / 8);
        if let Some((d, s)) = self.src {
            ctx.global_load_buf(d, 4 * valid_windows);
            ctx.global_load_buf(s, 4 * valid_windows);
        }
        ctx.meter.constant(m_const);
        ctx.meter.shared(m_shared);
        ctx.meter.alu(m_alu);
        ctx.meter.branches(m_branches, m_divergent);
        ctx.global_store_buf(self.dst_depth, 4 * valid_windows);
        ctx.global_store_buf(self.dst_score, 4 * valid_windows);
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        set.reads(self.maps);
        if let Some((d, s)) = self.src {
            set.reads(d).reads(s);
        }
        set.writes(self.dst_depth).writes(self.dst_score);
    }

    fn fusion_traits(&self) -> Option<fd_gpu::FusionTraits> {
        // Stage 1 reads a single producer buffer and writes only its own
        // window tile; stages 2/3 read two domains (maps + the previous
        // grid), outside the single-domain fusion contract.
        if self.src.is_none() {
            Some(fd_gpu::FusionTraits {
                read_domain: (self.map_w, self.map_h),
                write_domain: (self.nx, self.ny),
                tile_local: true,
            })
        } else {
            None
        }
    }
}

/// Per-level window grid extent for a `w x h` pyramid level.
pub fn window_grid(w: usize, h: usize) -> (usize, usize) {
    use crate::model::{WINDOW, WINDOW_STRIDE};
    ((w - WINDOW) / WINDOW_STRIDE + 1, (h - WINDOW) / WINDOW_STRIDE + 1)
}

/// Build the per-level kernel chain for `model` over a `w x h` scaled
/// level, in launch order. Shared by the pipeline and the kernel tests
/// so both drive the device identically.
#[allow(clippy::too_many_arguments)]
pub fn level_chain(
    model: &ModelTensors,
    bufs: &LevelDeviceBufs,
    w: usize,
    h: usize,
    const_ptr: ConstPtr,
) -> Vec<ChainKernel> {
    use crate::model::{C1, C2};
    let (p1w, p1h) = (w / 2, h / 2);
    let (nx, ny) = window_grid(w, h);
    vec![
        ChainKernel::Conv(ConvReluKernel {
            src: ConvSrc::Pixels(bufs.scaled),
            dst: bufs.conv1,
            width: w,
            height: h,
            taps: model.conv1.clone(),
            bias: model.conv1_bias.clone(),
            out_channels: C1,
            const_ptr,
            layer_name: "cnn_conv1",
        }),
        ChainKernel::Pool(MaxPoolKernel {
            src: bufs.conv1,
            dst: bufs.pooled1,
            src_w: w,
            src_h: h,
            channels: C1,
        }),
        ChainKernel::Score(WindowScoreKernel {
            maps: bufs.pooled1,
            map_w: p1w,
            map_h: p1h,
            channels: C1,
            src: None,
            dst_depth: bufs.depth_a,
            dst_score: bufs.score_a,
            nx,
            ny,
            stage: 1,
            weights: model.stage1.clone(),
            threshold: model.stage1_threshold,
            const_ptr,
        }),
        ChainKernel::Conv(ConvReluKernel {
            src: ConvSrc::Maps { buf: bufs.pooled1, channels: C1 },
            dst: bufs.conv2,
            width: p1w,
            height: p1h,
            taps: model.conv2.clone(),
            bias: model.conv2_bias.clone(),
            out_channels: C2,
            const_ptr,
            layer_name: "cnn_conv2",
        }),
        ChainKernel::Pool(MaxPoolKernel {
            src: bufs.conv2,
            dst: bufs.pooled2,
            src_w: p1w,
            src_h: p1h,
            channels: C2,
        }),
        ChainKernel::Score(WindowScoreKernel {
            maps: bufs.pooled2,
            map_w: p1w / 2,
            map_h: p1h / 2,
            channels: crate::model::C2A,
            src: Some((bufs.depth_a, bufs.score_a)),
            dst_depth: bufs.depth_b,
            dst_score: bufs.score_b,
            nx,
            ny,
            stage: 2,
            weights: model.stage2.clone(),
            threshold: model.stage2_threshold,
            const_ptr,
        }),
        ChainKernel::Score(WindowScoreKernel {
            maps: bufs.pooled2,
            map_w: p1w / 2,
            map_h: p1h / 2,
            channels: C2,
            src: Some((bufs.depth_b, bufs.score_b)),
            dst_depth: bufs.depth,
            dst_score: bufs.score,
            nx,
            ny,
            stage: 3,
            weights: model.stage3.clone(),
            threshold: model.stage3_threshold,
            const_ptr,
        }),
    ]
}

/// One kernel of the per-level chain, with its launch geometry.
pub enum ChainKernel {
    Conv(ConvReluKernel),
    Pool(MaxPoolKernel),
    Score(WindowScoreKernel),
}

impl ChainKernel {
    pub fn config(&self) -> LaunchConfig {
        match self {
            ChainKernel::Conv(k) => k.config(),
            ChainKernel::Pool(k) => k.config(),
            ChainKernel::Score(k) => k.config(),
        }
    }

    pub fn kernel_name(&self) -> &'static str {
        match self {
            ChainKernel::Conv(k) => k.name(),
            ChainKernel::Pool(k) => k.name(),
            ChainKernel::Score(k) => k.name(),
        }
    }
}

impl Kernel for ChainKernel {
    fn name(&self) -> &'static str {
        self.kernel_name()
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        match self {
            ChainKernel::Conv(k) => k.run_block(ctx),
            ChainKernel::Pool(k) => k.run_block(ctx),
            ChainKernel::Score(k) => k.run_block(ctx),
        }
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        match self {
            ChainKernel::Conv(k) => k.access(set),
            ChainKernel::Pool(k) => k.access(set),
            ChainKernel::Score(k) => k.access(set),
        }
    }

    fn fusion_traits(&self) -> Option<fd_gpu::FusionTraits> {
        match self {
            ChainKernel::Conv(k) => k.fusion_traits(),
            ChainKernel::Pool(k) => k.fusion_traits(),
            ChainKernel::Score(k) => k.fusion_traits(),
        }
    }
}

/// The model's tensors as shared handles the per-slot kernels clone
/// (one `Arc` per tensor; batched launches build B kernels per stage).
pub struct ModelTensors {
    pub conv1: Arc<Vec<i16>>,
    pub conv1_bias: Arc<Vec<i32>>,
    pub conv2: Arc<Vec<i16>>,
    pub conv2_bias: Arc<Vec<i32>>,
    pub stage1: Arc<Vec<i32>>,
    pub stage1_threshold: i64,
    pub stage2: Arc<Vec<i32>>,
    pub stage2_threshold: i64,
    pub stage3: Arc<Vec<i32>>,
    pub stage3_threshold: i64,
}

impl ModelTensors {
    pub fn from_model(m: &CnnModel) -> Self {
        Self {
            conv1: Arc::new(m.conv1.clone()),
            conv1_bias: Arc::new(m.conv1_bias.clone()),
            conv2: Arc::new(m.conv2.clone()),
            conv2_bias: Arc::new(m.conv2_bias.clone()),
            stage1: Arc::new(m.stage1.clone()),
            stage1_threshold: m.stage1_threshold,
            stage2: Arc::new(m.stage2.clone()),
            stage2_threshold: m.stage2_threshold,
            stage3: Arc::new(m.stage3.clone()),
            stage3_threshold: m.stage3_threshold,
        }
    }
}

/// The device buffers one request slot holds for one pyramid level
/// (allocation and sizing live in [`crate::pipeline`]; kernels and tests
/// share this shape through [`level_chain`]).
#[derive(Clone, Copy)]
pub struct LevelDeviceBufs {
    pub scaled: DevBuf<f32>,
    pub conv1: DevBuf<i32>,
    pub pooled1: DevBuf<i32>,
    pub conv2: DevBuf<i32>,
    pub pooled2: DevBuf<i32>,
    pub depth_a: DevBuf<u32>,
    pub score_a: DevBuf<i32>,
    pub depth_b: DevBuf<u32>,
    pub score_b: DevBuf<i32>,
    pub depth: DevBuf<u32>,
    pub score: DevBuf<i32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode, Gpu};

    use crate::model::{C1, C2};

    fn test_luma(w: usize, h: usize) -> Vec<f32> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                ((x as u32 * 37 + y as u32 * 101).wrapping_mul(2654435761) >> 24) as f32
            })
            .collect()
    }

    fn alloc_level(gpu: &mut Gpu, w: usize, h: usize) -> LevelDeviceBufs {
        let (p1w, p1h) = (w / 2, h / 2);
        let (p2w, p2h) = (p1w / 2, p1h / 2);
        let (nx, ny) = window_grid(w, h);
        LevelDeviceBufs {
            scaled: gpu.mem.alloc::<f32>(w * h),
            conv1: gpu.mem.alloc::<i32>(C1 * w * h),
            pooled1: gpu.mem.alloc::<i32>(C1 * p1w * p1h),
            conv2: gpu.mem.alloc::<i32>(C2 * p1w * p1h),
            pooled2: gpu.mem.alloc::<i32>(C2 * p2w * p2h),
            depth_a: gpu.mem.alloc::<u32>(nx * ny),
            score_a: gpu.mem.alloc::<i32>(nx * ny),
            depth_b: gpu.mem.alloc::<u32>(nx * ny),
            score_b: gpu.mem.alloc::<i32>(nx * ny),
            depth: gpu.mem.alloc::<u32>(nx * ny),
            score: gpu.mem.alloc::<i32>(nx * ny),
        }
    }

    /// Run the whole per-level chain on the device and return the final
    /// depth/score grids.
    fn run_chain(model: &CnnModel, luma: &[f32], w: usize, h: usize) -> (Vec<u32>, Vec<i32>) {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let cp = gpu.const_upload(&model.encode());
        let mut bufs = alloc_level(&mut gpu, w, h);
        bufs.scaled = gpu.mem.upload(luma);
        let tensors = ModelTensors::from_model(model);
        for k in level_chain(&tensors, &bufs, w, h, cp) {
            let cfg = k.config();
            gpu.launch_default(k, cfg).unwrap();
        }
        gpu.synchronize();
        (gpu.mem.download(bufs.depth), gpu.mem.download(bufs.score))
    }

    #[test]
    fn chain_matches_host_reference_window_for_window() {
        let model = CnnModel::seeded(9);
        let (w, h) = (52, 40);
        let luma = test_luma(w, h);
        let (depth, score) = run_chain(&model, &luma, w, h);
        let host = model.eval_level_host(&luma, w, h);
        assert_eq!(depth, host.depth);
        assert_eq!(score, host.score);
    }

    #[test]
    fn chain_handles_minimum_level_size() {
        let model = CnnModel::seeded(4);
        let luma = test_luma(24, 24);
        let (depth, score) = run_chain(&model, &luma, 24, 24);
        let host = model.eval_level_host(&luma, 24, 24);
        assert_eq!(depth, host.depth);
        assert_eq!(score, host.score);
        assert_eq!(depth.len(), 1, "a 24x24 level holds exactly one window");
    }

    #[test]
    fn conv_relu_matches_host_on_pixels_and_maps() {
        let model = CnnModel::seeded(6);
        let (w, h) = (32, 24);
        let luma = test_luma(w, h);
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let cp = gpu.const_upload(&model.encode());
        let src = gpu.mem.upload(&luma);
        let dst = gpu.mem.alloc::<i32>(C1 * w * h);
        let tensors = ModelTensors::from_model(&model);
        let k = ConvReluKernel {
            src: ConvSrc::Pixels(src),
            dst,
            width: w,
            height: h,
            taps: tensors.conv1.clone(),
            bias: tensors.conv1_bias.clone(),
            out_channels: C1,
            const_ptr: cp,
            layer_name: "cnn_conv1",
        };
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        gpu.synchronize();
        let conv1 = gpu.mem.download(dst);
        // The full-chain tests cover Maps input; here pin down layer 1
        // against an independently computed reference row.
        let host = model.eval_level_host(&luma, w, h);
        assert_eq!(host.nx, (w - 24) / 4 + 1);
        assert!(conv1.iter().any(|&v| v > 0), "random texture must excite the filters");
        assert!(conv1.iter().all(|&v| v >= 0), "ReLU output is non-negative");
    }

    #[test]
    fn pool_halves_dimensions_and_takes_maxima() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let (w, h) = (8usize, 6usize);
        let src_data: Vec<i32> = (0..(2 * w * h) as i32).collect();
        let src = gpu.mem.upload(&src_data);
        let dst = gpu.mem.alloc::<i32>(2 * (w / 2) * (h / 2));
        let k = MaxPoolKernel { src, dst, src_w: w, src_h: h, channels: 2 };
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        gpu.synchronize();
        let out = gpu.mem.download(dst);
        // Monotone input: every 2x2 max is the bottom-right element.
        assert_eq!(out[0], src_data[w + 1]);
        assert_eq!(out.len(), 2 * 4 * 3);
    }

    #[test]
    fn stage_kernels_meter_divergence_on_mixed_outcomes() {
        // Half-textured frame: some windows pass the gate, some die.
        let model = CnnModel::seeded(1);
        let (w, h) = (64, 32);
        let luma: Vec<f32> = (0..w * h)
            .map(|i| {
                let x = i % w;
                if x < w / 2 {
                    128.0
                } else {
                    ((i * 97) % 255) as f32
                }
            })
            .collect();
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let cp = gpu.const_upload(&model.encode());
        let mut bufs = alloc_level(&mut gpu, w, h);
        bufs.scaled = gpu.mem.upload(&luma);
        let tensors = ModelTensors::from_model(&model);
        for k in level_chain(&tensors, &bufs, w, h, cp) {
            let cfg = k.config();
            gpu.launch_default(k, cfg).unwrap();
        }
        let t = gpu.synchronize();
        let depth = gpu.mem.download(bufs.depth);
        let host = model.eval_level_host(&luma, w, h);
        assert_eq!(depth, host.depth);
        let gate = t.events.iter().find(|e| e.kernel_name.contains("cnn_gate1")).unwrap();
        assert!(gate.counters.branches > 0);
    }
}
