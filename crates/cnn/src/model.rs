//! The compact CNN cascade model: fixed-point tensors, validation, io.
//!
//! Following the compact-CNN-cascade line of work (PAPERS.md), the model
//! is a three-stage sliding-window cascade over two small convolutional
//! feature extractors:
//!
//! ```text
//! luma  -> conv1 (1->4 ch, 3x3, ReLU) -> maxpool 2x2   [pooled1]
//! pooled1 -> conv2 (4->8 ch, 3x3, ReLU) -> maxpool 2x2 [pooled2]
//!
//! stage 1: per-channel energy gate over the window's pooled1 region
//! stage 2: dense spatial template over pooled2 channels 0..4
//! stage 3: dense spatial template over all 8 pooled2 channels
//! ```
//!
//! Windows slide over every pyramid level at stride [`WINDOW_STRIDE`],
//! which aligns exactly with both pooling grids (stride 2 in `pooled1`,
//! stride 1 in `pooled2`), so a window's receptive field is a contiguous
//! region of each feature map and no resampling is needed between
//! stages. A window must pass stage *k* to be evaluated by stage
//! *k + 1* — the early rejection that makes the cascade cheap on
//! background.
//!
//! # Fixed point
//!
//! All tensors are integers (`i16` conv taps, `i32` template weights,
//! `i64` thresholds) and the forward pass is pure integer arithmetic.
//! Integer addition is associative, so results are bit-identical at any
//! accumulation order — determinism across simulator host-thread counts
//! is structural, not scheduled.
//!
//! # Validation
//!
//! Like `Cascade::validate`, [`CnnModel::validate`] runs before any
//! device state exists and rejects corrupt or hand-edited models with a
//! typed [`CnnModelError`]. Two checks are semantic, not just shape:
//!
//! * every `conv1` filter must be zero-sum (DC-free): its input is raw
//!   luma, and a DC-sensitive tap set would make flat brightness look
//!   like texture, destroying the stage-1 gate;
//! * every stage-2/3 template channel must have a non-positive weight
//!   sum: a spatially uniform response (stripes, periodic texture — the
//!   classic cascade false positive) then scores at or below zero, so
//!   only *face-aligned* response patterns can pass.

use std::fmt;

use fd_imgproc::synth::SplitMix64;

/// Detection window side in pixels (shared with the Haar cascade, so
/// both backends slide over the same pyramid plans).
pub const WINDOW: usize = 24;
/// Window stride in level pixels. 4 px = stride 2 in `pooled1`, stride
/// 1 in `pooled2`.
pub const WINDOW_STRIDE: usize = 4;
/// `conv1` output channels.
pub const C1: usize = 4;
/// `conv2` output channels.
pub const C2: usize = 8;
/// Stage-2 template channels (the first `C2A` channels of `pooled2`).
pub const C2A: usize = 4;
/// Window region side in `pooled1` cells (24 px / pooling 2).
pub const REGION1: usize = WINDOW / 2;
/// Window region side in `pooled2` cells (24 px / pooling 4).
pub const REGION2: usize = WINDOW / 4;
/// Cascade depth: windows reaching depth 3 are detections.
pub const STAGES: u32 = 3;
/// Divisor mapping accumulated integer stage margins to the `f32`
/// detection scores the ROC machinery sweeps.
pub const SCORE_SCALE: f32 = 4096.0;

/// Absolute tap limit for conv filters.
pub const MAX_CONV_TAP: i16 = 64;
/// Absolute weight limit for stage templates.
pub const MAX_STAGE_WEIGHT: i32 = 64;

/// Why a model failed semantic validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CnnModelError {
    /// The window kernels are specialized for [`WINDOW`]-px windows.
    BadWindow { window: u32 },
    /// A tensor has the wrong number of elements.
    TensorLen { tensor: &'static str, expected: usize, got: usize },
    /// A conv tap or template weight exceeds its fixed-point range.
    WeightOutOfRange { tensor: &'static str, index: usize },
    /// A `conv1` filter is not zero-sum (module docs: DC-free contract).
    Conv1NotZeroSum { filter: usize, sum: i32 },
    /// The stage-1 gate needs non-negative weights, at least one positive
    /// (it is an energy gate; a negative or all-zero gate is
    /// unsatisfiable or vacuous).
    BadStageGate,
    /// A stage-2/3 template channel has a positive weight sum (module
    /// docs: uniform responses must not score positive).
    UniformResponsePasses { stage: u32, channel: usize, sum: i64 },
    /// A stage template is identically zero.
    AllZeroStage { stage: u32 },
}

impl fmt::Display for CnnModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadWindow { window } => {
                write!(f, "the CNN kernels are specialized for {WINDOW}-px windows, got {window}")
            }
            Self::TensorLen { tensor, expected, got } => {
                write!(f, "tensor `{tensor}` has {got} elements, expected {expected}")
            }
            Self::WeightOutOfRange { tensor, index } => {
                write!(f, "tensor `{tensor}` element {index} outside the fixed-point range")
            }
            Self::Conv1NotZeroSum { filter, sum } => {
                write!(f, "conv1 filter {filter} sums to {sum}; luma-facing filters must be DC-free")
            }
            Self::BadStageGate => {
                write!(f, "stage-1 gate weights must be non-negative with at least one positive")
            }
            Self::UniformResponsePasses { stage, channel, sum } => write!(
                f,
                "stage {stage} template channel {channel} sums to {sum} > 0: \
                 a spatially uniform response would pass"
            ),
            Self::AllZeroStage { stage } => write!(f, "stage {stage} template is identically zero"),
        }
    }
}

impl std::error::Error for CnnModelError {}

/// A parse failure while loading a model from text, with the 1-based
/// line it occurred on (0 when the failure is post-parse validation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The compact CNN cascade (module docs). All tensors row-major; conv
/// filters are `[out_ch][in_ch][3*3]` flattened, stage templates
/// `[channel][REGION2*REGION2]` flattened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnnModel {
    pub name: String,
    pub window: u32,
    /// `C1 * 1 * 9` taps.
    pub conv1: Vec<i16>,
    /// `C1` biases.
    pub conv1_bias: Vec<i32>,
    /// `C2 * C1 * 9` taps.
    pub conv2: Vec<i16>,
    /// `C2` biases.
    pub conv2_bias: Vec<i32>,
    /// `C1` per-channel gate weights over the window's `pooled1` region.
    pub stage1: Vec<i32>,
    pub stage1_threshold: i64,
    /// `C2A * REGION2 * REGION2` dense template over `pooled2`.
    pub stage2: Vec<i32>,
    pub stage2_threshold: i64,
    /// `C2 * REGION2 * REGION2` dense template over `pooled2`.
    pub stage3: Vec<i32>,
    pub stage3_threshold: i64,
}

impl CnnModel {
    /// Semantic validation (module docs). Called by the detector before
    /// any device state exists, and by [`Self::load`] after parsing.
    pub fn validate(&self) -> Result<(), CnnModelError> {
        if self.window as usize != WINDOW {
            return Err(CnnModelError::BadWindow { window: self.window });
        }
        let shapes: [(&'static str, usize, usize); 7] = [
            ("conv1", self.conv1.len(), C1 * 9),
            ("conv1_bias", self.conv1_bias.len(), C1),
            ("conv2", self.conv2.len(), C2 * C1 * 9),
            ("conv2_bias", self.conv2_bias.len(), C2),
            ("stage1", self.stage1.len(), C1),
            ("stage2", self.stage2.len(), C2A * REGION2 * REGION2),
            ("stage3", self.stage3.len(), C2 * REGION2 * REGION2),
        ];
        for (tensor, got, expected) in shapes {
            if got != expected {
                return Err(CnnModelError::TensorLen { tensor, expected, got });
            }
        }
        for (tensor, taps) in [("conv1", &self.conv1), ("conv2", &self.conv2)] {
            if let Some(i) = taps.iter().position(|&w| w.abs() > MAX_CONV_TAP) {
                return Err(CnnModelError::WeightOutOfRange { tensor, index: i });
            }
        }
        for (tensor, ws) in
            [("stage1", &self.stage1), ("stage2", &self.stage2), ("stage3", &self.stage3)]
        {
            if let Some(i) = ws.iter().position(|&w| w.abs() > MAX_STAGE_WEIGHT) {
                return Err(CnnModelError::WeightOutOfRange { tensor, index: i });
            }
        }
        for filter in 0..C1 {
            let sum: i32 = self.conv1[filter * 9..(filter + 1) * 9]
                .iter()
                .map(|&w| i32::from(w))
                .sum();
            if sum != 0 {
                return Err(CnnModelError::Conv1NotZeroSum { filter, sum });
            }
        }
        if self.stage1.iter().any(|&w| w < 0) || self.stage1.iter().all(|&w| w == 0) {
            return Err(CnnModelError::BadStageGate);
        }
        let cells = REGION2 * REGION2;
        for (stage, template, channels) in [(2u32, &self.stage2, C2A), (3, &self.stage3, C2)] {
            if template.iter().all(|&w| w == 0) {
                return Err(CnnModelError::AllZeroStage { stage });
            }
            for channel in 0..channels {
                let sum: i64 =
                    template[channel * cells..(channel + 1) * cells].iter().map(|&w| i64::from(w)).sum();
                if sum > 0 {
                    return Err(CnnModelError::UniformResponsePasses { stage, channel, sum });
                }
            }
        }
        Ok(())
    }

    /// Deterministic seeded model: a hand-designed face template whose
    /// taps are perturbed by seed-drawn zero-sum tap swaps (+1 at one
    /// position, -1 at another, within the same filter or template
    /// channel), so every seed gives a distinct but valid model — the
    /// DC-free and uniform-rejection invariants survive by construction.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC33D_FACE_u64);
        let mut model = Self::base(seed);

        // Zero-sum tap swaps within each conv filter.
        for f in 0..C1 {
            for _ in 0..2 {
                swap_perturb_i16(&mut model.conv1[f * 9..(f + 1) * 9], &mut rng);
            }
        }
        for f in 0..C2 {
            let taps = &mut model.conv2[f * C1 * 9..(f + 1) * C1 * 9];
            for _ in 0..3 {
                swap_perturb_i16(taps, &mut rng);
            }
        }
        // Zero-sum cell swaps within each template channel.
        let cells = REGION2 * REGION2;
        for c in 0..C2A {
            swap_perturb_i32(&mut model.stage2[c * cells..(c + 1) * cells], &mut rng);
        }
        for c in 0..C2 {
            swap_perturb_i32(&mut model.stage3[c * cells..(c + 1) * cells], &mut rng);
        }
        debug_assert_eq!(model.validate(), Ok(()));
        model
    }

    /// The unperturbed hand-designed template (see `seeded`).
    fn base(seed: u64) -> Self {
        // conv1: DC-free 3x3 feature taps over raw luma.
        //   ch0 "edge_h"  — horizontal edges (vertical gradient),
        //   ch1 "edge_v"  — vertical edges,
        //   ch2 "bright"  — bright center-surround blobs,
        //   ch3 "dark"    — dark center-surround blobs (eye sockets).
        #[rustfmt::skip]
        let conv1: Vec<i16> = vec![
            -1, -2, -1,   0, 0, 0,   1, 2, 1,     // edge_h (Sobel-y)
            -1, 0, 1,   -2, 0, 2,   -1, 0, 1,     // edge_v (Sobel-x)
            -1, -1, -1,  -1, 8, -1,  -1, -1, -1,  // bright blob
             1, 1, 1,    1, -8, 1,    1, 1, 1,    // dark blob
        ];

        // conv2: 8 channels over (edge_h, edge_v, bright, dark). Inputs
        // are ReLU outputs (zero on flat luma), so these need not be
        // DC-free. g* channel roles:
        //   g0 eye      — smoothed dark-blob response,
        //   g1 hedge    — smoothed horizontal-edge response,
        //   g2 vedge    — smoothed vertical-edge response,
        //   g3 bright   — smoothed bright-blob response,
        //   g4 energy   — total edge energy,
        //   g5 hdom     — horizontally dominated texture,
        //   g6 vdom     — vertically dominated texture,
        //   g7 contrast — total center-surround contrast.
        let smooth: [i16; 9] = [1, 2, 1, 2, 4, 2, 1, 2, 1];
        let center = |w: i16| -> [i16; 9] { [0, 0, 0, 0, w, 0, 0, 0, 0] };
        let zero = [0i16; 9];
        let cat = |per_in: [[i16; 9]; C1]| -> Vec<i16> { per_in.concat().to_vec() };
        let mut conv2 = Vec::with_capacity(C2 * C1 * 9);
        conv2.extend(cat([zero, zero, zero, smooth]));                      // g0 eye
        conv2.extend(cat([smooth, zero, zero, zero]));                      // g1 hedge
        conv2.extend(cat([zero, smooth, zero, zero]));                      // g2 vedge
        conv2.extend(cat([zero, zero, smooth, zero]));                      // g3 bright
        conv2.extend(cat([center(2), center(2), zero, zero]));              // g4 energy
        conv2.extend(cat([center(2), center(-1), zero, zero]));             // g5 hdom
        conv2.extend(cat([center(-1), center(2), zero, zero]));             // g6 vdom
        conv2.extend(cat([zero, zero, center(1), center(1)]));              // g7 contrast

        // Stage templates are 6x6 cell grids over the 24-px window
        // (4 px per cell). Landmarks in cell coordinates: eyes (1,2) and
        // (4,2), brows row 1, nose/cheeks row 3, mouth (2..=3, 4).
        let mut stage2 = vec![0i32; C2A * REGION2 * REGION2];
        let mut stage3 = vec![0i32; C2 * REGION2 * REGION2];
        {
            let put = |t: &mut [i32], ch: usize, cells: &[(usize, usize)], w: i32| {
                for &(cx, cy) in cells {
                    t[ch * REGION2 * REGION2 + cy * REGION2 + cx] += w;
                }
            };
            // g0 eye: dark at the eyes and mouth, not at forehead/cheeks.
            for t in [&mut stage2[..], &mut stage3[..]] {
                put(t, 0, &[(1, 2), (4, 2)], 4);
                put(t, 0, &[(2, 4), (3, 4)], 2);
                put(t, 0, &[(2, 1), (3, 1), (1, 3), (4, 3)], -2);
                put(t, 0, &[(2, 2), (3, 2)], -1);
                // g1 hedge: brow/eye and mouth rows carry horizontal
                // edges; mid-face rows are smooth.
                put(t, 1, &[(1, 1), (2, 1), (3, 1), (4, 1)], 2);
                put(t, 1, &[(1, 4), (2, 4), (3, 4), (4, 4)], 2);
                put(t, 1, &[(1, 3), (2, 3), (3, 3), (4, 3)], -2);
                put(t, 1, &[(2, 2), (3, 2)], -2);
                // g2 vedge: head-oval flanks and the nose ridge.
                put(t, 2, &[(0, 1), (0, 2), (0, 3), (0, 4)], 2);
                put(t, 2, &[(5, 1), (5, 2), (5, 3), (5, 4)], 2);
                put(t, 2, &[(2, 2), (3, 2), (2, 3), (3, 3)], 1);
                put(t, 2, &[(1, 1), (4, 1), (1, 4), (4, 4)], -2);
                put(t, 2, &[(2, 1), (3, 1), (2, 4), (3, 4)], -2);
                put(t, 2, &[(1, 2), (4, 2)], -1);
                // g3 bright: nose tip and cheek highlights, dark eyes.
                put(t, 3, &[(2, 3), (3, 3), (1, 3), (4, 3)], 1);
                put(t, 3, &[(1, 2), (4, 2)], -1);
                put(t, 3, &[(2, 0), (3, 0)], -1);
            }
            // Stage-3 extras over g4..g7.
            let t = &mut stage3[..];
            // g4 energy: edges live at the brows/eyes and mouth.
            put(t, 4, &[(1, 2), (4, 2), (1, 1), (4, 1), (2, 4), (3, 4)], 1);
            put(t, 4, &[(2, 1), (3, 1), (1, 3), (4, 3)], -1);
            put(t, 4, &[(0, 0), (5, 0)], -1);
            // g5 hdom: brow and mouth rows, not the flanks.
            put(t, 5, &[(1, 1), (4, 1), (1, 4), (2, 4), (3, 4), (4, 4)], 1);
            put(t, 5, &[(0, 2), (0, 3), (5, 2), (5, 3)], -1);
            put(t, 5, &[(0, 0), (5, 0)], -1);
            // g6 vdom: flanks, not the mouth row.
            put(t, 6, &[(0, 2), (0, 3), (5, 2), (5, 3)], 1);
            put(t, 6, &[(1, 4), (2, 4), (3, 4), (4, 4)], -1);
            // g7 contrast: eyes and mouth, not the forehead.
            put(t, 7, &[(1, 2), (4, 2), (2, 4), (3, 4)], 1);
            put(t, 7, &[(2, 1), (3, 1), (0, 0), (5, 0)], -1);
        }
        // Force each template channel's weight sum non-positive by
        // draining any surplus into the corner cells (surround area).
        for (template, channels) in [(&mut stage2, C2A), (&mut stage3, C2)] {
            balance_template(template, channels);
        }

        Self {
            name: format!("seeded-cnn-{seed}"),
            window: WINDOW as u32,
            conv1,
            conv1_bias: vec![0; C1],
            conv2,
            conv2_bias: vec![0; C2],
            stage1: vec![2, 2, 1, 3],
            // Calibrated by `calibrate_stage_thresholds` (300 synthetic
            // faces at 24-30 px vs. 12k background windows across all
            // texture families): 94.7% of background windows die before
            // stage 3, 97% of best-aligned face windows reach depth 3.
            stage1_threshold: 52_000,
            stage2,
            stage2_threshold: 9_000,
            stage3,
            stage3_threshold: 9_000,
        }
    }

    /// Encode the model as the `u32` words staged in device constant
    /// memory: header, packed `i16` conv taps (two per word), then the
    /// `i32`/`i64` stage tensors. The kernels meter constant traffic
    /// against this region.
    pub fn encode(&self) -> Vec<u32> {
        let mut words = vec![
            0xC33D_0001u32, // magic + version
            self.window,
            (C1 as u32) << 16 | C2 as u32,
            STAGES,
        ];
        let pack_i16 = |words: &mut Vec<u32>, taps: &[i16]| {
            for pair in taps.chunks(2) {
                let lo = pair[0] as u16 as u32;
                let hi = pair.get(1).map_or(0, |&w| w as u16 as u32);
                words.push(hi << 16 | lo);
            }
        };
        pack_i16(&mut words, &self.conv1);
        words.extend(self.conv1_bias.iter().map(|&b| b as u32));
        pack_i16(&mut words, &self.conv2);
        words.extend(self.conv2_bias.iter().map(|&b| b as u32));
        for (template, threshold) in [
            (&self.stage1, self.stage1_threshold),
            (&self.stage2, self.stage2_threshold),
            (&self.stage3, self.stage3_threshold),
        ] {
            words.extend(template.iter().map(|&w| w as u32));
            words.push(threshold as u64 as u32);
            words.push((threshold as u64 >> 32) as u32);
        }
        words
    }

    /// Serialize to the `cnn v1` text format (inverse of [`Self::parse`]).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "cnn v1");
        let _ = writeln!(s, "name {}", self.name);
        let _ = writeln!(s, "window {}", self.window);
        let _ = writeln!(s, "conv1 {}", C1);
        for f in 0..C1 {
            let taps = join(&self.conv1[f * 9..(f + 1) * 9]);
            let _ = writeln!(s, "filter {taps} bias {}", self.conv1_bias[f]);
        }
        let _ = writeln!(s, "conv2 {}", C2);
        for f in 0..C2 {
            let taps = join(&self.conv2[f * C1 * 9..(f + 1) * C1 * 9]);
            let _ = writeln!(s, "filter {taps} bias {}", self.conv2_bias[f]);
        }
        for (stage, template, threshold) in [
            (1, &self.stage1, self.stage1_threshold),
            (2, &self.stage2, self.stage2_threshold),
            (3, &self.stage3, self.stage3_threshold),
        ] {
            let _ = writeln!(s, "stage{stage} threshold {threshold}");
            let _ = writeln!(s, "weights {}", join(template));
        }
        s
    }

    /// Parse the `cnn v1` text format, validating the result — the
    /// hardened asset path shared with the Haar cascade loader: corrupt
    /// or hand-edited weights surface as a typed error before any device
    /// state exists.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        fn take<'a>(
            lines: &[(usize, &'a str)],
            idx: &mut usize,
            expect: &str,
        ) -> Result<(usize, &'a str), ParseError> {
            let item = lines.get(*idx).copied().ok_or_else(|| ParseError {
                line: 0,
                message: format!("unexpected end of input, expected {expect}"),
            })?;
            *idx += 1;
            Ok(item)
        }
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
            .collect();
        let idx = &mut 0usize;

        let (n, header) = take(&lines, idx, "the `cnn v1` header")?;
        if header != "cnn v1" {
            return Err(ParseError { line: n, message: format!("bad header `{header}`") });
        }
        let (n, name_line) = take(&lines, idx, "`name <name>`")?;
        let name = name_line
            .strip_prefix("name ")
            .ok_or_else(|| ParseError { line: n, message: "expected `name <name>`".into() })?
            .to_string();
        let (n, window_line) = take(&lines, idx, "`window <px>`")?;
        let window: u32 = field(window_line, "window", n)?;

        fn parse_conv(
            lines: &[(usize, &str)],
            idx: &mut usize,
            header: &str,
            filters: usize,
            taps_per_filter: usize,
        ) -> Result<(Vec<i16>, Vec<i32>), ParseError> {
            let mut next_line = |expect: &str| take(lines, idx, expect);
            let (n, line) = next_line(header)?;
            let declared: usize = field(line, header, n)?;
            if declared != filters {
                return Err(ParseError {
                    line: n,
                    message: format!("`{header}` declares {declared} filters, expected {filters}"),
                });
            }
            let mut taps = Vec::with_capacity(filters * taps_per_filter);
            let mut bias = Vec::with_capacity(filters);
            for _ in 0..filters {
                let (n, line) = next_line("`filter <taps...> bias <b>`")?;
                let rest = line.strip_prefix("filter ").ok_or_else(|| ParseError {
                    line: n,
                    message: "expected `filter <taps...> bias <b>`".into(),
                })?;
                let (tap_str, bias_str) =
                    rest.split_once(" bias ").ok_or_else(|| ParseError {
                        line: n,
                        message: "missing `bias` in filter line".into(),
                    })?;
                let filter_taps = ints::<i16>(tap_str, n)?;
                if filter_taps.len() != taps_per_filter {
                    return Err(ParseError {
                        line: n,
                        message: format!(
                            "filter has {} taps, expected {taps_per_filter}",
                            filter_taps.len()
                        ),
                    });
                }
                taps.extend(filter_taps);
                bias.push(bias_str.trim().parse().map_err(|_| ParseError {
                    line: n,
                    message: format!("bad bias `{bias_str}`"),
                })?);
            }
            Ok((taps, bias))
        }

        let (conv1, conv1_bias) = parse_conv(&lines, idx, "conv1", C1, 9)?;
        let (conv2, conv2_bias) = parse_conv(&lines, idx, "conv2", C2, C1 * 9)?;

        let mut parse_stage = |stage: usize| -> Result<(Vec<i32>, i64), ParseError> {
            let tag = format!("stage{stage} threshold <t>");
            let (n, line) = take(&lines, idx, &tag)?;
            let threshold = line
                .strip_prefix(&format!("stage{stage} threshold "))
                .and_then(|t| t.trim().parse::<i64>().ok())
                .ok_or_else(|| ParseError { line: n, message: format!("expected `{tag}`") })?;
            let (n, line) = take(&lines, idx, "`weights <w...>`")?;
            let ws = line
                .strip_prefix("weights ")
                .ok_or_else(|| ParseError { line: n, message: "expected `weights <w...>`".into() })?;
            Ok((ints::<i32>(ws, n)?, threshold))
        };
        let (stage1, stage1_threshold) = parse_stage(1)?;
        let (stage2, stage2_threshold) = parse_stage(2)?;
        let (stage3, stage3_threshold) = parse_stage(3)?;

        let model = Self {
            name,
            window,
            conv1,
            conv1_bias,
            conv2,
            conv2_bias,
            stage1,
            stage1_threshold,
            stage2,
            stage2_threshold,
            stage3,
            stage3_threshold,
        };
        model
            .validate()
            .map_err(|e| ParseError { line: 0, message: format!("validation failed: {e}") })?;
        Ok(model)
    }

    /// Save to a text file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Load and validate from a text file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Pure host reference of the full forward pass over one scaled
    /// pyramid level (`w x h` luma in row-major `f32`). Returns the
    /// window grid `(nx, ny)` with per-window cascade depth and
    /// accumulated integer margin — the oracle the GPU kernels are
    /// verified against, window for window.
    pub fn eval_level_host(&self, luma: &[f32], w: usize, h: usize) -> HostLevelEval {
        assert!(w >= WINDOW && h >= WINDOW);
        let q: Vec<i32> = luma.iter().map(|&v| v.round() as i32).collect();
        let conv1 = host_conv(&q, w, h, 1, C1, &self.conv1, &self.conv1_bias);
        let (pooled1, p1w, p1h) = host_pool(&conv1, w, h, C1);
        let conv2 = host_conv(&pooled1, p1w, p1h, C1, C2, &self.conv2, &self.conv2_bias);
        let (pooled2, p2w, p2h) = host_pool(&conv2, p1w, p1h, C2);

        let nx = (w - WINDOW) / WINDOW_STRIDE + 1;
        let ny = (h - WINDOW) / WINDOW_STRIDE + 1;
        let mut depth = vec![0u32; nx * ny];
        let mut score = vec![0i32; nx * ny];
        for gy in 0..ny {
            for gx in 0..nx {
                let s1 = stage1_score(&self.stage1, &pooled1, p1w, gx * 2, gy * 2);
                let i = gy * nx + gx;
                if s1 < self.stage1_threshold {
                    score[i] = sat(s1 - self.stage1_threshold);
                    continue;
                }
                depth[i] = 1;
                let mut acc = s1 - self.stage1_threshold;
                let s2 = template_score(&self.stage2, C2A, &pooled2, p2w, p2h, gx, gy);
                if s2 < self.stage2_threshold {
                    score[i] = sat(acc);
                    continue;
                }
                depth[i] = 2;
                acc += s2 - self.stage2_threshold;
                let s3 = template_score(&self.stage3, C2, &pooled2, p2w, p2h, gx, gy);
                if s3 >= self.stage3_threshold {
                    depth[i] = 3;
                    acc += s3 - self.stage3_threshold;
                }
                score[i] = sat(acc);
            }
        }
        HostLevelEval { nx, ny, depth, score }
    }
}

/// Result of [`CnnModel::eval_level_host`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostLevelEval {
    pub nx: usize,
    pub ny: usize,
    pub depth: Vec<u32>,
    pub score: Vec<i32>,
}

/// Saturating `i64 -> i32` (stage margins fit comfortably; saturation is
/// a guard, not a code path real models hit).
pub fn sat(v: i64) -> i32 {
    v.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32
}

/// Stage-1 gate: per-channel weighted energy over the window's
/// [`REGION1`]-sided `pooled1` region anchored at `(x0, y0)`.
pub fn stage1_score(weights: &[i32], pooled1: &[i32], p1w: usize, x0: usize, y0: usize) -> i64 {
    let plane = pooled1.len() / C1;
    let mut acc = 0i64;
    for (c, &wc) in weights.iter().enumerate() {
        let mut sum = 0i64;
        for dy in 0..REGION1 {
            let row = (y0 + dy) * p1w + x0;
            for dx in 0..REGION1 {
                sum += i64::from(pooled1[c * plane + row + dx]);
            }
        }
        acc += i64::from(wc) * sum;
    }
    acc
}

/// Dense template score over the window's [`REGION2`]-sided `pooled2`
/// region anchored at `(gx, gy)` (stride 1 in `pooled2`).
pub fn template_score(
    template: &[i32],
    channels: usize,
    pooled2: &[i32],
    p2w: usize,
    p2h: usize,
    gx: usize,
    gy: usize,
) -> i64 {
    let plane = p2w * p2h;
    let cells = REGION2 * REGION2;
    let mut acc = 0i64;
    for c in 0..channels {
        for dy in 0..REGION2 {
            let row = (gy + dy) * p2w + gx;
            for dx in 0..REGION2 {
                acc += i64::from(template[c * cells + dy * REGION2 + dx])
                    * i64::from(pooled2[c * plane + row + dx]);
            }
        }
    }
    acc
}

/// Host conv + ReLU with clamped borders over `in_ch` planes.
fn host_conv(
    src: &[i32],
    w: usize,
    h: usize,
    in_ch: usize,
    out_ch: usize,
    taps: &[i16],
    bias: &[i32],
) -> Vec<i32> {
    let plane = w * h;
    let mut out = vec![0i32; out_ch * plane];
    for oc in 0..out_ch {
        for y in 0..h {
            for x in 0..w {
                let mut acc = i64::from(bias[oc]);
                for ic in 0..in_ch {
                    for (t, (dy, dx)) in TAPS3X3.iter().enumerate() {
                        let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                        let sx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                        acc += i64::from(taps[(oc * in_ch + ic) * 9 + t])
                            * i64::from(src[ic * plane + sy * w + sx]);
                    }
                }
                out[oc * plane + y * w + x] = sat(acc.max(0));
            }
        }
    }
    out
}

/// Host 2x2 stride-2 max pool over `ch` planes.
fn host_pool(src: &[i32], w: usize, h: usize, ch: usize) -> (Vec<i32>, usize, usize) {
    let (dw, dh) = (w / 2, h / 2);
    let plane = w * h;
    let dplane = dw * dh;
    let mut out = vec![0i32; ch * dplane];
    for c in 0..ch {
        for y in 0..dh {
            for x in 0..dw {
                let i = c * plane + 2 * y * w + 2 * x;
                out[c * dplane + y * dw + x] =
                    src[i].max(src[i + 1]).max(src[i + w]).max(src[i + w + 1]);
            }
        }
    }
    (out, dw, dh)
}

/// 3x3 tap offsets in `(dy, dx)`, row-major — shared by the host
/// reference and the device kernel so tap order matches exactly.
pub const TAPS3X3: [(isize, isize); 9] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 0),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
];

fn swap_perturb_i16(taps: &mut [i16], rng: &mut SplitMix64) {
    let a = (rng.next_u64() % taps.len() as u64) as usize;
    let b = (rng.next_u64() % taps.len() as u64) as usize;
    if a != b && taps[a] < MAX_CONV_TAP && taps[b] > -MAX_CONV_TAP {
        taps[a] += 1;
        taps[b] -= 1;
    }
}

fn swap_perturb_i32(ws: &mut [i32], rng: &mut SplitMix64) {
    let a = (rng.next_u64() % ws.len() as u64) as usize;
    let b = (rng.next_u64() % ws.len() as u64) as usize;
    if a != b && ws[a] < MAX_STAGE_WEIGHT && ws[b] > -MAX_STAGE_WEIGHT {
        ws[a] += 1;
        ws[b] -= 1;
    }
}

/// Drain any positive per-channel weight surplus into the corner cells.
fn balance_template(template: &mut [i32], channels: usize) {
    let cells = REGION2 * REGION2;
    let corners =
        [0, REGION2 - 1, (REGION2 - 1) * REGION2, REGION2 * REGION2 - 1];
    for c in 0..channels {
        let ws = &mut template[c * cells..(c + 1) * cells];
        let mut sum: i64 = ws.iter().map(|&w| i64::from(w)).sum();
        let mut k = 0;
        while sum > 0 {
            ws[corners[k % corners.len()]] -= 1;
            sum -= 1;
            k += 1;
        }
    }
}

fn join<T: fmt::Display>(vals: &[T]) -> String {
    vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ")
}

fn field<T: std::str::FromStr>(line: &str, key: &str, n: usize) -> Result<T, ParseError> {
    line.strip_prefix(key)
        .map(str::trim)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ParseError { line: n, message: format!("expected `{key} <value>`") })
}

fn ints<T: std::str::FromStr>(s: &str, n: usize) -> Result<Vec<T>, ParseError> {
    s.split_whitespace()
        .map(|tok| {
            tok.parse::<T>()
                .map_err(|_| ParseError { line: n, message: format!("bad integer `{tok}`") })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_models_validate_and_differ_by_seed() {
        let a = CnnModel::seeded(7);
        let b = CnnModel::seeded(7);
        let c = CnnModel::seeded(8);
        assert_eq!(a, b, "same seed, same model");
        assert_ne!(a, c, "different seed, different taps");
        a.validate().unwrap();
        c.validate().unwrap();
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let m = CnnModel::seeded(42);
        let parsed = CnnModel::parse(&m.to_text()).unwrap();
        assert_eq!(m, parsed);
    }

    #[test]
    fn parse_rejects_corrupt_input_with_line_numbers() {
        let m = CnnModel::seeded(1);
        let good = m.to_text();

        let bad_header = good.replacen("cnn v1", "cnn v9", 1);
        let e = CnnModel::parse(&bad_header).unwrap_err();
        assert_eq!(e.line, 1);

        let truncated: String =
            good.lines().take(6).collect::<Vec<_>>().join("\n");
        let e = CnnModel::parse(&truncated).unwrap_err();
        assert_eq!(e.line, 0, "truncation surfaces as end-of-input");
        assert!(e.message.contains("unexpected end of input"), "{e}");

        let bad_tap = good.replacen("filter ", "filter x ", 1);
        let e = CnnModel::parse(&bad_tap).unwrap_err();
        assert!(e.message.contains("bad integer"), "{e}");
    }

    #[test]
    fn validation_catches_semantic_corruption() {
        let mut m = CnnModel::seeded(3);
        m.window = 20;
        assert!(matches!(m.validate(), Err(CnnModelError::BadWindow { window: 20 })));

        let mut m = CnnModel::seeded(3);
        m.conv1[0] += 1; // breaks the zero-sum contract
        assert!(matches!(m.validate(), Err(CnnModelError::Conv1NotZeroSum { filter: 0, .. })));

        let mut m = CnnModel::seeded(3);
        m.stage2[0] = MAX_STAGE_WEIGHT + 1;
        assert!(matches!(
            m.validate(),
            Err(CnnModelError::WeightOutOfRange { tensor: "stage2", index: 0 })
        ));

        let mut m = CnnModel::seeded(3);
        let cells = REGION2 * REGION2;
        for w in &mut m.stage3[..cells] {
            *w = 1; // uniform positive channel: stripes would pass
        }
        assert!(matches!(
            m.validate(),
            Err(CnnModelError::UniformResponsePasses { stage: 3, channel: 0, .. })
        ));

        let mut m = CnnModel::seeded(3);
        m.stage1 = vec![0; C1];
        assert!(matches!(m.validate(), Err(CnnModelError::BadStageGate)));

        let mut m = CnnModel::seeded(3);
        m.stage1.pop();
        assert!(matches!(m.validate(), Err(CnnModelError::TensorLen { tensor: "stage1", .. })));
    }

    #[test]
    fn parse_runs_validation() {
        let mut m = CnnModel::seeded(5);
        m.conv1[0] += 3;
        m.conv1[1] -= 2; // sum now +1: structurally fine, semantically not
        let e = CnnModel::parse(&m.to_text()).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("DC-free"), "{e}");
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("fd_cnn_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cnn");
        let m = CnnModel::seeded(11);
        m.save(&path).unwrap();
        assert_eq!(CnnModel::load(&path).unwrap(), m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn encode_is_stable_and_sized() {
        let m = CnnModel::seeded(2);
        let words = m.encode();
        assert_eq!(words, m.encode());
        // header + conv1 (18) + bias (4) + conv2 (144) + bias (8)
        // + stage1 (4+2) + stage2 (144+2) + stage3 (288+2)
        assert_eq!(words.len(), 4 + 18 + 4 + 144 + 8 + 6 + 146 + 290);
        assert!(words.len() * 4 < 64 * 1024, "fits constant memory");
    }

    #[test]
    fn host_eval_rejects_flat_luma_at_stage_one() {
        let m = CnnModel::seeded(0);
        let (w, h) = (32, 32);
        let flat = vec![128.0f32; w * h];
        let eval = m.eval_level_host(&flat, w, h);
        assert_eq!(eval.nx, 3);
        assert_eq!(eval.ny, 3);
        assert!(eval.depth.iter().all(|&d| d == 0), "flat luma must die at the gate");
        assert!(eval.score.iter().all(|&s| s < 0));
    }

    /// Calibration harness behind `--ignored`: prints raw per-stage score
    /// distributions for synthetic faces vs. background windows, used to
    /// pick the baked thresholds in [`CnnModel::base`]. Re-run after any
    /// change to the base filters or templates.
    #[test]
    #[ignore = "prints stage-score distributions for threshold calibration"]
    fn calibrate_stage_thresholds() {
        use fd_imgproc::synth::{render_background, BackgroundKind, FaceParams};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let model = CnnModel::seeded(0);
        let raw_scores = |luma: &[f32], w: usize, h: usize| -> Vec<[i64; 3]> {
            let q: Vec<i32> = luma.iter().map(|&v| v.round() as i32).collect();
            let conv1 = host_conv(&q, w, h, 1, C1, &model.conv1, &model.conv1_bias);
            let (pooled1, p1w, p1h) = host_pool(&conv1, w, h, C1);
            let conv2 = host_conv(&pooled1, p1w, p1h, C1, C2, &model.conv2, &model.conv2_bias);
            let (pooled2, p2w, p2h) = host_pool(&conv2, p1w, p1h, C2);
            let nx = (w - WINDOW) / WINDOW_STRIDE + 1;
            let ny = (h - WINDOW) / WINDOW_STRIDE + 1;
            let mut out = Vec::with_capacity(nx * ny);
            for gy in 0..ny {
                for gx in 0..nx {
                    out.push([
                        stage1_score(&model.stage1, &pooled1, p1w, gx * 2, gy * 2),
                        template_score(&model.stage2, C2A, &pooled2, p2w, p2h, gx, gy),
                        template_score(&model.stage3, C2, &pooled2, p2w, p2h, gx, gy),
                    ]);
                }
            }
            out
        };

        // Positives: best-aligned window per rendered face, over the
        // pyramid's size-quantization band (the detector sees each face
        // at 24..30 px after its nearest pyramid level).
        let mut face: Vec<Vec<i64>> = vec![Vec::new(); 3];
        let mut rng = StdRng::seed_from_u64(1234);
        for i in 0..300u64 {
            let mut frng = StdRng::seed_from_u64(i);
            let params = FaceParams::sample(&mut frng);
            let size = 24 + (i % 7) as usize;
            let side = 36usize;
            let mut img = render_background(&mut rng, side, side, BackgroundKind::ValueNoise);
            let off = ((side - size) / 2) as i32;
            img.blit(&params.render(size), off, off);
            let windows = raw_scores(img.as_slice(), side, side);
            let best = windows.iter().max_by_key(|s| s[0] + s[1] + s[2]).unwrap();
            for k in 0..3 {
                face[k].push(best[k]);
            }
        }

        // Negatives: every window of every background family.
        let kinds = [
            BackgroundKind::ValueNoise,
            BackgroundKind::Gradient,
            BackgroundKind::Stripes,
            BackgroundKind::Blocks,
            BackgroundKind::BlobField,
        ];
        let mut bg: Vec<[i64; 3]> = Vec::new();
        for kind in kinds {
            for _ in 0..20 {
                let img = render_background(&mut rng, 64, 64, kind);
                bg.extend(raw_scores(img.as_slice(), 64, 64));
            }
        }

        let pct = |sorted: &[i64], p: f64| -> i64 {
            sorted[((sorted.len() - 1) as f64 * p).round() as usize]
        };
        for k in 0..3 {
            let mut f = face[k].clone();
            f.sort_unstable();
            let mut b: Vec<i64> = bg.iter().map(|s| s[k]).collect();
            b.sort_unstable();
            println!(
                "stage{}: face min {} p02 {} p10 {} p50 {} | bg p50 {} p90 {} p95 {} p99 {} max {}",
                k + 1,
                f[0],
                pct(&f, 0.02),
                pct(&f, 0.10),
                pct(&f, 0.50),
                pct(&b, 0.50),
                pct(&b, 0.90),
                pct(&b, 0.95),
                pct(&b, 0.99),
                b[b.len() - 1],
            );
        }

        // Candidate sweep: joint cascade behavior per threshold triple.
        for t1 in [48_000i64, 52_000, 56_000, 60_000, 64_000] {
            for t2 in [3_000i64, 6_000, 9_000, 12_000] {
                for t3 in [3_000i64, 6_000, 9_000] {
                    let total = bg.len();
                    let past2 = bg.iter().filter(|s| s[0] >= t1 && s[1] >= t2).count();
                    let past3 =
                        bg.iter().filter(|s| s[0] >= t1 && s[1] >= t2 && s[2] >= t3).count();
                    let faces_pass = face[0]
                        .iter()
                        .zip(&face[1])
                        .zip(&face[2])
                        .filter(|((&a, &b2), &c)| a >= t1 && b2 >= t2 && c >= t3)
                        .count();
                    println!(
                        "cand ({t1}, {t2}, {t3}): pre-final rej {:.2}% bg-final {past3} \
                         faces {faces_pass}/{}",
                        100.0 * (1.0 - past2 as f64 / total as f64),
                        face[0].len(),
                    );
                }
            }
        }

        // Joint cascade rejection at the baked thresholds.
        let (t1, t2, t3) =
            (model.stage1_threshold, model.stage2_threshold, model.stage3_threshold);
        let total = bg.len();
        let past1 = bg.iter().filter(|s| s[0] >= t1).count();
        let past2 = bg.iter().filter(|s| s[0] >= t1 && s[1] >= t2).count();
        let past3 = bg.iter().filter(|s| s[0] >= t1 && s[1] >= t2 && s[2] >= t3).count();
        let faces_pass = face[0]
            .iter()
            .zip(&face[1])
            .zip(&face[2])
            .filter(|((&a, &b2), &c)| a >= t1 && b2 >= t2 && c >= t3)
            .count();
        println!(
            "baked thresholds ({t1}, {t2}, {t3}): bg {total} -> past1 {past1} past2 {past2} \
             past3 {past3} (pre-final rejection {:.1}%) | faces pass {faces_pass}/{}",
            100.0 * (1.0 - past2 as f64 / total as f64),
            face[0].len(),
        );
    }
}
