//! # fd-cnn — compact CNN cascade detector (the second backend)
//!
//! A 3-stage integer CNN cascade that slides 24-px windows over the
//! same scale pyramid as the Haar backend, entirely on [`fd_gpu`]
//! kernels: fixed-point conv+ReLU, 2x2 max-pool, and staged
//! window-scoring with early rejection between stages. Stage 1 is a
//! cheap per-channel energy gate over the first pooled feature map;
//! stages 2 and 3 are dense integer templates over the second. All
//! arithmetic is integer (i64 accumulate, saturate to i32), so results
//! are bit-identical at any host thread count and on either host
//! execution engine.
//!
//! [`CnnDetector`] implements [`fd_detector::Detector`], making it
//! interchangeable with the Haar [`fd_detector::FaceDetector`] behind
//! the serving layer's request classes.

pub mod detector;
pub mod kernels;
pub mod model;
pub mod pipeline;

pub use detector::CnnDetector;
pub use model::{CnnModel, CnnModelError, ParseError, SCORE_SCALE, STAGES, WINDOW, WINDOW_STRIDE};
pub use pipeline::{CnnLevelOutput, CnnPipeline};
