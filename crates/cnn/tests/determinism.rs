//! CNN backend determinism: the cascade is pure integer arithmetic, so
//! over arbitrary frame content every host execution engine
//! (`Sync`/`Async`) and host thread count must produce byte-identical
//! raw detections, grouped detections, scores, and latency bits.
//!
//! Knobs are driven through [`DetectorConfig`] fields only: the
//! `FD_SIM_*` environment variables are cached per process (`OnceLock`)
//! and cannot be varied inside one test binary.

use fd_cnn::{CnnDetector, CnnModel};
use fd_detector::detector::DetectorConfig;
use fd_detector::group::{Detection, GroupedDetection};
use fd_gpu::HostExec;
use fd_imgproc::synth::{render_random_background, FaceParams};
use fd_imgproc::GrayImage;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded frame with textured background and one embedded face.
fn frame(seed: u64) -> GrayImage {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut img = render_random_background(&mut rng, 96, 72);
    let params = FaceParams::sample(&mut rng);
    img.blit(&params.render(34), 20, 14);
    img
}

fn config(threads: usize, exec: HostExec) -> DetectorConfig {
    DetectorConfig {
        min_neighbors: 1,
        host_threads: Some(threads),
        host_exec: Some(exec),
        ..DetectorConfig::default()
    }
}

/// Raw + grouped detections and latency bits over two frames (one
/// single submission, one batch of two) under the given engine knobs.
fn fingerprint(
    model: &CnnModel,
    seed: u64,
    threads: usize,
    exec: HostExec,
) -> (Vec<Detection>, Vec<GroupedDetection>, Vec<u64>) {
    let mut det = CnnDetector::try_new(model, config(threads, exec)).expect("detector");
    let a = frame(seed);
    let b = frame(seed ^ 0x9E37_79B9);
    let mut raw = Vec::new();
    let mut grouped = Vec::new();
    let mut latency_bits = Vec::new();

    let r = det.detect(&a).expect("detect");
    raw.extend(r.raw);
    grouped.extend(r.detections);
    latency_bits.push(r.detect_ms.to_bits());

    let plan = det.pyramid_plan(&a).expect("plan");
    for r in det.detect_batch_with_plan(&[&a, &b], &plan).expect("batch") {
        raw.extend(r.raw);
        grouped.extend(r.detections);
        latency_bits.push(r.detect_ms.to_bits());
    }
    (raw, grouped, latency_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The backend's structural guarantee: integer kernels make results
    /// independent of how the simulated device is executed on the host.
    #[test]
    fn cnn_results_are_engine_and_thread_invariant(seed in any::<u64>()) {
        let model = CnnModel::seeded(seed % 5);
        let baseline = fingerprint(&model, seed, 1, HostExec::Sync);
        prop_assert!(!baseline.0.is_empty() || !baseline.2.is_empty());
        for exec in [HostExec::Sync, HostExec::Async] {
            for threads in [1usize, 4] {
                let f = fingerprint(&model, seed, threads, exec);
                prop_assert_eq!(&f.0, &baseline.0, "raw {:?}/{}", exec, threads);
                prop_assert_eq!(&f.1, &baseline.1, "grouped {:?}/{}", exec, threads);
                prop_assert_eq!(&f.2, &baseline.2, "latency {:?}/{}", exec, threads);
            }
        }
    }
}
