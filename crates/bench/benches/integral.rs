//! Criterion bench: integral-image construction (paper §III-B).
//!
//! Compares the sequential recurrence with the scan/transpose
//! formulation on host, and measures the simulated-GPU integral chain
//! (scan -> transpose -> scan -> transpose) end to end. The paper's
//! observation — the GPU formulation pays off only at high resolutions —
//! shows up here as the crossover between per-pixel costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fd_imgproc::scan::integral_via_scan;
use fd_imgproc::{GrayImage, IntegralImage};

fn test_image(w: usize, h: usize) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| ((x * 31 + y * 17) % 256) as f32)
}

fn bench_integral(c: &mut Criterion) {
    let mut group = c.benchmark_group("integral");
    for (w, h) in [(320usize, 180usize), (960, 540), (1920, 1080)] {
        let img = test_image(w, h);
        group.throughput(Throughput::Elements((w * h) as u64));
        group.bench_with_input(
            BenchmarkId::new("sequential", format!("{w}x{h}")),
            &img,
            |b, img| b.iter(|| IntegralImage::from_gray(black_box(img))),
        );
        group.bench_with_input(
            BenchmarkId::new("scan_transpose", format!("{w}x{h}")),
            &img,
            |b, img| b.iter(|| integral_via_scan(black_box(img))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_integral);
criterion_main!(benches);
