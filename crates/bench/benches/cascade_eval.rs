//! Criterion bench: cascade evaluation (the paper's hottest kernel).
//!
//! Measures (a) the host-side reference evaluator per window, (b) the
//! simulated GPU cascade kernel over a full level, and (c) the effect of
//! cascade size (compact GentleBoost-like vs 2x-stump AdaBoost-like) —
//! the mechanism behind Table II's cascade-swap column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fd_gpu::{DeviceSpec, ExecMode, Gpu};
use fd_haar::encode::{encode_cascade, quantize_cascade};
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_imgproc::{GrayImage, IntegralImage};

/// Build a synthetic cascade with the requested stage sizes.
fn cascade_with(stage_sizes: &[usize]) -> Cascade {
    let feats = [
        HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8),
        HaarFeature::from_params(FeatureKind::EdgeV, 4, 6, 8, 6),
        HaarFeature::from_params(FeatureKind::LineH, 3, 9, 5, 7),
        HaarFeature::from_params(FeatureKind::CenterSurround, 5, 5, 4, 4),
    ];
    let mut c = Cascade::new("bench", 24);
    for (si, &n) in stage_sizes.iter().enumerate() {
        let stumps = (0..n)
            .map(|i| Stump {
                feature: feats[(si + i) % feats.len()],
                threshold: 64 + (i as i32 % 7) * 96,
                left: -0.4,
                right: 0.6,
            })
            .collect();
        c.stages.push(Stage { stumps, threshold: -0.1 * n as f32 });
    }
    quantize_cascade(&c)
}

fn test_frame(w: usize, h: usize) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| ((x * 13 + y * 29) % 256) as f32)
}

fn bench_cpu_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("cascade_cpu_reference");
    let img = test_frame(320, 240);
    let ii = IntegralImage::from_gray(&img);
    for (name, sizes) in
        [("compact", vec![2usize, 4, 8, 12]), ("double", vec![4usize, 8, 16, 24])]
    {
        let cascade = cascade_with(&sizes);
        group.throughput(Throughput::Elements(((320 - 24) * (240 - 24)) as u64));
        group.bench_with_input(BenchmarkId::new("full_sweep", name), &cascade, |b, cascade| {
            b.iter(|| {
                let mut acc = 0u32;
                for oy in 0..240 - 24 {
                    for ox in 0..320 - 24 {
                        acc += cascade.eval_window(black_box(&ii), ox, oy).depth;
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_gpu_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cascade_gpu_kernel");
    group.sample_size(20);
    let img = test_frame(480, 270);
    let (w, h) = (img.width(), img.height());
    let ii = IntegralImage::from_gray(&img);
    let mut inclusive = vec![0u32; w * h];
    for y in 0..h {
        for x in 0..w {
            inclusive[y * w + x] = ii.at(x + 1, y + 1);
        }
    }
    for (name, sizes) in
        [("compact", vec![2usize, 4, 8, 12]), ("double", vec![4usize, 8, 16, 24])]
    {
        let cascade = cascade_with(&sizes);
        group.bench_function(BenchmarkId::new("level_480x270", name), |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
                let integral = gpu.mem.upload(&inclusive);
                let depth = gpu.mem.alloc::<u32>(w * h);
                let score = gpu.mem.alloc::<f32>(w * h);
                let cp = gpu.const_upload(&encode_cascade(&cascade));
                let k = fd_detector::kernels::CascadeKernel::new(
                    &cascade, integral, w, h, depth, score, cp,
                );
                let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
                black_box(gpu.synchronize().span_us())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cpu_reference, bench_gpu_kernel);
criterion_main!(benches);
