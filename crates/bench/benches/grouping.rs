//! Criterion bench: detection grouping and Hungarian assignment (the
//! display/accuracy post-processing of §III-D and §VI-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fd_detector::group::{group_detections, Detection};
use fd_eval::hungarian::assign_min_cost;
use fd_imgproc::Rect;

fn synthetic_detections(n_clusters: usize, per_cluster: usize) -> Vec<Detection> {
    let mut out = Vec::new();
    for c in 0..n_clusters {
        let cx = 50 + (c as i32 % 8) * 120;
        let cy = 50 + (c as i32 / 8) * 120;
        for k in 0..per_cluster {
            let d = k as i32 % 3;
            out.push(Detection {
                rect: Rect::new(cx + d, cy + (k as i32 % 2), 48 + d as u32, 48 + d as u32),
                score: 1.0 + k as f32 * 0.1,
                scale: 0,
            });
        }
    }
    out
}

fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping");
    for (clusters, per) in [(4usize, 8usize), (12, 12), (24, 16)] {
        let dets = synthetic_detections(clusters, per);
        group.bench_function(
            BenchmarkId::new("s_eyes_iterative", format!("{}x{}", clusters, per)),
            |b| b.iter(|| black_box(group_detections(black_box(&dets), 0.5, 2))),
        );
    }
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [8usize, 32, 64] {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|r| (0..n).map(|cc| ((r * 31 + cc * 17) % 97) as f64).collect())
            .collect();
        group.bench_function(BenchmarkId::new("assign", n), |b| {
            b.iter(|| black_box(assign_min_cost(black_box(&cost))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grouping, bench_hungarian);
criterion_main!(benches);
