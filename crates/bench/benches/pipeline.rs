//! Criterion bench: the full per-frame pipeline at several resolutions,
//! serial vs concurrent (the simulation cost of Table II's measurement,
//! and a check that the simulated spans keep the serial > concurrent
//! ordering at every size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fd_detector::{DetectorConfig, FaceDetector};
use fd_gpu::ExecMode;
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_imgproc::GrayImage;

fn small_cascade() -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let g = HaarFeature::from_params(FeatureKind::LineV, 8, 3, 5, 6);
    let mut c = Cascade::new("bench", 24);
    for i in 0..6 {
        let n = 2 + 2 * i;
        let stumps = (0..n)
            .map(|k| Stump {
                feature: if k % 2 == 0 { f } else { g },
                threshold: 128 * (k + 1),
                left: -0.3,
                right: 0.5,
            })
            .collect();
        // Reject-most thresholds: the bench must measure the pipeline,
        // not post-processing of a degenerate accept-everything cascade.
        c.stages.push(Stage { stumps, threshold: 0.25 * n as f32 });
    }
    c
}

fn frame(w: usize, h: usize) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| ((x * 7 + y * 11) % 256) as f32)
}

fn bench_pipeline(c: &mut Criterion) {
    let cascade = small_cascade();
    let mut group = c.benchmark_group("pipeline_frame");
    group.sample_size(10);
    for (w, h) in [(320usize, 180usize), (640, 360)] {
        let img = frame(w, h);
        for (mode, name) in [(ExecMode::Concurrent, "concurrent"), (ExecMode::Serial, "serial")] {
            group.bench_function(BenchmarkId::new(name, format!("{w}x{h}")), |b| {
                let mut det = FaceDetector::new(
                    &cascade,
                    DetectorConfig { exec_mode: mode, ..DetectorConfig::default() },
                );
                b.iter(|| black_box(det.detect(black_box(&img)).expect("detect").detect_ms))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
