//! Criterion bench: one boosting round (the unit Fig. 8 measures) for
//! both learners, and the feature-LUT sweep in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fd_boost::gentle::initial_weights;
use fd_boost::synthdata::{synth_faces, NegativeSource};
use fd_boost::{AdaBoost, FeatureLut, GentleBoost, TrainingSet, WeakLearner};
use fd_haar::{enumerate_features, EnumerationRule};

fn training_set(n: usize) -> TrainingSet {
    let faces = synth_faces(n / 2, 11);
    let negs = NegativeSource::new(13).initial(n / 2);
    let samples: Vec<(&fd_imgproc::GrayImage, f32)> = faces
        .iter()
        .map(|f| (f, 1.0))
        .chain(negs.iter().map(|g| (g, -1.0)))
        .collect();
    TrainingSet::from_samples(samples)
}

fn bench_round(c: &mut Criterion) {
    let set = training_set(200);
    let weights = initial_weights(&set);
    let features: Vec<_> = enumerate_features(24, EnumerationRule::Icpp2012)
        .into_iter()
        .step_by(101)
        .collect();
    let n_feats = features.len();

    let mut group = c.benchmark_group("boost_round");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n_feats * set.len()) as u64));
    let gentle = GentleBoost::new(features.clone());
    group.bench_function(BenchmarkId::new("gentleboost", n_feats), |b| {
        b.iter(|| black_box(gentle.fit_round(black_box(&set), black_box(&weights))))
    });
    let ada = AdaBoost::new(features);
    group.bench_function(BenchmarkId::new("adaboost", n_feats), |b| {
        b.iter(|| black_box(ada.fit_round(black_box(&set), black_box(&weights))))
    });
    group.finish();
}

fn bench_lut_sweep(c: &mut Criterion) {
    let set = training_set(400);
    let features: Vec<_> = enumerate_features(24, EnumerationRule::Icpp2012)
        .into_iter()
        .step_by(997)
        .collect();
    let luts: Vec<FeatureLut> = features.iter().map(FeatureLut::from_feature).collect();
    let mut group = c.benchmark_group("lut_sweep");
    group.throughput(Throughput::Elements((luts.len() * set.len()) as u64));
    group.bench_function("eval_all", |b| {
        let mut out = vec![0i32; set.len()];
        b.iter(|| {
            let mut acc = 0i64;
            for lut in &luts {
                lut.eval_all(black_box(&set), &mut out);
                acc += out[0] as i64;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_round, bench_lut_sweep);
criterion_main!(benches);
