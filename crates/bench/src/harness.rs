//! Shared experiment runners.

use fd_detector::{DetectorConfig, FaceDetector};
use fd_gpu::ExecMode;
use fd_haar::Cascade;
use fd_video::decoder::pipelined_fps;
use fd_video::{HwDecoder, TrailerInfo};

use crate::cascades::CascadePair;

/// Per-frame latency series for one (cascade, mode) configuration over a
/// trailer. Returns `(detect_ms, decode_ms)` per frame.
pub fn detect_series(
    cascade: &Cascade,
    info: &TrailerInfo,
    mode: ExecMode,
    n_frames: usize,
) -> (Vec<f64>, Vec<f64>) {
    let decoder = HwDecoder::new(info.generate(n_frames));
    let mut detector = FaceDetector::new(
        cascade,
        DetectorConfig { exec_mode: mode, ..DetectorConfig::default() },
    );
    let mut detect_ms = Vec::with_capacity(n_frames);
    let mut decode_ms = Vec::with_capacity(n_frames);
    for frame in decoder {
        let r = detector.detect(&frame.luma).expect("detect");
        detect_ms.push(r.detect_ms);
        decode_ms.push(frame.decode_ms);
    }
    (detect_ms, decode_ms)
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// One Table II row: average detection ms/frame per configuration.
#[derive(Debug, Clone)]
pub struct Table2Row {
    pub title: String,
    pub ours_concurrent: f64,
    pub ours_serial: f64,
    pub cv_concurrent: f64,
    pub cv_serial: f64,
    /// End-to-end fps with hardware decode overlapped (ours, concurrent).
    pub fps_ours_concurrent: f64,
}

impl Table2Row {
    /// The paper's headline ratio: serial OpenCV cascade over concurrent
    /// compact cascade.
    pub fn combined_speedup(&self) -> f64 {
        self.cv_serial / self.ours_concurrent
    }

    /// Concurrency-only speedup for the compact cascade.
    pub fn concurrency_speedup(&self) -> f64 {
        self.ours_serial / self.ours_concurrent
    }

    /// Cascade-swap-only speedup under concurrent execution.
    pub fn cascade_speedup(&self) -> f64 {
        self.cv_concurrent / self.ours_concurrent
    }
}

/// Run Table II over `trailers` with `frames` frames each.
pub fn run_table2(
    pair: &CascadePair,
    trailers: &[TrailerInfo],
    frames: usize,
) -> Vec<Table2Row> {
    let mut rows = Vec::with_capacity(trailers.len());
    for info in trailers {
        let (ours_c, decode) = detect_series(&pair.ours, info, ExecMode::Concurrent, frames);
        let (ours_s, _) = detect_series(&pair.ours, info, ExecMode::Serial, frames);
        let (cv_c, _) = detect_series(&pair.opencv_like, info, ExecMode::Concurrent, frames);
        let (cv_s, _) = detect_series(&pair.opencv_like, info, ExecMode::Serial, frames);
        rows.push(Table2Row {
            title: info.title.to_string(),
            ours_concurrent: mean(&ours_c),
            ours_serial: mean(&ours_s),
            cv_concurrent: mean(&cv_c),
            cv_serial: mean(&cv_s),
            fps_ours_concurrent: pipelined_fps(&decode, &ours_c),
        });
        eprintln!(
            "[table2] {:<42} ours {:.2}/{:.2} ms  cv {:.2}/{:.2} ms",
            info.title,
            rows.last().unwrap().ours_concurrent,
            rows.last().unwrap().ours_serial,
            rows.last().unwrap().cv_concurrent,
            rows.last().unwrap().cv_serial,
        );
    }
    rows
}

/// Geometric means over Table II (the paper quotes average factors).
pub fn table2_summary(rows: &[Table2Row]) -> (f64, f64, f64) {
    let geo = |f: &dyn Fn(&Table2Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    (
        geo(&|r| r.concurrency_speedup()),
        geo(&|r| r.cascade_speedup()),
        geo(&|r| r.combined_speedup()),
    )
}

/// Fig. 7 data: aggregated deepest-stage histograms per scale.
pub struct RejectionSurface {
    /// `counts[level][depth]`, summed over frames.
    pub counts: Vec<Vec<u64>>,
    pub windows_per_level: Vec<u64>,
    pub n_stages: usize,
}

impl RejectionSurface {
    /// Rejection rate at 1-based `stage` for `level`.
    pub fn rate(&self, level: usize, stage: usize) -> f64 {
        let n = self.windows_per_level[level];
        if n == 0 {
            return 0.0;
        }
        self.counts[level].get(stage - 1).copied().unwrap_or(0) as f64 / n as f64
    }

    /// Aggregate rejection rate at 1-based `stage` over all levels.
    pub fn aggregate_rate(&self, stage: usize) -> f64 {
        let total: u64 = self.windows_per_level.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let c: u64 = self.counts.iter().map(|h| h.get(stage - 1).copied().unwrap_or(0)).sum();
        c as f64 / total as f64
    }
}

/// Collect Fig. 7 rejection statistics for one cascade over a trailer.
pub fn run_rejection_surface(
    cascade: &Cascade,
    info: &TrailerInfo,
    n_frames: usize,
) -> RejectionSurface {
    let decoder = HwDecoder::new(info.generate(n_frames));
    let mut detector = FaceDetector::new(
        cascade,
        DetectorConfig { collect_rejection_stats: true, ..DetectorConfig::default() },
    );
    let mut counts: Vec<Vec<u64>> = Vec::new();
    let mut windows: Vec<u64> = Vec::new();
    for frame in decoder {
        let r = detector.detect(&frame.luma).expect("detect");
        let h = r.rejection.expect("stats enabled");
        if counts.is_empty() {
            counts = h.counts.clone();
            windows = h.windows_per_level.clone();
        } else {
            for (acc, new) in counts.iter_mut().zip(&h.counts) {
                for (a, b) in acc.iter_mut().zip(new) {
                    *a += b;
                }
            }
            for (a, b) in windows.iter_mut().zip(&h.windows_per_level) {
                *a += b;
            }
        }
    }
    RejectionSurface { counts, windows_per_level: windows, n_stages: cascade.depth() as usize }
}

/// §VI-A profiler-counter report for one configuration.
pub struct CountersReport {
    pub branch_efficiency_cascade: f64,
    pub branch_efficiency_overall: f64,
    /// (min, max) DRAM read throughput of cascade-eval launches, MB/s.
    pub cascade_dram_mbps: (f64, f64),
    /// Fraction of device time in the integral-image kernels.
    pub integral_time_share: f64,
    /// Packed cascade size in constant memory, bytes.
    pub const_bytes: usize,
    /// End-to-end fps with decode overlap.
    pub fps: f64,
}

/// Gather the §VI-A counters over a trailer run.
pub fn run_counters(cascade: &Cascade, info: &TrailerInfo, n_frames: usize) -> CountersReport {
    let decoder = HwDecoder::new(info.generate(n_frames));
    let mut detector = FaceDetector::new(cascade, DetectorConfig::default());
    let mut detect_ms = Vec::new();
    let mut decode_ms = Vec::new();
    let mut dram_min = f64::INFINITY;
    let mut dram_max = 0.0f64;
    for frame in decoder {
        let r = detector.detect(&frame.luma).expect("detect");
        detect_ms.push(r.detect_ms);
        decode_ms.push(frame.decode_ms);
        for e in &r.timeline.events {
            if e.kernel_name == "cascade_eval" {
                let t = e.dram_read_throughput_mbps();
                if t > 0.0 {
                    dram_min = dram_min.min(t);
                    dram_max = dram_max.max(t);
                }
            }
        }
    }
    let prof = detector.profiler();
    let kernels = prof.kernels();
    let total_time: f64 = kernels.values().map(|k| k.total_time_us).sum();
    let integral_time: f64 = kernels
        .iter()
        .filter(|(name, _)| **name == "scan_rows" || **name == "transpose")
        .map(|(_, k)| k.total_time_us)
        .sum();
    // The packed size: re-encode to count (the detector holds it staged).
    let const_bytes = fd_haar::encode::packed_bytes(detector.cascade());
    CountersReport {
        branch_efficiency_cascade: kernels["cascade_eval"].branch_efficiency(),
        branch_efficiency_overall: prof.branch_efficiency(),
        cascade_dram_mbps: (dram_min, dram_max),
        integral_time_share: integral_time / total_time,
        const_bytes,
        fps: pipelined_fps(&decode_ms, &detect_ms),
    }
}

/// Map a stage-count operating point of the paper (15/20/25 of 25) onto a
/// cascade with a possibly different depth: proportional truncation.
pub fn equivalent_stage_cut(cascade: &Cascade, paper_stages: usize) -> usize {
    let d = cascade.depth() as usize;
    ((paper_stages as f64 / 25.0 * d as f64).round() as usize).clamp(1, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascades::{trained_cascade_pair, TrainingBudget};

    fn small_pair() -> CascadePair {
        trained_cascade_pair(&TrainingBudget::tiny())
    }

    #[test]
    fn detect_series_produces_one_sample_per_frame() {
        let pair = small_pair();
        // Shrink the trailer via a custom spec: use the spec at lower res.
        let spec = fd_video::TrailerSpec {
            width: 192,
            height: 108,
            n_frames: 3,
            seed: 5,
            face_size: (30.0, 60.0),
            ..fd_video::TrailerSpec::default()
        };
        let decoder = HwDecoder::new(fd_video::Trailer::generate(spec));
        let mut det = FaceDetector::new(&pair.ours, DetectorConfig::default());
        let mut n = 0;
        for frame in decoder {
            let r = det.detect(&frame.luma).expect("detect");
            assert!(r.detect_ms > 0.0);
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn stage_cut_scales_proportionally() {
        let mut c = Cascade::new("c", 24);
        for _ in 0..10 {
            c.stages.push(fd_haar::Stage { stumps: vec![], threshold: 0.0 });
        }
        assert_eq!(equivalent_stage_cut(&c, 25), 10);
        assert_eq!(equivalent_stage_cut(&c, 20), 8);
        assert_eq!(equivalent_stage_cut(&c, 15), 6);
        // Never zero.
        let mut one = Cascade::new("one", 24);
        one.stages.push(fd_haar::Stage { stumps: vec![], threshold: 0.0 });
        assert_eq!(equivalent_stage_cut(&one, 15), 1);
    }

    #[test]
    fn table2_summary_takes_geometric_means() {
        let rows = vec![
            Table2Row {
                title: "a".into(),
                ours_concurrent: 1.0,
                ours_serial: 2.0,
                cv_concurrent: 2.0,
                cv_serial: 4.0,
                fps_ours_concurrent: 100.0,
            },
            Table2Row {
                title: "b".into(),
                ours_concurrent: 1.0,
                ours_serial: 8.0,
                cv_concurrent: 2.0,
                cv_serial: 16.0,
                fps_ours_concurrent: 100.0,
            },
        ];
        let (conc, casc, comb) = table2_summary(&rows);
        assert!((conc - 4.0).abs() < 1e-9); // sqrt(2*8)
        assert!((casc - 2.0).abs() < 1e-9);
        assert!((comb - 8.0).abs() < 1e-9); // sqrt(4*16)
    }
}
