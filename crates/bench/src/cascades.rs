//! Trained-cascade management for the benchmarks.
//!
//! Every performance experiment compares two cascades (paper §VI):
//!
//! * **ours** — GentleBoost, compact (the paper's has 1446 weak
//!   classifiers over 25 stages);
//! * **OpenCV-like** — discrete AdaBoost with the same stage goals,
//!   which needs roughly twice the stumps (the paper's baseline has 2913
//!   over 25 stages).
//!
//! Training both takes minutes, so the result is cached on disk (keyed by
//! the budget) under `target/fd-cache/` in the text cascade format.

use std::path::PathBuf;

use fd_boost::synthdata::{synth_faces, NegativeSource};
use fd_boost::trainer::{train_cascade, StageGoals, TrainerConfig};
use fd_boost::{AdaBoost, GentleBoost};
use fd_haar::{enumerate_features, Cascade, EnumerationRule};

/// Sizing of the training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingBudget {
    /// Keep every `feature_stride`-th feature of the 103 607 enumeration.
    pub feature_stride: usize,
    pub n_faces: usize,
    pub negatives_per_stage: usize,
    pub max_stages: usize,
    /// Per-stage stump cap for the GentleBoost cascade.
    pub max_stumps_per_stage: usize,
    /// Per-stage stump floor for the GentleBoost cascade.
    pub min_stumps_per_stage: usize,
    /// Per-stage goals for the GentleBoost cascade (the paper's own,
    /// aggressively front-loaded: stage 1 rejects >90 % of content).
    pub min_detection_rate: f64,
    pub max_false_positive_rate: f64,
    /// Per-stage goals for the AdaBoost baseline, mirroring OpenCV's
    /// stock `traincascade` settings (keep essentially every positive,
    /// reject half the negatives per stage) — the regime that produces
    /// the stock cascade's fat early stages and slower rejection, the
    /// source of the paper's ~2.5x cascade-swap latency gap.
    pub baseline_min_detection_rate: f64,
    pub baseline_max_false_positive_rate: f64,
    pub baseline_max_stumps_per_stage: usize,
    /// Stump floor for the baseline (the stock OpenCV cascade opens with
    /// 9+ features per stage; see `StageGoals::min_stumps_per_stage`).
    pub baseline_min_stumps_per_stage: usize,
    pub seed: u64,
}

impl Default for TrainingBudget {
    fn default() -> Self {
        Self {
            feature_stride: 23,
            n_faces: 500,
            negatives_per_stage: 400,
            max_stages: 25,
            max_stumps_per_stage: 40,
            min_stumps_per_stage: 5,
            min_detection_rate: 0.997,
            max_false_positive_rate: 0.45,
            baseline_min_detection_rate: 0.999,
            baseline_max_false_positive_rate: 0.5,
            baseline_max_stumps_per_stage: 80,
            baseline_min_stumps_per_stage: 14,
            seed: 0xFACE,
        }
    }
}

impl TrainingBudget {
    /// A drastically smaller budget for unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            feature_stride: 331,
            n_faces: 60,
            negatives_per_stage: 80,
            max_stages: 4,
            max_stumps_per_stage: 10,
            min_stumps_per_stage: 1,
            min_detection_rate: 0.98,
            max_false_positive_rate: 0.5,
            baseline_min_detection_rate: 0.99,
            baseline_max_false_positive_rate: 0.5,
            baseline_max_stumps_per_stage: 12,
            baseline_min_stumps_per_stage: 1,
            seed: 0xFACE,
        }
    }

    fn cache_key(&self, which: &str) -> String {
        format!(
            "{which}-fs{}-nf{}-np{}-ms{}-mx{}-mn{}-dr{}-fp{}-bdr{}-bfp{}-bmx{}-bmn{}-s{:x}.cascade",
            self.feature_stride,
            self.n_faces,
            self.negatives_per_stage,
            self.max_stages,
            self.max_stumps_per_stage,
            self.min_stumps_per_stage,
            (self.min_detection_rate * 1e4) as u64,
            (self.max_false_positive_rate * 1e4) as u64,
            (self.baseline_min_detection_rate * 1e4) as u64,
            (self.baseline_max_false_positive_rate * 1e4) as u64,
            self.baseline_max_stumps_per_stage,
            self.baseline_min_stumps_per_stage,
            self.seed
        )
    }
}

/// The two cascades used throughout the evaluation.
#[derive(Debug, Clone)]
pub struct CascadePair {
    /// GentleBoost, compact ("our cascade").
    pub ours: Cascade,
    /// Discrete AdaBoost ("OpenCV-like" baseline).
    pub opencv_like: Cascade,
}

fn cache_dir() -> PathBuf {
    // Keep alongside build artifacts; safe to delete at any time.
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("fd-cache")
}

fn trainer_config(budget: &TrainingBudget, baseline: bool) -> TrainerConfig {
    let goals = if baseline {
        StageGoals {
            min_detection_rate: budget.baseline_min_detection_rate,
            max_false_positive_rate: budget.baseline_max_false_positive_rate,
            max_stumps_per_stage: budget.baseline_max_stumps_per_stage,
            min_stumps_per_stage: budget.baseline_min_stumps_per_stage,
        }
    } else {
        StageGoals {
            min_detection_rate: budget.min_detection_rate,
            max_false_positive_rate: budget.max_false_positive_rate,
            max_stumps_per_stage: budget.max_stumps_per_stage,
            min_stumps_per_stage: budget.min_stumps_per_stage,
        }
    };
    TrainerConfig {
        goals,
        max_stages: budget.max_stages,
        negatives_per_stage: budget.negatives_per_stage,
        bootstrap_budget: 400_000,
        seed: budget.seed ^ 0x9E37,
        verbose: std::env::var_os("FD_VERBOSE").is_some(),
    }
}

/// Train (or load from cache) the GentleBoost/AdaBoost cascade pair.
///
/// Resolution order: build cache (`target/fd-cache/`), then — for the
/// default budget only — the pre-trained cascades shipped in `assets/`,
/// then a fresh training run (minutes; cached afterwards).
pub fn trained_cascade_pair(budget: &TrainingBudget) -> CascadePair {
    let dir = cache_dir();
    let ours_path = dir.join(budget.cache_key("ours-gentle"));
    let cv_path = dir.join(budget.cache_key("opencv-like-ada"));
    if let (Ok(ours), Ok(opencv_like)) =
        (fd_haar::io::load(&ours_path), fd_haar::io::load(&cv_path))
    {
        return CascadePair { ours, opencv_like };
    }
    if *budget == TrainingBudget::default() {
        let assets = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../assets");
        if let (Ok(ours), Ok(opencv_like)) = (
            fd_haar::io::load(assets.join("ours-gentle.cascade")),
            fd_haar::io::load(assets.join("opencv-like-ada.cascade")),
        ) {
            eprintln!("[fd-bench] using pre-trained cascades from assets/");
            return CascadePair { ours, opencv_like };
        }
    }

    let features: Vec<_> = enumerate_features(24, EnumerationRule::Icpp2012)
        .into_iter()
        .step_by(budget.feature_stride)
        .collect();
    let faces = synth_faces(budget.n_faces, budget.seed);

    eprintln!(
        "[fd-bench] training cascades ({} features, {} faces) — cached afterwards",
        features.len(),
        faces.len()
    );
    let t0 = std::time::Instant::now();
    let gentle = GentleBoost::new(features.clone());
    let mut negs = NegativeSource::new(budget.seed ^ 0xBEEF);
    let ours =
        train_cascade(&gentle, "ours-gentle", &faces, &mut negs, &trainer_config(budget, false))
            .cascade;
    eprintln!(
        "[fd-bench] GentleBoost: {} stages, {} stumps ({:.1}s)",
        ours.depth(),
        ours.total_stumps(),
        t0.elapsed().as_secs_f64()
    );

    let t1 = std::time::Instant::now();
    let ada = AdaBoost::new(features);
    let mut negs = NegativeSource::new(budget.seed ^ 0xBEEF);
    let opencv_like = train_cascade(
        &ada,
        "opencv-like-ada",
        &faces,
        &mut negs,
        &trainer_config(budget, true),
    )
    .cascade;
    eprintln!(
        "[fd-bench] AdaBoost: {} stages, {} stumps ({:.1}s)",
        opencv_like.depth(),
        opencv_like.total_stumps(),
        t1.elapsed().as_secs_f64()
    );

    std::fs::create_dir_all(&dir).ok();
    fd_haar::io::save(&ours, &ours_path).ok();
    fd_haar::io::save(&opencv_like, &cv_path).ok();
    CascadePair { ours, opencv_like }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_budget_trains_and_caches() {
        let budget = TrainingBudget { seed: 0x7e57, ..TrainingBudget::tiny() };
        let key = budget.cache_key("ours-gentle");
        let path = cache_dir().join(&key);
        std::fs::remove_file(&path).ok();

        let pair = trained_cascade_pair(&budget);
        assert!(pair.ours.depth() >= 1);
        assert!(pair.opencv_like.depth() >= 1);
        assert!(pair.ours.total_stumps() >= pair.ours.depth() as usize);
        assert!(path.exists(), "cascade must be cached at {path:?}");

        // Second call loads from cache and returns identical cascades.
        let again = trained_cascade_pair(&budget);
        assert_eq!(again.ours, pair.ours);
        assert_eq!(again.opencv_like, pair.opencv_like);
    }

    #[test]
    fn cache_keys_distinguish_budgets() {
        let a = TrainingBudget::default().cache_key("x");
        let b = TrainingBudget { n_faces: 401, ..TrainingBudget::default() }.cache_key("x");
        assert_ne!(a, b);
    }
}
