//! Deterministic load generators for the serving benchmarks.
//!
//! Two standard shapes drive [`fd_serve::DetectionServer`]:
//!
//! * **open loop** — arrivals follow a Poisson process of a fixed
//!   offered rate, independent of completions (models external traffic;
//!   exposes saturation because the queue keeps growing when the offered
//!   rate exceeds capacity);
//! * **closed loop** — a fixed number of virtual clients each keep one
//!   request in flight and resubmit after an optional think time
//!   (models a worker pool; throughput self-limits at capacity).
//!
//! Both are seeded and purely arithmetic, so a given (seed, rate, n)
//! always produces the identical arrival pattern and therefore — by the
//! server's determinism — the identical serving run.

use fd_detector::{Backend, Detector};
use fd_imgproc::GrayImage;
use fd_serve::{DetectionServer, FleetServer, Priority, RequestOutcome};

/// Minimal 64-bit LCG (Knuth's MMIX multiplier), good enough for
/// inter-arrival sampling and frame variation without pulling a full
/// RNG into the bench path.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    pub fn new(seed: u64) -> Self {
        Self { state: seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    /// Uniform in the open interval (0, 1).
    pub fn next_f64(&mut self) -> f64 {
        let bits = self.next_u64() >> 11; // 53 significant bits
        (bits as f64 + 0.5) / (1u64 << 53) as f64
    }
}

/// `n` Poisson arrival times (virtual µs, ascending from 0) at
/// `rate_rps` requests per second: inter-arrivals are exponential via
/// inverse-CDF sampling of the seeded [`Lcg`].
pub fn exponential_arrivals_us(seed: u64, n: usize, rate_rps: f64) -> Vec<f64> {
    assert!(rate_rps > 0.0, "offered rate must be positive");
    let mut rng = Lcg::new(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += -rng.next_f64().ln() / rate_rps * 1e6;
            t
        })
        .collect()
}

/// A small deterministic test frame: a dark/bright vertical edge pair
/// (the pattern the bench cascades fire on) at a seed-dependent
/// horizontal shift. All variants share one geometry so they batch.
pub fn pattern_frame(w: usize, h: usize, variant: u64) -> GrayImage {
    let shift = (variant % 8) as usize;
    GrayImage::from_fn(w, h, |x, y| {
        let x = x + shift;
        if (20..30).contains(&x) && (h / 4..3 * h / 4).contains(&y) {
            10.0
        } else if (30..40).contains(&x) && (h / 4..3 * h / 4).contains(&y) {
            245.0
        } else {
            120.0
        }
    })
}

/// The per-request backend class sequence for mixed Haar/CNN traffic:
/// request `i` is CNN-classed when the `i`-th draw of a seeded [`Lcg`]
/// falls below `cnn_fraction`. Deterministic in `(seed, n,
/// cnn_fraction)`, and independent of the arrival/frame streams so the
/// same traffic can be replayed with a different class mix.
pub fn backend_sequence(seed: u64, n: usize, cnn_fraction: f64) -> Vec<Backend> {
    assert!((0.0..=1.0).contains(&cnn_fraction), "cnn_fraction must be in [0, 1]");
    let mut rng = Lcg::new(seed ^ 0xBAC0);
    (0..n)
        .map(|_| {
            if rng.next_f64() < cnn_fraction {
                Backend::Cnn
            } else {
                Backend::Haar
            }
        })
        .collect()
}

/// Submit an open-loop request pattern: `n` frames of `w`x`h` arriving
/// per [`exponential_arrivals_us`], all in `priority` with a fixed
/// `slo_us`. Call before `server.run()`. The request class is the
/// server's own backend (a single server owns one detector); mixed
/// traffic goes through [`submit_open_loop_fleet_mixed`].
pub fn submit_open_loop<D: Detector>(
    server: &mut DetectionServer<D>,
    seed: u64,
    n: usize,
    rate_rps: f64,
    w: usize,
    h: usize,
    priority: Priority,
    slo_us: f64,
) {
    let mut rng = Lcg::new(seed ^ 0xF0F0);
    for arrival in exponential_arrivals_us(seed, n, rate_rps) {
        let frame = pattern_frame(w, h, rng.next_u64());
        server
            .submit(frame, priority, arrival, slo_us)
            .expect("open-loop submission is valid");
    }
}

/// The fleet twin of [`submit_open_loop`]: the identical seeded arrival
/// pattern and frame sequence, submitted through the [`FleetServer`]
/// front door (which routes each request to a device lane). A fleet of
/// one therefore receives bit-identical traffic to a single server.
#[allow(clippy::too_many_arguments)]
pub fn submit_open_loop_fleet<D: Detector>(
    fleet: &mut FleetServer<D>,
    seed: u64,
    n: usize,
    rate_rps: f64,
    w: usize,
    h: usize,
    priority: Priority,
    slo_us: f64,
) {
    let mut rng = Lcg::new(seed ^ 0xF0F0);
    for arrival in exponential_arrivals_us(seed, n, rate_rps) {
        let frame = pattern_frame(w, h, rng.next_u64());
        fleet
            .submit(frame, priority, arrival, slo_us)
            .expect("open-loop fleet submission is valid");
    }
}

/// [`submit_open_loop_fleet`] with a per-request backend class: the
/// identical seeded arrival and frame streams, each request classed
/// Haar or CNN by [`backend_sequence`] and submitted through
/// [`FleetServer::submit_to_backend`]. With `cnn_fraction == 0.0` every
/// request is Haar-classed and the traffic is bit-identical to
/// [`submit_open_loop_fleet`] against a Haar fleet.
#[allow(clippy::too_many_arguments)]
pub fn submit_open_loop_fleet_mixed<D: Detector>(
    fleet: &mut FleetServer<D>,
    seed: u64,
    n: usize,
    rate_rps: f64,
    w: usize,
    h: usize,
    priority: Priority,
    slo_us: f64,
    cnn_fraction: f64,
) {
    let mut rng = Lcg::new(seed ^ 0xF0F0);
    let backends = backend_sequence(seed, n, cnn_fraction);
    for (arrival, backend) in exponential_arrivals_us(seed, n, rate_rps).into_iter().zip(backends)
    {
        let frame = pattern_frame(w, h, rng.next_u64());
        fleet
            .submit_to_backend(frame, priority, arrival, slo_us, backend)
            .expect("mixed open-loop fleet submission is valid");
    }
}

/// Drive `clients` virtual clients through the server until
/// `total_requests` have been submitted and every outcome is in: each
/// client keeps one request in flight, resubmitting `think_us` after its
/// previous completion. Returns the number of requests that were served
/// (vs shed/rejected/failed).
#[allow(clippy::too_many_arguments)]
pub fn run_closed_loop<D: Detector>(
    server: &mut DetectionServer<D>,
    seed: u64,
    clients: usize,
    total_requests: usize,
    think_us: f64,
    w: usize,
    h: usize,
    priority: Priority,
    slo_us: f64,
) -> usize {
    assert!(clients > 0, "need at least one client");
    let mut rng = Lcg::new(seed);
    let mut submitted = 0usize;
    let mut in_flight = 0usize;
    let mut served = 0usize;
    let mut done = 0usize;
    while submitted < clients.min(total_requests) {
        server
            .submit(pattern_frame(w, h, rng.next_u64()), priority, server.now_us(), slo_us)
            .expect("closed-loop submission is valid");
        submitted += 1;
        in_flight += 1;
    }
    while done < total_requests && in_flight > 0 {
        while server.step() {}
        for c in server.take_completed() {
            in_flight -= 1;
            done += 1;
            if matches!(c.outcome, RequestOutcome::Served { .. }) {
                served += 1;
            }
            if submitted < total_requests {
                let arrival = server.now_us() + think_us;
                server
                    .submit(pattern_frame(w, h, rng.next_u64()), priority, arrival, slo_us)
                    .expect("closed-loop resubmission is valid");
                submitted += 1;
                in_flight += 1;
            }
        }
    }
    served
}

/// The closed loop's mixed fleet twin: `clients` virtual clients drive a
/// fleet until `total_requests` have been submitted, each submission
/// classed Haar or CNN by [`backend_sequence`] in submission order (the
/// per-request backend class, independent of which client resubmits).
/// Returns the number of requests served per backend.
#[allow(clippy::too_many_arguments)]
pub fn run_closed_loop_fleet_mixed<D: Detector>(
    fleet: &mut FleetServer<D>,
    seed: u64,
    clients: usize,
    total_requests: usize,
    think_us: f64,
    w: usize,
    h: usize,
    priority: Priority,
    slo_us: f64,
    cnn_fraction: f64,
) -> [usize; 2] {
    assert!(clients > 0, "need at least one client");
    let mut rng = Lcg::new(seed);
    let backends = backend_sequence(seed, total_requests, cnn_fraction);
    let mut submitted = 0usize;
    let mut in_flight = 0usize;
    let mut served = [0usize; 2];
    let mut done = 0usize;
    while submitted < clients.min(total_requests) {
        fleet
            .submit_to_backend(
                pattern_frame(w, h, rng.next_u64()),
                priority,
                fleet.now_us(),
                slo_us,
                backends[submitted],
            )
            .expect("closed-loop fleet submission is valid");
        submitted += 1;
        in_flight += 1;
    }
    while done < total_requests && in_flight > 0 {
        while fleet.step() {}
        for c in fleet.take_completed() {
            in_flight -= 1;
            done += 1;
            if matches!(c.outcome, RequestOutcome::Served { .. }) {
                served[c.backend.index()] += 1;
            }
            if submitted < total_requests {
                let arrival = fleet.now_us() + think_us;
                fleet
                    .submit_to_backend(
                        pattern_frame(w, h, rng.next_u64()),
                        priority,
                        arrival,
                        slo_us,
                        backends[submitted],
                    )
                    .expect("closed-loop fleet resubmission is valid");
                submitted += 1;
                in_flight += 1;
            }
        }
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_cnn::{CnnDetector, CnnModel};
    use fd_detector::{DetectorConfig, FaceDetector};
    use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
    use fd_serve::{FleetConfig, ServeConfig};

    fn edge_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("edge", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn server() -> DetectionServer {
        let det = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        DetectionServer::new(&edge_cascade(), det, ServeConfig::default()).unwrap()
    }

    #[test]
    fn exponential_arrivals_are_seeded_ascending_and_rate_scaled() {
        let a = exponential_arrivals_us(7, 200, 1000.0);
        let b = exponential_arrivals_us(7, 200, 1000.0);
        assert_eq!(a, b, "same seed, same pattern");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        let c = exponential_arrivals_us(8, 200, 1000.0);
        assert_ne!(a, c, "different seed, different pattern");
        // Mean inter-arrival ~ 1000 µs at 1000 rps (loose tolerance).
        let mean = a.last().unwrap() / a.len() as f64;
        assert!((500.0..2000.0).contains(&mean), "mean {mean} µs");
    }

    #[test]
    fn open_loop_run_serves_every_request() {
        let mut s = server();
        submit_open_loop(&mut s, 11, 20, 2000.0, 64, 48, Priority::Standard, 1e9);
        s.run();
        assert_eq!(s.stats().served, 20);
        assert!(s.stats().throughput_rps() > 0.0);
    }

    fn mixed_fleet() -> FleetServer<Box<dyn Detector>> {
        let det = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        let haar = FaceDetector::try_new(&edge_cascade(), det.clone()).unwrap();
        let cnn = CnnDetector::try_new(&CnnModel::seeded(0), det).unwrap();
        FleetServer::from_detectors(
            vec![Box::new(haar) as Box<dyn Detector>, Box::new(cnn)],
            FleetConfig::default(),
        )
    }

    #[test]
    fn backend_sequence_is_seeded_and_fraction_bounded() {
        let a = backend_sequence(7, 400, 0.5);
        assert_eq!(a, backend_sequence(7, 400, 0.5), "same seed, same classes");
        assert_ne!(a, backend_sequence(8, 400, 0.5), "different seed, different classes");
        let cnn = a.iter().filter(|b| **b == Backend::Cnn).count();
        assert!((100..300).contains(&cnn), "roughly half CNN-classed, got {cnn}/400");
        assert!(backend_sequence(7, 64, 0.0).iter().all(|b| *b == Backend::Haar));
        assert!(backend_sequence(7, 64, 1.0).iter().all(|b| *b == Backend::Cnn));
        // The class stream is independent of the arrival/frame streams:
        // changing the fraction never perturbs the arrivals.
        assert_eq!(exponential_arrivals_us(7, 10, 1000.0), exponential_arrivals_us(7, 10, 1000.0));
    }

    #[test]
    fn mixed_open_loop_routes_each_class_to_its_lane() {
        let mut f = mixed_fleet();
        submit_open_loop_fleet_mixed(
            &mut f, 11, 16, 2000.0, 64, 48, Priority::Standard, 1e9, 0.5,
        );
        f.run();
        let stats = f.stats();
        let want = backend_sequence(11, 16, 0.5);
        let want_cnn = want.iter().filter(|b| **b == Backend::Cnn).count() as u64;
        assert_eq!(stats.served, 16);
        assert_eq!(stats.served_per_backend[Backend::Cnn.index()], want_cnn);
        assert_eq!(stats.served_per_backend[Backend::Haar.index()], 16 - want_cnn);
        for (c, device) in f.completed().iter().zip(f.completed_device()) {
            assert_eq!(c.backend, want[c.id.0 as usize], "class survives to completion");
            assert_eq!(f.device_backend(*device), c.backend, "served by a matching lane");
        }
    }

    #[test]
    fn mixed_closed_loop_serves_the_quota_per_backend() {
        let mut f = mixed_fleet();
        let served =
            run_closed_loop_fleet_mixed(&mut f, 3, 4, 20, 0.0, 64, 48, Priority::Standard, 1e9, 0.4);
        assert_eq!(served.iter().sum::<usize>(), 20);
        let want = backend_sequence(3, 20, 0.4);
        let want_cnn = want.iter().filter(|b| **b == Backend::Cnn).count();
        assert_eq!(served[Backend::Cnn.index()], want_cnn);
        assert_eq!(f.stats().served, 20);
    }

    #[test]
    fn closed_loop_self_limits_and_serves_the_quota() {
        let mut s = server();
        let served =
            run_closed_loop(&mut s, 3, 4, 25, 0.0, 64, 48, Priority::Standard, 1e9);
        assert_eq!(served, 25);
        assert_eq!(s.stats().served, 25);
        assert_eq!(s.stats().submitted, 25);
        assert!(s.stats().max_queue_depth <= 4, "never more than the client count");
    }
}
