//! Deterministic load generators for the serving benchmarks.
//!
//! Two standard shapes drive [`fd_serve::DetectionServer`]:
//!
//! * **open loop** — arrivals follow a Poisson process of a fixed
//!   offered rate, independent of completions (models external traffic;
//!   exposes saturation because the queue keeps growing when the offered
//!   rate exceeds capacity);
//! * **closed loop** — a fixed number of virtual clients each keep one
//!   request in flight and resubmit after an optional think time
//!   (models a worker pool; throughput self-limits at capacity).
//!
//! Both are seeded and purely arithmetic, so a given (seed, rate, n)
//! always produces the identical arrival pattern and therefore — by the
//! server's determinism — the identical serving run.

use fd_imgproc::GrayImage;
use fd_serve::{DetectionServer, FleetServer, Priority, RequestOutcome};

/// Minimal 64-bit LCG (Knuth's MMIX multiplier), good enough for
/// inter-arrival sampling and frame variation without pulling a full
/// RNG into the bench path.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    pub fn new(seed: u64) -> Self {
        Self { state: seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    /// Uniform in the open interval (0, 1).
    pub fn next_f64(&mut self) -> f64 {
        let bits = self.next_u64() >> 11; // 53 significant bits
        (bits as f64 + 0.5) / (1u64 << 53) as f64
    }
}

/// `n` Poisson arrival times (virtual µs, ascending from 0) at
/// `rate_rps` requests per second: inter-arrivals are exponential via
/// inverse-CDF sampling of the seeded [`Lcg`].
pub fn exponential_arrivals_us(seed: u64, n: usize, rate_rps: f64) -> Vec<f64> {
    assert!(rate_rps > 0.0, "offered rate must be positive");
    let mut rng = Lcg::new(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += -rng.next_f64().ln() / rate_rps * 1e6;
            t
        })
        .collect()
}

/// A small deterministic test frame: a dark/bright vertical edge pair
/// (the pattern the bench cascades fire on) at a seed-dependent
/// horizontal shift. All variants share one geometry so they batch.
pub fn pattern_frame(w: usize, h: usize, variant: u64) -> GrayImage {
    let shift = (variant % 8) as usize;
    GrayImage::from_fn(w, h, |x, y| {
        let x = x + shift;
        if (20..30).contains(&x) && (h / 4..3 * h / 4).contains(&y) {
            10.0
        } else if (30..40).contains(&x) && (h / 4..3 * h / 4).contains(&y) {
            245.0
        } else {
            120.0
        }
    })
}

/// Submit an open-loop request pattern: `n` frames of `w`x`h` arriving
/// per [`exponential_arrivals_us`], all in `priority` with a fixed
/// `slo_us`. Call before `server.run()`.
pub fn submit_open_loop(
    server: &mut DetectionServer,
    seed: u64,
    n: usize,
    rate_rps: f64,
    w: usize,
    h: usize,
    priority: Priority,
    slo_us: f64,
) {
    let mut rng = Lcg::new(seed ^ 0xF0F0);
    for arrival in exponential_arrivals_us(seed, n, rate_rps) {
        let frame = pattern_frame(w, h, rng.next_u64());
        server
            .submit(frame, priority, arrival, slo_us)
            .expect("open-loop submission is valid");
    }
}

/// The fleet twin of [`submit_open_loop`]: the identical seeded arrival
/// pattern and frame sequence, submitted through the [`FleetServer`]
/// front door (which routes each request to a device lane). A fleet of
/// one therefore receives bit-identical traffic to a single server.
#[allow(clippy::too_many_arguments)]
pub fn submit_open_loop_fleet(
    fleet: &mut FleetServer,
    seed: u64,
    n: usize,
    rate_rps: f64,
    w: usize,
    h: usize,
    priority: Priority,
    slo_us: f64,
) {
    let mut rng = Lcg::new(seed ^ 0xF0F0);
    for arrival in exponential_arrivals_us(seed, n, rate_rps) {
        let frame = pattern_frame(w, h, rng.next_u64());
        fleet
            .submit(frame, priority, arrival, slo_us)
            .expect("open-loop fleet submission is valid");
    }
}

/// Drive `clients` virtual clients through the server until
/// `total_requests` have been submitted and every outcome is in: each
/// client keeps one request in flight, resubmitting `think_us` after its
/// previous completion. Returns the number of requests that were served
/// (vs shed/rejected/failed).
#[allow(clippy::too_many_arguments)]
pub fn run_closed_loop(
    server: &mut DetectionServer,
    seed: u64,
    clients: usize,
    total_requests: usize,
    think_us: f64,
    w: usize,
    h: usize,
    priority: Priority,
    slo_us: f64,
) -> usize {
    assert!(clients > 0, "need at least one client");
    let mut rng = Lcg::new(seed);
    let mut submitted = 0usize;
    let mut in_flight = 0usize;
    let mut served = 0usize;
    let mut done = 0usize;
    while submitted < clients.min(total_requests) {
        server
            .submit(pattern_frame(w, h, rng.next_u64()), priority, server.now_us(), slo_us)
            .expect("closed-loop submission is valid");
        submitted += 1;
        in_flight += 1;
    }
    while done < total_requests && in_flight > 0 {
        while server.step() {}
        for c in server.take_completed() {
            in_flight -= 1;
            done += 1;
            if matches!(c.outcome, RequestOutcome::Served { .. }) {
                served += 1;
            }
            if submitted < total_requests {
                let arrival = server.now_us() + think_us;
                server
                    .submit(pattern_frame(w, h, rng.next_u64()), priority, arrival, slo_us)
                    .expect("closed-loop resubmission is valid");
                submitted += 1;
                in_flight += 1;
            }
        }
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_detector::DetectorConfig;
    use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
    use fd_serve::ServeConfig;

    fn edge_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("edge", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn server() -> DetectionServer {
        let det = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        DetectionServer::new(&edge_cascade(), det, ServeConfig::default()).unwrap()
    }

    #[test]
    fn exponential_arrivals_are_seeded_ascending_and_rate_scaled() {
        let a = exponential_arrivals_us(7, 200, 1000.0);
        let b = exponential_arrivals_us(7, 200, 1000.0);
        assert_eq!(a, b, "same seed, same pattern");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        let c = exponential_arrivals_us(8, 200, 1000.0);
        assert_ne!(a, c, "different seed, different pattern");
        // Mean inter-arrival ~ 1000 µs at 1000 rps (loose tolerance).
        let mean = a.last().unwrap() / a.len() as f64;
        assert!((500.0..2000.0).contains(&mean), "mean {mean} µs");
    }

    #[test]
    fn open_loop_run_serves_every_request() {
        let mut s = server();
        submit_open_loop(&mut s, 11, 20, 2000.0, 64, 48, Priority::Standard, 1e9);
        s.run();
        assert_eq!(s.stats().served, 20);
        assert!(s.stats().throughput_rps() > 0.0);
    }

    #[test]
    fn closed_loop_self_limits_and_serves_the_quota() {
        let mut s = server();
        let served =
            run_closed_loop(&mut s, 3, 4, 25, 0.0, 64, 48, Priority::Standard, 1e9);
        assert_eq!(served, 25);
        assert_eq!(s.stats().served, 25);
        assert_eq!(s.stats().submitted, 25);
        assert!(s.stats().max_queue_depth <= 4, "never more than the client count");
    }
}
