//! Fleet serving bench: open-loop traffic against the
//! [`fd_serve::FleetServer`] front door over N simulated devices.
//!
//! Three experiments share the seeded arrival pattern:
//!
//! * **scaling** — the same saturating burst against fleets of 1, 2, 4
//!   and 8 devices: geometry-affine routing plus work stealing must buy
//!   near-linear served throughput (gate: >= 3x at 4 devices vs 1);
//! * **kill-one chaos** — a 4-device fleet under moderate load loses
//!   device 0 a quarter of the way through the (no-kill) baseline run:
//!   queued and future work must migrate to the survivors, goodput must
//!   hold at >= (N-1)/N - 0.05 and the p99 of surviving requests must
//!   stay within 1.5x of the baseline;
//! * **fleet_of_1** — the identical traffic through a single
//!   `DetectionServer` and a fleet of one (inert seeded fault plan
//!   attached): byte-identical completion logs (the zero-cost gate).
//!
//! Usage: `serve_fleet [--requests N]` (default 400 requests of 64x48).
//! Writes `results/BENCH_serve_fleet.json`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::loadgen::{submit_open_loop, submit_open_loop_fleet};
use fd_bench::out::{arg_usize, render_table, write_text};
use fd_detector::DetectorConfig;
use fd_gpu::FaultPlan;
use fd_haar::Cascade;
use fd_serve::{
    CompletedRequest, DetectionServer, FleetConfig, FleetServer, Priority, RequestOutcome,
    ServeConfig, ServeStats,
};

const SEED: u64 = 42;
const FAULT_SEED: u64 = 7;
const SLO_US: f64 = 50_000.0;
/// Scaling burst: far past single-device capacity (~12k rps unbatched),
/// so every fleet size runs fully saturated and throughput measures the
/// fleet, not the offered load.
const SCALE_RATE_RPS: f64 = 1_000_000.0;
/// Chaos load: comfortably inside 3 surviving devices' capacity, so a
/// clean failover keeps goodput at 1.0 and any loss is failover debt.
const CHAOS_RATE_RPS: f64 = 20_000.0;
const SCALE_DEVICES: [usize; 4] = [1, 2, 4, 8];
const CHAOS_DEVICES: usize = 4;
/// Where in the no-kill baseline's makespan the kill lands.
const KILL_FRACTION: f64 = 0.25;

struct Cell {
    label: String,
    devices: usize,
    stats: ServeStats,
    migrations: u64,
    steals: u64,
    per_device_served: Vec<u64>,
}

fn det_config(plan: Option<FaultPlan>) -> DetectorConfig {
    DetectorConfig { min_neighbors: 1, fault_plan: plan, ..DetectorConfig::default() }
}

/// Deep queues and no shedding for the scaling burst: the cell measures
/// capacity, so censoring the saturated tail would flatter the numbers.
fn fleet_for_scaling(cascade: &Cascade, devices: usize, requests: usize) -> FleetServer {
    let serve = ServeConfig {
        queue_depth_per_class: requests,
        shed_late: false,
        ..ServeConfig::default()
    };
    FleetServer::new(
        cascade,
        det_config(None),
        devices,
        FleetConfig { serve, ..FleetConfig::default() },
    )
    .expect("fleet construction")
}

/// The chaos cells keep the serving defaults (shedding on): a request
/// the failover cannot place in time counts against goodput.
fn fleet_for_chaos(cascade: &Cascade, requests: usize) -> FleetServer {
    let serve = ServeConfig { queue_depth_per_class: requests, ..ServeConfig::default() };
    FleetServer::new(
        cascade,
        det_config(None),
        CHAOS_DEVICES,
        FleetConfig { serve, ..FleetConfig::default() },
    )
    .expect("fleet construction")
}

fn cell(label: &str, f: &FleetServer) -> Cell {
    Cell {
        label: label.to_string(),
        devices: f.devices(),
        stats: f.stats(),
        migrations: f.router_stats().migrations,
        steals: f.router_stats().steals,
        per_device_served: (0..f.devices()).map(|d| f.device_stats(d).served).collect(),
    }
}

/// FNV-1a over every observable bit of every completion, in completion
/// order (same scheme as the serve_faults bench).
fn fingerprint(completed: &[CompletedRequest]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for c in completed {
        eat(c.id.0);
        match &c.outcome {
            RequestOutcome::Served { completed_us, result, .. }
            | RequestOutcome::Degraded { completed_us, result, .. } => {
                eat(completed_us.to_bits());
                eat(result.raw.len() as u64);
                eat(result.detections.len() as u64);
                for d in &result.detections {
                    eat(d.rect.x as u64);
                    eat(d.rect.y as u64);
                    eat(d.rect.w as u64);
                    eat(d.neighbors as u64);
                }
            }
            RequestOutcome::ShedLate { shed_us } => eat(1000 ^ shed_us.to_bits()),
            RequestOutcome::RejectedQueueFull => eat(1001),
            RequestOutcome::RejectedBrownOut => eat(1002),
            RequestOutcome::RejectedFailFast => eat(1003),
            RequestOutcome::Failed { attempts, .. } => eat(1004 ^ u64::from(*attempts)),
            RequestOutcome::Expired { expired_us, .. } => eat(1005 ^ expired_us.to_bits()),
            RequestOutcome::Evicted { evicted_us } => eat(1006 ^ evicted_us.to_bits()),
        }
    }
    h
}

fn main() {
    let requests = arg_usize("--requests", 400);
    let pair = trained_cascade_pair(&TrainingBudget::tiny());
    let cascade = &pair.ours;
    let mut cells = Vec::new();

    // -- Scaling: one saturating burst, fleets of 1/2/4/8 devices. --
    for &devices in &SCALE_DEVICES {
        let mut f = fleet_for_scaling(cascade, devices, requests);
        submit_open_loop_fleet(
            &mut f, SEED, requests, SCALE_RATE_RPS, 64, 48, Priority::Standard, SLO_US,
        );
        f.run();
        assert_eq!(f.stats().served, requests as u64, "saturated burst serves everything");
        cells.push(cell("scale", &f));
    }

    // -- Chaos: 4 devices, no-kill baseline then kill-one at 25%. --
    let mut baseline = fleet_for_chaos(cascade, requests);
    submit_open_loop_fleet(
        &mut baseline, SEED, requests, CHAOS_RATE_RPS, 64, 48, Priority::Standard, SLO_US,
    );
    baseline.run();
    let kill_at_us = baseline.stats().makespan_us * KILL_FRACTION;
    cells.push(cell("chaos_baseline", &baseline));

    let mut killed = fleet_for_chaos(cascade, requests);
    submit_open_loop_fleet(
        &mut killed, SEED, requests, CHAOS_RATE_RPS, 64, 48, Priority::Standard, SLO_US,
    );
    killed.schedule_kill(0, kill_at_us);
    killed.run();
    cells.push(cell("chaos_kill1", &killed));

    // -- Fleet-of-1 identity: single server vs fleet front door. --
    let serve_cfg = ServeConfig { queue_depth_per_class: requests, ..ServeConfig::default() };
    let mut single =
        DetectionServer::new(cascade, det_config(None), serve_cfg.clone()).expect("server");
    submit_open_loop(
        &mut single, SEED, requests, CHAOS_RATE_RPS, 64, 48, Priority::Standard, SLO_US,
    );
    single.run();
    let mut one = FleetServer::new(
        cascade,
        det_config(Some(FaultPlan::seeded(FAULT_SEED))),
        1,
        FleetConfig { serve: serve_cfg, ..FleetConfig::default() },
    )
    .expect("fleet construction");
    submit_open_loop_fleet(
        &mut one, SEED, requests, CHAOS_RATE_RPS, 64, 48, Priority::Standard, SLO_US,
    );
    one.run();
    let zero_fault_identical = fingerprint(single.completed()) == fingerprint(one.completed());
    cells.push(cell("fleet_of_1", &one));

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let st = &c.stats;
            vec![
                c.label.clone(),
                c.devices.to_string(),
                st.served.to_string(),
                st.evicted.to_string(),
                c.migrations.to_string(),
                c.steals.to_string(),
                format!("{:.4}", st.goodput()),
                format!("{:.0}", st.throughput_rps()),
                format!("{:.0}", st.latency.p50_us()),
                format!("{:.0}", st.latency.p99_us()),
                format!("{:?}", c.per_device_served),
            ]
        })
        .collect();
    let table = render_table(
        &[
            "cell", "devices", "served", "evicted", "migrations", "steals", "goodput",
            "tput_rps", "p50_us", "p99_us", "served/device",
        ],
        &rows,
    );
    println!("{table}");

    let by = |label: &str, devices: usize| {
        cells
            .iter()
            .find(|c| c.label == label && c.devices == devices)
            .expect("cell exists")
    };

    // Gate 1: near-linear scaling — 4 healthy devices must serve the
    // saturating burst at >= 3x the single-device throughput.
    let tput = |c: &Cell| c.stats.throughput_rps();
    let scaling_4x = tput(by("scale", 4)) / tput(by("scale", 1));
    let scaling_8x = tput(by("scale", 8)) / tput(by("scale", 1));
    println!(
        "scaling: {:.0} rps x1, {:.0} rps x4 ({scaling_4x:.2}x), {:.0} rps x8 ({scaling_8x:.2}x)",
        tput(by("scale", 1)),
        tput(by("scale", 4)),
        tput(by("scale", 8)),
    );
    assert!(
        scaling_4x >= 3.0,
        "4 devices must serve >= 3x the single-device throughput, got {scaling_4x:.2}x"
    );

    // Gate 2: losing 1 of 4 devices costs at most that device's share
    // (plus a small failover allowance).
    let chaos = by("chaos_kill1", CHAOS_DEVICES);
    let goodput = chaos.stats.goodput();
    let goodput_floor = (CHAOS_DEVICES as f64 - 1.0) / CHAOS_DEVICES as f64 - 0.05;
    assert!(
        chaos.migrations > 0,
        "the kill must actually migrate work off the dead device"
    );
    assert!(
        goodput >= goodput_floor,
        "kill-one goodput must hold >= {goodput_floor:.2}, got {goodput:.4}"
    );

    // Gate 3: the survivors' latency holds — p99 of successful requests
    // within 1.5x of the no-kill baseline.
    let base = by("chaos_baseline", CHAOS_DEVICES);
    let p99_ratio = chaos.stats.latency.p99_us() / base.stats.latency.p99_us();
    println!(
        "kill-one: goodput {goodput:.4} (floor {goodput_floor:.2}), p99 {:.0} -> {:.0} us \
         ({p99_ratio:.2}x), {} migrated, {} stolen",
        base.stats.latency.p99_us(),
        chaos.stats.latency.p99_us(),
        chaos.migrations,
        chaos.steals,
    );
    assert!(
        p99_ratio <= 1.5,
        "surviving-request p99 must stay within 1.5x of the baseline, got {p99_ratio:.2}x"
    );

    // Gate 4: the fleet front door is free for a fleet of one.
    assert!(
        zero_fault_identical,
        "fleet-of-1 with an inert plan must be byte-identical to the single server"
    );

    let json_cells: Vec<String> = cells
        .iter()
        .map(|c| {
            let st = &c.stats;
            let per_device: Vec<String> =
                c.per_device_served.iter().map(u64::to_string).collect();
            format!(
                "    {{\"cell\": \"{}\", \"devices\": {}, \"served\": {}, \"evicted\": {}, \
                 \"migrations\": {}, \"steals\": {}, \"goodput\": {:.5}, \
                 \"throughput_rps\": {:.3}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"served_per_device\": [{}]}}",
                c.label,
                c.devices,
                st.served,
                st.evicted,
                c.migrations,
                c.steals,
                st.goodput(),
                st.throughput_rps(),
                st.latency.p50_us(),
                st.latency.p99_us(),
                per_device.join(", "),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_fleet\",\n  \"requests\": {requests},\n  \
         \"slo_us\": {SLO_US},\n  \"scale_rate_rps\": {SCALE_RATE_RPS},\n  \
         \"chaos_rate_rps\": {CHAOS_RATE_RPS},\n  \"kill_at_us\": {kill_at_us:.3},\n  \
         \"scaling_4x\": {scaling_4x:.4},\n  \"scaling_8x\": {scaling_8x:.4},\n  \
         \"kill_one_goodput\": {goodput:.5},\n  \"kill_one_p99_ratio\": {p99_ratio:.4},\n  \
         \"zero_fault_identical\": {zero_fault_identical},\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        json_cells.join(",\n")
    );
    let path = write_text("BENCH_serve_fleet.json", &json).expect("write results");
    println!("wrote {}", path.display());
}
