//! Host-simulator throughput: the functional phase at 1 thread vs all
//! host cores, over the full detection pipeline on a synthetic video
//! frame. Writes `results/BENCH_host_sim.json` — the repo's perf
//! trajectory data point for the parallel functional phase.
//!
//! Usage: `host_sim [--frames N] [--width W] [--height H]`.

use std::time::Instant;

use fd_bench::out::{arg_usize, write_text};
use fd_detector::{DetectorConfig, FaceDetector};
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_imgproc::GrayImage;

/// A multi-stage edge cascade; synthetic but deep enough that the
/// cascade kernel dominates the way a trained one does.
fn bench_cascade(stages: usize) -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut c = Cascade::new("bench-edge", 24);
    for _ in 0..stages {
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
    }
    c
}

/// A textured frame so the cascade does non-trivial depth work.
fn bench_frame(w: usize, h: usize) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let stripes = if (x / 12) % 2 == 0 { 40.0 } else { 210.0 };
        let hash = ((x * 31 + y * 17) % 97) as f32;
        0.7 * stripes + hash
    })
}

struct Measurement {
    threads: usize,
    wall_s: f64,
    fps: f64,
    blocks_per_s: f64,
}

/// Best of three repetitions — host scheduling noise easily exceeds the
/// effect under test on small machines.
fn run(threads: usize, frame: &GrayImage, cascade: &Cascade, frames: usize) -> Measurement {
    let mut det = FaceDetector::new(
        cascade,
        DetectorConfig { host_threads: Some(threads), ..DetectorConfig::default() },
    );
    // Warm-up frame: builds the buffer pool, pages in everything.
    let _ = det.detect(frame).expect("detect");
    let mut best_wall = f64::INFINITY;
    let mut blocks = 0u64;
    for _ in 0..3 {
        det.reset_profiler();
        let t = Instant::now();
        for _ in 0..frames {
            let _ = det.detect(frame).expect("detect");
        }
        let wall_s = t.elapsed().as_secs_f64();
        if wall_s < best_wall {
            best_wall = wall_s;
            blocks = det.profiler().kernels().values().map(|k| k.blocks).sum();
        }
    }
    Measurement {
        threads,
        wall_s: best_wall,
        fps: frames as f64 / best_wall,
        blocks_per_s: blocks as f64 / best_wall,
    }
}

fn main() {
    let frames = arg_usize("--frames", 20).max(1);
    let width = arg_usize("--width", 320);
    let height = arg_usize("--height", 240);
    if width < 24 || height < 24 {
        eprintln!("error: --width/--height must be at least the 24-px detection window");
        std::process::exit(2);
    }
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let cascade = bench_cascade(8);
    let frame = bench_frame(width, height);

    let seq = run(1, &frame, &cascade, frames);
    let par = run(host_cores, &frame, &cascade, frames);
    let speedup = par.fps / seq.fps;

    let entry = |m: &Measurement| {
        format!(
            "    {{ \"threads\": {}, \"wall_s\": {:.4}, \"frames_per_s\": {:.2}, \"blocks_per_s\": {:.0} }}",
            m.threads, m.wall_s, m.fps, m.blocks_per_s
        )
    };
    let note = if host_cores == 1 {
        "1-core host: both runs are sequential; speedup is measurement noise"
    } else {
        "speedup = all-core frames_per_s / 1-thread frames_per_s"
    };
    let json = format!(
        "{{\n  \"bench\": \"host_sim_functional_phase\",\n  \"host_cores\": {host_cores},\n  \
         \"frame\": [{width}, {height}],\n  \"frames\": {frames},\n  \"runs\": [\n{},\n{}\n  ],\n  \
         \"speedup\": {speedup:.3},\n  \"note\": \"{note}\"\n}}\n",
        entry(&seq),
        entry(&par),
    );
    print!("{json}");
    let path = write_text("BENCH_host_sim.json", &json).unwrap();
    println!("wrote {}", path.display());

    if host_cores >= 4 && speedup < 1.5 {
        eprintln!(
            "warning: {host_cores}-core host reached only {speedup:.2}x — expected >= 1.5x"
        );
    }
}
