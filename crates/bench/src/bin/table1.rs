//! Table I — possible Haar-like feature combinations in a 24x24 window.
//!
//! Paper values: edge 55 660, line 31 878, center-surround 3 969,
//! diagonal 12 100 (total 103 607). The enumeration rule reproducing them
//! is `EnumerationRule::Icpp2012`; the textbook enumeration is printed
//! alongside for reference.

use fd_bench::out::{render_table, write_csv};
use fd_haar::{table1_counts, EnumerationRule};

fn main() {
    let paper = [55_660usize, 31_878, 3_969, 12_100];
    let icpp = table1_counts(24, EnumerationRule::Icpp2012);
    let exhaustive = table1_counts(24, EnumerationRule::Exhaustive);
    let names = ["Edge", "Line", "Center-surround", "Diagonal"];

    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                n.to_string(),
                paper[i].to_string(),
                icpp[i].to_string(),
                exhaustive[i].to_string(),
                if icpp[i] == paper[i] { "exact".into() } else { "MISMATCH".into() },
            ]
        })
        .chain(std::iter::once(vec![
            "TOTAL".into(),
            paper.iter().sum::<usize>().to_string(),
            icpp.iter().sum::<usize>().to_string(),
            exhaustive.iter().sum::<usize>().to_string(),
            String::new(),
        ]))
        .collect();

    println!("Table I — Haar-like feature combinations (24x24 window)\n");
    println!(
        "{}",
        render_table(&["feature", "paper", "reproduced", "exhaustive-rule", "status"], &rows)
    );
    let path = write_csv(
        "table1.csv",
        &["feature", "paper", "reproduced", "exhaustive_rule"],
        &rows.iter().map(|r| r[..4].to_vec()).collect::<Vec<_>>(),
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    assert_eq!(icpp, paper, "Table I must reproduce exactly");
}
