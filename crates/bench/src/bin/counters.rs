//! §VI-A text figures, gathered from the simulated device's profiler:
//!
//! * branch efficiency of the cascade-evaluation kernel (paper: 98.9 %
//!   non-divergent);
//! * DRAM read throughput of the cascade kernels across scales (paper:
//!   9.57-532 MB/s — low, because the integral image is staged into
//!   shared memory once and reused);
//! * share of frame time in the integral-image kernels (paper: ~20 %);
//! * constant-memory footprint of the compressed cascades;
//! * end-to-end fps with hardware H.264 decode overlapped (paper: ~70).
//!
//! Usage: `counters [--frames N]`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::harness::run_counters;
use fd_bench::out::{arg_usize, write_text};
use fd_video::movie_trailers;

fn main() {
    let frames = arg_usize("--frames", 6);
    let pair = trained_cascade_pair(&TrainingBudget::default());
    let info = &movie_trailers()[1]; // 50/50

    let mut report = String::new();
    for (name, cascade) in [("ours", &pair.ours), ("opencv-like", &pair.opencv_like)] {
        let c = run_counters(cascade, info, frames);
        report.push_str(&format!(
            "=== cascade: {name} ({} stages, {} stumps) ===\n\
             branch efficiency (cascade_eval): {:.2} %   [paper: 98.9 %]\n\
             branch efficiency (all kernels):  {:.2} %\n\
             cascade-eval DRAM read throughput: {:.2} .. {:.2} MB/s   [paper: 9.57 .. 532 MB/s]\n\
             integral-image kernels' share of device time: {:.1} %   [paper: ~20 %]\n\
             compressed cascade in constant memory: {} bytes ({:.1} % of 64 KiB)\n\
             pipelined throughput with H.264 decode overlapped: {:.0} fps   [paper: ~70 fps]\n\n",
            cascade.depth(),
            cascade.total_stumps(),
            100.0 * c.branch_efficiency_cascade,
            100.0 * c.branch_efficiency_overall,
            c.cascade_dram_mbps.0,
            c.cascade_dram_mbps.1,
            100.0 * c.integral_time_share,
            c.const_bytes,
            100.0 * c.const_bytes as f64 / (64.0 * 1024.0),
            c.fps,
        ));
    }
    print!("{report}");
    let path = write_text("counters.txt", &report).unwrap();
    println!("wrote {}", path.display());
}
