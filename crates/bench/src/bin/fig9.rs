//! Fig. 9 — TPR/FP curves for the OpenCV-like feature set and our
//! cascade, at the 15-, 20- and 25-stage operating points.
//!
//! Methodology per §VI-B: detections grouped with `S_eyes`, assigned to
//! ground truth with the Hungarian algorithm, curve produced by sweeping
//! a threshold over the detection score. The corpus is the synthetic
//! mug-shot set (stand-in for SCFace + 3 000 backgrounds; see DESIGN.md).
//!
//! Paper shape to reproduce: discrimination improves with stage count for
//! both cascades, and ours generally dominates the OpenCV-like cascade
//! despite having fewer weak classifiers.
//!
//! The paper's 15/20/25 stage cuts are mapped proportionally onto each
//! trained cascade's actual depth (synthetic negatives support fewer
//! stages than the authors' photo corpus — documented in EXPERIMENTS.md).
//!
//! Usage: `fig9 [--faces N] [--backgrounds M] [--side S]`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::harness::equivalent_stage_cut;
use fd_bench::out::{arg_usize, write_csv};
use fd_detector::{DetectorConfig, FaceDetector};
use fd_eval::roc::{match_frame, roc_curve, FrameEval};
use fd_eval::scface::MugshotDataset;
use fd_haar::Cascade;

fn evaluate(cascade: &Cascade, ds: &MugshotDataset) -> Vec<FrameEval> {
    let mut det = FaceDetector::new(
        cascade,
        DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() },
    );
    ds.images
        .iter()
        .map(|img| {
            let r = det.detect(&img.image).expect("detect");
            let truths: Vec<_> = img.truth.iter().cloned().collect();
            match_frame(&r.detections, &truths)
        })
        .collect()
}

fn main() {
    let n_faces = arg_usize("--faces", 120);
    let n_bg = arg_usize("--backgrounds", 200);
    let side = arg_usize("--side", 96);
    let pair = trained_cascade_pair(&TrainingBudget::default());
    let ds = MugshotDataset::generate(n_faces, n_bg, side, 0x5CFA);
    println!(
        "[fig9] {} mug shots + {} backgrounds ({}x{}); cascades: ours {} stages, cv {} stages",
        n_faces,
        n_bg,
        side,
        side,
        pair.ours.depth(),
        pair.opencv_like.depth()
    );

    let mut csv = Vec::new();
    for paper_stages in [15usize, 20, 25] {
        println!("\n=== {paper_stages}-stage operating point ===");
        for (name, cascade) in [("ours", &pair.ours), ("opencv-like", &pair.opencv_like)] {
            let cut = equivalent_stage_cut(cascade, paper_stages);
            let truncated = cascade.truncated(cut);
            let evals = evaluate(&truncated, &ds);
            let curve = roc_curve(&evals, 12);
            // Report the loosest point (max TPR) and a mid point.
            let last = curve.last().unwrap();
            println!(
                "  {name:<12} ({cut:>2} stages, {:>4} stumps): TPR {:.3} at {} FP (loosest)",
                truncated.total_stumps(),
                last.tpr,
                last.fp
            );
            for p in &curve {
                csv.push(vec![
                    paper_stages.to_string(),
                    name.to_string(),
                    cut.to_string(),
                    format!("{:.4}", p.threshold),
                    p.fp.to_string(),
                    format!("{:.6}", p.tpr),
                ]);
            }
        }
    }
    let path = write_csv(
        "fig9.csv",
        &["paper_stages", "cascade", "actual_stages", "threshold", "fp", "tpr"],
        &csv,
    )
    .unwrap();
    println!("\nwrote {}", path.display());
}
