//! Table II — average face-detection time per frame (milliseconds) for
//! the ten 1080p trailers, under {our GentleBoost cascade, OpenCV-like
//! AdaBoost cascade} x {concurrent, serial} kernel execution.
//!
//! Shape goals (paper §VI-A): concurrent ~ 2x serial for the same
//! cascade; the compact cascade ~ 2.5x the large one; combined ~ 5x.
//! Absolute milliseconds come from the simulated GTX470 and are not
//! expected to match the authors' testbed exactly.
//!
//! Usage: `table2 [--frames N] [--trailers K]` (defaults 6 frames, all 10
//! trailers; the paper averages over whole trailers, we average over N
//! frames per title).

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::harness::{run_table2, table2_summary};
use fd_bench::out::{arg_usize, render_table, write_csv};
use fd_video::movie_trailers;

fn main() {
    let frames = arg_usize("--frames", 6);
    let n_trailers = arg_usize("--trailers", 10).clamp(1, 10);
    let pair = trained_cascade_pair(&TrainingBudget::default());
    println!(
        "cascades: ours = {} stages / {} stumps, opencv-like = {} stages / {} stumps\n",
        pair.ours.depth(),
        pair.ours.total_stumps(),
        pair.opencv_like.depth(),
        pair.opencv_like.total_stumps()
    );

    let trailers = &movie_trailers()[..n_trailers];
    let rows = run_table2(&pair, trailers, frames);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.title.clone(),
                format!("{:.2}", r.ours_concurrent),
                format!("{:.2}", r.ours_serial),
                format!("{:.2}", r.cv_concurrent),
                format!("{:.2}", r.cv_serial),
                format!("{:.2}x", r.combined_speedup()),
                format!("{:.0}", r.fps_ours_concurrent),
            ]
        })
        .collect();
    println!();
    println!("Table II — average face detection time per frame (ms), {frames} frames/trailer\n");
    println!(
        "{}",
        render_table(
            &["movie trailer", "ours conc", "ours serial", "cv conc", "cv serial", "combined", "fps"],
            &table
        )
    );

    let (conc, casc, comb) = table2_summary(&rows);
    println!("geomean speedups: concurrency {conc:.2}x (paper ~2x), cascade swap {casc:.2}x (paper ~2.5x), combined {comb:.2}x (paper ~5x)");

    let path = write_csv(
        "table2.csv",
        &[
            "trailer",
            "ours_concurrent_ms",
            "ours_serial_ms",
            "cv_concurrent_ms",
            "cv_serial_ms",
            "combined_speedup",
            "fps_ours_concurrent",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.title.clone(),
                    format!("{:.4}", r.ours_concurrent),
                    format!("{:.4}", r.ours_serial),
                    format!("{:.4}", r.cv_concurrent),
                    format!("{:.4}", r.cv_serial),
                    format!("{:.4}", r.combined_speedup()),
                    format!("{:.2}", r.fps_ours_concurrent),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
