//! Fig. 5 — face-detection elapsed time per frame for the "50/50"
//! trailer, for both cascades under serial and concurrent kernel
//! execution. The paper's plot shows (a) strong per-frame variability
//! driven by the number of faces in each scene and (b) the serial OpenCV
//! configuration repeatedly violating the 40 ms display deadline.
//!
//! Usage: `fig5 [--frames N]` (default 96). Writes
//! `results/fig5_series.csv` with one row per frame.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::harness::detect_series;
use fd_bench::out::{arg_usize, write_csv};
use fd_gpu::ExecMode;
use fd_video::movie_trailers;

fn main() {
    let frames = arg_usize("--frames", 96);
    let pair = trained_cascade_pair(&TrainingBudget::default());
    let info = movie_trailers().into_iter().find(|t| t.title == "50/50").unwrap();
    println!("[fig5] {} frames of '{}' x 4 configurations", frames, info.title);

    let (ours_c, _) = detect_series(&pair.ours, &info, ExecMode::Concurrent, frames);
    let (ours_s, _) = detect_series(&pair.ours, &info, ExecMode::Serial, frames);
    let (cv_c, _) = detect_series(&pair.opencv_like, &info, ExecMode::Concurrent, frames);
    let (cv_s, _) = detect_series(&pair.opencv_like, &info, ExecMode::Serial, frames);

    let rows: Vec<Vec<String>> = (0..frames)
        .map(|i| {
            vec![
                i.to_string(),
                format!("{:.4}", ours_c[i]),
                format!("{:.4}", ours_s[i]),
                format!("{:.4}", cv_c[i]),
                format!("{:.4}", cv_s[i]),
            ]
        })
        .collect();
    let path = write_csv(
        "fig5_series.csv",
        &["frame", "ours_concurrent_ms", "ours_serial_ms", "cv_concurrent_ms", "cv_serial_ms"],
        &rows,
    )
    .expect("write csv");

    let stats = |v: &[f64], name: &str| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let over = v.iter().filter(|&&x| x > 40.0).count();
        println!(
            "{name:<16} mean {mean:6.2} ms  min {min:6.2}  max {max:6.2}  >40ms deadline: {over}/{} frames",
            v.len()
        );
        (mean, max)
    };
    println!();
    stats(&ours_c, "ours/concurrent");
    stats(&ours_s, "ours/serial");
    stats(&cv_c, "cv/concurrent");
    stats(&cv_s, "cv/serial");

    // Variability check: the paper's series fluctuates with scene content.
    let spread = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        max / mean
    };
    println!(
        "\nper-frame variability (max/mean): ours/concurrent {:.2}, cv/serial {:.2}",
        spread(&ours_c),
        spread(&cv_s)
    );
    println!("wrote {}", path.display());
}
