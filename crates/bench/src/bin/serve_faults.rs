//! Fault-tolerant serving bench: open-loop traffic against the
//! [`fd_serve::DetectionServer`] with the retry/health stack on, under
//! seeded device fault plans.
//!
//! Four cells share one arrival pattern:
//!
//! * `plain`      — fault tolerance off, no fault plan (the baseline);
//! * `ft_zero`    — fault tolerance on, *inert* seeded plan: must be
//!   byte-identical to `plain` (the zero-cost gate);
//! * `ft_chaos`   — fault tolerance on, transient launch faults tuned so
//!   ~2% of requests suffer one: goodput must stay >= 0.9 and the p99 of
//!   successful requests within 1.5x of `plain`;
//! * `chaos_off`  — the same chaos plan with fault tolerance off, as the
//!   ablation row (whole batches die with their poisoned member);
//! * `ft_surge`   — 10x the chaos fault pressure, report-only: shows the
//!   isolation/bisection and breaker paths working in the artifact.
//!
//! Usage: `serve_faults [--requests N]` (default 300 requests of 64x48).
//! Writes `results/BENCH_serve_faults.json`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::loadgen::{pattern_frame, submit_open_loop};
use fd_bench::out::{arg_usize, render_table, write_text};
use fd_detector::{DetectorConfig, FaceDetector, RecoveryPolicy};
use fd_gpu::FaultPlan;
use fd_haar::Cascade;
use fd_serve::{
    BatchPolicy, DetectionServer, HealthPolicy, Priority, RequestOutcome, RetryPolicy,
    ServeConfig, ServeStats,
};

const SEED: u64 = 42;
const FAULT_SEED: u64 = 7;
const SLO_US: f64 = 50_000.0;
const RATE_RPS: f64 = 2000.0;
/// Target fraction of *requests* that suffer a transient launch fault.
const REQUEST_FAULT_RATE: f64 = 0.02;

struct Cell {
    label: String,
    stats: ServeStats,
    fingerprint: u64,
}

/// Serving retry policy for the chaos cells: the stream-oriented default
/// backoff (2 ms, sized for video frame periods) would dominate request
/// latency here, so the serving bench backs off in the 250 µs range —
/// injected transients clear by the next attempt, and deadline-aware
/// retries should not burn SLO budget sleeping.
fn serve_retry() -> RetryPolicy {
    RetryPolicy {
        recovery: RecoveryPolicy { backoff_base_ms: 0.25, ..RetryPolicy::default().recovery },
        ..RetryPolicy::default()
    }
}

fn server(cascade: &Cascade, plan: Option<FaultPlan>, tolerant: bool) -> DetectionServer {
    let det = DetectorConfig {
        min_neighbors: 1,
        fault_plan: plan,
        ..DetectorConfig::default()
    };
    let cfg = ServeConfig {
        queue_depth_per_class: 4096,
        batch: BatchPolicy::default(),
        retry: if tolerant { serve_retry() } else { RetryPolicy::disabled() },
        health: if tolerant { HealthPolicy::default() } else { HealthPolicy::disabled() },
        shed_late: false,
        ..ServeConfig::default()
    };
    DetectionServer::new(cascade, det, cfg).expect("detector construction")
}

/// Launch attempts one request costs on the device, measured against an
/// inert plan — calibrates the per-launch rate below.
fn launches_per_request(cascade: &Cascade) -> u64 {
    let det = DetectorConfig {
        min_neighbors: 1,
        fault_plan: Some(FaultPlan::seeded(0)),
        ..DetectorConfig::default()
    };
    let mut d = FaceDetector::new(cascade, det);
    d.detect(&pattern_frame(64, 48, 0)).expect("calibration detect");
    d.fault_stats().launch_attempts
}

/// FNV-1a over every observable bit of every completion, in completion
/// order: ids, outcome kinds, latency bits, raw windows and groups.
fn fingerprint(server: &DetectionServer) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for c in server.completed() {
        eat(c.id.0);
        match &c.outcome {
            RequestOutcome::Served { completed_us, result, .. }
            | RequestOutcome::Degraded { completed_us, result, .. } => {
                eat(completed_us.to_bits());
                eat(result.raw.len() as u64);
                eat(result.detections.len() as u64);
                for d in &result.detections {
                    eat(d.rect.x as u64);
                    eat(d.rect.y as u64);
                    eat(d.rect.w as u64);
                    eat(d.neighbors as u64);
                }
            }
            RequestOutcome::ShedLate { shed_us } => eat(1000 ^ shed_us.to_bits()),
            RequestOutcome::RejectedQueueFull => eat(1001),
            RequestOutcome::RejectedBrownOut => eat(1002),
            RequestOutcome::RejectedFailFast => eat(1003),
            RequestOutcome::Failed { attempts, .. } => eat(1004 ^ u64::from(*attempts)),
            RequestOutcome::Expired { expired_us, .. } => eat(1005 ^ expired_us.to_bits()),
            RequestOutcome::Evicted { evicted_us } => eat(1006 ^ evicted_us.to_bits()),
        }
    }
    h
}

fn run_cell(
    label: &str,
    cascade: &Cascade,
    plan: Option<FaultPlan>,
    tolerant: bool,
    requests: usize,
) -> Cell {
    let mut s = server(cascade, plan, tolerant);
    submit_open_loop(&mut s, SEED, requests, RATE_RPS, 64, 48, Priority::Standard, SLO_US);
    s.run();
    let fingerprint = fingerprint(&s);
    Cell { label: label.to_string(), stats: s.stats().clone(), fingerprint }
}

fn main() {
    let requests = arg_usize("--requests", 300);
    let pair = trained_cascade_pair(&TrainingBudget::tiny());
    let cascade = &pair.ours;

    // Fault plans draw per *launch attempt*; one request costs many
    // launches. Calibrate so REQUEST_FAULT_RATE of requests fault:
    // 1 - (1 - r)^L = R  =>  r = 1 - (1 - R)^(1/L).
    let launches = launches_per_request(cascade);
    let per_launch = 1.0 - (1.0 - REQUEST_FAULT_RATE).powf(1.0 / launches as f64);
    let chaos = FaultPlan::seeded(FAULT_SEED).with_transient_launch_failures(per_launch);
    let surge = FaultPlan::seeded(FAULT_SEED)
        .with_transient_launch_failures(per_launch * 10.0)
        .with_launch_timeouts(per_launch * 2.0);
    println!(
        "calibration: {launches} launches/request -> per-launch transient rate {per_launch:.6}"
    );

    let cells = [
        run_cell("plain", cascade, None, false, requests),
        run_cell("ft_zero", cascade, Some(FaultPlan::seeded(FAULT_SEED)), true, requests),
        run_cell("ft_chaos", cascade, Some(chaos.clone()), true, requests),
        run_cell("chaos_off", cascade, Some(chaos), false, requests),
        run_cell("ft_surge", cascade, Some(surge), true, requests),
    ];

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let st = &c.stats;
            vec![
                c.label.clone(),
                st.served.to_string(),
                st.degraded_completions.to_string(),
                st.failed.to_string(),
                st.retries_issued.to_string(),
                st.poisoned_requests.to_string(),
                st.batches_bisected.to_string(),
                format!("{:.4}", st.goodput()),
                format!("{:.0}", st.latency.p50_us()),
                format!("{:.0}", st.latency.p99_us()),
            ]
        })
        .collect();
    let table = render_table(
        &[
            "cell", "served", "degraded", "failed", "retries", "poisoned", "bisects",
            "goodput", "p50_us", "p99_us",
        ],
        &rows,
    );
    println!("{table}");

    let by = |label: &str| cells.iter().find(|c| c.label == label).expect("cell exists");
    let (plain, ft_zero, ft_chaos, chaos_off) =
        (by("plain"), by("ft_zero"), by("ft_chaos"), by("chaos_off"));

    // Gate 1: the fault-tolerance stack is free when nothing faults.
    let zero_fault_identical = ft_zero.fingerprint == plain.fingerprint;
    assert!(
        zero_fault_identical,
        "fault tolerance + inert plan must be byte-identical to the plain server"
    );

    // Gate 2: under ~2% request-level transients, goodput holds.
    let goodput = ft_chaos.stats.goodput();
    assert!(
        ft_chaos.stats.retries_issued > 0,
        "the chaos plan must actually exercise the retry path"
    );
    assert!(goodput >= 0.9, "chaos goodput must stay >= 0.9, got {goodput:.4}");

    // Gate 3: recovery does not wreck the latency of everyone else —
    // p99 of successful completions within 1.5x of the fault-free run.
    let p99_ratio = ft_chaos.stats.latency.p99_us() / plain.stats.latency.p99_us();
    println!(
        "p99 {:.0} -> {:.0} us ({p99_ratio:.2}x), goodput {goodput:.4}, ablation goodput {:.4}",
        plain.stats.latency.p99_us(),
        ft_chaos.stats.latency.p99_us(),
        chaos_off.stats.goodput()
    );
    assert!(
        p99_ratio <= 1.5,
        "successful-request p99 must stay within 1.5x of fault-free, got {p99_ratio:.2}x"
    );

    let json_cells: Vec<String> = cells
        .iter()
        .map(|c| {
            let st = &c.stats;
            format!(
                "    {{\"cell\": \"{}\", \"served\": {}, \"degraded\": {}, \"failed\": {}, \
                 \"expired\": {}, \"retries\": {}, \"poisoned\": {}, \"bisects\": {}, \
                 \"breaker_trips\": {}, \"goodput\": {:.5}, \"p50_us\": {:.3}, \
                 \"p99_us\": {:.3}}}",
                c.label,
                st.served,
                st.degraded_completions,
                st.failed,
                st.expired,
                st.retries_issued,
                st.poisoned_requests,
                st.batches_bisected,
                st.breaker_trips,
                st.goodput(),
                st.latency.p50_us(),
                st.latency.p99_us(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_faults\",\n  \"requests\": {requests},\n  \
         \"rate_rps\": {RATE_RPS},\n  \"slo_us\": {SLO_US},\n  \
         \"request_fault_rate\": {REQUEST_FAULT_RATE},\n  \
         \"launches_per_request\": {launches},\n  \
         \"per_launch_rate\": {per_launch:.8},\n  \
         \"zero_fault_identical\": {zero_fault_identical},\n  \
         \"chaos_goodput\": {goodput:.5},\n  \"p99_ratio\": {p99_ratio:.4},\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        json_cells.join(",\n")
    );
    let path = write_text("BENCH_serve_faults.json", &json).expect("write results");
    println!("wrote {}", path.display());
}
