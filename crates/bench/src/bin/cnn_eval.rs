//! Accuracy/latency front: the Haar and CNN backends over the synthetic
//! mug-shot set, through the shared ROC + Hungarian machinery.
//!
//! Both detectors run behind `fd_detector::Detector` over the identical
//! corpus ([`fd_eval::evaluate_backend`]), so the comparison isolates
//! the backend: same frames, same grouping, same `S_eyes` matching, same
//! threshold sweep. The CNN trades virtual device time for
//! discrimination — the second point on the serving layer's
//! accuracy/latency front (DESIGN.md "Multi-backend detection").
//!
//! Gates:
//!
//! * the CNN cascade must reject >= 90% of windows before its final
//!   stage (the early-exit economy that makes a dense final template
//!   affordable);
//! * the CNN's loosest-threshold TPR must reach >= 0.9 on mug shots;
//! * the CNN must actually pay for that accuracy: mean virtual detect
//!   time strictly above the Haar backend's (otherwise the "front" has
//!   collapsed and routing by class is pointless).
//!
//! The default corpus is background-dominated (1:4), mirroring the
//! paper's eval set (an SCFace subset plus 3 000 background images) —
//! the rejection gate measures the cascade against the traffic shape it
//! exists for.
//!
//! Usage: `cnn_eval [--faces N] [--backgrounds M] [--side S]`.
//! Writes `results/BENCH_cnn_eval.json`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::out::{arg_usize, render_table, write_text};
use fd_cnn::{CnnDetector, CnnModel};
use fd_detector::{Detector, DetectorConfig, FaceDetector};
use fd_eval::roc::{roc_curve, BackendEval};
use fd_eval::scface::MugshotDataset;
use fd_eval::{evaluate_backend, RocPoint};

const MODEL_SEED: u64 = 0;
const CORPUS_SEED: u64 = 0x5CFA;
const MIN_PRE_FINAL_REJECTION: f64 = 0.90;
const MIN_CNN_TPR: f64 = 0.90;

struct Row {
    backend: &'static str,
    eval: BackendEval,
    curve: Vec<RocPoint>,
}

fn measure(name: &'static str, det: &mut dyn Detector, ds: &MugshotDataset) -> Row {
    let eval = evaluate_backend(det, ds).expect("backend evaluation");
    let curve = roc_curve(&eval.evals, 12);
    Row { backend: name, eval, curve }
}

fn main() {
    let n_faces = arg_usize("--faces", 40);
    let n_bg = arg_usize("--backgrounds", 160);
    let side = arg_usize("--side", 96);
    let ds = MugshotDataset::generate(n_faces, n_bg, side, CORPUS_SEED);
    let cfg = DetectorConfig {
        min_neighbors: 1,
        collect_rejection_stats: true,
        ..DetectorConfig::default()
    };
    println!(
        "[cnn_eval] {n_faces} mug shots + {n_bg} backgrounds ({side}x{side}), both backends"
    );

    let pair = trained_cascade_pair(&TrainingBudget::tiny());
    let mut haar = FaceDetector::try_new(&pair.ours, cfg.clone()).expect("haar detector");
    let mut cnn =
        CnnDetector::try_new(&CnnModel::seeded(MODEL_SEED), cfg).expect("cnn detector");
    let rows = [measure("haar", &mut haar, &ds), measure("cnn", &mut cnn, &ds)];

    let loosest = |r: &Row| *r.curve.last().expect("non-degenerate curve");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let p = loosest(r);
            vec![
                r.backend.to_string(),
                format!("{:.3}", p.tpr),
                p.fp.to_string(),
                format!("{:.3}", r.eval.mean_detect_ms()),
                format!("{:.1}", r.eval.total_detect_ms),
                format!("{:.4}", r.eval.pre_final_rejection()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["backend", "tpr", "fp", "mean_ms", "total_ms", "pre_final_rej"],
            &table_rows,
        )
    );

    let (haar_row, cnn_row) = (&rows[0], &rows[1]);
    let rejection = cnn_row.eval.pre_final_rejection();
    assert!(
        rejection >= MIN_PRE_FINAL_REJECTION,
        "CNN cascade must reject >= {MIN_PRE_FINAL_REJECTION} of windows before the final \
         stage, got {rejection:.4}"
    );
    let cnn_tpr = loosest(cnn_row).tpr;
    assert!(
        cnn_tpr >= MIN_CNN_TPR,
        "CNN loosest-threshold TPR must reach >= {MIN_CNN_TPR}, got {cnn_tpr:.3}"
    );
    let (haar_ms, cnn_ms) = (haar_row.eval.mean_detect_ms(), cnn_row.eval.mean_detect_ms());
    assert!(
        cnn_ms > haar_ms,
        "the front must be a trade: CNN {cnn_ms:.3} ms/frame vs Haar {haar_ms:.3}"
    );
    println!(
        "front: haar tpr {:.3} at {haar_ms:.3} ms/frame, cnn tpr {cnn_tpr:.3} at \
         {cnn_ms:.3} ms/frame ({:.2}x), cnn pre-final rejection {rejection:.4}",
        loosest(haar_row).tpr,
        cnn_ms / haar_ms,
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let points: Vec<String> = r
                .curve
                .iter()
                .map(|p| {
                    format!(
                        "      {{\"threshold\": {:.5}, \"tp\": {}, \"fp\": {}, \"tpr\": {:.5}}}",
                        p.threshold, p.tp, p.fp, p.tpr
                    )
                })
                .collect();
            format!(
                "    {{\"backend\": \"{}\", \"tpr_loosest\": {:.5}, \"fp_loosest\": {}, \
                 \"mean_detect_ms\": {:.5}, \"total_detect_ms\": {:.3}, \
                 \"pre_final_rejection\": {:.5}, \"roc\": [\n{}\n    ]}}",
                r.backend,
                loosest(r).tpr,
                loosest(r).fp,
                r.eval.mean_detect_ms(),
                r.eval.total_detect_ms,
                r.eval.pre_final_rejection(),
                points.join(",\n"),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cnn_eval\",\n  \"faces\": {n_faces},\n  \
         \"backgrounds\": {n_bg},\n  \"side\": {side},\n  \
         \"cnn_latency_ratio\": {:.4},\n  \"backends\": [\n{}\n  ]\n}}\n",
        cnn_ms / haar_ms,
        json_rows.join(",\n")
    );
    let path = write_text("BENCH_cnn_eval.json", &json).expect("write results");
    println!("wrote {}", path.display());
}
