//! Mixed-backend serving bench: one fleet, two detector engines, the
//! backend as a per-request class.
//!
//! Three experiments:
//!
//! * **haar_only** — the Haar-classed subset of the mixed arrival
//!   pattern against a fleet of 2 Haar lanes: the baseline the mixed
//!   fleet's Haar tier is held to;
//! * **mixed** — the full pattern (50% CNN-classed per
//!   [`fd_bench::loadgen::backend_sequence`]) against a 4-lane fleet of
//!   2 Haar + 2 CNN devices (`Vec<Box<dyn Detector>>`). Backend is a
//!   hard routing bound, so the gates check isolation both ways: the
//!   Haar tier's throughput must stay >= 0.9x the haar_only baseline
//!   (CNN traffic cannot poach Haar lanes), and the CNN tier's p99 must
//!   stay within its budget (the slower engine still meets its own
//!   class's latency bar);
//! * **fleet_of_1** — identical Haar traffic through the pre-trait
//!   entry points (`DetectionServer::new` / `FleetServer::new`): the
//!   completion logs must be byte-identical, proving the `Detector`
//!   trait and the backend class added zero cost to the existing path.
//!
//! Usage: `serve_mixed [--requests N]` (default 240 requests of 64x48).
//! Writes `results/BENCH_serve_mixed.json`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::loadgen::{
    backend_sequence, exponential_arrivals_us, pattern_frame, submit_open_loop,
    submit_open_loop_fleet, submit_open_loop_fleet_mixed, Lcg,
};
use fd_bench::out::{arg_usize, render_table, write_text};
use fd_cnn::{CnnDetector, CnnModel};
use fd_detector::{Backend, Detector, DetectorConfig, FaceDetector};
use fd_haar::Cascade;
use fd_serve::{
    CompletedRequest, DetectionServer, FleetConfig, FleetServer, Priority, RequestOutcome,
    ServeConfig, ServeStats,
};

const SEED: u64 = 42;
const MODEL_SEED: u64 = 0;
const SLO_US: f64 = 200_000.0;
/// Comfortably inside both tiers' capacity: the gates measure routing
/// isolation, not saturation behavior.
const RATE_RPS: f64 = 4_000.0;
const CNN_FRACTION: f64 = 0.5;
/// Virtual-µs budget for the CNN tier's p99. The CNN engine costs
/// ~2.2x the Haar engine per frame (see BENCH_cnn_eval.json), so its
/// class gets a looser latency bar than the Haar tier's ~2.1 ms — but
/// one 20x tighter than the SLO: the slow engine still has a real bar.
const CNN_P99_BUDGET_US: f64 = 10_000.0;
const MIN_HAAR_TPUT_RATIO: f64 = 0.9;

fn det_config() -> DetectorConfig {
    DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() }
}

fn serve_config(requests: usize) -> ServeConfig {
    ServeConfig { queue_depth_per_class: requests, ..ServeConfig::default() }
}

fn fleet_config(requests: usize) -> FleetConfig {
    FleetConfig { serve: serve_config(requests), ..FleetConfig::default() }
}

/// 2 Haar + 2 CNN lanes behind one front door.
fn mixed_fleet(cascade: &Cascade, requests: usize) -> FleetServer<Box<dyn Detector>> {
    let haar = FaceDetector::try_new_replicas(cascade, det_config(), 2).expect("haar lanes");
    let cnn = CnnDetector::try_new_replicas(&CnnModel::seeded(MODEL_SEED), det_config(), 2)
        .expect("cnn lanes");
    let mut lanes: Vec<Box<dyn Detector>> = Vec::new();
    lanes.extend(haar.into_iter().map(|d| Box::new(d) as Box<dyn Detector>));
    lanes.extend(cnn.into_iter().map(|d| Box::new(d) as Box<dyn Detector>));
    FleetServer::from_detectors(lanes, fleet_config(requests))
}

/// Served requests of one backend class per second of that tier's own
/// span (first arrival to last completion) — per-tier throughput that a
/// slower co-tenant tier cannot dilute by stretching the global
/// makespan.
fn tier_throughput(completed: &[CompletedRequest], backend: Backend) -> f64 {
    let mut served = 0u64;
    let mut first_arrival = f64::INFINITY;
    let mut last_completion = 0.0f64;
    for c in completed.iter().filter(|c| c.backend == backend) {
        if let RequestOutcome::Served { completed_us, .. }
        | RequestOutcome::Degraded { completed_us, .. } = &c.outcome
        {
            served += 1;
            first_arrival = first_arrival.min(c.arrival_us);
            last_completion = last_completion.max(*completed_us);
        }
    }
    let span_us = last_completion - first_arrival;
    if span_us <= 0.0 {
        return 0.0;
    }
    served as f64 / (span_us / 1e6)
}

/// FNV-1a over every observable bit of every completion, in completion
/// order (the serve_fleet bench's scheme).
fn fingerprint(completed: &[CompletedRequest]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for c in completed {
        eat(c.id.0);
        eat(c.backend.index() as u64);
        match &c.outcome {
            RequestOutcome::Served { completed_us, result, .. }
            | RequestOutcome::Degraded { completed_us, result, .. } => {
                eat(completed_us.to_bits());
                eat(result.raw.len() as u64);
                eat(result.detections.len() as u64);
                for d in &result.detections {
                    eat(d.rect.x as u64);
                    eat(d.rect.y as u64);
                    eat(d.rect.w as u64);
                    eat(d.neighbors as u64);
                }
            }
            RequestOutcome::ShedLate { shed_us } => eat(1000 ^ shed_us.to_bits()),
            RequestOutcome::RejectedQueueFull => eat(1001),
            RequestOutcome::RejectedBrownOut => eat(1002),
            RequestOutcome::RejectedFailFast => eat(1003),
            RequestOutcome::Failed { attempts, .. } => eat(1004 ^ u64::from(*attempts)),
            RequestOutcome::Expired { expired_us, .. } => eat(1005 ^ expired_us.to_bits()),
            RequestOutcome::Evicted { evicted_us } => eat(1006 ^ evicted_us.to_bits()),
        }
    }
    h
}

fn stats_row(label: &str, stats: &ServeStats) -> Vec<String> {
    let per_backend: Vec<String> = Backend::ALL
        .iter()
        .map(|b| {
            format!(
                "{}:{}/{}",
                b.name(),
                stats.served_per_backend[b.index()],
                stats.submitted_per_backend[b.index()]
            )
        })
        .collect();
    vec![
        label.to_string(),
        stats.served.to_string(),
        format!("{:.4}", stats.goodput()),
        format!("{:.0}", stats.throughput_rps()),
        format!("{:.0}", stats.latency.p99_us()),
        format!("{:.0}", stats.backend_latency(Backend::Haar).p99_us()),
        format!("{:.0}", stats.backend_latency(Backend::Cnn).p99_us()),
        per_backend.join(" "),
    ]
}

fn main() {
    let requests = arg_usize("--requests", 240);
    let pair = trained_cascade_pair(&TrainingBudget::tiny());
    let cascade = &pair.ours;
    let classes = backend_sequence(SEED, requests, CNN_FRACTION);
    let n_haar = classes.iter().filter(|b| **b == Backend::Haar).count();
    let n_cnn = requests - n_haar;

    // -- haar_only: the Haar-classed subset against 2 Haar lanes. --
    // Reconstructs the mixed generator's streams and drops CNN-classed
    // requests, so the baseline sees the very arrivals and frames the
    // mixed fleet's Haar tier sees.
    let mut baseline = FleetServer::new(cascade, det_config(), 2, fleet_config(requests))
        .expect("haar fleet");
    let mut frame_rng = Lcg::new(SEED ^ 0xF0F0);
    for (arrival, class) in exponential_arrivals_us(SEED, requests, RATE_RPS)
        .into_iter()
        .zip(&classes)
    {
        let frame = pattern_frame(64, 48, frame_rng.next_u64());
        if *class == Backend::Haar {
            baseline
                .submit(frame, Priority::Standard, arrival, SLO_US)
                .expect("baseline submission");
        }
    }
    baseline.run();
    let baseline_stats = baseline.stats();
    assert_eq!(baseline_stats.served, n_haar as u64, "baseline serves its whole subset");
    let haar_only_tput = tier_throughput(baseline.completed(), Backend::Haar);

    // -- mixed: the full pattern against 2 Haar + 2 CNN lanes. --
    let mut mixed = mixed_fleet(cascade, requests);
    submit_open_loop_fleet_mixed(
        &mut mixed, SEED, requests, RATE_RPS, 64, 48, Priority::Standard, SLO_US, CNN_FRACTION,
    );
    mixed.run();
    let mixed_stats = mixed.stats();
    assert_eq!(mixed_stats.served, requests as u64, "in-capacity mix serves everything");
    assert_eq!(mixed_stats.served_per_backend, [n_haar as u64, n_cnn as u64]);
    for (c, device) in mixed.completed().iter().zip(mixed.completed_device()) {
        assert_eq!(
            mixed.device_backend(*device),
            c.backend,
            "backend is a hard bound: every request lands on a matching lane"
        );
    }
    let haar_mixed_tput = tier_throughput(mixed.completed(), Backend::Haar);
    let cnn_p99 = mixed_stats.backend_latency(Backend::Cnn).p99_us();
    let haar_p99 = mixed_stats.backend_latency(Backend::Haar).p99_us();

    // -- fleet_of_1: the trait refactor is free on the legacy path. --
    let mut single = DetectionServer::new(cascade, det_config(), serve_config(requests))
        .expect("single server");
    submit_open_loop(&mut single, SEED, requests, RATE_RPS, 64, 48, Priority::Standard, SLO_US);
    single.run();
    let mut one = FleetServer::new(cascade, det_config(), 1, fleet_config(requests))
        .expect("fleet of one");
    submit_open_loop_fleet(&mut one, SEED, requests, RATE_RPS, 64, 48, Priority::Standard, SLO_US);
    one.run();
    let identical = fingerprint(single.completed()) == fingerprint(one.completed());

    let rows = vec![
        stats_row("haar_only", &baseline_stats),
        stats_row("mixed", &mixed_stats),
        stats_row("fleet_of_1", &one.stats()),
    ];
    println!(
        "{}",
        render_table(
            &[
                "cell", "served", "goodput", "tput_rps", "p99_us", "haar_p99", "cnn_p99",
                "served/submitted",
            ],
            &rows,
        )
    );

    let tput_ratio = haar_mixed_tput / haar_only_tput;
    println!(
        "haar tier: {haar_only_tput:.0} rps alone, {haar_mixed_tput:.0} rps mixed \
         ({tput_ratio:.3}x); cnn tier p99 {cnn_p99:.0} us (budget {CNN_P99_BUDGET_US:.0}), \
         haar tier p99 {haar_p99:.0} us"
    );
    assert!(
        tput_ratio >= MIN_HAAR_TPUT_RATIO,
        "CNN co-tenancy must not poach the Haar tier: throughput ratio {tput_ratio:.3} \
         < {MIN_HAAR_TPUT_RATIO}"
    );
    assert!(
        cnn_p99 <= CNN_P99_BUDGET_US,
        "CNN tier p99 {cnn_p99:.0} us exceeds its {CNN_P99_BUDGET_US:.0} us budget"
    );
    assert!(
        identical,
        "fleet-of-1 Haar traffic must be byte-identical to the pre-trait DetectionServer"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_mixed\",\n  \"requests\": {requests},\n  \
         \"cnn_fraction\": {CNN_FRACTION},\n  \"rate_rps\": {RATE_RPS},\n  \
         \"slo_us\": {SLO_US},\n  \"haar_requests\": {n_haar},\n  \
         \"cnn_requests\": {n_cnn},\n  \"haar_only_tput_rps\": {haar_only_tput:.3},\n  \
         \"haar_mixed_tput_rps\": {haar_mixed_tput:.3},\n  \
         \"haar_tput_ratio\": {tput_ratio:.4},\n  \"haar_p99_us\": {haar_p99:.3},\n  \
         \"cnn_p99_us\": {cnn_p99:.3},\n  \"cnn_p99_budget_us\": {CNN_P99_BUDGET_US},\n  \
         \"mixed_goodput\": {:.5},\n  \"fleet_of_1_identical\": {identical}\n}}\n",
        mixed_stats.goodput(),
    );
    let path = write_text("BENCH_serve_mixed.json", &json).expect("write results");
    println!("wrote {}", path.display());
}
