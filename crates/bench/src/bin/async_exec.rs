//! Asynchronous host execution engine: multi-scale frame throughput of
//! the deferred dependency-graph drain (persistent worker pool) vs the
//! legacy synchronous engine (one `thread::scope` spawn/join per launch),
//! at the same worker count — plus a bit-identity matrix proving the
//! engines and every thread count produce the same detections, simulated
//! timeline and chrome trace. Writes `results/BENCH_async_exec.json`.
//!
//! Usage: `async_exec [--frames N] [--width W] [--height H]
//!                    [--threads T] [--reps R] [--assert-min-speedup-pct P]`
//!
//! With `--assert-min-speedup-pct 130` the process exits non-zero unless
//! async/sync throughput is at least 1.30x (the repo's verify gate).

use std::time::Instant;

use fd_bench::out::{arg_usize, write_text};
use fd_detector::{DetectorConfig, FaceDetector};
use fd_gpu::HostExec;
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_imgproc::GrayImage;

/// Multi-stage edge cascade: deep enough that cascade evaluation
/// dominates, as a trained model's does.
fn bench_cascade(stages: usize) -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut c = Cascade::new("bench-edge", 24);
    for _ in 0..stages {
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
    }
    c
}

/// Textured frame so the cascade does non-trivial depth work.
fn bench_frame(w: usize, h: usize) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let stripes = if (x / 12) % 2 == 0 { 40.0 } else { 210.0 };
        let hash = ((x * 31 + y * 17) % 97) as f32;
        0.7 * stripes + hash
    })
}

fn detector(cascade: &Cascade, exec: HostExec, threads: usize) -> FaceDetector {
    FaceDetector::new(
        cascade,
        DetectorConfig {
            scale_factor: 1.2,
            host_threads: Some(threads),
            host_exec: Some(exec),
            ..DetectorConfig::default()
        },
    )
}

/// Full observable output of a short run: raw detections, simulated
/// per-frame latency bits, and the default chrome trace (device lanes).
fn fingerprint(
    cascade: &Cascade,
    frame: &GrayImage,
    exec: HostExec,
    threads: usize,
    frames: usize,
) -> (String, Vec<u64>, String) {
    let mut det = detector(cascade, exec, threads);
    let mut raw = String::new();
    let mut lat_bits = Vec::new();
    for _ in 0..frames {
        let r = det.detect(frame).expect("detect");
        raw.push_str(&format!("{:?};", r.raw));
        lat_bits.push(r.detect_ms.to_bits());
    }
    (raw, lat_bits, det.profiler().render_chrome_trace())
}

struct Measurement {
    engine: &'static str,
    threads: usize,
    wall_s: f64,
    fps: f64,
}

/// Measure both engines with **interleaved** repetitions — sync, async,
/// sync, async, ... — taking the best wall time of each. Interleaving
/// makes a background-load spike hit both engines instead of biasing
/// whichever happened to run under it; best-of filters the spike out.
fn run_pair(
    cascade: &Cascade,
    frame: &GrayImage,
    threads: usize,
    frames: usize,
    reps: usize,
) -> (Measurement, Measurement) {
    let mut sync_det = detector(cascade, HostExec::Sync, threads);
    let mut async_det = detector(cascade, HostExec::Async, threads);
    // Warm-up frames: build the buffer pools and (for the async engine)
    // spin up the persistent workers.
    let _ = sync_det.detect(frame).expect("detect");
    let _ = async_det.detect(frame).expect("detect");
    let mut best = [f64::INFINITY; 2];
    for _ in 0..reps {
        for (slot, det) in [(0, &mut sync_det), (1, &mut async_det)] {
            let t = Instant::now();
            for _ in 0..frames {
                let _ = det.detect(frame).expect("detect");
            }
            best[slot] = best[slot].min(t.elapsed().as_secs_f64());
        }
    }
    let m = |engine, wall_s: f64| Measurement {
        engine,
        threads,
        wall_s,
        fps: frames as f64 / wall_s,
    };
    (m("sync", best[0]), m("async", best[1]))
}

fn main() {
    let frames = arg_usize("--frames", 12).max(1);
    let width = arg_usize("--width", 240);
    let height = arg_usize("--height", 180);
    let min_speedup_pct = arg_usize("--assert-min-speedup-pct", 0);
    if width < 24 || height < 24 {
        eprintln!("error: --width/--height must be at least the 24-px detection window");
        std::process::exit(2);
    }
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Default worker count: at least 12, so the engines' structural
    // difference dominates scheduling noise — the sync engine pays
    // `threads` thread spawns + joins on every sufficiently large
    // launch, the async engine keeps the same workers parked on a
    // condvar between drains.
    let threads = arg_usize("--threads", host_cores.max(12)).max(1);

    let cascade = bench_cascade(4);
    let frame = bench_frame(width, height);

    // Bit-identity matrix: both engines, serial and parallel drains, must
    // agree on every observable output byte.
    let reference = fingerprint(&cascade, &frame, HostExec::Async, 1, 3);
    for (exec, t) in
        [(HostExec::Async, threads), (HostExec::Sync, 1), (HostExec::Sync, threads)]
    {
        let got = fingerprint(&cascade, &frame, exec, t, 3);
        assert_eq!(
            got, reference,
            "{exec:?}@{t} diverged from the async@1 serial drain"
        );
    }
    println!("identity: ok (detections, latency bits and chrome trace match async@1)");

    let reps = arg_usize("--reps", 5).max(1);
    let (sync, async_) = run_pair(&cascade, &frame, threads, frames, reps);
    let speedup = async_.fps / sync.fps;

    let entry = |m: &Measurement| {
        format!(
            "    {{ \"engine\": \"{}\", \"threads\": {}, \"wall_s\": {:.4}, \"frames_per_s\": {:.2} }}",
            m.engine, m.threads, m.wall_s, m.fps
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"async_host_execution\",\n  \"host_cores\": {host_cores},\n  \
         \"frame\": [{width}, {height}],\n  \"frames\": {frames},\n  \"identity\": \"ok\",\n  \
         \"runs\": [\n{},\n{}\n  ],\n  \"speedup\": {speedup:.3},\n  \
         \"note\": \"speedup = async frames_per_s / sync frames_per_s at {threads} workers; \
         sync pays one thread spawn/join per launch, async drains the frame's dependency \
         graph once on the persistent pool\"\n}}\n",
        entry(&sync),
        entry(&async_),
    );
    print!("{json}");
    let path = write_text("BENCH_async_exec.json", &json).unwrap();
    println!("wrote {}", path.display());

    if min_speedup_pct > 0 && speedup * 100.0 < min_speedup_pct as f64 {
        eprintln!(
            "FAIL: async/sync speedup {speedup:.2}x below required {:.2}x",
            min_speedup_pct as f64 / 100.0
        );
        std::process::exit(1);
    }
}
