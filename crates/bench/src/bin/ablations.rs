//! Ablations of the paper's §III-C design choices, on the cascade
//! evaluation kernel (DESIGN.md §17):
//!
//! * **shared-memory tiling** (Eqs. 1-4) vs scattered global reads;
//! * **compressed constant-memory records** (2x16-bit packing) vs naive
//!   full-word records;
//! * **pyramid scale factor** sweep (work vs detection granularity).
//!
//! Usage: `ablations [--frames N]`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::out::{arg_usize, render_table, write_csv};
use fd_detector::kernels::CascadeKernel;
use fd_detector::{DetectorConfig, FaceDetector};
use fd_gpu::{DeviceSpec, ExecMode, Gpu};
use fd_haar::encode::encode_cascade;
use fd_imgproc::{GrayImage, IntegralImage, Pyramid};
use fd_video::movie_trailers;

fn inclusive_integral(img: &GrayImage) -> Vec<u32> {
    let ii = IntegralImage::from_gray(img);
    let (w, h) = (img.width(), img.height());
    let mut out = vec![0u32; w * h];
    for y in 0..h {
        for x in 0..w {
            out[y * w + x] = ii.at(x + 1, y + 1);
        }
    }
    out
}

fn main() {
    let frames = arg_usize("--frames", 2);
    let pair = trained_cascade_pair(&TrainingBudget::default());
    let info = &movie_trailers()[1];
    let trailer = info.generate(frames);

    // ---- Kernel-level ablations on one 1080p frame's level-0 cascade.
    let frame = trailer.render_frame(0);
    let filtered = fd_imgproc::filter::antialias_3tap(&frame);
    let integral_host = inclusive_integral(&filtered);
    let (w, h) = (frame.width(), frame.height());

    let mut kernel_rows = Vec::new();
    let mut run_variant = |name: &str, tile: bool, compressed: bool| {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let integral = gpu.mem.upload(&integral_host);
        let depth = gpu.mem.alloc::<u32>(w * h);
        let score = gpu.mem.alloc::<f32>(w * h);
        let cp = gpu.const_upload(&encode_cascade(&fd_haar::encode::quantize_cascade(&pair.ours)));
        let mut k = CascadeKernel::new(&pair.ours, integral, w, h, depth, score, cp);
        if !tile {
            k = k.without_shared_tile();
        }
        if !compressed {
            k = k.with_uncompressed_records();
        }
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        let t = gpu.synchronize();
        let ev = &t.events[0];
        kernel_rows.push(vec![
            name.to_string(),
            format!("{:.3}", t.span_us() / 1000.0),
            format!("{:.1}", ev.counters.global_bytes_read as f64 / 1e6),
            format!("{}", ev.counters.const_broadcasts),
            format!("{}", ev.counters.shared_transactions),
        ]);
        t.span_us()
    };
    let base = run_variant("tiled + compressed (paper)", true, true);
    let no_tile = run_variant("no shared tile", false, true);
    let no_comp = run_variant("uncompressed records", true, false);
    let neither = run_variant("neither", false, false);

    println!("cascade-eval kernel ablations (level 0 of a 1080p frame, 'ours' cascade)\n");
    println!(
        "{}",
        render_table(
            &["variant", "sim ms", "DRAM read MB", "const broadcasts", "shared txns"],
            &kernel_rows
        )
    );
    println!(
        "slowdowns vs paper design: no-tile {:.2}x, uncompressed {:.2}x, neither {:.2}x\n",
        no_tile / base,
        no_comp / base,
        neither / base
    );
    write_csv(
        "ablation_kernel.csv",
        &["variant", "sim_ms", "dram_read_mb", "const_broadcasts", "shared_txns"],
        &kernel_rows,
    )
    .unwrap();

    // ---- Pyramid scale-factor sweep (full pipeline).
    let mut sweep_rows = Vec::new();
    for factor in [1.1f64, 1.18, 1.25, 1.4, 1.6] {
        let mut det = FaceDetector::new(
            &pair.ours,
            DetectorConfig { scale_factor: factor, ..DetectorConfig::default() },
        );
        let mut ms = 0.0;
        let mut dets = 0usize;
        for i in 0..frames {
            let r = det.detect(&trailer.render_frame(i)).expect("detect");
            ms += r.detect_ms;
            dets += r.detections.len();
        }
        let levels = Pyramid::plan(1920, 1080, factor, 24).len();
        sweep_rows.push(vec![
            format!("{factor}"),
            levels.to_string(),
            format!("{:.3}", ms / frames as f64),
            dets.to_string(),
        ]);
    }
    println!("pyramid scale-factor sweep ({frames} frames, 'ours', concurrent)\n");
    println!(
        "{}",
        render_table(&["factor", "levels", "mean ms/frame", "detections"], &sweep_rows)
    );
    write_csv(
        "ablation_pyramid.csv",
        &["factor", "levels", "mean_ms_per_frame", "detections"],
        &sweep_rows,
    )
    .unwrap();
}
