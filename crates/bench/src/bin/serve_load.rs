//! Serving load sweep: open-loop Poisson traffic against the
//! [`fd_serve::DetectionServer`] at increasing offered rates, with
//! dynamic batching on and off, plus one closed-loop row per mode.
//!
//! Reports throughput, latency quantiles and batch occupancy per
//! (offered load, batching) cell, and asserts the tentpole win: at the
//! highest offered load, batching must improve throughput >= 1.5x and
//! must not worsen p99 latency.
//!
//! Usage: `serve_load [--requests N] [--frame-w W] [--frame-h H]`
//! (default 300 requests of 64x48). Writes
//! `results/BENCH_serve_load.json`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::loadgen::{run_closed_loop, submit_open_loop};
use fd_bench::out::{arg_usize, render_table, write_text};
use fd_detector::DetectorConfig;
use fd_haar::Cascade;
use fd_serve::{BatchPolicy, DetectionServer, Priority, ServeConfig, ServeStats};

const SEED: u64 = 42;
const SLO_US: f64 = 50_000.0;
// Single-request service on the simulated device is ~85 µs for the
// default 64x48 frame (~11k rps unbatched capacity), so the sweep's top
// loads sit well past unbatched saturation.
const OFFERED_RPS: [f64; 5] = [1000.0, 4000.0, 16000.0, 32000.0, 64000.0];

struct Cell {
    label: String,
    offered_rps: f64,
    batched: bool,
    served: u64,
    throughput_rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    occupancy: f64,
    deadline_met: u64,
}

fn server(cascade: &Cascade, batched: bool, depth: usize) -> DetectionServer {
    let det = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
    let cfg = ServeConfig {
        queue_depth_per_class: depth,
        batch: BatchPolicy { enabled: batched, ..BatchPolicy::default() },
        // The sweep measures raw capacity and queueing latency; shedding
        // would censor exactly the saturated tail we want to see. The
        // default retry/health layers are inert without injected faults.
        shed_late: false,
        ..ServeConfig::default()
    };
    DetectionServer::new(cascade, det, cfg).expect("detector construction")
}

fn cell(label: &str, offered_rps: f64, batched: bool, stats: &ServeStats) -> Cell {
    Cell {
        label: label.to_string(),
        offered_rps,
        batched,
        served: stats.served,
        throughput_rps: stats.throughput_rps(),
        p50_us: stats.latency.p50_us(),
        p95_us: stats.latency.p95_us(),
        p99_us: stats.latency.p99_us(),
        occupancy: stats.mean_batch_occupancy(),
        deadline_met: stats.deadline_met,
    }
}

fn main() {
    let requests = arg_usize("--requests", 300);
    let frame_w = arg_usize("--frame-w", 64);
    let frame_h = arg_usize("--frame-h", 48);
    let pair = trained_cascade_pair(&TrainingBudget::tiny());

    let mut cells = Vec::new();
    for &rps in &OFFERED_RPS {
        for batched in [false, true] {
            let mut s = server(&pair.ours, batched, requests);
            submit_open_loop(
                &mut s, SEED, requests, rps, frame_w, frame_h, Priority::Standard, SLO_US,
            );
            s.run();
            assert_eq!(s.stats().served, requests as u64, "open loop serves everything");
            cells.push(cell("open", rps, batched, s.stats()));
        }
    }
    for batched in [false, true] {
        let mut s = server(&pair.ours, batched, requests);
        let served = run_closed_loop(
            &mut s, SEED, 8, requests, 100.0, frame_w, frame_h, Priority::Standard, SLO_US,
        );
        assert_eq!(served, requests, "closed loop serves everything");
        cells.push(cell("closed(8)", 0.0, batched, s.stats()));
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                if c.offered_rps > 0.0 { format!("{:.0}", c.offered_rps) } else { "-".into() },
                if c.batched { "on" } else { "off" }.into(),
                c.served.to_string(),
                format!("{:.0}", c.throughput_rps),
                format!("{:.0}", c.p50_us),
                format!("{:.0}", c.p95_us),
                format!("{:.0}", c.p99_us),
                format!("{:.2}", c.occupancy),
                c.deadline_met.to_string(),
            ]
        })
        .collect();
    let table = render_table(
        &[
            "loop", "offered_rps", "batch", "served", "tput_rps", "p50_us", "p95_us",
            "p99_us", "occupancy", "slo_met",
        ],
        &rows,
    );
    println!("{table}");

    // The tentpole acceptance gate: at the highest offered load, dynamic
    // batching must buy >= 1.5x throughput without worsening p99.
    let top = OFFERED_RPS[OFFERED_RPS.len() - 1];
    let at = |batched: bool| {
        cells
            .iter()
            .find(|c| c.label == "open" && c.offered_rps == top && c.batched == batched)
            .expect("sweep covers the top load")
    };
    let (off, on) = (at(false), at(true));
    let speedup = on.throughput_rps / off.throughput_rps;
    println!(
        "saturation ({top:.0} rps offered): {:.0} -> {:.0} rps served ({speedup:.2}x), \
         p99 {:.0} -> {:.0} us",
        off.throughput_rps, on.throughput_rps, off.p99_us, on.p99_us
    );
    assert!(
        speedup >= 1.5,
        "batching must improve saturated throughput >= 1.5x, got {speedup:.2}x"
    );
    assert!(
        on.p99_us <= off.p99_us,
        "batching must not worsen saturated p99 ({:.0} vs {:.0} us)",
        on.p99_us,
        off.p99_us
    );

    let json_cells: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"loop\": \"{}\", \"offered_rps\": {:.1}, \"batched\": {}, \
                 \"served\": {}, \"throughput_rps\": {:.3}, \"p50_us\": {:.3}, \
                 \"p95_us\": {:.3}, \"p99_us\": {:.3}, \"occupancy\": {:.4}, \
                 \"slo_met\": {}}}",
                c.label,
                c.offered_rps,
                c.batched,
                c.served,
                c.throughput_rps,
                c.p50_us,
                c.p95_us,
                c.p99_us,
                c.occupancy,
                c.deadline_met
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"requests\": {requests},\n  \
         \"frame\": [{frame_w}, {frame_h}],\n  \"slo_us\": {SLO_US},\n  \
         \"saturation_speedup\": {speedup:.4},\n  \"cells\": [\n{}\n  ]\n}}\n",
        json_cells.join(",\n")
    );
    let path = write_text("BENCH_serve_load.json", &json).expect("write results");
    println!("wrote {}", path.display());
}
