//! Fault-injection sweep: stream throughput and frame accounting as the
//! injected fault rate rises. Each sweep point runs the full streaming
//! pipeline (decode -> detect -> recover) over a generated trailer with
//! a seeded transient-launch rate `r` on the device and a corrupt-frame
//! rate `0.4 r` in the decoder (the 5%/2% ratio of the acceptance
//! scenario), and reports ok/degraded/skipped counts, retries, backoff
//! and pipelined fps.
//!
//! Usage: `fault_sweep [--frames N]` (default 60).
//! Writes `results/BENCH_fault_sweep.json`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::out::{arg_usize, render_table, write_text};
use fd_detector::{DetectorConfig, VideoDetector};
use fd_gpu::FaultPlan;
use fd_video::{DecodeFaultPlan, HwDecoder, Trailer, TrailerSpec};

const SEED: u64 = 42;
const RATES: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.05];

fn trailer(n_frames: usize) -> Trailer {
    Trailer::generate(TrailerSpec {
        width: 160,
        height: 120,
        n_frames,
        seed: 21,
        face_size: (26.0, 60.0),
        ..TrailerSpec::default()
    })
}

fn main() {
    let frames = arg_usize("--frames", 60);
    let pair = trained_cascade_pair(&TrainingBudget::tiny());

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for rate in RATES {
        let device = if rate > 0.0 {
            Some(FaultPlan::seeded(SEED).with_transient_launch_failures(rate))
        } else {
            None
        };
        let decode = if rate > 0.0 {
            Some(DecodeFaultPlan::seeded(SEED).with_corrupt_frames(rate * 0.4))
        } else {
            None
        };

        let mut decoder = HwDecoder::new(trailer(frames));
        decoder.set_fault_plan(decode);
        let mut vd = VideoDetector::new(
            &pair.ours,
            DetectorConfig { min_neighbors: 1, fault_plan: device, ..DetectorConfig::default() },
            24.0,
        )
        .expect("video detector");
        let reports = vd.run_stream(decoder);
        assert_eq!(reports.len(), frames, "every decoded frame must be reported");
        let s = vd.stats();
        assert!(s.all_frames_accounted(), "ok + degraded + skipped must equal frames");

        rows.push(vec![
            format!("{rate:.3}"),
            format!("{:.2}", s.pipelined_fps()),
            s.ok_frames.to_string(),
            s.degraded_frames.to_string(),
            s.skipped_frames.to_string(),
            s.retries.to_string(),
            format!("{:.1}", s.total_backoff_ms),
        ]);
        json_rows.push(format!(
            "    {{ \"transient_launch_rate\": {rate}, \"corrupt_frame_rate\": {}, \
             \"pipelined_fps\": {:.3}, \"ok\": {}, \"degraded\": {}, \"skipped\": {}, \
             \"retries\": {}, \"backoff_ms\": {:.2} }}",
            rate * 0.4,
            s.pipelined_fps(),
            s.ok_frames,
            s.degraded_frames,
            s.skipped_frames,
            s.retries,
            s.total_backoff_ms,
        ));
    }

    println!("fault-injection sweep: {frames} frames per point, seed {SEED}\n");
    println!(
        "{}",
        render_table(
            &["fault rate", "pipelined fps", "ok", "degraded", "skipped", "retries", "backoff ms"],
            &rows
        )
    );

    let json = format!(
        "{{\n  \"bench\": \"fault_sweep\",\n  \"frames\": {frames},\n  \"seed\": {SEED},\n  \
         \"sweep\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = write_text("BENCH_fault_sweep.json", &json).unwrap();
    println!("\nwrote {}", path.display());
}
