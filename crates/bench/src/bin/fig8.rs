//! Fig. 8 — execution time of a single GentleBoost training iteration
//! (the full feature sweep over the whole training set) for 1-8 threads,
//! on the paper's two SMP machines.
//!
//! The reproduction host cannot replay the thread sweep in wall-clock
//! (see DESIGN.md: single-core reference environment), so the figure is
//! regenerated through the calibrated SMP model of `fd_boost::smp`, fed
//! with the *exact* work content of the paper's workload (the full
//! 103 607-feature enumeration over 15 242 samples, row-ops counted from
//! the real implementation). A real wall-clock measurement of one
//! iteration on a scaled-down workload is printed alongside for honesty.
//!
//! Usage: `fig8 [--samples N]` (N = samples for the real measurement).

use fd_bench::out::{arg_usize, render_table, write_csv};
use fd_boost::smp::{measure_round_seconds, IterationWork, MachineProfile};
use fd_boost::synthdata::{synth_faces, NegativeSource};
use fd_boost::{GentleBoost, TrainingSet};
use fd_haar::{enumerate_features, EnumerationRule};

fn main() {
    let n_real_samples = arg_usize("--samples", 300);

    println!("[fig8] counting the paper workload's row-ops (103 607 features x 15 242 samples)...");
    let work = IterationWork::paper_workload();
    println!(
        "  parallel row-ops per iteration: {:.3e}  (serial: {:.1e})",
        work.parallel_ops as f64, work.serial_ops as f64
    );

    let machines = [MachineProfile::dual_xeon_e5472(), MachineProfile::core_i7_2600k()];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for threads in 1..=8u32 {
        let mut row = vec![threads.to_string()];
        for m in &machines {
            let secs = m.predict_seconds(&work, threads);
            let speedup = m.predict_speedup(&work, threads);
            row.push(format!("{secs:7.1}s ({speedup:.2}x)"));
            csv.push(vec![
                m.name.to_string(),
                threads.to_string(),
                format!("{secs:.3}"),
                format!("{speedup:.4}"),
            ]);
        }
        rows.push(row);
    }
    println!("\nFig. 8 — predicted single-iteration time (speedup vs 1 thread)\n");
    println!("{}", render_table(&["threads", machines[0].name, machines[1].name], &rows));
    println!(
        "paper anchors: Xeon ~370 s @1T, i7 ~185 s @1T (2x), both ~3.5x @8T; model: Xeon {:.0} s / i7 {:.0} s @1T, {:.2}x / {:.2}x @8T",
        machines[0].predict_seconds(&work, 1),
        machines[1].predict_seconds(&work, 1),
        machines[0].predict_speedup(&work, 8),
        machines[1].predict_speedup(&work, 8),
    );
    let path = write_csv("fig8.csv", &["machine", "threads", "seconds", "speedup"], &csv).unwrap();
    println!("wrote {}", path.display());

    // Honesty check: a real iteration on this host, scaled-down workload.
    println!("\n[fig8] real wall-clock measurement on this host ({} cores):", num_threads_available());
    let features: Vec<_> = enumerate_features(24, EnumerationRule::Icpp2012)
        .into_iter()
        .step_by(37)
        .collect();
    let faces = synth_faces(n_real_samples / 2, 99);
    let negs = NegativeSource::new(77).initial(n_real_samples / 2);
    let samples: Vec<(&fd_imgproc::GrayImage, f32)> = faces
        .iter()
        .map(|f| (f, 1.0))
        .chain(negs.iter().map(|n| (n, -1.0)))
        .collect();
    let set = TrainingSet::from_samples(samples);
    let learner = GentleBoost::new(features);
    let host_threads = num_threads_available().min(8);
    for threads in [1usize, 2, 4, 8] {
        if threads > host_threads && threads != 1 {
            // Still run: oversubscription shows flat/negative scaling,
            // which is the honest answer on a small host.
        }
        let secs = measure_round_seconds(&learner, &set, threads);
        let work_small = IterationWork::from_learner(&learner, set.len());
        println!(
            "  {threads} thread(s): {secs:.2} s  ({:.2e} row-ops, {:.2e} ops/s)",
            work_small.parallel_ops as f64,
            work_small.parallel_ops as f64 / secs
        );
    }
}

fn num_threads_available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
