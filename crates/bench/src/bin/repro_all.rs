//! Runs every table/figure reproduction in sequence with the default
//! sizes by re-invoking the sibling binaries. Useful as the one-shot
//! "regenerate EXPERIMENTS.md inputs" entry point:
//!
//! ```text
//! cargo run -p fd-bench --release --bin repro_all
//! ```

use std::process::Command;

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let targets = [
        "table1",
        "table2",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "counters",
        "ablations",
        "ablation_rearrange",
        "ablation_softcascade",
        "ablation_multigpu",
    ];
    let mut failures = Vec::new();
    for t in targets {
        println!("\n================= {t} =================\n");
        let status = Command::new(exe_dir.join(t))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {t}: {e}"));
        if !status.success() {
            eprintln!("{t} exited with {status}");
            failures.push(t);
        }
    }
    if !failures.is_empty() {
        eprintln!("\nFAILED targets: {failures:?}");
        std::process::exit(1);
    }
    println!("\nall reproductions completed; CSVs in results/");
}
