//! Kernel fusion: simulated end-to-end pipeline time with the
//! scale/smoothing/integral stages fused (scale+filter+scan+transpose
//! and scan+transpose as single launches) vs the unfused eight-launch
//! baseline — single frames and a batched submission — plus a per-level
//! breakdown of launch counts and device busy time, and a bit-identity
//! check that fusion changes no detection. Writes
//! `results/BENCH_fusion.json`.
//!
//! The comparison is in *simulated device time* (`Timeline::span_us`),
//! which is deterministic: the fused pipeline pays one launch overhead
//! where the baseline pays four (chain A) or two (chain B), and its
//! chain-internal intermediates are charged at on-chip rather than DRAM
//! rates, exactly as the cost model's fusion credit specifies.
//!
//! Usage: `fusion [--width W] [--height H] [--batch B]
//!                [--assert-min-speedup-pct P] [--assert-min-batched-pct Q]`
//!
//! With `--assert-min-speedup-pct 120` the process exits non-zero unless
//! the single-frame end-to-end fused/unfused speedup reaches 1.20x (the
//! repo's verify gate). The batched ablation gets its own floor
//! (`--assert-min-batched-pct`, 115 in verify) because its ratio
//! converges lower by Amdahl's law: the cascade stage's paper-specified
//! 24x24-thread blocks (18 warps) cap residency at 2 blocks per 48-warp
//! SM, so at batch depth the span is dominated by an occupancy-bound
//! cascade tail that is identical in both fusion modes.

use fd_bench::out::{arg_usize, write_text};
use fd_detector::{DetectorConfig, FaceDetector};
use fd_gpu::HostExec;
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_imgproc::GrayImage;

fn bench_cascade(stages: usize) -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut c = Cascade::new("bench-edge", 24);
    for _ in 0..stages {
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
    }
    c
}

fn bench_frame(w: usize, h: usize) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let stripes = if (x / 12) % 2 == 0 { 40.0 } else { 210.0 };
        let hash = ((x * 31 + y * 17) % 97) as f32;
        0.7 * stripes + hash
    })
}

fn detector(cascade: &Cascade, fusion: bool, exec: HostExec, threads: usize) -> FaceDetector {
    FaceDetector::new(
        cascade,
        DetectorConfig {
            scale_factor: 1.2,
            fusion: Some(fusion),
            host_threads: Some(threads),
            host_exec: Some(exec),
            ..DetectorConfig::default()
        },
    )
}

/// Per-stream (= per pyramid level) launch count and device busy time
/// after one frame, in stream-creation order.
fn per_level(det: &FaceDetector) -> Vec<(u32, usize, f64)> {
    let mut rows: Vec<(u32, usize, f64)> = Vec::new();
    for e in det.profiler().traces() {
        let tid = e.stream.index();
        match rows.iter_mut().find(|r| r.0 == tid) {
            Some(r) => {
                r.1 += 1;
                r.2 += e.duration_us();
            }
            None => rows.push((tid, 1, e.duration_us())),
        }
    }
    rows.sort_by_key(|r| r.0);
    rows
}

fn main() {
    let width = arg_usize("--width", 240);
    let height = arg_usize("--height", 180);
    let batch = arg_usize("--batch", 4).max(1);
    let min_speedup_pct = arg_usize("--assert-min-speedup-pct", 0);
    let min_batched_pct = arg_usize("--assert-min-batched-pct", 0);
    if width < 24 || height < 24 {
        eprintln!("error: --width/--height must be at least the 24-px detection window");
        std::process::exit(2);
    }

    let cascade = bench_cascade(4);
    let frame = bench_frame(width, height);

    // Bit-identity: fused detections must equal unfused, and each mode
    // must be invariant across host engines and thread counts.
    let fingerprint = |fusion: bool, exec: HostExec, threads: usize| {
        let mut det = detector(&cascade, fusion, exec, threads);
        let r = det.detect(&frame).expect("detect");
        (format!("{:?}", r.raw), r.detect_ms.to_bits())
    };
    let unfused_ref = fingerprint(false, HostExec::Sync, 1);
    let fused_ref = fingerprint(true, HostExec::Sync, 1);
    assert_eq!(unfused_ref.0, fused_ref.0, "fusion changed detections");
    for (exec, t) in [(HostExec::Sync, 4), (HostExec::Async, 1), (HostExec::Async, 4)] {
        assert_eq!(fingerprint(false, exec, t), unfused_ref, "unfused {exec:?}@{t} diverged");
        assert_eq!(fingerprint(true, exec, t), fused_ref, "fused {exec:?}@{t} diverged");
    }
    println!("identity: ok (fused == unfused detections; engines/threads agree per mode)");

    // Simulated single-frame latency + per-level breakdown.
    let single = |fusion: bool| {
        let mut det = detector(&cascade, fusion, HostExec::Async, 4);
        let r = det.detect(&frame).expect("detect");
        let levels = per_level(&det);
        (r.detect_ms * 1000.0, levels)
    };
    let (unfused_us, unfused_levels) = single(false);
    let (fused_us, fused_levels) = single(true);
    let single_speedup = unfused_us / fused_us;

    // Batched submission: B same-geometry frames as one device submission.
    let batched = |fusion: bool| {
        let mut det = detector(&cascade, fusion, HostExec::Async, 4);
        let refs: Vec<&GrayImage> = (0..batch).map(|_| &frame).collect();
        let rs = det.detect_batch(&refs).expect("detect_batch");
        rs[0].detect_ms * 1000.0
    };
    let unfused_batch_us = batched(false);
    let fused_batch_us = batched(true);
    let batched_speedup = unfused_batch_us / fused_batch_us;

    assert_eq!(unfused_levels.len(), fused_levels.len(), "same pyramid depth");
    let level_rows: Vec<String> = unfused_levels
        .iter()
        .zip(&fused_levels)
        .enumerate()
        .map(|(i, (u, f))| {
            format!(
                "    {{ \"level\": {i}, \"unfused\": {{ \"launches\": {}, \"busy_us\": {:.3} }}, \
                 \"fused\": {{ \"launches\": {}, \"busy_us\": {:.3} }} }}",
                u.1, u.2, f.1, f.2
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"kernel_fusion\",\n  \"frame\": [{width}, {height}],\n  \
         \"batch\": {batch},\n  \"identity\": \"ok\",\n  \
         \"single_frame\": {{ \"unfused_us\": {unfused_us:.3}, \"fused_us\": {fused_us:.3}, \
         \"speedup\": {single_speedup:.3} }},\n  \
         \"batched\": {{ \"unfused_us\": {unfused_batch_us:.3}, \"fused_us\": {fused_batch_us:.3}, \
         \"speedup\": {batched_speedup:.3} }},\n  \"levels\": [\n{}\n  ],\n  \
         \"note\": \"simulated device time; fused = scale+filter+scan+transpose and \
         scan+transpose as single launches per level (2 instead of 6), intermediates credited \
         at on-chip rates; detections bit-identical to the unfused baseline. The batched \
         ratio converges below the single-frame one because the cascade stage's 24x24 blocks \
         (18 warps, 2 resident per 48-warp SM) make its tail occupancy-bound and identical \
         in both modes.\"\n}}\n",
        level_rows.join(",\n"),
    );
    print!("{json}");
    let path = write_text("BENCH_fusion.json", &json).unwrap();
    println!("wrote {}", path.display());

    let mut failed = false;
    if min_speedup_pct > 0 {
        let need = min_speedup_pct as f64 / 100.0;
        if single_speedup < need {
            eprintln!("FAIL: end-to-end fusion speedup {single_speedup:.3}x below {need:.2}x");
            failed = true;
        }
    }
    if min_batched_pct > 0 {
        let need = min_batched_pct as f64 / 100.0;
        if batched_speedup < need {
            eprintln!("FAIL: batched fusion speedup {batched_speedup:.3}x below {need:.2}x");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
