//! Concurrent kernels (the paper) vs thread rearrangement (Herout et
//! al., §II) — two answers to GPU underutilization during cascade
//! evaluation, compared on the same frames.
//!
//! The rearrangement strategy compacts surviving windows into dense
//! blocks between cascade segments: occupancy stays high, but the
//! cooperative shared-memory tile is lost (scattered global reads) and
//! every segment boundary costs a compaction kernel plus a host-visible
//! synchronization before the next grid can be sized.
//!
//! Usage: `ablation_rearrange [--frames N] [--segment K]`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::out::{arg_usize, render_table, write_csv};
use fd_detector::kernels::run_rearranged_level;
use fd_detector::{DetectorConfig, FaceDetector};
use fd_gpu::{DeviceSpec, ExecMode, Gpu};
use fd_imgproc::{GrayImage, IntegralImage, Pyramid};
use fd_video::movie_trailers;

fn inclusive_integral(img: &GrayImage) -> Vec<u32> {
    let ii = IntegralImage::from_gray(img);
    let (w, h) = (img.width(), img.height());
    let mut out = vec![0u32; w * h];
    for y in 0..h {
        for x in 0..w {
            out[y * w + x] = ii.at(x + 1, y + 1);
        }
    }
    out
}

fn main() {
    let frames = arg_usize("--frames", 2);
    let segment = arg_usize("--segment", 3);
    let pair = trained_cascade_pair(&TrainingBudget::default());
    let info = &movie_trailers()[1];
    let trailer = info.generate(frames);

    let mut rows = Vec::new();
    for fi in 0..frames {
        let frame = trailer.render_frame(fi);

        // (a) The paper's approach: blocked tiled kernels, one stream per
        // scale, concurrent execution (full pipeline time).
        let mut det = FaceDetector::new(&pair.ours, DetectorConfig::default());
        let concurrent_ms = det.detect(&frame).expect("detect").detect_ms;

        // (b) Rearrangement: per level, segments + compaction. Pyramid
        // levels are prepared identically (host-side here; the scale/
        // filter/integral cost is common to both strategies, so only the
        // cascade-evaluation portion is compared).
        let plan = Pyramid::plan(frame.width(), frame.height(), 1.25, 24);
        let mut rearranged_ms = 0.0f64;
        let cascade_only_ms;
        {
            // Isolate the blocked cascade kernels' share for fairness.
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let mut streams = Vec::new();
            let quant = fd_haar::encode::quantize_cascade(&pair.ours);
            let cp = gpu.const_upload(&fd_haar::encode::encode_cascade(&quant));
            for (li, &(w, h)) in plan.iter().enumerate() {
                let scaled = if li == 0 {
                    frame.clone()
                } else {
                    fd_imgproc::resize::resize_bilinear(&frame, w, h)
                };
                let filtered = fd_imgproc::filter::antialias_3tap(&scaled);
                let integral = gpu.mem.upload(&inclusive_integral(&filtered));
                let depth = gpu.mem.alloc::<u32>(w * h);
                let score = gpu.mem.alloc::<f32>(w * h);
                let k = fd_detector::kernels::CascadeKernel::new(
                    &quant, integral, w, h, depth, score, cp,
                );
                let s = gpu.create_stream();
                streams.push(s);
                let cfg = k.config();
                gpu.launch(k, cfg, s).unwrap();
            }
            cascade_only_ms = gpu.synchronize().span_us() / 1000.0;
        }
        {
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            for (li, &(w, h)) in plan.iter().enumerate() {
                let scaled = if li == 0 {
                    frame.clone()
                } else {
                    fd_imgproc::resize::resize_bilinear(&frame, w, h)
                };
                let filtered = fd_imgproc::filter::antialias_3tap(&scaled);
                let integral = gpu.mem.upload(&inclusive_integral(&filtered));
                let s = gpu.create_stream();
                let (_, timelines) =
                    run_rearranged_level(&mut gpu, &pair.ours, integral, w, h, segment, s)
                        .expect("rearranged level");
                rearranged_ms += timelines.iter().map(|t| t.span_us()).sum::<f64>() / 1000.0;
                gpu.mem.free(integral);
            }
        }

        rows.push(vec![
            fi.to_string(),
            format!("{:.3}", cascade_only_ms),
            format!("{:.3}", rearranged_ms),
            format!("{:.2}x", rearranged_ms / cascade_only_ms),
            format!("{:.3}", concurrent_ms),
        ]);
    }

    println!(
        "cascade evaluation: concurrent tiled kernels vs thread rearrangement (segment = {segment} stages)\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "frame",
                "concurrent cascades ms",
                "rearranged ms",
                "rearr/conc",
                "full pipeline ms"
            ],
            &rows
        )
    );
    write_csv(
        "ablation_rearrange.csv",
        &["frame", "concurrent_cascade_ms", "rearranged_ms", "ratio", "full_pipeline_ms"],
        &rows,
    )
    .unwrap();
    println!("note: rearrangement keeps blocks dense but loses the 48x48 shared tile and pays a\nhost synchronization per segment — the trade-off the paper's §II discusses.");
}
