//! Soft-cascade ablation (the paper's §VII future work): calibrate a
//! soft cascade from the trained staged cascade and compare (a) mean
//! stumps evaluated per background window (early-exit efficiency) and
//! (b) detection recall on mug shots.
//!
//! Usage: `ablation_softcascade [--faces N] [--quantile Q*1000]`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::out::{arg_usize, render_table, write_csv};
use fd_boost::synthdata::synth_faces;
use fd_haar::soft::{staged_mean_depth, SoftCascade};
use fd_imgproc::synth::render_random_background;
use fd_imgproc::IntegralImage;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n_faces = arg_usize("--faces", 200);
    let quantile = arg_usize("--quantile", 50) as f64 / 1000.0;
    let pair = trained_cascade_pair(&TrainingBudget::default());

    println!(
        "calibrating a soft cascade from '{}' ({} stages / {} stumps) on {} faces, miss budget {:.1} %",
        pair.ours.name,
        pair.ours.depth(),
        pair.ours.total_stumps(),
        n_faces,
        100.0 * quantile
    );
    let positives: Vec<IntegralImage> = synth_faces(n_faces, 0x50F7)
        .iter()
        .map(IntegralImage::from_gray)
        .collect();
    let soft = SoftCascade::calibrate(&pair.ours, &positives, quantile);

    // Recall on held-out faces.
    let held_out: Vec<IntegralImage> = synth_faces(n_faces, 0xF00D)
        .iter()
        .map(IntegralImage::from_gray)
        .collect();
    let staged_kept = held_out
        .iter()
        .filter(|ii| pair.ours.classify(ii, 0, 0))
        .count();
    let soft_kept = held_out.iter().filter(|ii| soft.classify(ii, 0, 0)).count();

    // Early-exit efficiency on background textures.
    let mut rng = StdRng::seed_from_u64(0xBACC);
    let mut staged_depths = Vec::new();
    let mut soft_depths = Vec::new();
    for _ in 0..8 {
        let bg = render_random_background(&mut rng, 96, 96);
        let filtered = fd_imgproc::filter::antialias_3tap(&bg);
        let ii = IntegralImage::from_gray(&filtered);
        staged_depths.push(staged_mean_depth(&pair.ours, &ii));
        soft_depths.push(soft.mean_depth(&ii));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    let rows = vec![
        vec![
            "staged (paper)".to_string(),
            format!("{}/{}", staged_kept, held_out.len()),
            format!("{:.2}", mean(&staged_depths)),
        ],
        vec![
            "soft (future work)".to_string(),
            format!("{}/{}", soft_kept, held_out.len()),
            format!("{:.2}", mean(&soft_depths)),
        ],
    ];
    println!();
    println!(
        "{}",
        render_table(&["cascade form", "held-out recall", "stumps/bg window"], &rows)
    );
    println!(
        "early-exit speedup of the soft form: {:.2}x fewer stumps per background window",
        mean(&staged_depths) / mean(&soft_depths).max(1e-9)
    );
    write_csv(
        "ablation_softcascade.csv",
        &["form", "recall", "stumps_per_bg_window"],
        &rows,
    )
    .unwrap();
}
