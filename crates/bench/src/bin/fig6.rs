//! Fig. 6 — execution trace of the cascade-evaluation kernels for one
//! video frame: per-kernel start/end timestamps across CUDA streams,
//! showing the small-scale kernels executing completely overlapped under
//! concurrent kernel execution (and strictly one-after-another in serial
//! mode).
//!
//! Usage: `fig6 [--frame N]`. Writes `results/fig6_trace_{concurrent,
//! serial}.csv` and prints an ASCII lane chart of the cascade kernels.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::out::{arg_usize, write_csv};
use fd_detector::{DetectorConfig, FaceDetector};
use fd_gpu::{ExecMode, Timeline};
use fd_video::movie_trailers;

fn dump(mode_name: &str, timeline: &Timeline) {
    let rows: Vec<Vec<String>> = timeline
        .events
        .iter()
        .map(|e| {
            vec![
                e.launch_idx.to_string(),
                e.stream.index().to_string(),
                e.kernel_name.to_string(),
                format!("{:.3}", e.t_start_us),
                format!("{:.3}", e.t_end_us),
                e.blocks.to_string(),
            ]
        })
        .collect();
    let path = write_csv(
        &format!("fig6_trace_{mode_name}.csv"),
        &["launch", "stream", "kernel", "t_start_us", "t_end_us", "blocks"],
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}

fn ascii_lanes(timeline: &Timeline, kernel: &str) -> String {
    let cascade: Vec<_> =
        timeline.events.iter().filter(|e| e.kernel_name == kernel).collect();
    if cascade.is_empty() {
        return String::new();
    }
    let t0 = cascade.iter().map(|e| e.t_start_us).fold(f64::INFINITY, f64::min);
    let t1 = cascade.iter().map(|e| e.t_end_us).fold(0.0f64, f64::max);
    let width = 88.0;
    let scale = width / (t1 - t0).max(1e-9);
    let mut out = String::new();
    for e in &cascade {
        let a = ((e.t_start_us - t0) * scale).round() as usize;
        let b = (((e.t_end_us - t0) * scale).round() as usize).max(a + 1);
        let mut line = vec![b' '; width as usize + 1];
        for c in line.iter_mut().take(b.min(width as usize + 1)).skip(a) {
            *c = b'#';
        }
        out.push_str(&format!(
            "stream {:>2} |{}| {:7.1}..{:7.1} us ({} blocks)\n",
            e.stream.index(),
            String::from_utf8(line).unwrap(),
            e.t_start_us,
            e.t_end_us,
            e.blocks
        ));
    }
    out
}

fn main() {
    let frame_idx = arg_usize("--frame", 0);
    let pair = trained_cascade_pair(&TrainingBudget::default());
    let info = movie_trailers().into_iter().find(|t| t.title == "50/50").unwrap();
    let trailer = info.generate(frame_idx + 1);
    let frame = trailer.render_frame(frame_idx);

    let mut overlap_summary = Vec::new();
    for (mode, name) in [(ExecMode::Concurrent, "concurrent"), (ExecMode::Serial, "serial")] {
        let mut det = FaceDetector::new(
            &pair.ours,
            DetectorConfig { exec_mode: mode, ..DetectorConfig::default() },
        );
        let r = det.detect(&frame).expect("detect");
        println!(
            "\n=== {name} mode: frame span {:.3} ms, SM occupancy {:.1}% ===",
            r.detect_ms,
            100.0 * r.timeline.sm_utilization()
        );
        println!("{}", ascii_lanes(&r.timeline, "cascade_eval"));
        dump(name, &r.timeline);

        // Overlap metric: total kernel-duration sum over span; > 1 means
        // kernels genuinely overlap.
        let dur_sum: f64 = r.timeline.events.iter().map(|e| e.duration_us()).sum();
        let overlap = dur_sum / (r.detect_ms * 1000.0);
        overlap_summary.push((name, r.detect_ms, overlap));
    }
    println!();
    for (name, ms, overlap) in overlap_summary {
        println!("{name:<11} span {ms:7.3} ms, kernel-time/span = {overlap:.2} (>1 = overlapped)");
    }
}
