//! Fig. 7 — rejection rate for each cascade stage and image scale,
//! aggregated over the frames of the "What To Expect When You're
//! Expecting" trailer.
//!
//! Paper observations to reproduce: ~94.5 % of windows are rejected by
//! the first stage, ~4 % by the second, with the remainder decaying
//! sharply over later stages; the pattern holds across scales.
//!
//! Usage: `fig7 [--frames N]` (default 12). Writes `results/fig7.csv`
//! with one row per (scale, stage).

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::harness::run_rejection_surface;
use fd_bench::out::{arg_usize, write_csv};
use fd_video::movie_trailers;

fn main() {
    let frames = arg_usize("--frames", 12);
    let pair = trained_cascade_pair(&TrainingBudget::default());
    let info = movie_trailers()
        .into_iter()
        .find(|t| t.title == "What To Expect When You're Expecting")
        .unwrap();
    println!("[fig7] {} frames of '{}'", frames, info.title);

    let surface = run_rejection_surface(&pair.ours, &info, frames);

    let n_levels = surface.counts.len();
    let mut rows = Vec::new();
    for level in 0..n_levels {
        for stage in 1..=surface.n_stages {
            rows.push(vec![
                level.to_string(),
                stage.to_string(),
                format!("{:.6e}", surface.rate(level, stage)),
            ]);
        }
    }
    let path = write_csv("fig7.csv", &["scale", "stage", "rejection_rate"], &rows).unwrap();

    println!("\naggregate rejection rate by stage (all scales):");
    for stage in 1..=surface.n_stages {
        let r = surface.aggregate_rate(stage);
        println!("  stage {stage:>2}: {:>9.4} %", 100.0 * r);
    }
    let survived: f64 = 1.0
        - (1..=surface.n_stages).map(|s| surface.aggregate_rate(s)).sum::<f64>();
    println!("  accepted (faces + false positives): {:.6} %", 100.0 * survived);
    println!(
        "\npaper: stage 1 ~ 94.52 %, stage 2 ~ 4 %, then sharply decaying; ours: stage 1 = {:.2} %, stage 2 = {:.2} %",
        100.0 * surface.aggregate_rate(1),
        100.0 * surface.aggregate_rate(2)
    );
    println!("wrote {}", path.display());
}
