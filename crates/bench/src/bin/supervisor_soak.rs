//! Supervisor soak: N concurrent sessions x many frames under a mixed
//! fault plan (transient launches, launch timeouts, corrupt and dropped
//! decodes), driven through the stream supervisor's round-robin
//! scheduler. Session 0 is a clean control; fault rates escalate with
//! the session index.
//!
//! Exit criteria (asserted, not just reported):
//! * every session accounts every accepted frame as Ok/Degraded/Skipped;
//! * after draining and one full cool-down, **zero** sessions remain
//!   Quarantined — tripped breakers must recover within their cool-down;
//! * the memory budget is respected (bytes in use never exceed it).
//!
//! Usage: `supervisor_soak [--sessions N] [--frames M]` (default 4 x 500).
//! Writes `results/BENCH_supervisor_soak.json`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::out::{arg_usize, render_table, write_text};
use fd_detector::{
    DetectorConfig, HealthState, RecoveryPolicy, StreamSupervisor, SupervisorConfig,
};
use fd_gpu::FaultPlan;
use fd_video::{DecodeFaultPlan, HwDecoder, Trailer, TrailerSpec};

const SEED: u64 = 42;

fn trailer(session: usize, n_frames: usize) -> Trailer {
    Trailer::generate(TrailerSpec {
        width: 160,
        height: 120,
        n_frames,
        seed: 21 + session as u64,
        face_size: (26.0, 60.0),
        ..TrailerSpec::default()
    })
}

fn main() {
    let n_sessions = arg_usize("--sessions", 4);
    let frames = arg_usize("--frames", 500);
    let pair = trained_cascade_pair(&TrainingBudget::tiny());

    let sup_cfg = SupervisorConfig {
        breaker_threshold: 3,
        cooldown_ticks: 6,
        frame_queue_depth: 8,
        max_sessions: n_sessions,
        ..SupervisorConfig::default()
    };
    let cooldown = sup_cfg.cooldown_ticks;
    let budget = sup_cfg.memory_budget_bytes;
    let mut sup = StreamSupervisor::new(sup_cfg);

    // Session i runs at escalating fault rates; session 0 is clean.
    let mut streams = Vec::new();
    for i in 0..n_sessions {
        let device = if i == 0 {
            None
        } else {
            Some(
                FaultPlan::seeded(SEED + i as u64)
                    .with_transient_launch_failures(0.002 * i as f64)
                    .with_launch_timeouts(0.001 * i as f64),
            )
        };
        let id = sup
            .admit(
                &pair.ours,
                DetectorConfig { min_neighbors: 1, fault_plan: device, ..Default::default() },
                24.0,
                RecoveryPolicy::default(),
                160,
                120,
            )
            .expect("admission within budget");
        let mut dec = HwDecoder::new(trailer(i, frames));
        if i > 0 {
            dec.set_fault_plan(Some(
                DecodeFaultPlan::seeded(SEED + i as u64)
                    .with_corrupt_frames(0.02 * i as f64)
                    .with_dropped_frames(0.01 * i as f64),
            ));
        }
        streams.push((id, dec));
    }
    assert!(sup.bytes_in_use() <= budget, "admission respects the budget");

    // Round-robin feed: one frame per session per supervision tick.
    let mut refused = 0usize;
    for _ in 0..frames {
        for (id, dec) in &mut streams {
            if let Some(frame) = dec.next() {
                if !sup.enqueue_frame(*id, frame).expect("session is live") {
                    refused += 1;
                }
            }
        }
        sup.tick();
    }
    sup.drain();
    // One full cool-down of idle ticks: any breaker still open must
    // expire (Quarantined -> Restarting) with nothing queued.
    for _ in 0..=cooldown {
        sup.tick();
    }

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut stuck = 0usize;
    for (i, (id, _)) in streams.iter().enumerate() {
        let health = sup.health(*id).expect("session is live");
        if matches!(health, HealthState::Quarantined { .. }) {
            stuck += 1;
        }
        let s = sup.session_stats(*id).expect("session is live");
        assert!(s.all_frames_accounted(), "session {i}: every frame accounted");
        rows.push(vec![
            i.to_string(),
            format!("{health:?}"),
            s.frames.to_string(),
            s.ok_frames.to_string(),
            s.degraded_frames.to_string(),
            s.skipped_frames.to_string(),
            s.retries.to_string(),
            format!("{:.2}", s.pipelined_fps()),
        ]);
        json_rows.push(format!(
            "    {{ \"session\": {i}, \"health\": \"{health:?}\", \"frames\": {}, \
             \"ok\": {}, \"degraded\": {}, \"skipped\": {}, \"retries\": {}, \
             \"pipelined_fps\": {:.3} }}",
            s.frames,
            s.ok_frames,
            s.degraded_frames,
            s.skipped_frames,
            s.retries,
            s.pipelined_fps(),
        ));
    }
    assert_eq!(stuck, 0, "no session may end the soak stuck in Quarantined");

    let st = sup.stats().clone();
    println!(
        "supervisor soak: {n_sessions} sessions x {frames} frames, seed {SEED}, \
         {} device bytes of {} budgeted\n",
        sup.bytes_in_use(),
        budget
    );
    println!(
        "{}",
        render_table(
            &["session", "health", "frames", "ok", "degraded", "skipped", "retries", "fps"],
            &rows
        )
    );
    println!(
        "fleet: {} processed, {} trips, {} probes ok / {} failed, \
         {} quarantined-ticks, {} backpressure drops ({refused} refused at enqueue)",
        st.frames_processed,
        st.breaker_trips,
        st.probes_succeeded,
        st.probes_failed,
        st.quarantined_ticks,
        st.backpressure_drops,
    );

    let json = format!(
        "{{\n  \"bench\": \"supervisor_soak\",\n  \"sessions\": {n_sessions},\n  \
         \"frames\": {frames},\n  \"seed\": {SEED},\n  \"bytes_in_use\": {},\n  \
         \"memory_budget\": {budget},\n  \"per_session\": [\n{}\n  ],\n  \
         \"fleet\": {{ \"ticks\": {}, \"frames_processed\": {}, \"breaker_trips\": {}, \
         \"probes_succeeded\": {}, \"probes_failed\": {}, \"quarantined_ticks\": {}, \
         \"backpressure_drops\": {}, \"stuck_quarantined\": {stuck} }}\n}}\n",
        sup.bytes_in_use(),
        json_rows.join(",\n"),
        st.ticks,
        st.frames_processed,
        st.breaker_trips,
        st.probes_succeeded,
        st.probes_failed,
        st.quarantined_ticks,
        st.backpressure_drops,
    );
    let path = write_text("BENCH_supervisor_soak.json", &json).unwrap();
    println!("\nwrote {}", path.display());
}
