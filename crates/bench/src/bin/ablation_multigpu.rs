//! Multi-GPU scale parallelism (Hefenbrock et al., §II) vs the paper's
//! single-GPU concurrent kernels: frame latency as GPUs are added, with
//! the raw-frame PCIe broadcast the on-die decoder avoids.
//!
//! Usage: `ablation_multigpu [--frames N]`.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::out::{arg_usize, render_table, write_csv};
use fd_detector::multi_gpu::detect_multi_gpu;
use fd_detector::{DetectorConfig, FaceDetector};
use fd_gpu::{DeviceSpec, PcieModel};
use fd_video::movie_trailers;

fn main() {
    let frames = arg_usize("--frames", 2);
    let pair = trained_cascade_pair(&TrainingBudget::default());
    let info = &movie_trailers()[1];
    let trailer = info.generate(frames);
    let pcie = PcieModel::pcie2_x16();

    let mut rows = Vec::new();
    for fi in 0..frames {
        let frame = trailer.render_frame(fi);

        let mut det = FaceDetector::new(&pair.ours, DetectorConfig::default());
        let single = det.detect(&frame).expect("detect").detect_ms;

        let mut cols = vec![fi.to_string(), format!("{single:.3}")];
        for n_gpus in [2usize, 4] {
            let r = detect_multi_gpu(
                &pair.ours,
                &frame,
                n_gpus,
                &DeviceSpec::gtx470(),
                &pcie,
                1.25,
            )
            .expect("multi-gpu frame");
            cols.push(format!("{:.3} (+{:.2} xfer)", r.frame_ms, r.upload_ms));
        }
        rows.push(cols);
    }
    println!("single GPU + concurrent kernels (paper) vs Hefenbrock-style multi-GPU scale split\n");
    println!(
        "{}",
        render_table(
            &["frame", "1 GPU concurrent ms", "2 GPUs ms", "4 GPUs ms"],
            &rows
        )
    );
    println!(
        "\nthe multi-GPU split is pinned by the device holding scale 0 and pays a raw-frame\nbroadcast per GPU — the paper's single-GPU concurrent kernels avoid both."
    );
    write_csv(
        "ablation_multigpu.csv",
        &["frame", "single_gpu_ms", "two_gpus", "four_gpus"],
        &rows,
    )
    .unwrap();
}
