//! Occupancy-driven launch-shape autotuning: simulated end-to-end
//! pipeline time with per-geometry-class block re-tiling on vs the
//! fixed-shape baseline, over the full {autotune} x {fusion} ablation
//! grid — single frames and a batched submission — plus the scheduler's
//! occupancy accounting (mean theoretical warp occupancy and the
//! per-launch limiting-factor breakdown) and a byte-identity check that
//! re-tiling changes no detection. Writes `results/BENCH_occupancy.json`.
//!
//! The batched path is where the paper-specified shapes leave the most
//! on the table: the cascade's 24x24-thread blocks are 18 warps, so at
//! most 2 fit under the 48-warp SM cap and the batch's span is dominated
//! by an occupancy-bound cascade tail. Narrower tiles (24xH, whole-warp
//! H) raise residency until the register file binds — the tuner scores
//! the trade against the halo bytes the narrower tile re-reads and picks
//! per geometry class. The default frame is deliberately small (80x60,
//! a low-res stream / deep pyramid level): that is the regime where
//! per-launch grids under-fill the 14 SMs and re-tiling pays. On large
//! saturated grids the tuner correctly keeps the defaults, and the
//! fused cells show fusion alone already recovering most of the
//! occupancy loss.
//!
//! Usage: `occupancy [--width W] [--height H] [--batch B]
//!                   [--assert-min-batched-pct P]`
//!
//! With `--assert-min-batched-pct 110` the process exits non-zero unless
//! the autotuned batched submission beats the fixed-shape one by 1.10x
//! (the repo's verify gate), or if any detection byte moves, or if the
//! limiting-factor counters come back degenerate.

use std::collections::BTreeMap;

use fd_bench::out::{arg_usize, write_text};
use fd_detector::{DetectorConfig, FaceDetector};
use fd_gpu::HostExec;
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_imgproc::GrayImage;

fn bench_cascade(stages: usize) -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut c = Cascade::new("bench-edge", 24);
    for _ in 0..stages {
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
    }
    c
}

fn bench_frame(w: usize, h: usize) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let stripes = if (x / 12) % 2 == 0 { 40.0 } else { 210.0 };
        let hash = ((x * 31 + y * 17) % 97) as f32;
        0.7 * stripes + hash
    })
}

fn detector(
    cascade: &Cascade,
    autotune: bool,
    fusion: bool,
    exec: HostExec,
    threads: usize,
) -> FaceDetector {
    FaceDetector::new(
        cascade,
        DetectorConfig {
            scale_factor: 1.2,
            autotune: Some(autotune),
            fusion: Some(fusion),
            host_threads: Some(threads),
            host_exec: Some(exec),
            ..DetectorConfig::default()
        },
    )
}

/// One {autotune, fusion} grid cell: spans plus occupancy accounting
/// from the batched submission's timeline.
struct Cell {
    autotune: bool,
    fusion: bool,
    single_us: f64,
    batched_us: f64,
    mean_occupancy: f64,
    limits: BTreeMap<&'static str, u64>,
}

fn main() {
    let width = arg_usize("--width", 80);
    let height = arg_usize("--height", 60);
    let batch = arg_usize("--batch", 8).max(1);
    let min_batched_pct = arg_usize("--assert-min-batched-pct", 0);
    if width < 24 || height < 24 {
        eprintln!("error: --width/--height must be at least the 24-px detection window");
        std::process::exit(2);
    }

    let cascade = bench_cascade(4);
    let frame = bench_frame(width, height);

    // Byte-identity: autotuned detections must equal fixed-shape ones in
    // both fusion modes, and each autotune mode must be invariant across
    // host engines and thread counts.
    let fingerprint = |autotune: bool, fusion: bool, exec: HostExec, threads: usize| {
        let mut det = detector(&cascade, autotune, fusion, exec, threads);
        let r = det.detect(&frame).expect("detect");
        (format!("{:?}", r.raw), r.detect_ms.to_bits())
    };
    let fixed_ref = fingerprint(false, false, HostExec::Sync, 1);
    for fusion in [false, true] {
        let tuned_ref = fingerprint(true, fusion, HostExec::Sync, 1);
        assert_eq!(fixed_ref.0, tuned_ref.0, "autotune changed detections (fusion={fusion})");
        for (exec, t) in [(HostExec::Sync, 4), (HostExec::Async, 1), (HostExec::Async, 4)] {
            assert_eq!(
                fingerprint(true, fusion, exec, t).0,
                tuned_ref.0,
                "tuned fusion={fusion} {exec:?}@{t} diverged"
            );
        }
    }
    assert_eq!(fingerprint(false, false, HostExec::Async, 4), fixed_ref, "fixed Async@4 diverged");
    println!("identity: ok (tuned == fixed detections; engines/threads agree per mode)");

    // The {autotune} x {fusion} ablation grid. Batched occupancy stats
    // come from the shared submission timeline.
    let cell = |autotune: bool, fusion: bool| {
        let mut det = detector(&cascade, autotune, fusion, HostExec::Async, 4);
        let single_us = det.detect(&frame).expect("detect").detect_ms * 1000.0;
        let refs: Vec<&GrayImage> = (0..batch).map(|_| &frame).collect();
        let rs = det.detect_batch(&refs).expect("detect_batch");
        let t = &rs[0].timeline;
        Cell {
            autotune,
            fusion,
            single_us,
            batched_us: rs[0].detect_ms * 1000.0,
            mean_occupancy: t.mean_theoretical_occupancy(),
            limits: t.limiting_factor_counts(),
        }
    };
    let grid = [cell(false, false), cell(true, false), cell(false, true), cell(true, true)];

    let batched_speedup = grid[0].batched_us / grid[1].batched_us;
    let batched_speedup_fused = grid[2].batched_us / grid[3].batched_us;
    let single_speedup = grid[0].single_us / grid[1].single_us;

    let cell_rows: Vec<String> = grid
        .iter()
        .map(|c| {
            let limits = c
                .limits
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "    {{ \"autotune\": {}, \"fusion\": {}, \"single_us\": {:.3}, \
                 \"batched_us\": {:.3}, \"mean_warp_occupancy\": {:.4}, \
                 \"limiting_factors\": {{ {limits} }} }}",
                c.autotune, c.fusion, c.single_us, c.batched_us, c.mean_occupancy
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"occupancy_autotune\",\n  \"frame\": [{width}, {height}],\n  \
         \"batch\": {batch},\n  \"identity\": \"ok\",\n  \
         \"batched_speedup\": {batched_speedup:.3},\n  \
         \"batched_speedup_fused\": {batched_speedup_fused:.3},\n  \
         \"single_speedup\": {single_speedup:.3},\n  \"grid\": [\n{}\n  ],\n  \
         \"note\": \"simulated device time; autotune re-tiles shape-polymorphic kernels \
         (cascade 24xH, filter/scale/scan variants) per geometry class through the \
         scheduler's occupancy model. Detections are byte-identical at every shape. \
         mean_warp_occupancy is the launch-weighted theoretical residency; \
         limiting_factors counts which per-SM budget (registers/smem/warps/threads/blocks) \
         bounded each launch's residency.\"\n}}\n",
        cell_rows.join(",\n"),
    );
    print!("{json}");
    let path = write_text("BENCH_occupancy.json", &json).unwrap();
    println!("wrote {}", path.display());

    let mut failed = false;
    if min_batched_pct > 0 {
        let need = min_batched_pct as f64 / 100.0;
        if batched_speedup < need {
            eprintln!("FAIL: autotuned batched speedup {batched_speedup:.3}x below {need:.2}x");
            failed = true;
        }
    }
    // The occupancy accounting must be live: every cell reports at least
    // one limiting factor, and the tuned cells must not collapse to a
    // single budget (re-tiled launches shift which budget binds).
    for c in &grid {
        if c.limits.is_empty() || c.mean_occupancy <= 0.0 {
            eprintln!(
                "FAIL: degenerate occupancy accounting (autotune={}, fusion={})",
                c.autotune, c.fusion
            );
            failed = true;
        }
    }
    if grid[1].limits.len() < 2 {
        eprintln!("FAIL: tuned run reports a single limiting factor across all launches");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
