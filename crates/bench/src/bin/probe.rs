//! Developer probe: times one 1080p frame through the pipeline and prints
//! the simulated device timeline summary. Used to size the experiment
//! defaults; not part of the paper's tables.

use fd_bench::cascades::{trained_cascade_pair, TrainingBudget};
use fd_bench::out::arg_usize;
use fd_detector::{DetectorConfig, FaceDetector};
use fd_gpu::ExecMode;
use fd_video::movie_trailers;

fn main() {
    let frames = arg_usize("--frames", 2);
    let budget = if std::env::args().any(|a| a == "--tiny") {
        TrainingBudget::tiny()
    } else {
        TrainingBudget::default()
    };
    let t0 = std::time::Instant::now();
    let pair = trained_cascade_pair(&budget);
    eprintln!(
        "cascades ready in {:.1}s: ours {} stages / {} stumps, cv {} stages / {} stumps",
        t0.elapsed().as_secs_f64(),
        pair.ours.depth(),
        pair.ours.total_stumps(),
        pair.opencv_like.depth(),
        pair.opencv_like.total_stumps()
    );

    // Quick accuracy sanity check on a small mug-shot set.
    let ds = fd_eval::scface::MugshotDataset::generate(40, 40, 96, 0xABCD);
    for (name, cascade) in [("ours", &pair.ours), ("opencv-like", &pair.opencv_like)] {
        let mut det = FaceDetector::new(
            cascade,
            DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() },
        );
        let mut hits = 0;
        let mut fps = 0;
        for img in &ds.images {
            let r = det.detect(&img.image).expect("detect");
            let truths: Vec<_> = img.truth.iter().cloned().collect();
            let e = fd_eval::roc::match_frame(&r.detections, &truths);
            hits += e.hit_scores.len();
            fps += e.fp_scores.len();
        }
        eprintln!(
            "{name:<12} mugshots: {hits}/{} faces hit, {fps} false positives over {} images",
            ds.total_faces(),
            ds.images.len()
        );
    }

    let info = &movie_trailers()[1]; // 50/50
    let trailer = info.generate(frames);
    let tg = std::time::Instant::now();
    let frame_idx = (0..frames).find(|&i| !trailer.faces_at(i).is_empty()).unwrap_or(0);
    let frame0 = trailer.render_frame(frame_idx);
    eprintln!(
        "frame render: {:.0} ms (frame {frame_idx}, {} ground-truth faces)",
        tg.elapsed().as_secs_f64() * 1000.0,
        trailer.faces_at(frame_idx).len()
    );

    for (name, cascade) in [("ours", &pair.ours), ("opencv-like", &pair.opencv_like)] {
        for mode in [ExecMode::Concurrent, ExecMode::Serial] {
            let mut det = FaceDetector::new(
                cascade,
                DetectorConfig { exec_mode: mode, ..DetectorConfig::default() },
            );
            let tw = std::time::Instant::now();
            let r = det.detect(&frame0).expect("detect");
            eprintln!(
                "{name:<12} {mode:?}: simulated {:.3} ms, wall {:.2} s, raw {} dets {} groups, util {:.2}",
                r.detect_ms,
                tw.elapsed().as_secs_f64(),
                r.raw.len(),
                r.detections.len(),
                r.timeline.sm_utilization(),
            );
            if std::env::args().any(|a| a == "--breakdown") {
                let mut per: std::collections::BTreeMap<&str, f64> = Default::default();
                for e in &r.timeline.events {
                    *per.entry(e.kernel_name).or_default() += e.duration_us();
                }
                for (k, us) in per {
                    eprintln!("    {k:<14} {:.3} ms total-kernel-time", us / 1000.0);
                }
                // Cascade duration by scale (launch order).
                for e in r.timeline.events.iter().filter(|e| e.kernel_name == "cascade_eval") {
                    eprintln!(
                        "    cascade s{:<2} [{:8.1}..{:8.1}] {:7.1} us {} blocks",
                        e.stream.index(), e.t_start_us, e.t_end_us, e.duration_us(), e.blocks
                    );
                }
            }
        }
    }
}
