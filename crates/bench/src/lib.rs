//! # fd-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §14):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — Haar feature combination counts |
//! | `table2` | Table II — ms/frame, 10 trailers x 2 cascades x 2 modes |
//! | `fig5` | Fig. 5 — per-frame latency series for the "50/50" trailer |
//! | `fig6` | Fig. 6 — kernel execution trace across streams |
//! | `fig7` | Fig. 7 — rejection rate per stage and scale |
//! | `fig8` | Fig. 8 — GentleBoost iteration time vs threads (SMP model) |
//! | `fig9` | Fig. 9 — TPR/FP curves at 15/20/25-equivalent stages |
//! | `counters` | §VI-A text figures: branch efficiency, DRAM throughput, stage shares |
//! | `repro_all` | runs everything above in sequence |
//!
//! All binaries accept `--frames N` / size flags where applicable, print
//! the paper's rows to stdout and write machine-readable CSVs under
//! `results/`.
//!
//! The library part holds the shared machinery: cached cascade training
//! ([`cascades`]), benchmark runners ([`harness`]) and result formatting
//! ([`out`]).

pub mod cascades;
pub mod harness;
pub mod loadgen;
pub mod out;

pub use cascades::{trained_cascade_pair, CascadePair, TrainingBudget};
