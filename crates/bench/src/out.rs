//! Result formatting: aligned text tables for stdout and CSVs under
//! `results/`.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Directory CSV outputs are written to (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FD_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).ok();
    p
}

/// Write CSV rows (first row = header) to `results/<name>`.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let path = results_dir().join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()?;
    Ok(path)
}

/// Write plain text to `results/<name>`.
pub fn write_text(name: &str, text: &str) -> std::io::Result<PathBuf> {
    let path = results_dir().join(name);
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Render an aligned text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Parse a `--flag value` style argument from `std::env::args`.
pub fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Check for a boolean `--flag`.
pub fn arg_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Ensure a path's parent exists (for nested result names).
pub fn ensure_parent(path: &Path) {
    if let Some(p) = path.parent() {
        std::fs::create_dir_all(p).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 3], "2.5");
    }

    #[test]
    fn csv_roundtrip() {
        std::env::set_var("FD_RESULTS_DIR", std::env::temp_dir().join("fd_out_test"));
        let p = write_csv(
            "t.csv",
            &["x", "y"],
            &[vec!["1".into(), "2".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(p).unwrap();
        assert_eq!(text, "x,y\n1,2\n");
        std::env::remove_var("FD_RESULTS_DIR");
    }
}
