//! TPR/FP curve computation (paper §VI-B, Fig. 9).
//!
//! Per image: grouped detections are assigned to ground-truth annotations
//! with the Hungarian algorithm under the `S_eyes` cost; an assignment
//! with `S_eyes < MATCH_LIMIT` is a hit, everything else a false
//! positive. "The resulting curve is plotted by varying a threshold over
//! the detection score, and thus obtaining different combinations of the
//! ratio TPR/FP."

use fd_detector::group::{s_eyes_to_truth, GroupedDetection};
use fd_detector::{Detector, DetectorError};

use crate::hungarian::assign_min_cost;
use crate::scface::{Annotation, MugshotDataset};

/// Maximum `S_eyes` for a detection-annotation pair to count as a match.
/// (Eq. 6 values below ~1 correspond to eye errors under one inter-eye
/// distance; 0.5 is the paper's overlap level, 1.0 tolerates the grouping
/// quantization of the pyramid.)
pub const MATCH_LIMIT: f64 = 1.0;

/// Per-image evaluation: scored hit/false-positive outcomes.
#[derive(Debug, Clone, Default)]
pub struct FrameEval {
    /// Scores of detections matched to an annotation.
    pub hit_scores: Vec<f32>,
    /// Scores of unmatched (false-positive) detections.
    pub fp_scores: Vec<f32>,
    /// Annotated faces in this image.
    pub n_truth: usize,
}

/// Assign `detections` to `truths` (Hungarian, S_eyes cost) and bucket
/// the detection scores into hits and false positives.
pub fn match_frame(detections: &[GroupedDetection], truths: &[Annotation]) -> FrameEval {
    let mut eval = FrameEval { n_truth: truths.len(), ..FrameEval::default() };
    if detections.is_empty() {
        return eval;
    }
    if truths.is_empty() {
        eval.fp_scores = detections.iter().map(|d| d.score).collect();
        return eval;
    }
    let cost: Vec<Vec<f64>> = detections
        .iter()
        .map(|d| {
            truths
                .iter()
                .map(|t| {
                    let s = s_eyes_to_truth(&d.as_detection(), t.eyes, t.eye_distance);
                    if s < MATCH_LIMIT {
                        s
                    } else {
                        f64::INFINITY
                    }
                })
                .collect()
        })
        .collect();
    let assignment = assign_min_cost(&cost);
    for (d, a) in detections.iter().zip(&assignment) {
        match a {
            Some(_) => eval.hit_scores.push(d.score),
            None => eval.fp_scores.push(d.score),
        }
    }
    eval
}

/// One operating point of the TPR/FP curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Score threshold producing this point.
    pub threshold: f32,
    /// True positives (matched detections scoring above threshold).
    pub tp: usize,
    /// False positives above threshold.
    pub fp: usize,
    /// `tp / total ground-truth faces`.
    pub tpr: f64,
}

/// Sweep a threshold over detection scores across all frame evaluations.
/// Returns points ordered from the strictest threshold (few FP) to the
/// loosest, like the paper's Fig. 9 x-axis.
pub fn roc_curve(evals: &[FrameEval], n_points: usize) -> Vec<RocPoint> {
    assert!(n_points >= 2);
    let total_truth: usize = evals.iter().map(|e| e.n_truth).sum();
    let mut all_scores: Vec<f32> = evals
        .iter()
        .flat_map(|e| e.hit_scores.iter().chain(&e.fp_scores).copied())
        .collect();
    if all_scores.is_empty() {
        return vec![RocPoint { threshold: 0.0, tp: 0, fp: 0, tpr: 0.0 }];
    }
    all_scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = *all_scores.first().unwrap();
    let hi = *all_scores.last().unwrap();

    let mut points = Vec::with_capacity(n_points);
    for k in 0..n_points {
        // From hi (strict) down to lo (loose).
        let t = hi - (hi - lo) * k as f32 / (n_points - 1) as f32;
        let tp: usize = evals
            .iter()
            .map(|e| e.hit_scores.iter().filter(|&&s| s >= t).count())
            .sum();
        let fp: usize = evals
            .iter()
            .map(|e| e.fp_scores.iter().filter(|&&s| s >= t).count())
            .sum();
        points.push(RocPoint {
            threshold: t,
            tp,
            fp,
            tpr: if total_truth == 0 { 0.0 } else { tp as f64 / total_truth as f64 },
        });
    }
    points
}

/// Per-backend accuracy/latency measurement over a corpus: frame
/// evaluations (for [`roc_curve`]) plus total virtual detect time.
#[derive(Debug, Clone, Default)]
pub struct BackendEval {
    pub evals: Vec<FrameEval>,
    /// Sum of per-frame virtual device time, ms.
    pub total_detect_ms: f64,
    /// Windows evaluated across all frames and pyramid levels (populated
    /// only when the detector collects rejection stats).
    pub windows_total: u64,
    /// Windows surviving into the cascade's final stage (ending at one
    /// of the last two depth bins: rejected *by* the final stage, or
    /// accepted through it).
    pub windows_reaching_final: u64,
}

impl BackendEval {
    /// Mean virtual detect time per frame, ms.
    pub fn mean_detect_ms(&self) -> f64 {
        if self.evals.is_empty() {
            0.0
        } else {
            self.total_detect_ms / self.evals.len() as f64
        }
    }

    /// Fraction of windows the cascade rejected before its final stage —
    /// the early-exit economy the cascade exists to buy. 0.0 when the
    /// detector did not collect rejection stats.
    pub fn pre_final_rejection(&self) -> f64 {
        if self.windows_total == 0 {
            0.0
        } else {
            1.0 - self.windows_reaching_final as f64 / self.windows_total as f64
        }
    }
}

/// Run any [`Detector`] backend over the mug-shot corpus and match every
/// frame's detections against its ground truth — the accuracy/latency
/// front's shared measurement path, identical for Haar and CNN.
pub fn evaluate_backend(
    det: &mut dyn Detector,
    ds: &MugshotDataset,
) -> Result<BackendEval, DetectorError> {
    let mut out = BackendEval::default();
    for img in &ds.images {
        let r = det.detect(&img.image)?;
        out.total_detect_ms += r.detect_ms;
        if let Some(h) = &r.rejection {
            for counts in &h.counts {
                out.windows_total += counts.iter().sum::<u64>();
                if let [.., by_final, through_final] = counts[..] {
                    out.windows_reaching_final += by_final + through_final;
                }
            }
        }
        let truths: Vec<_> = img.truth.iter().cloned().collect();
        out.evals.push(match_frame(&r.detections, &truths));
    }
    Ok(out)
}

/// Convenience: evaluate many frames' detections against their truths.
pub fn evaluate_frames(
    per_frame: impl IntoIterator<Item = (Vec<GroupedDetection>, Vec<Annotation>)>,
) -> Vec<FrameEval> {
    per_frame.into_iter().map(|(d, t)| match_frame(&d, &t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_imgproc::{PointF, Rect};

    fn truth(x: i32, y: i32, size: u32) -> Annotation {
        let r = Rect::new(x, y, size, size);
        let eyes = (
            PointF::new(x as f64 + 0.30 * size as f64, y as f64 + 0.38 * size as f64),
            PointF::new(x as f64 + 0.70 * size as f64, y as f64 + 0.38 * size as f64),
        );
        Annotation { rect: r, eyes, eye_distance: 0.4 * size as f64 }
    }

    fn det(x: i32, y: i32, size: u32, score: f32) -> GroupedDetection {
        GroupedDetection { rect: Rect::new(x, y, size, size), score, neighbors: 3 }
    }

    #[test]
    fn perfect_detection_is_a_hit() {
        let e = match_frame(&[det(10, 10, 50, 2.0)], &[truth(10, 10, 50)]);
        assert_eq!(e.hit_scores, vec![2.0]);
        assert!(e.fp_scores.is_empty());
    }

    #[test]
    fn far_detection_is_a_false_positive() {
        let e = match_frame(&[det(200, 200, 50, 2.0)], &[truth(10, 10, 50)]);
        assert!(e.hit_scores.is_empty());
        assert_eq!(e.fp_scores, vec![2.0]);
    }

    #[test]
    fn one_truth_matches_at_most_one_detection() {
        // Two overlapping detections on one face: one hit, one FP.
        let e = match_frame(
            &[det(10, 10, 50, 2.0), det(12, 11, 50, 1.0)],
            &[truth(10, 10, 50)],
        );
        assert_eq!(e.hit_scores.len(), 1);
        assert_eq!(e.fp_scores.len(), 1);
        // Hungarian keeps the better-aligned (cheaper) one.
        assert_eq!(e.hit_scores[0], 2.0);
    }

    #[test]
    fn hungarian_resolves_crossed_pairs() {
        // Two truths, two detections each closest to a different truth.
        let e = match_frame(
            &[det(100, 100, 50, 1.0), det(10, 10, 50, 1.0)],
            &[truth(10, 10, 50), truth(100, 100, 50)],
        );
        assert_eq!(e.hit_scores.len(), 2);
        assert!(e.fp_scores.is_empty());
    }

    #[test]
    fn roc_curve_is_monotone_in_threshold() {
        let evals = vec![
            FrameEval { hit_scores: vec![3.0, 2.0], fp_scores: vec![1.0, 0.5], n_truth: 3 },
            FrameEval { hit_scores: vec![2.5], fp_scores: vec![2.8], n_truth: 1 },
        ];
        let curve = roc_curve(&evals, 8);
        for w in curve.windows(2) {
            assert!(w[1].tp >= w[0].tp);
            assert!(w[1].fp >= w[0].fp);
            assert!(w[1].tpr >= w[0].tpr);
        }
        // Loosest point counts everything.
        let last = curve.last().unwrap();
        assert_eq!(last.tp, 3);
        assert_eq!(last.fp, 3);
        assert!((last.tpr - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_evaluations_give_a_degenerate_curve() {
        let curve = roc_curve(&[FrameEval::default()], 5);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].tp, 0);
    }

    #[test]
    fn background_frames_only_contribute_fps() {
        let e = match_frame(&[det(5, 5, 40, 9.0)], &[]);
        assert_eq!(e.n_truth, 0);
        assert_eq!(e.fp_scores, vec![9.0]);
    }

    #[test]
    fn evaluate_backend_runs_both_detectors_through_one_path() {
        use crate::scface::MugshotDataset;
        use fd_cnn::{CnnDetector, CnnModel};
        use fd_detector::{Detector, DetectorConfig, FaceDetector};
        use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};

        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut cascade = Cascade::new("edge", 24);
        cascade.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        let cfg = DetectorConfig {
            min_neighbors: 1,
            collect_rejection_stats: true,
            ..DetectorConfig::default()
        };
        let ds = MugshotDataset::generate(2, 2, 64, 11);
        let backends: Vec<Box<dyn Detector>> = vec![
            Box::new(FaceDetector::try_new(&cascade, cfg.clone()).unwrap()),
            Box::new(CnnDetector::try_new(&CnnModel::seeded(0), cfg).unwrap()),
        ];
        for mut det in backends {
            let e = evaluate_backend(&mut *det, &ds).unwrap();
            assert_eq!(e.evals.len(), 4, "one evaluation per corpus image");
            assert!(e.total_detect_ms > 0.0);
            assert!(e.mean_detect_ms() > 0.0);
            assert_eq!(e.evals.iter().map(|v| v.n_truth).sum::<usize>(), 2);
            assert!(e.windows_total > 0, "rejection stats were enabled");
            assert!((0.0..=1.0).contains(&e.pre_final_rejection()));
        }
    }
}
